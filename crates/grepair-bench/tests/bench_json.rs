//! Validate the machine-readable bench results committed at the repo
//! root: every `BENCH_*.json` must parse and carry the schema the perf
//! trajectory tooling depends on (`bench`, `smoke`, `results[]` with
//! `id` + `median_ns` + `iters_per_sec`, `metrics{}`). The serde derive
//! rejects missing fields, so parsing into [`BenchJson`] *is* the schema
//! check.
//!
//! CI additionally sets `GREPAIR_REQUIRE_BENCH=<name>[,<name>...]` after
//! smoke-running those benches, turning "file absent" into a failure for
//! exactly the benches it just ran.

use serde::Deserialize;
use std::collections::BTreeMap;
use std::path::PathBuf;

#[derive(Debug, Deserialize)]
struct BenchJson {
    bench: String,
    #[allow(dead_code)]
    smoke: bool,
    results: Vec<ResultRow>,
    metrics: BTreeMap<String, f64>,
}

#[derive(Debug, Deserialize)]
struct ResultRow {
    id: String,
    median_ns: f64,
    iters_per_sec: f64,
}

fn repo_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root above crates/grepair-bench")
        .to_path_buf()
}

fn validate(name: &str, text: &str) {
    let parsed: BenchJson =
        serde_json::from_str(text).unwrap_or_else(|e| panic!("{name}: schema violation: {e}"));
    assert_eq!(
        format!("BENCH_{}.json", parsed.bench),
        name,
        "{name}: \"bench\" must match the file name"
    );
    assert!(
        !parsed.results.is_empty(),
        "{name}: results must not be empty (latencies are the point)"
    );
    for r in &parsed.results {
        assert!(!r.id.is_empty(), "{name}: empty result id");
        assert!(
            r.median_ns.is_finite() && r.median_ns >= 0.0,
            "{name}: {}: median_ns = {}",
            r.id,
            r.median_ns
        );
        assert!(
            r.iters_per_sec.is_finite() && r.iters_per_sec >= 0.0,
            "{name}: {}: iters_per_sec = {}",
            r.id,
            r.iters_per_sec
        );
    }
    for (k, v) in &parsed.metrics {
        assert!(v.is_finite(), "{name}: metric {k} = {v}");
    }
}

#[test]
fn committed_bench_json_files_parse_with_required_keys() {
    let root = repo_root();
    let mut seen = Vec::new();
    for entry in std::fs::read_dir(&root).expect("read repo root") {
        let entry = entry.expect("dir entry");
        let file_name = entry.file_name();
        let Some(name) = file_name.to_str() else { continue };
        if !(name.starts_with("BENCH_") && name.ends_with(".json")) {
            continue;
        }
        let text = std::fs::read_to_string(entry.path()).expect("read bench json");
        validate(name, &text);
        seen.push(
            name.trim_start_matches("BENCH_")
                .trim_end_matches(".json")
                .to_owned(),
        );
    }
    if let Ok(required) = std::env::var("GREPAIR_REQUIRE_BENCH") {
        for want in required.split(',').map(str::trim).filter(|s| !s.is_empty()) {
            assert!(
                seen.iter().any(|s| s == want),
                "required BENCH_{want}.json missing at repo root (found: {seen:?})"
            );
        }
    }
}

#[test]
fn validator_rejects_malformed_results() {
    let ok = r#"{"bench":"x","smoke":true,"results":[{"id":"a","median_ns":1.0,"iters_per_sec":2.0}],"metrics":{}}"#;
    validate("BENCH_x.json", ok);
    for bad in [
        // No "bench".
        r#"{"smoke":true,"results":[{"id":"a","median_ns":1.0,"iters_per_sec":2.0}],"metrics":{}}"#,
        // Empty results.
        r#"{"bench":"x","smoke":true,"results":[],"metrics":{}}"#,
        // Row missing a latency key.
        r#"{"bench":"x","smoke":true,"results":[{"id":"a","median_ns":1.0}],"metrics":{}}"#,
        // Name mismatch.
        r#"{"bench":"y","smoke":true,"results":[{"id":"a","median_ns":1.0,"iters_per_sec":2.0}],"metrics":{}}"#,
        // Not JSON at all.
        r#"not json"#,
    ] {
        assert!(
            std::panic::catch_unwind(|| validate("BENCH_x.json", bad)).is_err(),
            "must reject: {bad}"
        );
    }
}
