//! Validate the machine-readable bench results committed at the repo
//! root: every `BENCH_*.json` must parse and carry the schema the perf
//! trajectory tooling depends on (`bench`, `smoke`, `results[]` with
//! `id` + `median_ns` + `iters_per_sec`, `metrics{}`). The serde derive
//! rejects missing fields, so parsing into [`BenchJson`] *is* the schema
//! check.
//!
//! CI additionally sets `GREPAIR_REQUIRE_BENCH=<name>[,<name>...]` after
//! smoke-running those benches, turning "file absent" into a failure for
//! exactly the benches it just ran.

use serde::Deserialize;
use std::collections::BTreeMap;
use std::path::PathBuf;

#[derive(Debug, Deserialize)]
struct BenchJson {
    bench: String,
    #[allow(dead_code)]
    smoke: bool,
    results: Vec<ResultRow>,
    metrics: BTreeMap<String, f64>,
}

#[derive(Debug, Deserialize)]
struct ResultRow {
    id: String,
    median_ns: f64,
    iters_per_sec: f64,
}

fn repo_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root above crates/grepair-bench")
        .to_path_buf()
}

fn validate(name: &str, text: &str) {
    let parsed: BenchJson =
        serde_json::from_str(text).unwrap_or_else(|e| panic!("{name}: schema violation: {e}"));
    assert_eq!(
        format!("BENCH_{}.json", parsed.bench),
        name,
        "{name}: \"bench\" must match the file name"
    );
    assert!(
        !parsed.results.is_empty(),
        "{name}: results must not be empty (latencies are the point)"
    );
    for r in &parsed.results {
        assert!(!r.id.is_empty(), "{name}: empty result id");
        assert!(
            r.median_ns.is_finite() && r.median_ns >= 0.0,
            "{name}: {}: median_ns = {}",
            r.id,
            r.median_ns
        );
        assert!(
            r.iters_per_sec.is_finite() && r.iters_per_sec >= 0.0,
            "{name}: {}: iters_per_sec = {}",
            r.id,
            r.iters_per_sec
        );
    }
    for (k, v) in &parsed.metrics {
        assert!(v.is_finite(), "{name}: metric {k} = {v}");
    }
    if parsed.bench == "par_matching" {
        validate_par_matching(name, &parsed);
    }
    if parsed.bench == "observability" {
        validate_observability(name, &parsed);
    }
    if parsed.bench == "guardrails" {
        validate_guardrails(name, &parsed);
    }
    if parsed.bench == "store_faults" {
        validate_store_faults(name, &parsed);
    }
}

/// Extra contract for the parallel-matching bench, introduced with the
/// phantom-parallelism fix: the JSON must say how many cores the host
/// had, how many workers actually ran, a speedup per probed thread
/// count, and whether the comparison was degraded (effectively
/// single-threaded) — so a 1-worker "speedup" can never again be
/// committed as a scaling number without being flagged.
fn validate_par_matching(name: &str, parsed: &BenchJson) {
    for key in [
        "host_cores",
        "worker_threads",
        "speedup_parallel",
        "degraded",
        "speedup_t1",
        "speedup_t2",
    ] {
        assert!(
            parsed.metrics.contains_key(key),
            "{name}: par_matching must record metric {key}"
        );
    }
    let workers = parsed.metrics["worker_threads"];
    assert!(
        workers >= 1.0 && workers.fract() == 0.0,
        "{name}: worker_threads must be a positive integer, got {workers}"
    );
    let cores = parsed.metrics["host_cores"];
    assert!(
        cores >= 1.0 && cores.fract() == 0.0,
        "{name}: host_cores must be a positive integer, got {cores}"
    );
    let at_workers = format!("speedup_t{}", workers as u64);
    assert!(
        parsed.metrics.contains_key(&at_workers),
        "{name}: missing per-thread-count speedup {at_workers}"
    );
    let degraded = parsed.metrics["degraded"];
    assert!(
        degraded == 0.0 || degraded == 1.0,
        "{name}: degraded must be 0 or 1, got {degraded}"
    );
    assert!(
        degraded == 1.0 || (workers >= 2.0 && cores >= 2.0),
        "{name}: a non-degraded run requires >= 2 workers on >= 2 cores"
    );
}

/// Extra contract for the observability bench: the telemetry layer's
/// headline numbers must be present, and the *disabled* overhead on the
/// matching hot path must stay under 5% — instrumentation that is not
/// near-free when off does not get committed as an improvement.
fn validate_observability(name: &str, parsed: &BenchJson) {
    for key in [
        "disabled_overhead_ratio",
        "enabled_overhead_ratio",
        "events_per_sec",
    ] {
        assert!(
            parsed.metrics.contains_key(key),
            "{name}: observability must record metric {key}"
        );
    }
    let disabled = parsed.metrics["disabled_overhead_ratio"];
    assert!(
        (1.0..1.05).contains(&disabled),
        "{name}: disabled telemetry must cost < 5% on the matching hot \
         path (and cannot be a speedup), got {disabled}"
    );
    let enabled = parsed.metrics["enabled_overhead_ratio"];
    assert!(
        enabled > 0.0,
        "{name}: enabled_overhead_ratio must be positive, got {enabled}"
    );
    let eps = parsed.metrics["events_per_sec"];
    assert!(
        eps > 0.0,
        "{name}: events_per_sec must be positive, got {eps}"
    );
}

/// Extra contract for the guardrails bench: budget checks that are not
/// near-free when no limits are set do not ship, and a cancellation
/// that does not land promptly is not "cooperative". The computed
/// disabled-check overhead must stay under 5% (and cannot be a
/// speedup — that would mean the computation is broken), the
/// checkpoint count must prove a real budgeted pass ran, and the
/// flip-to-return p99 must be positive.
fn validate_guardrails(name: &str, parsed: &BenchJson) {
    for key in [
        "disabled_check_overhead_ratio",
        "checkpoints_per_pass",
        "cancel_latency_p99_ms",
    ] {
        assert!(
            parsed.metrics.contains_key(key),
            "{name}: guardrails must record metric {key}"
        );
    }
    let disabled = parsed.metrics["disabled_check_overhead_ratio"];
    assert!(
        (1.0..1.05).contains(&disabled),
        "{name}: no-limit budget checks must cost < 5% on the matching \
         hot path (and cannot be a speedup), got {disabled}"
    );
    let checkpoints = parsed.metrics["checkpoints_per_pass"];
    assert!(
        checkpoints >= 1.0 && checkpoints.fract() == 0.0,
        "{name}: checkpoints_per_pass must be a positive integer \
         (a budgeted pass that never checkpointed measured nothing), \
         got {checkpoints}"
    );
    let p99 = parsed.metrics["cancel_latency_p99_ms"];
    assert!(
        p99 > 0.0,
        "{name}: cancel_latency_p99_ms must be positive, got {p99}"
    );
}

/// Extra contract for the fault-path bench: the fault-density axis and
/// fsck throughput must be present and sane. A recovery "speedup" under
/// injected faults (slowdown < 1) is a measurement bug — skipping
/// snapshots and replaying more log can only cost time — and zero fsck
/// throughput means the dry-run replay never ran.
fn validate_store_faults(name: &str, parsed: &BenchJson) {
    for key in [
        "fault_density_max",
        "recovery_slowdown_faults",
        "fsck_records_per_sec",
    ] {
        assert!(
            parsed.metrics.contains_key(key),
            "{name}: store_faults must record metric {key}"
        );
    }
    let density = parsed.metrics["fault_density_max"];
    assert!(
        density >= 1.0 && density.fract() == 0.0,
        "{name}: fault_density_max must be a positive integer, got {density}"
    );
    let slowdown = parsed.metrics["recovery_slowdown_faults"];
    // >= 1 in principle (skipping snapshots and replaying more log only
    // costs time); 0.9 leaves room for timing noise in smoke runs.
    assert!(
        slowdown >= 0.9,
        "{name}: recovery under {density} faults cannot beat the clean \
         open, got slowdown {slowdown}"
    );
    let fsck_rps = parsed.metrics["fsck_records_per_sec"];
    assert!(
        fsck_rps > 0.0,
        "{name}: fsck_records_per_sec must be positive, got {fsck_rps}"
    );
    // The density axis itself must have been measured, fault-free open
    // included.
    for k in 0..=(density as u64) {
        let id = format!("store_faults/open/faults_{k}");
        assert!(
            parsed.results.iter().any(|r| r.id == id),
            "{name}: missing result row {id}"
        );
    }
}

#[test]
fn committed_bench_json_files_parse_with_required_keys() {
    let root = repo_root();
    let mut seen = Vec::new();
    for entry in std::fs::read_dir(&root).expect("read repo root") {
        let entry = entry.expect("dir entry");
        let file_name = entry.file_name();
        let Some(name) = file_name.to_str() else { continue };
        if !(name.starts_with("BENCH_") && name.ends_with(".json")) {
            continue;
        }
        let text = std::fs::read_to_string(entry.path()).expect("read bench json");
        validate(name, &text);
        seen.push(
            name.trim_start_matches("BENCH_")
                .trim_end_matches(".json")
                .to_owned(),
        );
    }
    if let Ok(required) = std::env::var("GREPAIR_REQUIRE_BENCH") {
        for want in required.split(',').map(str::trim).filter(|s| !s.is_empty()) {
            assert!(
                seen.iter().any(|s| s == want),
                "required BENCH_{want}.json missing at repo root (found: {seen:?})"
            );
        }
    }
}

#[test]
fn validator_rejects_malformed_results() {
    let ok = r#"{"bench":"x","smoke":true,"results":[{"id":"a","median_ns":1.0,"iters_per_sec":2.0}],"metrics":{}}"#;
    validate("BENCH_x.json", ok);
    for bad in [
        // No "bench".
        r#"{"smoke":true,"results":[{"id":"a","median_ns":1.0,"iters_per_sec":2.0}],"metrics":{}}"#,
        // Empty results.
        r#"{"bench":"x","smoke":true,"results":[],"metrics":{}}"#,
        // Row missing a latency key.
        r#"{"bench":"x","smoke":true,"results":[{"id":"a","median_ns":1.0}],"metrics":{}}"#,
        // Name mismatch.
        r#"{"bench":"y","smoke":true,"results":[{"id":"a","median_ns":1.0,"iters_per_sec":2.0}],"metrics":{}}"#,
        // Not JSON at all.
        r#"not json"#,
    ] {
        assert!(
            std::panic::catch_unwind(|| validate("BENCH_x.json", bad)).is_err(),
            "must reject: {bad}"
        );
    }
}

#[test]
fn validator_enforces_par_matching_contract() {
    let row = r#"[{"id":"a","median_ns":1.0,"iters_per_sec":2.0}]"#;
    let ok = format!(
        r#"{{"bench":"par_matching","smoke":true,"results":{row},"metrics":{{
            "speedup_t1":0.9,"speedup_t2":1.8,"speedup_parallel":1.8,
            "worker_threads":2.0,"host_cores":1.0,"degraded":1.0}}}}"#
    );
    validate("BENCH_par_matching.json", &ok);
    for bad_metrics in [
        // Missing worker_threads entirely (the phantom-parallelism bug
        // would have been caught by exactly this).
        r#""speedup_t1":0.9,"speedup_t2":1.8,"speedup_parallel":1.8,"host_cores":1.0,"degraded":1.0"#,
        // Missing host cores.
        r#""speedup_t1":0.9,"speedup_t2":1.8,"speedup_parallel":1.8,"worker_threads":2.0,"degraded":1.0"#,
        // Missing the per-thread-count curve.
        r#""speedup_parallel":1.8,"worker_threads":2.0,"host_cores":1.0,"degraded":1.0"#,
        // Single-threaded comparison not flagged as degraded.
        r#""speedup_t1":0.9,"speedup_t2":1.8,"speedup_parallel":1.8,"worker_threads":2.0,"host_cores":1.0,"degraded":0.0"#,
    ] {
        let text = format!(
            r#"{{"bench":"par_matching","smoke":true,"results":{row},"metrics":{{{bad_metrics}}}}}"#
        );
        assert!(
            std::panic::catch_unwind(|| validate("BENCH_par_matching.json", &text)).is_err(),
            "must reject metrics: {bad_metrics}"
        );
    }
}

#[test]
fn validator_enforces_store_faults_contract() {
    let rows = r#"[
        {"id":"store_faults/open/faults_0","median_ns":1.0,"iters_per_sec":2.0},
        {"id":"store_faults/open/faults_1","median_ns":1.5,"iters_per_sec":2.0},
        {"id":"store_faults/open/faults_2","median_ns":2.0,"iters_per_sec":2.0}]"#;
    let ok = format!(
        r#"{{"bench":"store_faults","smoke":true,"results":{rows},"metrics":{{
            "fault_density_max":2.0,"recovery_slowdown_faults":1.4,
            "fsck_records_per_sec":10000.0}}}}"#
    );
    validate("BENCH_store_faults.json", &ok);
    for bad_metrics in [
        // Missing the density axis.
        r#""recovery_slowdown_faults":1.4,"fsck_records_per_sec":1e4"#,
        // Missing the headline slowdown.
        r#""fault_density_max":2.0,"fsck_records_per_sec":1e4"#,
        // Missing fsck throughput.
        r#""fault_density_max":2.0,"recovery_slowdown_faults":1.4"#,
        // A recovery "speedup" under injected faults is a measurement bug.
        r#""fault_density_max":2.0,"recovery_slowdown_faults":0.5,"fsck_records_per_sec":1e4"#,
        // Zero fsck throughput means the dry-run replay never ran.
        r#""fault_density_max":2.0,"recovery_slowdown_faults":1.4,"fsck_records_per_sec":0.0"#,
        // Fractional density is nonsense.
        r#""fault_density_max":1.5,"recovery_slowdown_faults":1.4,"fsck_records_per_sec":1e4"#,
    ] {
        let text = format!(
            r#"{{"bench":"store_faults","smoke":true,"results":{rows},"metrics":{{{bad_metrics}}}}}"#
        );
        assert!(
            std::panic::catch_unwind(|| validate("BENCH_store_faults.json", &text)).is_err(),
            "must reject metrics: {bad_metrics}"
        );
    }
    // A density claimed but not measured (missing faults_2 row) fails.
    let short_rows = r#"[{"id":"store_faults/open/faults_0","median_ns":1.0,"iters_per_sec":2.0}]"#;
    let text = format!(
        r#"{{"bench":"store_faults","smoke":true,"results":{short_rows},"metrics":{{
            "fault_density_max":2.0,"recovery_slowdown_faults":1.4,
            "fsck_records_per_sec":1e4}}}}"#
    );
    assert!(
        std::panic::catch_unwind(|| validate("BENCH_store_faults.json", &text)).is_err(),
        "must reject a density axis without its result rows"
    );
}

#[test]
fn validator_enforces_guardrails_contract() {
    let row = r#"[{"id":"a","median_ns":1.0,"iters_per_sec":2.0}]"#;
    let ok = format!(
        r#"{{"bench":"guardrails","smoke":true,"results":{row},"metrics":{{
            "disabled_check_overhead_ratio":1.002,"checkpoints_per_pass":7.0,
            "cancel_latency_p99_ms":0.3}}}}"#
    );
    validate("BENCH_guardrails.json", &ok);
    for bad_metrics in [
        // Missing the headline overhead number.
        r#""checkpoints_per_pass":7.0,"cancel_latency_p99_ms":0.3"#,
        // Missing the checkpoint count.
        r#""disabled_check_overhead_ratio":1.002,"cancel_latency_p99_ms":0.3"#,
        // Missing cancellation latency.
        r#""disabled_check_overhead_ratio":1.002,"checkpoints_per_pass":7.0"#,
        // Overhead past the 5% budget.
        r#""disabled_check_overhead_ratio":1.2,"checkpoints_per_pass":7.0,"cancel_latency_p99_ms":0.3"#,
        // A "speedup" from adding checks is a measurement bug.
        r#""disabled_check_overhead_ratio":0.9,"checkpoints_per_pass":7.0,"cancel_latency_p99_ms":0.3"#,
        // A pass that never checkpointed measured nothing.
        r#""disabled_check_overhead_ratio":1.002,"checkpoints_per_pass":0.0,"cancel_latency_p99_ms":0.3"#,
        // Zero latency means the cancellation was never timed.
        r#""disabled_check_overhead_ratio":1.002,"checkpoints_per_pass":7.0,"cancel_latency_p99_ms":0.0"#,
    ] {
        let text = format!(
            r#"{{"bench":"guardrails","smoke":true,"results":{row},"metrics":{{{bad_metrics}}}}}"#
        );
        assert!(
            std::panic::catch_unwind(|| validate("BENCH_guardrails.json", &text)).is_err(),
            "must reject metrics: {bad_metrics}"
        );
    }
}

#[test]
fn validator_enforces_observability_contract() {
    let row = r#"[{"id":"a","median_ns":1.0,"iters_per_sec":2.0}]"#;
    let ok = format!(
        r#"{{"bench":"observability","smoke":true,"results":{row},"metrics":{{
            "disabled_overhead_ratio":1.001,"enabled_overhead_ratio":1.4,
            "events_per_sec":1000000.0}}}}"#
    );
    validate("BENCH_observability.json", &ok);
    for bad_metrics in [
        // Missing the headline disabled-overhead number.
        r#""enabled_overhead_ratio":1.4,"events_per_sec":1e6"#,
        // Missing the enabled ratio.
        r#""disabled_overhead_ratio":1.001,"events_per_sec":1e6"#,
        // Missing throughput.
        r#""disabled_overhead_ratio":1.001,"enabled_overhead_ratio":1.4"#,
        // Disabled overhead past the 5% budget.
        r#""disabled_overhead_ratio":1.2,"enabled_overhead_ratio":1.4,"events_per_sec":1e6"#,
        // A disabled "speedup" is a measurement bug, not a win.
        r#""disabled_overhead_ratio":0.8,"enabled_overhead_ratio":1.4,"events_per_sec":1e6"#,
        // Zero throughput.
        r#""disabled_overhead_ratio":1.001,"enabled_overhead_ratio":1.4,"events_per_sec":0.0"#,
    ] {
        let text = format!(
            r#"{{"bench":"observability","smoke":true,"results":{row},"metrics":{{{bad_metrics}}}}}"#
        );
        assert!(
            std::panic::catch_unwind(|| validate("BENCH_observability.json", &text)).is_err(),
            "must reject metrics: {bad_metrics}"
        );
    }
}
