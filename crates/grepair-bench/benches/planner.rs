//! Planner bench: what cardinality statistics buy the matcher.
//!
//! Two demonstrations:
//!
//! 1. **Cost-based vs greedy join order** on a skewed scale-rules
//!    workload — every variable carries the same node label (so the
//!    greedy candidate-count order is blind and falls back to
//!    declaration order), but one edge label is orders of magnitude
//!    rarer than the other. The cost model roots the join at the rare
//!    edge; the greedy order walks the dense one. Expected ≥1.3x (in
//!    practice several times that).
//! 2. **Plan-cache compile savings** on repeated-round repair — the
//!    engine's `RepairReport` counters show compiled plans vs cache
//!    hits across a cascade of fixpoint rounds.
//!
//! Both paths assert the optimized results are identical to the
//! baseline's before reporting any number.
//!
//! Set `GREPAIR_BENCH_SMOKE=1` for a small configuration (CI smoke);
//! smoke mode also writes `BENCH_planner.json` at the repo root.

use criterion::{criterion_group, BenchmarkId, Criterion};
use grepair_bench::cascade_rules_dsl;
use grepair_core::{parse_rules, EngineConfig, RepairEngine};
use grepair_graph::{Graph, Value};
use grepair_match::{MatchConfig, Matcher, Pattern, Planner};

fn smoke() -> bool {
    std::env::var_os("GREPAIR_BENCH_SMOKE").is_some()
}

fn fixture_nodes() -> usize {
    if smoke() {
        2_000
    } else {
        10_000
    }
}

/// Skewed workload: one node label `P` for everything (candidate counts
/// carry no signal), a dense `follows` ring (5 out-edges per node) and a
/// sparse `banned` relation (~n/200 edges). Join-order quality is decided
/// entirely by edge-label statistics.
fn skewed_graph(n: usize) -> Graph {
    let mut g = Graph::new();
    let p = g.label("P");
    let follows = g.label("follows");
    let banned = g.label("banned");
    let nodes: Vec<_> = (0..n).map(|_| g.add_node(p)).collect();
    for i in 0..n {
        for j in 1..=5 {
            g.add_edge(nodes[i], nodes[(i + j) % n], follows).unwrap();
        }
    }
    for k in 0..(n / 200).max(1) {
        g.add_edge(nodes[(k * 7) % n], nodes[(k * 7 + 3) % n], banned)
            .unwrap();
    }
    g
}

/// `(a:P)-[follows]->(b:P)-[banned]->(c:P)` — the greedy order roots at
/// `a` (declaration order, all labels tie) and enumerates the dense
/// `follows` fan-out; the cost model roots at the `banned` endpoints.
fn skewed_pattern() -> Pattern {
    let mut b = Pattern::builder();
    let a = b.node("a", Some("P"));
    let bb = b.node("b", Some("P"));
    let c = b.node("c", Some("P"));
    b.edge(a, bb, "follows");
    b.edge(bb, c, "banned");
    b.build().unwrap()
}

fn bench_planner(c: &mut Criterion) {
    let g = skewed_graph(fixture_nodes());
    let pattern = skewed_pattern();
    let planner = Planner::new();
    planner.refresh_stats(&g);

    let mut group = c.benchmark_group("planner");
    group.sample_size(if smoke() { 2 } else { 10 });
    group.bench_with_input(BenchmarkId::new("find_all", "greedy"), &g, |b, g| {
        let m = Matcher::new(g);
        b.iter(|| m.find_all(&pattern).len())
    });
    group.bench_with_input(BenchmarkId::new("find_all", "cost-based"), &g, |b, g| {
        let m = Matcher::with_planner(g, MatchConfig::default(), &planner);
        b.iter(|| m.find_all(&pattern).len())
    });
    group.finish();
}

fn speedup_summary() {
    let g = skewed_graph(fixture_nodes());
    let pattern = skewed_pattern();
    let planner = Planner::new();
    planner.refresh_stats(&g);
    let greedy_matcher = Matcher::new(&g);
    let cost_matcher = Matcher::with_planner(&g, MatchConfig::default(), &planner);

    // The plans must enumerate the exact same match set, or the speedup
    // is measuring a bug.
    let sort_key = |mut ms: Vec<grepair_match::Match>| {
        ms.sort_by(|x, y| x.nodes.cmp(&y.nodes));
        ms
    };
    assert_eq!(
        sort_key(greedy_matcher.find_all(&pattern)),
        sort_key(cost_matcher.find_all(&pattern)),
        "cost-based plan diverged from greedy plan"
    );

    let samples = if smoke() { 5 } else { 9 };
    let greedy = criterion::median_time(samples, || greedy_matcher.find_all(&pattern).len());
    let cost = criterion::median_time(samples, || cost_matcher.find_all(&pattern).len());
    let speedup = greedy.as_secs_f64() / cost.as_secs_f64().max(1e-12);
    println!(
        "\nplanner summary ({} nodes): greedy {greedy:?} / cost-based {cost:?} = {speedup:.2}x",
        fixture_nodes()
    );
    criterion::record_metric("speedup_cost_vs_greedy", speedup);
    // The structural effect on this workload is ~10x, so the 1.3x floor
    // has enormous headroom even on noisy CI runners (median-of-N both
    // sides).
    assert!(
        speedup >= 1.3,
        "cost-based plan must beat the greedy plan by ≥1.3x on the skewed workload, got {speedup:.2}x"
    );
}

/// Repeated-round repair: the plan cache must absorb the per-repair and
/// per-round compiles the engine used to pay.
fn compile_savings_summary() {
    let stages = 4;
    let nodes = if smoke() { 50 } else { 500 };
    let rules = parse_rules(&cascade_rules_dsl(stages)).unwrap();
    let mk = || {
        let mut g = Graph::new();
        let a0 = g.attr_key("a0");
        for _ in 0..nodes {
            let n = g.add_node_named("T");
            g.set_attr(n, a0, Value::Bool(true)).unwrap();
        }
        g
    };

    let mut g = mk();
    let report = RepairEngine::default().repair(&mut g, &rules);
    assert!(report.converged);
    assert_eq!(report.repairs_applied, stages * nodes);
    println!(
        "repeated-round repair ({} repairs, incremental): {} plans compiled, {} cache hits",
        report.repairs_applied, report.pattern_compiles, report.plan_cache_hits
    );
    criterion::record_metric("incremental_pattern_compiles", report.pattern_compiles as f64);
    criterion::record_metric("incremental_plan_cache_hits", report.plan_cache_hits as f64);
    assert!(
        report.plan_cache_hits > report.pattern_compiles,
        "per-repair re-matching must mostly hit the plan cache \
         (compiles {}, hits {})",
        report.pattern_compiles,
        report.plan_cache_hits
    );

    let mut g = mk();
    let report = RepairEngine::new(EngineConfig::naive_with_indexes()).repair(&mut g, &rules);
    assert!(report.converged);
    println!(
        "repeated-round repair ({} rounds, naive+indexes): {} plans compiled, {} cache hits",
        report.rounds, report.pattern_compiles, report.plan_cache_hits
    );
    criterion::record_metric("naive_pattern_compiles", report.pattern_compiles as f64);
    criterion::record_metric("naive_plan_cache_hits", report.plan_cache_hits as f64);
}

criterion_group!(benches, bench_planner);

fn main() {
    benches();
    speedup_summary();
    compile_savings_summary();
    criterion::write_results_json(env!("CARGO_CRATE_NAME"));
}
