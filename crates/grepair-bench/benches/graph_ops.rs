//! Microbenchmarks of the storage substrate: mutations, index lookups,
//! and graph edit distance.

use criterion::{criterion_group, criterion_main, Criterion};
use grepair_bench::clean_kg_fixture;
use grepair_graph::{graph_edit_distance, EditCosts, Graph, Value};

fn bench_graph_ops(c: &mut Criterion) {
    let mut group = c.benchmark_group("graph_ops");

    group.bench_function("add_edge_remove_edge", |b| {
        let mut g = clean_kg_fixture(1_000);
        let nodes: Vec<_> = g.nodes().take(64).collect();
        let rel = g.label("benchRel");
        let mut i = 0usize;
        b.iter(|| {
            let s = nodes[i % nodes.len()];
            let d = nodes[(i * 7 + 1) % nodes.len()];
            i += 1;
            let e = g.add_edge(s, d, rel).unwrap();
            g.remove_edge(e).unwrap();
        })
    });

    group.bench_function("set_attr_indexed", |b| {
        let mut g = clean_kg_fixture(1_000);
        let nodes: Vec<_> = g.nodes().take(64).collect();
        let k = g.attr_key("benchAttr");
        let mut i = 0i64;
        b.iter(|| {
            let n = nodes[(i as usize) % nodes.len()];
            i += 1;
            g.set_attr(n, k, Value::Int(i % 16)).unwrap();
        })
    });

    group.bench_function("attr_index_lookup", |b| {
        let g = clean_kg_fixture(5_000);
        let ssn = g.try_attr_key("ssn").unwrap();
        let mut i = 0i64;
        b.iter(|| {
            i += 1;
            g.nodes_with_attr(ssn, &Value::Int(i % 5_000)).len()
        })
    });

    group.bench_function("ged_small", |b| {
        let mut a = Graph::new();
        let mut bb = Graph::new();
        for i in 0..5 {
            let n1 = a.add_node_named(if i % 2 == 0 { "P" } else { "Q" });
            let n2 = bb.add_node_named("P");
            if i > 0 {
                a.add_edge_named(n1, grepair_graph::NodeId(0), "r").unwrap();
                bb.add_edge_named(n2, grepair_graph::NodeId(0), "s").unwrap();
            }
        }
        b.iter(|| graph_edit_distance(&a, &bb, &EditCosts::unit(), 8))
    });

    group.finish();
}

criterion_group!(benches, bench_graph_ops);
criterion_main!(benches);
