//! Rule-analysis bench: what static analysis costs and what stratified
//! scheduling buys.
//!
//! Two measurements:
//!
//! 1. **Lint/analysis latency vs rule-set size** — the full lint pass
//!    (trigger graph, conflicts, implications, effectiveness,
//!    satisfiability, hygiene) over the gold catalog plus 10–80
//!    synthetic rules, the same sizes the F4 `scale_rules` sweep uses.
//!    Linting is a pre-flight step, so its cost must stay far below a
//!    repair run's.
//! 2. **Stratified vs worklist scheduling** on a cascade chain whose
//!    trigger graph is acyclic — the exact shape the analysis proves
//!    terminating. Both engines must reach the identical fixpoint
//!    before any number is reported; the speedup ratio lands in the
//!    `metrics{}` map.
//!
//! Set `GREPAIR_BENCH_SMOKE=1` for a small configuration (CI smoke);
//! smoke mode also writes `BENCH_rule_analysis.json` at the repo root.

use criterion::{criterion_group, BenchmarkId, Criterion};
use grepair_bench::cascade_rules_dsl;
use grepair_core::{
    lint_rules, parse_rules, set_fingerprint, stratify, trigger_graph, EngineConfig, LintPolicy,
    RepairEngine,
};
use grepair_gen::{gold_kg_rules, synthetic_rules};
use grepair_graph::{Graph, Value};

fn smoke() -> bool {
    std::env::var_os("GREPAIR_BENCH_SMOKE").is_some()
}

fn bench_lint_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("rule_analysis");
    group.sample_size(if smoke() { 10 } else { 30 });
    for n in [10usize, 20, 40, 80] {
        let mut rules = gold_kg_rules().rules;
        rules.extend(synthetic_rules(n).rules);
        // No spans: the fixture is synthetic, findings just carry rule
        // names. Span lookup is O(rules) either way.
        group.bench_with_input(BenchmarkId::new("lint", n + 10), &rules, |b, rules| {
            b.iter(|| lint_rules(rules, &[], &LintPolicy::default()))
        });
        group.bench_with_input(
            BenchmarkId::new("schedule", n + 10),
            &rules,
            |b, rules| b.iter(|| (set_fingerprint(rules), stratify(&trigger_graph(rules)))),
        );
    }
    group.finish();
}

/// Cascade fixture: `nodes` T-nodes carrying `a0`, repaired through a
/// `stages`-deep attribute chain — `stages * nodes` repairs either way.
fn cascade_fixture(stages: usize, nodes: usize) -> (Vec<grepair_core::Grr>, Graph) {
    let rules = parse_rules(&cascade_rules_dsl(stages)).expect("cascade DSL parses");
    let mut g = Graph::new();
    let a0 = g.attr_key("a0");
    let t = g.label("T");
    for _ in 0..nodes {
        let n = g.add_node(t);
        g.set_attr(n, a0, Value::Bool(true)).unwrap();
    }
    (rules, g)
}

fn stratified_speedup_summary() {
    let (stages, nodes) = if smoke() { (6, 400) } else { (10, 2_000) };
    let (rules, base) = cascade_fixture(stages, nodes);

    // Warm the schedule cache so the measurement below is scheduling
    // cost, not one-off analysis cost (the engine caches per
    // fingerprint, exactly as production runs do).
    let mut warm = base.clone();
    let strat_report = RepairEngine::default().repair(&mut warm, &rules);
    assert_eq!(strat_report.strata, stages, "cascade must stratify");
    assert!(strat_report.converged);
    assert_eq!(strat_report.repairs_applied, stages * nodes);

    let samples = if smoke() { 3 } else { 10 };
    let mut strat_doc = None;
    let strat_t = criterion::median_time(samples, || {
        let mut g = base.clone();
        RepairEngine::default().repair(&mut g, &rules);
        strat_doc = Some(g.to_doc());
    });
    let mut work_doc = None;
    let work_t = criterion::median_time(samples, || {
        let mut g = base.clone();
        RepairEngine::new(EngineConfig {
            stratify: false,
            ..EngineConfig::default()
        })
        .repair(&mut g, &rules);
        work_doc = Some(g.to_doc());
    });
    assert_eq!(strat_doc, work_doc, "schedulers must agree before timing counts");

    let speedup = work_t.as_secs_f64() / strat_t.as_secs_f64().max(1e-12);
    println!(
        "cascade {stages}x{nodes}: stratified {:?}, worklist {:?} ({speedup:.2}x)",
        strat_t, work_t
    );
    criterion::record_metric("cascade_stages", stages as f64);
    criterion::record_metric("cascade_nodes", nodes as f64);
    criterion::record_metric("stratified_ns", strat_t.as_nanos() as f64);
    criterion::record_metric("worklist_ns", work_t.as_nanos() as f64);
    criterion::record_metric("stratified_speedup", speedup);
}

criterion_group!(benches, bench_lint_scaling);

fn main() {
    benches();
    stratified_speedup_summary();
    criterion::write_results_json(env!("CARGO_CRATE_NAME"));
}
