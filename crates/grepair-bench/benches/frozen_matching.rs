//! Frozen-snapshot matching bench: full multi-rule scans over the live
//! [`grepair_graph::Graph`] vs a [`grepair_graph::FrozenGraph`] CSR
//! snapshot, plus the freeze cost itself.
//!
//! Prints an explicit live/frozen speedup summary after the criterion
//! groups. Expect a speedup on label-filtered scans at scale; on tiny
//! graphs parity (or a small loss, from the freeze pass) is acceptable —
//! the snapshot exists for the scan-heavy regime.
//!
//! Set `GREPAIR_BENCH_SMOKE=1` to run a minimal configuration (small
//! fixture, minimum samples) so CI can exercise the whole bench path in
//! seconds.

use criterion::{criterion_group, BenchmarkId, Criterion};
use grepair_bench::dirty_kg_fixture;
use grepair_core::RuleSet;
use grepair_gen::gold_kg_rules;
use grepair_graph::{FrozenGraph, Graph};
use grepair_match::Matcher;

fn smoke() -> bool {
    std::env::var_os("GREPAIR_BENCH_SMOKE").is_some()
}

fn fixture_persons() -> usize {
    if smoke() {
        300
    } else {
        10_000
    }
}

fn scan_live(g: &Graph, rules: &RuleSet) -> usize {
    let m = Matcher::new(g);
    rules
        .rules
        .iter()
        .map(|r| m.find_all(&r.pattern).len())
        .sum()
}

fn scan_frozen(f: &FrozenGraph, rules: &RuleSet) -> usize {
    let m = Matcher::new(f);
    rules
        .rules
        .iter()
        .map(|r| m.find_all(&r.pattern).len())
        .sum()
}

fn bench_frozen_matching(c: &mut Criterion) {
    let g = dirty_kg_fixture(fixture_persons());
    let frozen = FrozenGraph::freeze(&g);
    let rules = gold_kg_rules();
    let mut group = c.benchmark_group("frozen_matching");
    group.sample_size(if smoke() { 2 } else { 10 });

    group.bench_with_input(BenchmarkId::new("find_all", "live"), &g, |b, g| {
        b.iter(|| scan_live(g, &rules))
    });
    group.bench_with_input(
        BenchmarkId::new("find_all", "frozen"),
        &frozen,
        |b, f| b.iter(|| scan_frozen(f, &rules)),
    );
    // Amortization reference: what one snapshot rebuild costs.
    group.bench_with_input(BenchmarkId::new("freeze", "build"), &g, |b, g| {
        b.iter(|| FrozenGraph::freeze(g))
    });
    group.finish();
}

fn speedup_summary() {
    let g = dirty_kg_fixture(fixture_persons());
    let rules = gold_kg_rules();
    let samples = if smoke() { 1 } else { 9 };

    let frozen = FrozenGraph::freeze(&g);
    let live = criterion::median_time(samples, || scan_live(&g, &rules));
    let warm = criterion::median_time(samples, || scan_frozen(&frozen, &rules));
    let freeze = criterion::median_time(samples, || FrozenGraph::freeze(&g));
    let cold = criterion::median_time(samples, || scan_frozen(&FrozenGraph::freeze(&g), &rules));

    // Matching over the snapshot must find exactly what the live scan
    // finds — a bench that silently diverged would be measuring nothing.
    assert_eq!(scan_live(&g, &rules), scan_frozen(&frozen, &rules));

    let warm_speedup = live.as_secs_f64() / warm.as_secs_f64().max(1e-12);
    let cold_speedup = live.as_secs_f64() / cold.as_secs_f64().max(1e-12);
    println!(
        "\nfrozen-vs-live summary ({} persons): live {live:?} / frozen {warm:?} = {warm_speedup:.2}x \
         (freeze pass {freeze:?}; freeze+scan {cold:?} = {cold_speedup:.2}x)",
        fixture_persons(),
    );
    criterion::record_metric("speedup_frozen_warm", warm_speedup);
    criterion::record_metric("speedup_frozen_cold", cold_speedup);
}

criterion_group!(benches, bench_frozen_matching);

fn main() {
    benches();
    speedup_summary();
    criterion::write_results_json(env!("CARGO_CRATE_NAME"));
}
