//! Fault-path benchmarks for the durable store: recovery latency as a
//! function of fault density (damaged snapshots recovery must skip plus
//! a torn tail it must truncate), degraded read-only open on a store a
//! writable open refuses, and `fsck` throughput on clean and damaged
//! directories.
//!
//! Set `GREPAIR_BENCH_SMOKE=1` for a minimal configuration so CI can
//! exercise the whole path in seconds; smoke mode also writes
//! `BENCH_store_faults.json` at the repo root.

use criterion::{criterion_group, BenchmarkId, Criterion};
use grepair_bench::dirty_kg_fixture;
use grepair_core::{RepairEngine, RuleSet};
use grepair_gen::gold_kg_rules;
use grepair_graph::Value;
use grepair_store::{fsck, DurableGraph, ReadOnlyStore, StoreConfig};
use std::path::{Path, PathBuf};

/// Snapshots to keep, and therefore the deepest snapshot-fallback chain
/// recovery can be asked to walk: densities 0..=FAULT_DENSITY_MAX.
const FAULT_DENSITY_MAX: usize = 2;

fn smoke() -> bool {
    std::env::var_os("GREPAIR_BENCH_SMOKE").is_some()
}

fn fixture_persons() -> usize {
    if smoke() {
        300
    } else {
        5_000
    }
}

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "grepair-bench-faults-{tag}-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn config() -> StoreConfig {
    StoreConfig {
        // One snapshot per compaction below; keeping density_max + 1
        // lets recovery fall back across density_max damaged ones.
        keep_snapshots: FAULT_DENSITY_MAX + 1,
        ..StoreConfig::default()
    }
}

/// Build a store whose history spans several snapshots with live log
/// segments between them: import, repair, and attribute churn, each
/// phase sealed by a compaction, plus a committed tail after the last
/// snapshot. Damaging the newest k snapshots then forces recovery to
/// fall back k times and replay the intervening segments.
fn build_store(tag: &str) -> (PathBuf, u64) {
    let dir = tmpdir(tag);
    let g = dirty_kg_fixture(fixture_persons());
    let doc = g.to_doc();
    let mut store = DurableGraph::create(&dir, config()).unwrap();
    let mut ids = Vec::with_capacity(doc.nodes.len());
    for n in &doc.nodes {
        let attrs: Vec<_> = n.attrs.iter().map(|(k, v)| (k.clone(), v.clone())).collect();
        ids.push(store.add_node_with_attrs(&n.label, &attrs).unwrap());
    }
    for e in &doc.edges {
        store
            .add_edge(ids[e.src as usize], ids[e.dst as usize], &e.label)
            .unwrap();
    }
    store.commit().unwrap();
    store.compact().unwrap(); // snapshot 1: the imported graph

    let rules: RuleSet = gold_kg_rules();
    store.repair(&RepairEngine::default(), &rules.rules).unwrap();
    store.compact().unwrap(); // snapshot 2: repairs journaled between 1 and 2

    let churn = ids.len() / 10;
    for (i, id) in ids.iter().take(churn).enumerate() {
        store.set_attr(*id, "audited", Value::Int(i as i64)).unwrap();
    }
    store.commit().unwrap();
    store.compact().unwrap(); // snapshot 3: churn journaled between 2 and 3

    for (i, id) in ids.iter().take(churn).enumerate() {
        store.set_attr(*id, "rechecked", Value::Int(i as i64)).unwrap();
    }
    store.commit().unwrap(); // committed tail after the newest snapshot
    let records = store.last_seq();
    (dir, records)
}

fn copy_store(src: &Path, tag: &str) -> PathBuf {
    let dst = tmpdir(tag);
    std::fs::create_dir_all(&dst).unwrap();
    for entry in std::fs::read_dir(src).unwrap() {
        let entry = entry.unwrap();
        std::fs::copy(entry.path(), dst.join(entry.file_name())).unwrap();
    }
    dst
}

/// Append a torn half-record to the active segment.
fn tear_tail(dir: &Path) {
    use std::io::Write as _;
    let (_, seg) = grepair_store::wal::list_segments(dir).unwrap().pop().unwrap();
    let mut f = std::fs::OpenOptions::new().append(true).open(seg).unwrap();
    f.write_all(&[0xC4; 21]).unwrap();
}

/// Corrupt the newest `count` snapshots (one flipped payload byte each)
/// so recovery must skip them and fall back.
fn damage_snapshots(dir: &Path, count: usize) {
    let snaps = grepair_store::snapshot::list_snapshots(dir).unwrap();
    assert!(snaps.len() > count, "need a loadable snapshot to fall back to");
    for (_, path) in snaps.iter().rev().take(count) {
        let mut bytes = std::fs::read(path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        std::fs::write(path, bytes).unwrap();
    }
}

/// Mid-log damage on the active segment: flip a byte in the first frame
/// and re-append the original frames so CRC-valid records follow the
/// damage point. A writable open refuses this (truncating would drop
/// committed records); only the degraded read-only open can serve it.
fn damage_mid_log(dir: &Path) {
    let (_, seg) = grepair_store::wal::list_segments(dir).unwrap().pop().unwrap();
    let clean = std::fs::read(&seg).unwrap();
    let header = grepair_store::wal::SEGMENT_HEADER_LEN as usize;
    let mut bytes = clean.clone();
    bytes[header + 10] ^= 0xFF;
    bytes.extend_from_slice(&clean[header..]);
    std::fs::write(&seg, bytes).unwrap();
}

fn open_with_faults(dir: &Path, density: usize) -> DurableGraph {
    let s = DurableGraph::open(dir, config()).unwrap();
    let r = s.last_recovery();
    assert_eq!(r.snapshots_skipped, density, "fault density drifted");
    assert!(r.torn_tail_bytes > 0, "torn tail healed away");
    s
}

fn bench_store_faults(c: &mut Criterion) {
    let (clean_dir, records) = build_store("fixture");

    // One copy per fault density: newest `k` snapshots flipped, tail
    // torn. Recovery heals the tail (truncates it), so each iteration
    // re-tears before opening, like store_recovery's crash bench.
    let faulted: Vec<PathBuf> = (0..=FAULT_DENSITY_MAX)
        .map(|k| {
            let d = copy_store(&clean_dir, &format!("density{k}"));
            damage_snapshots(&d, k);
            tear_tail(&d);
            d
        })
        .collect();
    let midlog = {
        let d = copy_store(&clean_dir, "midlog");
        damage_mid_log(&d);
        d
    };
    // The degraded store must refuse a writable open and serve read-only.
    assert!(DurableGraph::open(&midlog, config()).is_err());
    assert!(ReadOnlyStore::open(&midlog).unwrap().degraded());

    let mut group = c.benchmark_group("store_faults");
    group.sample_size(if smoke() { 2 } else { 10 });
    for (k, dir) in faulted.iter().enumerate() {
        group.bench_with_input(
            BenchmarkId::new("open", format!("faults_{k}")),
            dir,
            |b, d| {
                b.iter(|| {
                    tear_tail(d);
                    open_with_faults(d, k).last_seq()
                })
            },
        );
    }
    group.bench_with_input(
        BenchmarkId::new("open_read_only", "midlog"),
        &midlog,
        |b, d| b.iter(|| ReadOnlyStore::open(d).unwrap().last_seq()),
    );
    group.bench_with_input(BenchmarkId::new("fsck", "clean"), &clean_dir, |b, d| {
        b.iter(|| fsck(d).unwrap().last_seq)
    });
    group.bench_with_input(
        BenchmarkId::new("fsck", "damaged"),
        faulted.last().unwrap(),
        |b, d| {
            b.iter(|| {
                tear_tail(d);
                fsck(d).unwrap().last_seq
            })
        },
    );
    group.finish();

    summary(&clean_dir, &faulted, records);
    std::fs::remove_dir_all(&clean_dir).ok();
    for d in &faulted {
        std::fs::remove_dir_all(d).ok();
    }
    std::fs::remove_dir_all(&midlog).ok();
}

fn summary(clean_dir: &Path, faulted: &[PathBuf], records: u64) {
    let samples = if smoke() { 1 } else { 7 };

    // All fault densities must recover the same graph.
    let nodes = DurableGraph::open(clean_dir, config()).unwrap().graph().num_nodes();
    for (k, d) in faulted.iter().enumerate() {
        tear_tail(d);
        assert_eq!(open_with_faults(d, k).graph().num_nodes(), nodes);
    }

    let open_at = |k: usize| {
        criterion::median_time(samples, || {
            tear_tail(&faulted[k]);
            open_with_faults(&faulted[k], k).last_seq()
        })
    };
    let base = open_at(0);
    let worst = open_at(FAULT_DENSITY_MAX);
    let slowdown = worst.as_secs_f64() / base.as_secs_f64().max(1e-12);

    let report = fsck(clean_dir).unwrap();
    let fsck_time = criterion::median_time(samples, || fsck(clean_dir).unwrap().last_seq);
    let fsck_records_per_sec =
        report.records_replayable as f64 / fsck_time.as_secs_f64().max(1e-12);

    criterion::record_metric("fault_density_max", FAULT_DENSITY_MAX as f64);
    criterion::record_metric("recovery_slowdown_faults", slowdown);
    criterion::record_metric("fsck_records_per_sec", fsck_records_per_sec);

    println!(
        "\nstore-faults summary ({} persons, {nodes} live nodes, {records} log records):\n\
         \x20 open with 0 faults {base:?}\n\
         \x20 open with {FAULT_DENSITY_MAX} damaged snapshots + torn tail {worst:?} \
         ({slowdown:.2}x the clean open)\n\
         \x20 fsck {fsck_time:?} = {fsck_records_per_sec:.0} records/s dry-run replay",
        fixture_persons(),
    );
}

criterion_group!(benches, bench_store_faults);

fn main() {
    benches();
    criterion::write_results_json(env!("CARGO_CRATE_NAME"));
}
