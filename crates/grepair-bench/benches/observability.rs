//! Observability overhead bench: what the telemetry layer costs on the
//! matching hot path with tracing **disabled** (the default — must stay
//! under 5%), what it costs **enabled** (spans + timing histograms +
//! per-pass drain), and how fast the span pipeline itself runs.
//!
//! The disabled overhead is *computed*, not differenced: the per-site
//! cost of a disabled `span()` + `timer()` + `record_since_named()`
//! probe is measured in a tight loop, multiplied by the number of
//! instrumentation sites a matching pass crosses, and compared to the
//! pass time. Differencing two multi-millisecond medians on a shared
//! 1-core CI host would drown a sub-microsecond effect in scheduler
//! noise; the computed ratio is stable and strictly *over*-estimates
//! (the denominator still contains the overhead it is accused of).
//!
//! Set `GREPAIR_BENCH_SMOKE=1` for the CI configuration; the results
//! land in `BENCH_observability.json` (`disabled_overhead_ratio`,
//! `enabled_overhead_ratio`, `events_per_sec`), schema-checked by the
//! `bench_json` test.

use criterion::{criterion_group, Criterion};
use grepair_bench::dirty_kg_fixture;
use grepair_core::RuleSet;
use grepair_gen::gold_kg_rules;
use grepair_graph::Graph;
use grepair_match::Matcher;
use grepair_obs as obs;

fn smoke() -> bool {
    std::env::var_os("GREPAIR_BENCH_SMOKE").is_some()
}

fn fixture_persons() -> usize {
    if smoke() {
        300
    } else {
        5_000
    }
}

/// The matching hot path: a full multi-rule scan.
fn scan(g: &Graph, rules: &RuleSet) -> usize {
    let m = Matcher::new(g);
    rules
        .rules
        .iter()
        .map(|r| m.find_all(&r.pattern).len())
        .sum()
}

/// One disabled instrumentation site: the exact span + timer +
/// histogram-record sequence `find_all` executes per call.
#[inline]
fn probe_site() {
    let _span = obs::span("bench.probe", "bench");
    let started = obs::timer();
    obs::record_since_named("bench.probe_ns", started);
}

const PROBE_BATCH: usize = 10_000;

fn bench_observability(c: &mut Criterion) {
    let g = dirty_kg_fixture(fixture_persons());
    let rules = gold_kg_rules();
    let mut group = c.benchmark_group("observability");
    group.sample_size(if smoke() { 2 } else { 10 });

    obs::set_tracing(false);
    group.bench_function("scan_disabled", |b| b.iter(|| scan(&g, &rules)));

    obs::set_tracing(true);
    group.bench_function("scan_enabled_drained", |b| {
        b.iter(|| {
            let n = scan(&g, &rules);
            obs::take_events(); // draining is part of the enabled story
            n
        })
    });
    obs::set_tracing(false);
    obs::take_events();

    group.bench_function("disabled_probe_batch", |b| {
        b.iter(|| {
            for _ in 0..PROBE_BATCH {
                probe_site();
            }
        })
    });
    group.finish();
}

fn overhead_summary() {
    let g = dirty_kg_fixture(fixture_persons());
    let rules = gold_kg_rules();
    let samples = if smoke() { 3 } else { 9 };

    obs::set_tracing(false);
    obs::take_events();
    let disabled = criterion::median_time(samples, || scan(&g, &rules));
    let probe = criterion::median_time(samples, || {
        for _ in 0..PROBE_BATCH {
            probe_site();
        }
    });
    let site_ns = probe.as_secs_f64() * 1e9 / PROBE_BATCH as f64;

    // Sites per pass on the matching hot path: one span + timer +
    // histogram record per `find_all` (one per rule).
    let sites = rules.rules.len() as f64;
    let pass_ns = disabled.as_secs_f64() * 1e9;
    let disabled_overhead_ratio = 1.0 + sites * site_ns / pass_ns.max(1.0);

    obs::set_tracing(true);
    let enabled = criterion::median_time(samples, || {
        let n = scan(&g, &rules);
        obs::take_events();
        n
    });
    obs::set_tracing(false);
    obs::take_events();
    let enabled_overhead_ratio = enabled.as_secs_f64() / disabled.as_secs_f64().max(1e-12);

    // Span pipeline throughput: emit in batches under the buffer cap,
    // drain between batches (emit + collect, the full event lifecycle).
    const BATCHES: usize = 20;
    const PER_BATCH: usize = 2_000; // MAX_EVENTS is 4096 — never drop
    obs::set_tracing(true);
    let span_time = criterion::median_time(samples, || {
        let mut drained = 0usize;
        for _ in 0..BATCHES {
            for _ in 0..PER_BATCH {
                let _span = obs::span("bench.event", "bench");
            }
            drained += obs::take_events().len();
        }
        assert_eq!(drained, BATCHES * PER_BATCH, "span buffer dropped events");
        drained
    });
    obs::set_tracing(false);
    obs::take_events();
    let events_per_sec = (BATCHES * PER_BATCH) as f64 / span_time.as_secs_f64().max(1e-12);

    println!(
        "\nobservability summary ({} persons): disabled pass {disabled:?}, \
         {site_ns:.1}ns/site x {sites} sites = {:.4}x; enabled pass {enabled:?} \
         = {enabled_overhead_ratio:.2}x; {events_per_sec:.0} events/s",
        fixture_persons(),
        disabled_overhead_ratio,
    );
    criterion::record_metric("disabled_overhead_ratio", disabled_overhead_ratio);
    criterion::record_metric("disabled_site_ns", site_ns);
    criterion::record_metric("enabled_overhead_ratio", enabled_overhead_ratio);
    criterion::record_metric("events_per_sec", events_per_sec);
}

criterion_group!(benches, bench_observability);

fn main() {
    benches();
    overhead_summary();
    criterion::write_results_json(env!("CARGO_CRATE_NAME"));
}
