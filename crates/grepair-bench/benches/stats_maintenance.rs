//! Always-warm planning bench: what write-path statistics maintenance
//! and a reused planner cost and buy.
//!
//! Two demonstrations:
//!
//! 1. **Mutation overhead of maintained statistics** — the same
//!    mixed mutation workload (node/edge inserts, attribute churn,
//!    relabels, removals) with [`Graph::maintain_stats`] off vs. on.
//!    Maintenance is a handful of counter-map updates per mutation; the
//!    bench asserts the overhead stays **below 2x** and that the
//!    maintained snapshot equals a full recompute afterwards.
//!
//! 2. **Repair-loop latency, cold vs. reused planner** — N repair runs
//!    over an attribute-cascade fixture (SetAttr-only repairs keep
//!    node/edge counts still, so statistics never drift): a fresh
//!    `Planner` per run (the pre-PR behaviour) vs. one caller-owned
//!    planner reused across runs. The bench asserts the reused planner's
//!    second run has **plan-cache hits > compiles** (compiles are in
//!    fact zero) and records the latency ratio.
//!
//! Set `GREPAIR_BENCH_SMOKE=1` for a small configuration (CI smoke);
//! smoke mode also writes `BENCH_stats_maintenance.json` at the repo
//! root.

use criterion::{criterion_group, BenchmarkId, Criterion};
use grepair_bench::cascade_rules_dsl;
use grepair_core::{parse_rules, Planner, RepairEngine};
use grepair_graph::{CardinalityStats, Graph, Value};

fn smoke() -> bool {
    std::env::var_os("GREPAIR_BENCH_SMOKE").is_some()
}

fn workload_nodes() -> usize {
    if smoke() {
        2_000
    } else {
        20_000
    }
}

/// Mixed mutation workload: build a labelled graph with attributes,
/// churn some attributes, relabel a slice, delete a slice — every kind
/// of delta the maintained statistics must track.
fn run_mutations(g: &mut Graph, n: usize) {
    let labels: Vec<_> = (0..8).map(|i| g.label(&format!("L{i}"))).collect();
    let rel: Vec<_> = (0..4).map(|i| g.label(&format!("r{i}"))).collect();
    let keys: Vec<_> = (0..3).map(|i| g.attr_key(&format!("k{i}"))).collect();
    let mut nodes = Vec::with_capacity(n);
    for i in 0..n {
        let node = g.add_node(labels[i % labels.len()]);
        g.set_attr(node, keys[i % keys.len()], Value::Int((i % 97) as i64))
            .unwrap();
        nodes.push(node);
    }
    for i in 0..n {
        g.add_edge(nodes[i], nodes[(i * 7 + 1) % n], rel[i % rel.len()])
            .unwrap();
    }
    for i in (0..n).step_by(5) {
        g.set_attr(nodes[i], keys[0], Value::Int((i % 13) as i64))
            .unwrap();
    }
    for i in (0..n).step_by(9) {
        g.set_node_label(nodes[i], labels[(i + 3) % labels.len()])
            .unwrap();
    }
    for i in (0..n).step_by(17) {
        g.remove_node(nodes[i]).unwrap();
    }
}

fn bench_mutations(c: &mut Criterion) {
    let n = workload_nodes();
    let mut group = c.benchmark_group("stats_maintenance");
    group.sample_size(if smoke() { 2 } else { 10 });
    group.bench_with_input(BenchmarkId::new("mutations", "no-stats"), &n, |b, &n| {
        b.iter(|| {
            let mut g = Graph::new();
            run_mutations(&mut g, n);
            g.num_edges()
        })
    });
    group.bench_with_input(BenchmarkId::new("mutations", "maintained"), &n, |b, &n| {
        b.iter(|| {
            let mut g = Graph::new();
            g.maintain_stats(true);
            run_mutations(&mut g, n);
            g.num_edges()
        })
    });
    group.finish();
}

fn overhead_summary() {
    let n = workload_nodes();
    let samples = if smoke() { 3 } else { 7 };
    let plain = criterion::median_time(samples, || {
        let mut g = Graph::new();
        run_mutations(&mut g, n);
        g.num_edges()
    });
    let maintained = criterion::median_time(samples, || {
        let mut g = Graph::new();
        g.maintain_stats(true);
        run_mutations(&mut g, n);
        g.num_edges()
    });
    // Differential sanity before reporting any number.
    let mut g = Graph::new();
    g.maintain_stats(true);
    run_mutations(&mut g, n);
    assert_eq!(
        g.maintained_stats().unwrap(),
        &CardinalityStats::compute(&g),
        "maintained statistics must equal a full recompute"
    );
    let overhead = maintained.as_secs_f64() / plain.as_secs_f64().max(1e-12);
    println!(
        "\nstats maintenance ({n} nodes): plain {plain:?} / maintained {maintained:?} = {overhead:.2}x overhead"
    );
    criterion::record_metric("maintained_mutation_overhead", overhead);
    assert!(
        overhead < 2.0,
        "maintained-stats mutation overhead must stay below 2x, got {overhead:.2}x"
    );
}

/// Repair-loop latency: R runs with a cold planner per run vs. one
/// reused planner. The cascade fixture's repairs are SetAttr-only, so
/// node/edge counts never drift and warmed plans stay valid run to run.
fn planner_reuse_summary() {
    let stages = 4;
    let nodes = if smoke() { 100 } else { 1_000 };
    let runs = 5;
    let rules = parse_rules(&cascade_rules_dsl(stages)).unwrap();
    let engine = RepairEngine::default();
    let mk = |maintained: bool| {
        let mut g = Graph::new();
        if maintained {
            g.maintain_stats(true);
        }
        let a0 = g.attr_key("a0");
        for _ in 0..nodes {
            let n = g.add_node_named("T");
            g.set_attr(n, a0, Value::Bool(true)).unwrap();
        }
        g
    };

    // Cold = the pre-maintenance world: unmaintained graph, fresh
    // planner every run, so each run pays a full O(V+E) statistics
    // compute plus every pattern compile (run 1 repairs, later runs
    // verify an already-clean graph — the steady state of a watch loop).
    let mut g = mk(false);
    let cold = criterion::median_time(1, || {
        for _ in 0..runs {
            let planner = Planner::new();
            let report = engine.repair_with_planner(&mut g, &rules, &planner);
            assert!(report.converged);
        }
    });

    // Warm = always-warm planning: maintained graph + one caller-owned
    // planner across all runs.
    let mut g = mk(true);
    let planner = Planner::new();
    let mut second_run_hits = 0u64;
    let mut second_run_compiles = 0u64;
    let mut run_idx = 0usize;
    let warm = criterion::median_time(1, || {
        for _ in 0..runs {
            let report = engine.repair_with_planner(&mut g, &rules, &planner);
            assert!(report.converged);
            if run_idx == 1 {
                second_run_hits = report.plan_cache_hits;
                second_run_compiles = report.pattern_compiles;
            }
            run_idx += 1;
        }
    });

    let speedup = cold.as_secs_f64() / warm.as_secs_f64().max(1e-12);
    println!(
        "repair loop ({nodes} nodes x {runs} runs): cold-planner {cold:?} / reused-planner {warm:?} = {speedup:.2}x"
    );
    println!(
        "reused planner, run 2: {second_run_compiles} plans compiled, {second_run_hits} cache hits"
    );
    criterion::record_metric("reused_planner_speedup", speedup);
    criterion::record_metric("second_run_plan_cache_hits", second_run_hits as f64);
    criterion::record_metric("second_run_pattern_compiles", second_run_compiles as f64);
    assert!(
        second_run_hits > second_run_compiles,
        "the reused planner's second run must be served from cache \
         (compiles {second_run_compiles}, hits {second_run_hits})"
    );
    assert!(second_run_hits > 0);
}

criterion_group!(benches, bench_mutations);

fn main() {
    benches();
    overhead_summary();
    planner_reuse_summary();
    criterion::write_results_json(env!("CARGO_CRATE_NAME"));
}
