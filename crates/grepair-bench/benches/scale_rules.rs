//! F4 bench: repair wall-time vs rule-set size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use grepair_bench::dirty_kg_fixture;
use grepair_core::RepairEngine;
use grepair_gen::{gold_kg_rules, synthetic_rules};

fn bench_scale_rules(c: &mut Criterion) {
    let dirty = dirty_kg_fixture(1_000);
    let mut group = c.benchmark_group("scale_rules");
    group.sample_size(10);
    for n in [10usize, 20, 40, 80] {
        let mut rules = gold_kg_rules().rules;
        rules.extend(synthetic_rules(n).rules);
        group.bench_with_input(BenchmarkId::new("incremental", n + 10), &rules, |b, rules| {
            b.iter_batched(
                || dirty.clone(),
                |mut g| RepairEngine::default().repair(&mut g, rules),
                criterion::BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

criterion_group!(benches, bench_scale_rules);
criterion_main!(benches);
