//! Durable-store benchmarks: WAL replay throughput, open-after-crash
//! latency, snapshot open, and journaled append cost, on a 10k+-node
//! knowledge graph.
//!
//! Prints an explicit summary (records/s replay throughput, open
//! latencies) after the criterion groups. Set `GREPAIR_BENCH_SMOKE=1`
//! for a minimal configuration so CI can exercise the whole path in
//! seconds.

use criterion::{criterion_group, BenchmarkId, Criterion};
use grepair_bench::dirty_kg_fixture;
use grepair_core::{RepairEngine, RuleSet};
use grepair_gen::gold_kg_rules;
use grepair_store::{DurableGraph, StoreConfig};
use std::path::PathBuf;

fn smoke() -> bool {
    std::env::var_os("GREPAIR_BENCH_SMOKE").is_some()
}

fn fixture_persons() -> usize {
    if smoke() {
        300
    } else {
        10_000
    }
}

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "grepair-bench-store-{tag}-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Journal-import the dirty KG fixture, then run a durable repair so the
/// log holds generated mutations *and* engine-applied repairs — the
/// workload recovery actually replays in production. Returns the store
/// directory and the journaled record count.
fn build_store(tag: &str) -> (PathBuf, u64) {
    let dir = tmpdir(tag);
    let g = dirty_kg_fixture(fixture_persons());
    let doc = g.to_doc();
    let mut store = DurableGraph::create(&dir, StoreConfig::default()).unwrap();
    let mut ids = Vec::with_capacity(doc.nodes.len());
    for n in &doc.nodes {
        let attrs: Vec<_> = n
            .attrs
            .iter()
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect();
        ids.push(store.add_node_with_attrs(&n.label, &attrs).unwrap());
    }
    for e in &doc.edges {
        store
            .add_edge(ids[e.src as usize], ids[e.dst as usize], &e.label)
            .unwrap();
    }
    let rules: RuleSet = gold_kg_rules();
    store.repair(&RepairEngine::default(), &rules.rules).unwrap();
    store.commit().unwrap();
    let records = store.last_seq();
    (dir, records)
}

/// Append a torn half-record to the active segment of `dir`.
fn tear_tail(dir: &std::path::Path) {
    use std::io::Write as _;
    let (_, seg) = grepair_store::wal::list_segments(dir).unwrap().pop().unwrap();
    let mut f = std::fs::OpenOptions::new().append(true).open(seg).unwrap();
    f.write_all(&[0xC4; 21]).unwrap(); // torn frame header + partial payload
}

/// A copy of `src` with a torn half-record appended to the active
/// segment — the crash-recovery workload.
fn crashed_copy(src: &PathBuf, tag: &str) -> PathBuf {
    let dst = tmpdir(tag);
    std::fs::create_dir_all(&dst).unwrap();
    for entry in std::fs::read_dir(src).unwrap() {
        let entry = entry.unwrap();
        std::fs::copy(entry.path(), dst.join(entry.file_name())).unwrap();
    }
    tear_tail(&dst);
    dst
}

/// A compacted copy: recovery = snapshot load, no replay.
fn compacted_copy(src: &PathBuf, tag: &str) -> PathBuf {
    let dst = tmpdir(tag);
    std::fs::create_dir_all(&dst).unwrap();
    for entry in std::fs::read_dir(src).unwrap() {
        let entry = entry.unwrap();
        std::fs::copy(entry.path(), dst.join(entry.file_name())).unwrap();
    }
    let mut store = DurableGraph::open(&dst, StoreConfig::default()).unwrap();
    store.compact().unwrap();
    dst
}

fn bench_store_recovery(c: &mut Criterion) {
    let (dir, records) = build_store("fixture");
    let crashed = crashed_copy(&dir, "crashed");
    let compacted = compacted_copy(&dir, "compacted");

    let mut group = c.benchmark_group("store_recovery");
    group.sample_size(if smoke() { 2 } else { 10 });

    group.bench_with_input(BenchmarkId::new("open", "replay_log"), &dir, |b, d| {
        b.iter(|| DurableGraph::open(d, StoreConfig::default()).unwrap().last_seq())
    });
    group.bench_with_input(
        BenchmarkId::new("open", "after_crash"),
        &crashed,
        |b, d| {
            // Recovery *heals* the tail (truncates it), so each iteration
            // re-tears the segment first; the 21-byte append is noise
            // next to the open.
            b.iter(|| {
                tear_tail(d);
                let s = DurableGraph::open(d, StoreConfig::default()).unwrap();
                assert!(s.last_recovery().torn_tail_bytes > 0);
                s.last_seq()
            })
        },
    );
    group.bench_with_input(
        BenchmarkId::new("open", "from_snapshot"),
        &compacted,
        |b, d| {
            b.iter(|| DurableGraph::open(d, StoreConfig::default()).unwrap().last_seq())
        },
    );
    // Journaled append cost (no fsync per op; that's `commit`'s job).
    group.bench_function("append/add_node", |b| {
        let scratch = tmpdir("append");
        let mut store = DurableGraph::create(&scratch, StoreConfig::default()).unwrap();
        b.iter(|| store.add_node("Person").unwrap());
        std::fs::remove_dir_all(&scratch).ok();
    });
    group.finish();

    summary(&dir, &crashed, &compacted, records);
    std::fs::remove_dir_all(&dir).ok();
    std::fs::remove_dir_all(&crashed).ok();
    std::fs::remove_dir_all(&compacted).ok();
}

fn summary(dir: &PathBuf, crashed: &PathBuf, compacted: &PathBuf, records: u64) {
    let samples = if smoke() { 1 } else { 7 };
    let open = |d: &PathBuf| {
        let s = DurableGraph::open(d, StoreConfig::default()).unwrap();
        (s.graph().num_nodes(), s.last_seq())
    };
    // The three paths must agree on the recovered graph.
    let (nodes, _) = open(dir);
    assert_eq!(open(crashed).0, nodes);
    assert_eq!(open(compacted).0, nodes);

    let replay = criterion::median_time(samples, || open(dir));
    let crash = criterion::median_time(samples, || {
        tear_tail(crashed);
        open(crashed)
    });
    let snap = criterion::median_time(samples, || open(compacted));
    let throughput = records as f64 / replay.as_secs_f64().max(1e-12);
    println!(
        "\nstore-recovery summary ({} persons, {nodes} live nodes, {records} log records):\n\
         \x20 full replay {replay:?} = {throughput:.0} records/s\n\
         \x20 open after crash (torn tail) {crash:?}\n\
         \x20 open from snapshot {snap:?} ({:.2}x faster than replay)",
        fixture_persons(),
        replay.as_secs_f64() / snap.as_secs_f64().max(1e-12),
    );
}

criterion_group!(benches, bench_store_recovery);

fn main() {
    benches();
    criterion::write_results_json(env!("CARGO_CRATE_NAME"));
}
