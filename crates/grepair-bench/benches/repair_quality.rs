//! F1/F7 bench: end-to-end repair throughput, GRR engine vs baselines.

use criterion::{criterion_group, criterion_main, Criterion};
use grepair_bench::dirty_kg_fixture;
use grepair_core::RepairEngine;
use grepair_eval::{delete_only_rules, random_repair};
use grepair_gen::gold_kg_rules;

fn bench_repair_quality(c: &mut Criterion) {
    let dirty = dirty_kg_fixture(1_000);
    let gold = gold_kg_rules();
    let del = delete_only_rules(&gold);
    let mut group = c.benchmark_group("repair");
    group.sample_size(10);
    group.bench_function("grr", |b| {
        b.iter_batched(
            || dirty.clone(),
            |mut g| RepairEngine::default().repair(&mut g, &gold.rules),
            criterion::BatchSize::LargeInput,
        )
    });
    group.bench_function("delete_only", |b| {
        b.iter_batched(
            || dirty.clone(),
            |mut g| RepairEngine::default().repair(&mut g, &del.rules),
            criterion::BatchSize::LargeInput,
        )
    });
    group.bench_function("random", |b| {
        b.iter_batched(
            || dirty.clone(),
            |mut g| random_repair(&mut g, &gold.rules, 17, 64),
            criterion::BatchSize::LargeInput,
        )
    });
    group.finish();
}

criterion_group!(benches, bench_repair_quality);
criterion_main!(benches);
