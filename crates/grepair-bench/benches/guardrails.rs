//! Guardrails overhead bench: what the budget layer costs on the
//! matching hot path when **no limits are set** (the default — must stay
//! under 5%), and how fast a cooperative cancellation actually lands
//! (flip-to-return latency, p99).
//!
//! Like the observability bench, the disabled overhead is *computed*,
//! not differenced: the per-probe cost of each budget tier is measured
//! in a tight loop ([`obs::Budget::is_tripped`] — one relaxed load — and
//! [`obs::Budget::checkpoint`] — clock read + cap comparisons), the
//! number of checkpoints a real budgeted pass crosses is read back from
//! [`obs::Budget::checks`], the cheap-tier count is over-estimated at
//! `BUDGET_POLL_PERIOD - 1` probes per checkpoint, and the total is
//! compared to the unbudgeted pass time. Differencing two medians on a
//! shared CI host would drown a sub-microsecond effect in scheduler
//! noise; the computed ratio is stable and strictly over-estimates.
//!
//! Cancellation latency is measured end-to-end: a worker thread scans in
//! a loop under a shared budget, the bench thread flips the
//! [`obs::CancelToken`] and times until the worker returns — the p99 of
//! that distribution is the "how long after ^C does the tool stop"
//! number (bounded by checkpoint granularity, not by scan length).
//!
//! Set `GREPAIR_BENCH_SMOKE=1` for the CI configuration; the results
//! land in `BENCH_guardrails.json` (`disabled_check_overhead_ratio`,
//! `cancel_latency_p99_ms`, `checkpoints_per_pass`), schema-checked by
//! the `bench_json` test.

use criterion::{criterion_group, Criterion};
use grepair_bench::dirty_kg_fixture;
use grepair_core::RuleSet;
use grepair_gen::gold_kg_rules;
use grepair_graph::Graph;
use grepair_match::Matcher;
use grepair_obs as obs;
use std::time::{Duration, Instant};

fn smoke() -> bool {
    std::env::var_os("GREPAIR_BENCH_SMOKE").is_some()
}

fn fixture_persons() -> usize {
    if smoke() {
        300
    } else {
        5_000
    }
}

/// Mirrors `grepair-match`'s `BUDGET_POLL_PERIOD`: between two full
/// checkpoints the enumeration loop issues at most this many - 1 cheap
/// `is_tripped` probes, so `checks() * (PERIOD - 1)` over-estimates the
/// cheap-tier call count (frontier-forced flushes only shorten runs).
const BUDGET_POLL_PERIOD: u64 = 64;

/// The matching hot path with no budget attached: the true baseline.
fn scan(g: &Graph, rules: &RuleSet) -> usize {
    let m = Matcher::new(g);
    rules
        .rules
        .iter()
        .map(|r| m.find_all(&r.pattern).len())
        .sum()
}

/// The same pass with an (unlimited) budget attached to every matcher.
fn scan_budgeted(g: &Graph, rules: &RuleSet, budget: &obs::Budget) -> usize {
    let m = Matcher::new(g).with_budget(budget);
    rules
        .rules
        .iter()
        .map(|r| m.find_all(&r.pattern).len())
        .sum()
}

const PROBE_BATCH: usize = 10_000;

fn bench_guardrails(c: &mut Criterion) {
    let g = dirty_kg_fixture(fixture_persons());
    let rules = gold_kg_rules();
    let mut group = c.benchmark_group("guardrails");
    group.sample_size(if smoke() { 2 } else { 10 });

    group.bench_function("scan_unbudgeted", |b| b.iter(|| scan(&g, &rules)));

    let unlimited = obs::Budget::unlimited();
    group.bench_function("scan_budgeted_unlimited", |b| {
        b.iter(|| scan_budgeted(&g, &rules, &unlimited))
    });

    group.bench_function("is_tripped_probe_batch", |b| {
        b.iter(|| {
            let mut tripped = 0usize;
            for _ in 0..PROBE_BATCH {
                tripped += unlimited.is_tripped() as usize;
            }
            tripped
        })
    });

    group.bench_function("checkpoint_probe_batch", |b| {
        b.iter(|| {
            let mut tripped = 0usize;
            for _ in 0..PROBE_BATCH {
                tripped += unlimited.checkpoint().is_some() as usize;
            }
            tripped
        })
    });
    group.finish();
}

/// Flip-to-return latency of one cooperative cancellation: a worker
/// scans in a loop under a shared budget; we flip the token and time
/// until the worker observes the trip and returns.
fn cancel_latency_once(g: &Graph, rules: &RuleSet) -> Duration {
    let budget = obs::Budget::unlimited();
    let token = budget.token();
    let worker = {
        let budget = budget.clone();
        let g = g.clone();
        let rules = rules.clone();
        std::thread::spawn(move || {
            // Keep scanning until the budget trips — the cancel always
            // lands mid-scan, never in the gap between iterations.
            while !budget.is_tripped() {
                scan_budgeted(&g, &rules, &budget);
            }
        })
    };
    // Let the worker get into the middle of a pass.
    std::thread::sleep(Duration::from_millis(1));
    let flipped = Instant::now();
    token.cancel();
    worker.join().expect("cancelled worker must not panic");
    flipped.elapsed()
}

fn guardrails_summary() {
    let g = dirty_kg_fixture(fixture_persons());
    let rules = gold_kg_rules();
    let samples = if smoke() { 3 } else { 9 };

    let unbudgeted = criterion::median_time(samples, || scan(&g, &rules));

    // How many full checkpoints one pass crosses, read from the budget
    // itself (fresh budget per measurement so the count is per-pass).
    let counted = obs::Budget::unlimited();
    scan_budgeted(&g, &rules, &counted);
    let checkpoints_per_pass = counted.checks();

    let unlimited = obs::Budget::unlimited();
    let probe = criterion::median_time(samples, || {
        let mut tripped = 0usize;
        for _ in 0..PROBE_BATCH {
            tripped += unlimited.is_tripped() as usize;
        }
        tripped
    });
    let checkpoint = criterion::median_time(samples, || {
        let mut tripped = 0usize;
        for _ in 0..PROBE_BATCH {
            tripped += unlimited.checkpoint().is_some() as usize;
        }
        tripped
    });
    let probe_ns = probe.as_secs_f64() * 1e9 / PROBE_BATCH as f64;
    let checkpoint_ns = checkpoint.as_secs_f64() * 1e9 / PROBE_BATCH as f64;

    // Computed overhead: every checkpoint plus the worst-case number of
    // cheap probes between checkpoints, against the unbudgeted pass.
    let pass_ns = unbudgeted.as_secs_f64() * 1e9;
    let budget_ns = checkpoints_per_pass as f64
        * (checkpoint_ns + (BUDGET_POLL_PERIOD - 1) as f64 * probe_ns);
    let disabled_check_overhead_ratio = 1.0 + budget_ns / pass_ns.max(1.0);

    // Measured (noisy, informational) ratio for cross-checking.
    let budgeted = criterion::median_time(samples, || scan_budgeted(&g, &rules, &unlimited));
    let measured_ratio = budgeted.as_secs_f64() / unbudgeted.as_secs_f64().max(1e-12);

    let latency_samples = if smoke() { 12 } else { 60 };
    let mut latencies: Vec<Duration> = (0..latency_samples)
        .map(|_| cancel_latency_once(&g, &rules))
        .collect();
    latencies.sort_unstable();
    let p99 = latencies[((latencies.len() * 99) / 100).min(latencies.len() - 1)];
    let cancel_latency_p99_ms = p99.as_secs_f64() * 1e3;

    println!(
        "\nguardrails summary ({} persons): unbudgeted pass {unbudgeted:?}; \
         {checkpoints_per_pass} checkpoints x ({checkpoint_ns:.1}ns + 63 x {probe_ns:.2}ns) \
         = {disabled_check_overhead_ratio:.4}x computed ({measured_ratio:.2}x measured); \
         cancel p99 {cancel_latency_p99_ms:.2}ms over {latency_samples} flips",
        fixture_persons(),
    );
    criterion::record_metric(
        "disabled_check_overhead_ratio",
        disabled_check_overhead_ratio,
    );
    criterion::record_metric("measured_overhead_ratio", measured_ratio);
    criterion::record_metric("checkpoints_per_pass", checkpoints_per_pass as f64);
    criterion::record_metric("probe_ns", probe_ns);
    criterion::record_metric("checkpoint_ns", checkpoint_ns);
    criterion::record_metric("cancel_latency_p99_ms", cancel_latency_p99_ms);
}

criterion_group!(benches, bench_guardrails);

fn main() {
    benches();
    guardrails_summary();
    criterion::write_results_json(env!("CARGO_CRATE_NAME"));
}
