//! F3 bench: full repair wall-time vs |G| for both engines.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use grepair_bench::dirty_kg_fixture;
use grepair_core::{EngineConfig, RepairEngine};
use grepair_gen::gold_kg_rules;

fn bench_scale_graph(c: &mut Criterion) {
    let rules = gold_kg_rules();
    let mut group = c.benchmark_group("scale_graph");
    group.sample_size(10);
    for persons in [500usize, 1_000, 2_000, 5_000] {
        let dirty = dirty_kg_fixture(persons);
        group.bench_with_input(
            BenchmarkId::new("incremental", persons),
            &dirty,
            |b, dirty| {
                b.iter_batched(
                    || dirty.clone(),
                    |mut g| RepairEngine::default().repair(&mut g, &rules.rules),
                    criterion::BatchSize::LargeInput,
                )
            },
        );
        if persons <= 2_000 {
            group.bench_with_input(
                BenchmarkId::new("naive_rescan", persons),
                &dirty,
                |b, dirty| {
                    b.iter_batched(
                        || dirty.clone(),
                        |mut g| {
                            RepairEngine::new(EngineConfig::naive_with_indexes())
                                .repair(&mut g, &rules.rules)
                        },
                        criterion::BatchSize::LargeInput,
                    )
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_scale_graph);
criterion_main!(benches);
