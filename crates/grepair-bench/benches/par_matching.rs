//! Parallel-matching bench: the morsel-driven `Matcher::par_find_all`
//! and the engine's `par_match_sweep` vs their single-threaded
//! counterparts on the scale-graph workload. Requires
//! `--features parallel`.
//!
//! Unlike its first incarnation — which ran on whatever
//! `available_parallelism` said and once published a 1-worker 0.87x
//! "speedup" — this bench installs an **explicit multi-worker pool**.
//! The worker count comes from `GREPAIR_BENCH_THREADS` (default: the
//! host's core count, but never fewer than 2 workers), and the JSON
//! records both the host's cores and the effective worker count, plus a
//! speedup at each probed thread count. When the host has a single core
//! the comparison is timeshared and meaningless as a scaling claim, so
//! smoke mode warns on stderr and sets a `degraded` metric instead of
//! silently committing the numbers.

use criterion::{criterion_group, BenchmarkId, Criterion};
use grepair_bench::dirty_kg_fixture;
use grepair_core::{RepairEngine, RuleSet};
use grepair_gen::gold_kg_rules;
use grepair_match::Matcher;

/// Worker count for the parallel side: `GREPAIR_BENCH_THREADS` if set,
/// otherwise the host's core count floored at 2 so the parallel path is
/// actually exercised even on small hosts.
fn effective_threads() -> usize {
    match std::env::var("GREPAIR_BENCH_THREADS")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
    {
        Some(n) if n >= 1 => n,
        _ => host_cores().max(2),
    }
}

/// Physical parallelism of the host (what the OS reports).
fn host_cores() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

fn bench_par_matching(c: &mut Criterion) {
    let g = dirty_kg_fixture(10_000);
    let rules = gold_kg_rules();
    let mut group = c.benchmark_group("par_matching");
    group.sample_size(10);

    for (name, parallel) in [("serial", false), ("parallel", true)] {
        group.bench_with_input(BenchmarkId::new("find_all", name), &parallel, |b, &par| {
            let m = Matcher::new(&g);
            b.iter(|| {
                let mut total = 0usize;
                for r in &rules.rules {
                    let found = if par {
                        m.par_find_all(&r.pattern)
                    } else {
                        m.find_all(&r.pattern)
                    };
                    total += found.len();
                }
                total
            })
        });
    }

    let engine = RepairEngine::default();
    for (name, parallel) in [("serial", false), ("parallel", true)] {
        group.bench_with_input(BenchmarkId::new("rule_sweep", name), &parallel, |b, &par| {
            let m = Matcher::new(&g);
            b.iter(|| {
                if par {
                    engine
                        .par_match_sweep(&g, &rules)
                        .iter()
                        .map(|ms| ms.len())
                        .sum::<usize>()
                } else {
                    rules
                        .rules
                        .iter()
                        .map(|r| m.find_all(&r.pattern).len())
                        .sum::<usize>()
                }
            })
        });
    }
    group.finish();
}

fn speedup_summary(workers: usize) {
    let g = dirty_kg_fixture(10_000);
    let rules: RuleSet = gold_kg_rules();
    let m = Matcher::new(&g);
    let serial = criterion::median_time(9, || {
        rules
            .rules
            .iter()
            .map(|r| m.find_all(&r.pattern).len())
            .sum::<usize>()
    });

    // Probe the scaling curve: the parallel path at 1, 2, and the
    // configured worker count (deduplicated, ascending).
    let mut probe = vec![1usize, 2, workers];
    probe.sort_unstable();
    probe.dedup();
    let mut at_workers = 0.0f64;
    for &threads in &probe {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .expect("thread pool");
        let parallel = pool.install(|| {
            criterion::median_time(9, || {
                rules
                    .rules
                    .iter()
                    .map(|r| m.par_find_all(&r.pattern).len())
                    .sum::<usize>()
            })
        });
        let speedup = serial.as_secs_f64() / parallel.as_secs_f64().max(1e-12);
        println!(
            "speedup at {threads} worker(s): serial {serial:?} / parallel {parallel:?} = {speedup:.2}x"
        );
        if host_cores() < 2 && threads >= 2 {
            // Once per invocation even though every probe trips it.
            grepair_bench::warn_degraded_host_once(threads, host_cores());
        }
        criterion::record_metric(format!("speedup_t{threads}"), speedup);
        if threads == workers {
            at_workers = speedup;
        }
    }

    let cores = host_cores();
    criterion::record_metric("speedup_parallel", at_workers);
    criterion::record_metric("worker_threads", workers as f64);
    criterion::record_metric("host_cores", cores as f64);
    let degraded = cores < 2 || workers < 2;
    criterion::record_metric("degraded", if degraded { 1.0 } else { 0.0 });
    if degraded {
        grepair_bench::warn_degraded_host_once(workers, cores);
    }
    println!(
        "\nspeedup summary ({workers} worker(s), {cores} host core(s)): {at_workers:.2}x"
    );
}

criterion_group!(benches, bench_par_matching);

fn main() {
    let workers = effective_threads();
    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(workers)
        .build()
        .expect("thread pool");
    // Install the explicit pool for the criterion groups so the
    // parallel sides never silently fall back to available_parallelism.
    pool.install(benches);
    speedup_summary(workers);
    criterion::write_results_json(env!("CARGO_CRATE_NAME"));
}
