//! Parallel-matching bench: `Matcher::par_find_all` and the engine's
//! `par_match_sweep` vs their single-threaded counterparts on the
//! scale-graph workload. Requires `--features parallel`.
//!
//! Prints an explicit serial/parallel speedup summary after the
//! criterion groups; the expected speedup scales with available cores
//! (on a single-core host the two paths should be within noise of each
//! other — the parallel path's only extra work is root partitioning).

use criterion::{criterion_group, BenchmarkId, Criterion};
use grepair_bench::dirty_kg_fixture;
use grepair_core::{RepairEngine, RuleSet};
use grepair_gen::gold_kg_rules;
use grepair_match::Matcher;

fn bench_par_matching(c: &mut Criterion) {
    let g = dirty_kg_fixture(10_000);
    let rules = gold_kg_rules();
    let mut group = c.benchmark_group("par_matching");
    group.sample_size(10);

    for (name, parallel) in [("serial", false), ("parallel", true)] {
        group.bench_with_input(BenchmarkId::new("find_all", name), &parallel, |b, &par| {
            let m = Matcher::new(&g);
            b.iter(|| {
                let mut total = 0usize;
                for r in &rules.rules {
                    let found = if par {
                        m.par_find_all(&r.pattern)
                    } else {
                        m.find_all(&r.pattern)
                    };
                    total += found.len();
                }
                total
            })
        });
    }

    let engine = RepairEngine::default();
    for (name, parallel) in [("serial", false), ("parallel", true)] {
        group.bench_with_input(BenchmarkId::new("rule_sweep", name), &parallel, |b, &par| {
            let m = Matcher::new(&g);
            b.iter(|| {
                if par {
                    engine
                        .par_match_sweep(&g, &rules)
                        .iter()
                        .map(|ms| ms.len())
                        .sum::<usize>()
                } else {
                    rules
                        .rules
                        .iter()
                        .map(|r| m.find_all(&r.pattern).len())
                        .sum::<usize>()
                }
            })
        });
    }
    group.finish();
}

fn speedup_summary() {
    let g = dirty_kg_fixture(10_000);
    let rules: RuleSet = gold_kg_rules();
    let m = Matcher::new(&g);
    let serial = criterion::median_time(9, || {
        rules
            .rules
            .iter()
            .map(|r| m.find_all(&r.pattern).len())
            .sum::<usize>()
    });
    let parallel = criterion::median_time(9, || {
        rules
            .rules
            .iter()
            .map(|r| m.par_find_all(&r.pattern).len())
            .sum::<usize>()
    });
    let threads = rayon_threads();
    let speedup = serial.as_secs_f64() / parallel.as_secs_f64().max(1e-12);
    println!(
        "\nspeedup summary ({threads} worker thread(s)): serial {serial:?} / parallel {parallel:?} = {speedup:.2}x"
    );
    criterion::record_metric("speedup_parallel", speedup);
    criterion::record_metric("worker_threads", threads as f64);
}

fn rayon_threads() -> usize {
    // The same value par_find_all partitions for — not the host's core
    // count, which can differ under RAYON_NUM_THREADS or a pool.
    rayon::current_num_threads()
}

criterion_group!(benches, bench_par_matching);

fn main() {
    benches();
    speedup_summary();
    criterion::write_results_json(env!("CARGO_CRATE_NAME"));
}
