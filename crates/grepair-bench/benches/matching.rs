//! F5 bench: match-enumeration throughput per matcher configuration.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use grepair_bench::dirty_kg_fixture;
use grepair_gen::gold_kg_rules;
use grepair_match::{MatchConfig, Matcher};

fn bench_matching(c: &mut Criterion) {
    let g = dirty_kg_fixture(2_000);
    let rules = gold_kg_rules();
    let mut group = c.benchmark_group("matching");
    let full = MatchConfig::default();
    let configs: Vec<(&str, MatchConfig)> = vec![
        ("full", full),
        ("no-label-index", MatchConfig { use_label_index: false, ..full }),
        ("no-signature", MatchConfig { use_signature: false, ..full }),
        ("no-degree", MatchConfig { use_degree_filter: false, ..full }),
        ("no-attr-index", MatchConfig { use_attr_index: false, ..full }),
        ("no-join-order", MatchConfig { connected_order: false, ..full }),
    ];
    for (name, cfg) in configs {
        group.bench_with_input(BenchmarkId::new("scan", name), &cfg, |b, cfg| {
            let m = Matcher::with_config(&g, *cfg);
            b.iter(|| {
                let mut total = 0usize;
                for r in &rules.rules {
                    total += m.count(&r.pattern);
                }
                total
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_matching);
criterion_main!(benches);
