//! Regenerate the reconstructed evaluation tables/figures.
//!
//! ```text
//! cargo run -p grepair-bench --release --bin experiments -- all
//! cargo run -p grepair-bench --release --bin experiments -- f3 --quick
//! cargo run -p grepair-bench --release --bin experiments -- f1 f7 --csv
//! ```
//!
//! Ids: `t1 t2 f1 f2 f3 f4 f5 f6 f7 f8` or `all`. `--quick` shrinks
//! workloads to seconds-scale; `--csv` additionally prints CSV blocks.

use grepair_eval::{run, Profile};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let csv = args.iter().any(|a| a == "--csv");
    let ids: Vec<&str> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .map(String::as_str)
        .collect();
    let ids = if ids.is_empty() { vec!["all"] } else { ids };

    let profile = if quick {
        Profile::quick()
    } else {
        Profile::standard()
    };
    eprintln!(
        "profile: {} (kg sizes {:?})",
        if quick { "quick" } else { "standard" },
        profile.kg_sizes
    );

    let mut any = false;
    for id in ids {
        for table in run(id, &profile) {
            any = true;
            println!("{table}");
            if csv {
                println!("--- csv ({}) ---\n{}", table.id, table.to_csv());
            }
        }
    }
    if !any {
        eprintln!("no experiment matched; ids: t1 t2 f1 f2 f3 f4 f5 f6 f7 f8 all");
        std::process::exit(2);
    }
}
