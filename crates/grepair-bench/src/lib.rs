//! # grepair-bench
//!
//! Criterion benchmarks and the `experiments` binary that regenerates the
//! reconstructed evaluation tables/figures (see `EXPERIMENTS.md`).
//!
//! Shared fixtures for the benches live here so every bench measures the
//! same workloads the experiment harness reports on.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use grepair_gen::{generate_kg, inject_kg_noise, KgConfig, NoiseConfig};
use grepair_graph::Graph;

/// A dirty KG fixture at the given person count (10% mixed noise, fixed
/// seeds — identical across benches).
pub fn dirty_kg_fixture(persons: usize) -> Graph {
    let (mut g, refs) = generate_kg(&KgConfig::with_persons(persons));
    inject_kg_noise(&mut g, &refs, &NoiseConfig::default());
    g
}

/// A clean KG fixture.
pub fn clean_kg_fixture(persons: usize) -> Graph {
    generate_kg(&KgConfig::with_persons(persons)).0
}
