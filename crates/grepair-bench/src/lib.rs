//! # grepair-bench
//!
//! Criterion benchmarks and the `experiments` binary that regenerates the
//! reconstructed evaluation tables/figures (see `EXPERIMENTS.md`).
//!
//! Shared fixtures for the benches live here so every bench measures the
//! same workloads the experiment harness reports on.

#![forbid(unsafe_code)]

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use grepair_gen::{generate_kg, inject_kg_noise, KgConfig, NoiseConfig};
use grepair_graph::Graph;

/// Warn that a parallel bench is running effectively single-threaded
/// (timeshared workers on a too-small host), **once per invocation** no
/// matter how many probes detect it — repeating the same warning per
/// probed thread count buries the rest of the bench output. The warning
/// is also recorded as a warn-level `bench.degraded_host` event in the
/// metrics registry so machine consumers see it alongside the `degraded`
/// metric.
pub fn warn_degraded_host_once(workers: usize, cores: usize) {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        let msg = format!(
            "parallel bench ran effectively single-threaded ({workers} \
             worker(s) on {cores} core(s)) — serial/parallel comparisons \
             are timeshared, not scaling measurements; speedups recorded \
             with degraded = 1"
        );
        eprintln!("warning: {msg}");
        grepair_obs::event(grepair_obs::Level::Warn, "bench.degraded_host", msg);
        criterion::record_metric("degraded_host_warned", 1.0);
    });
}

/// A dirty KG fixture at the given person count (10% mixed noise, fixed
/// seeds — identical across benches).
pub fn dirty_kg_fixture(persons: usize) -> Graph {
    let (mut g, refs) = generate_kg(&KgConfig::with_persons(persons));
    inject_kg_noise(&mut g, &refs, &NoiseConfig::default());
    g
}

/// A clean KG fixture.
pub fn clean_kg_fixture(persons: usize) -> Graph {
    generate_kg(&KgConfig::with_persons(persons)).0
}

/// Rule DSL for an attribute cascade: `stage{i}` fires when `a{i}` is
/// set and `a{i+1}` is missing, setting `a{i+1}` — each repair enables
/// exactly the next stage. The canonical repeated-round fixture for
/// plan-cache and dirty-rule-scheduling measurements (the engine's unit
/// tests pin the same shape).
pub fn cascade_rules_dsl(stages: usize) -> String {
    use std::fmt::Write as _;
    let mut src = String::new();
    for i in 0..stages {
        writeln!(
            src,
            "rule stage{i} [incompleteness]
             match (x:T) where has(x.a{i}), missing(x.a{next})
             repair set x.a{next} = true",
            next = i + 1
        )
        .unwrap();
    }
    src
}
