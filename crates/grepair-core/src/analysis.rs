//! Static analyses over GRR sets.
//!
//! The paper studies fundamental rule-set problems, all intractable in
//! general (reductions from subgraph isomorphism / rule reachability);
//! this module implements the practical counterparts used for the T2
//! experiment table:
//!
//! - **Effectiveness** ([`check_effectiveness`]): does applying a rule
//!   actually eliminate the violation it matched? Checked *semantically* by
//!   materialising a canonical instance of the rule's own pattern, applying
//!   the rule, and re-matching. Exact when a canonical instance exists;
//!   `Unknown` when the constraint set cannot be solved constructively.
//! - **Termination** ([`trigger_graph`], [`is_terminating`]): build the
//!   label-level trigger over-approximation "r₁ can enable r₂"; an acyclic
//!   trigger graph proves termination of any repair run. Cycles are
//!   returned as SCC witnesses; cyclic sets are still *run* safely thanks
//!   to the engine's churn guards.
//! - **Consistency** ([`find_conflicts`]): can two rules prescribe
//!   contradictory repairs on unifiable elements (set-set with different
//!   values, delete-vs-use, insert-vs-delete, relabel clashes)?
//! - **Implication** ([`find_implications`]): is a rule subsumed by another
//!   (pattern embeds, condition implied, identical actions under the
//!   embedding)? Reported implications are sound; the search is not
//!   complete — a conservative analysis.

use crate::apply::apply_rule;
use crate::rule::{Action, Grr, PatternEdgeRef, Target, ValueSource};
use grepair_graph::{EditCosts, Graph, Value};
use grepair_match::{Constraint, Match, Matcher, Pattern, Rhs, Var};
use serde::{Deserialize, Serialize};
use std::fmt;

// ---------------------------------------------------------------------------
// Effectiveness
// ---------------------------------------------------------------------------

/// Verdict of the semantic effectiveness check.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Effectiveness {
    /// Applying the rule to its canonical violation eliminates every match.
    Effective,
    /// The pattern still matches after repair — the rule does not fix what
    /// it finds (or re-creates it).
    Ineffective,
    /// No canonical instance could be constructed (unsolvable or
    /// non-constructive constraints); the check is inconclusive.
    Unknown,
}

/// Build a minimal graph that matches `pattern` exactly at the identity
/// assignment (variable *i* ↦ node *i*), or `None` if the constraint set
/// resists constructive solving.
pub fn canonical_instance(pattern: &Pattern) -> Option<(Graph, Match)> {
    let mut g = Graph::new();
    let mut nodes = Vec::with_capacity(pattern.num_vars());
    for (i, pn) in pattern.nodes.iter().enumerate() {
        let label = match &pn.label {
            Some(l) => l.clone(),
            None => format!("⟂Any{i}"),
        };
        nodes.push(g.add_node_named(&label));
    }
    let mut witnesses = Vec::with_capacity(pattern.edges.len());
    for (i, pe) in pattern.edges.iter().enumerate() {
        let label = match &pe.label {
            Some(l) => l.clone(),
            None => format!("⟂rel{i}"),
        };
        let e = g
            .add_edge_named(nodes[pe.src.index()], nodes[pe.dst.index()], &label)
            .ok()?;
        witnesses.push(e);
    }

    // Constructive constraint solving, one pass in declaration order.
    for c in &pattern.constraints {
        match c {
            Constraint::HasAttr(v, k) => {
                let kk = g.attr_key(k);
                if g.attr(nodes[v.index()], kk).is_none() {
                    g.set_attr(nodes[v.index()], kk, Value::Int(0)).ok()?;
                }
            }
            Constraint::MissingAttr(v, k) => {
                if let Some(kk) = g.try_attr_key(k) {
                    if g.attr(nodes[v.index()], kk).is_some() {
                        return None; // contradictory with an earlier constraint
                    }
                }
            }
            Constraint::Cmp { var, key, op, rhs } => {
                let kk = g.attr_key(key);
                let n = nodes[var.index()];
                match rhs {
                    Rhs::Const(val) => {
                        let want = solve_unary(*op, val)?;
                        match g.attr(n, kk) {
                            Some(existing) => {
                                if !op.eval(existing, val) {
                                    return None;
                                }
                            }
                            None => {
                                g.set_attr(n, kk, want).ok()?;
                            }
                        }
                    }
                    Rhs::Attr(o, k2) => {
                        let kk2 = g.attr_key(k2);
                        let m = nodes[o.index()];
                        let lhs = g.attr(n, kk).cloned();
                        let rhs_v = g.attr(m, kk2).cloned();
                        match (lhs, rhs_v) {
                            (Some(a), Some(b)) => {
                                if !op.eval(&a, &b) {
                                    return None;
                                }
                            }
                            (Some(a), None) => {
                                let b = solve_binary_rhs(*op, &a)?;
                                g.set_attr(m, kk2, b).ok()?;
                            }
                            (None, Some(b)) => {
                                let a = solve_unary(*op, &b)?;
                                g.set_attr(n, kk, a).ok()?;
                            }
                            (None, None) => {
                                let (a, b) = solve_binary_fresh(*op);
                                g.set_attr(n, kk, a).ok()?;
                                g.set_attr(m, kk2, b).ok()?;
                            }
                        }
                    }
                }
            }
            Constraint::NoOutEdge(v, l) => {
                let n = nodes[v.index()];
                let violates = g.out_edges(n).any(|e| match l {
                    None => true,
                    Some(name) => {
                        let er = g.edge(e).unwrap();
                        g.label_name(er.label) == name
                    }
                });
                if violates {
                    return None; // positive part contradicts the condition
                }
            }
            Constraint::NoInEdge(v, l) => {
                let n = nodes[v.index()];
                let violates = g.in_edges(n).any(|e| match l {
                    None => true,
                    Some(name) => {
                        let er = g.edge(e).unwrap();
                        g.label_name(er.label) == name
                    }
                });
                if violates {
                    return None;
                }
            }
        }
    }

    let m = Match {
        nodes,
        edges: witnesses,
    };
    // Verify: the identity assignment must really match (catches unsolved
    // interactions, e.g. negative edges colliding with positive ones).
    let mut check = m.clone();
    if !crate::apply::revalidate(&g, pattern, &mut check) {
        return None;
    }
    Some((g, m))
}

/// Value satisfying `x OP rhs` for a fresh left side.
fn solve_unary(op: CmpOpAlias, rhs: &Value) -> Option<Value> {
    use grepair_match::CmpOp::*;
    Some(match op {
        Eq => rhs.clone(),
        Ne => match rhs {
            Value::Int(i) => Value::Int(i.wrapping_add(1)),
            Value::Bool(b) => Value::Bool(!b),
            Value::Float(f) => Value::Float(f + 1.0),
            Value::Str(s) => Value::Str(format!("{s}≠")),
        },
        Lt | Le => match rhs {
            Value::Int(i) => Value::Int(i.checked_sub(1)?),
            Value::Float(f) => Value::Float(f - 1.0),
            Value::Str(_) => Value::Str(String::new()),
            Value::Bool(_) => return None,
        },
        Gt | Ge => match rhs {
            Value::Int(i) => Value::Int(i.checked_add(1)?),
            Value::Float(f) => Value::Float(f + 1.0),
            Value::Str(s) => Value::Str(format!("{s}~")),
            Value::Bool(_) => return None,
        },
    })
}

type CmpOpAlias = grepair_match::CmpOp;

/// Value for the right side satisfying `lhs OP x`, `lhs` known.
fn solve_binary_rhs(op: CmpOpAlias, lhs: &Value) -> Option<Value> {
    use grepair_match::CmpOp::*;
    // lhs OP x  ⇔  x OP⁻¹ lhs for the flipped operator.
    let flipped = match op {
        Eq => Eq,
        Ne => Ne,
        Lt => Gt,
        Le => Ge,
        Gt => Lt,
        Ge => Le,
    };
    solve_unary(flipped, lhs)
}

/// Fresh pair satisfying `a OP b`.
fn solve_binary_fresh(op: CmpOpAlias) -> (Value, Value) {
    use grepair_match::CmpOp::*;
    match op {
        Eq => (Value::Int(7), Value::Int(7)),
        Ne => (Value::Int(1), Value::Int(2)),
        Lt | Le => (Value::Int(1), Value::Int(2)),
        Gt | Ge => (Value::Int(2), Value::Int(1)),
    }
}

/// Semantically check that a rule repairs its own canonical violation.
pub fn check_effectiveness(rule: &Grr) -> Effectiveness {
    let Some((mut g, m)) = canonical_instance(&rule.pattern) else {
        return Effectiveness::Unknown;
    };
    if apply_rule(&mut g, rule, &m, &EditCosts::default()).is_err() {
        return Effectiveness::Unknown;
    }
    if Matcher::new(&g).exists(&rule.pattern) {
        Effectiveness::Ineffective
    } else {
        Effectiveness::Effective
    }
}

// ---------------------------------------------------------------------------
// Trigger graph & termination
// ---------------------------------------------------------------------------

/// Why one rule may enable another.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum TriggerReason {
    /// An inserted/relabelled edge can satisfy a positive pattern edge.
    AddsEdge,
    /// An inserted node / relabelled node can satisfy a pattern node.
    AddsNode,
    /// A deleted edge (or node, or merge-dedup) can satisfy a negative
    /// edge or no-edge condition.
    RemovesEdge,
    /// A set attribute can satisfy `has`/comparison constraints.
    SetsAttr,
    /// A removed attribute can satisfy a `missing` constraint.
    RemovesAttr,
}

/// Label-level over-approximation of "applying `from` can create a new
/// match of `to`".
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct TriggerGraph {
    /// Number of rules.
    pub n: usize,
    /// Directed trigger edges.
    pub edges: Vec<(usize, usize, TriggerReason)>,
}

/// `None` = any/unknown label (⊤); `Some(l)` a concrete label.
pub(crate) type L = Option<String>;

pub(crate) fn l_overlap(a: &L, b: &L) -> bool {
    match (a, b) {
        (None, _) | (_, None) => true,
        (Some(x), Some(y)) => x == y,
    }
}

#[derive(Default, Debug)]
struct Effects {
    adds_edge: Vec<L>,
    adds_node: Vec<L>,
    removes_edge: Vec<L>,
    sets_attr: Vec<L>,
    removes_attr: Vec<L>,
}

fn effects_of(rule: &Grr) -> Effects {
    let mut fx = Effects::default();
    for a in &rule.actions {
        match a {
            Action::InsertNode { label, attrs, .. } => {
                fx.adds_node.push(Some(label.clone()));
                for (k, _) in attrs {
                    fx.sets_attr.push(Some(k.clone()));
                }
            }
            Action::InsertEdge { label, .. } => fx.adds_edge.push(Some(label.clone())),
            Action::DeleteNode(_) => {
                // Deleting a node removes incident edges of unknown labels.
                fx.removes_edge.push(None);
            }
            Action::DeleteEdge(PatternEdgeRef(i)) => {
                let l = rule.pattern.edges.get(*i).and_then(|e| e.label.clone());
                fx.removes_edge.push(l);
            }
            Action::UpdateNode {
                set_label,
                set_attrs,
                del_attrs,
                ..
            } => {
                if let Some(l) = set_label {
                    fx.adds_node.push(Some(l.clone()));
                }
                for (k, _) in set_attrs {
                    fx.sets_attr.push(Some(k.clone()));
                }
                for k in del_attrs {
                    fx.removes_attr.push(Some(k.clone()));
                }
            }
            Action::UpdateEdgeLabel {
                edge: PatternEdgeRef(i),
                label,
            } => {
                fx.adds_edge.push(Some(label.clone()));
                let old = rule.pattern.edges.get(*i).and_then(|e| e.label.clone());
                fx.removes_edge.push(old);
            }
            Action::MergeNodes { .. } => {
                // Rewired edges carry unknown labels; dedup removes
                // parallels; copied attrs set unknown keys.
                fx.adds_edge.push(None);
                fx.removes_edge.push(None);
                fx.sets_attr.push(None);
            }
        }
    }
    fx
}

/// Label-level preconditions of a rule (what kinds of graph changes can
/// enable a new match). Shared with the engine's trigger filter.
#[derive(Default, Debug)]
pub(crate) struct Preconditions {
    pub(crate) pos_edge: Vec<L>,
    pub(crate) node_label: Vec<L>,
    pub(crate) neg_edge: Vec<L>,
    pub(crate) missing_attr: Vec<L>,
    pub(crate) needs_attr: Vec<L>,
}

pub(crate) fn preconditions_of(rule: &Grr) -> Preconditions {
    let mut pre = Preconditions::default();
    for e in &rule.pattern.edges {
        pre.pos_edge.push(e.label.clone());
    }
    for n in &rule.pattern.nodes {
        pre.node_label.push(n.label.clone());
    }
    for e in &rule.pattern.neg_edges {
        pre.neg_edge.push(e.label.clone());
    }
    for c in &rule.pattern.constraints {
        match c {
            Constraint::MissingAttr(_, k) => pre.missing_attr.push(Some(k.clone())),
            Constraint::HasAttr(_, k) => pre.needs_attr.push(Some(k.clone())),
            Constraint::Cmp { key, rhs, .. } => {
                pre.needs_attr.push(Some(key.clone()));
                if let Rhs::Attr(_, k2) = rhs {
                    pre.needs_attr.push(Some(k2.clone()));
                }
            }
            Constraint::NoOutEdge(_, l) | Constraint::NoInEdge(_, l) => {
                pre.neg_edge.push(l.clone())
            }
        }
    }
    pre
}

/// Build the trigger graph for a rule set.
pub fn trigger_graph(rules: &[Grr]) -> TriggerGraph {
    let effects: Vec<Effects> = rules.iter().map(effects_of).collect();
    let pres: Vec<Preconditions> = rules.iter().map(preconditions_of).collect();
    let mut tg = TriggerGraph {
        n: rules.len(),
        edges: Vec::new(),
    };
    for (i, fx) in effects.iter().enumerate() {
        for (j, pre) in pres.iter().enumerate() {
            let mut push = |reason| tg.edges.push((i, j, reason));
            if fx
                .adds_edge
                .iter()
                .any(|a| pre.pos_edge.iter().any(|p| l_overlap(a, p)))
            {
                push(TriggerReason::AddsEdge);
            }
            if fx
                .adds_node
                .iter()
                .any(|a| pre.node_label.iter().any(|p| l_overlap(a, p)))
            {
                push(TriggerReason::AddsNode);
            }
            if fx
                .removes_edge
                .iter()
                .any(|a| pre.neg_edge.iter().any(|p| l_overlap(a, p)))
            {
                push(TriggerReason::RemovesEdge);
            }
            if fx
                .sets_attr
                .iter()
                .any(|a| pre.needs_attr.iter().any(|p| l_overlap(a, p)))
            {
                push(TriggerReason::SetsAttr);
            }
            if fx
                .removes_attr
                .iter()
                .any(|a| pre.missing_attr.iter().any(|p| l_overlap(a, p)))
            {
                push(TriggerReason::RemovesAttr);
            }
        }
    }
    tg
}

impl TriggerGraph {
    /// Strongly connected components with ≥2 rules, plus self-loops —
    /// the potential non-termination witnesses.
    pub fn cycles(&self) -> Vec<Vec<usize>> {
        let mut adj = vec![Vec::new(); self.n];
        let mut self_loop = vec![false; self.n];
        for &(a, b, _) in &self.edges {
            if a == b {
                self_loop[a] = true;
            } else {
                adj[a].push(b);
            }
        }
        let sccs = tarjan_sccs(self.n, &adj);
        let mut out: Vec<Vec<usize>> = sccs.into_iter().filter(|c| c.len() >= 2).collect();
        for (i, &sl) in self_loop.iter().enumerate() {
            if sl && !out.iter().any(|c| c.contains(&i)) {
                out.push(vec![i]);
            }
        }
        out.sort();
        out
    }

    /// Whether the trigger graph proves termination (no cycles at all).
    pub fn is_terminating(&self) -> bool {
        self.cycles().is_empty()
    }
}

/// Sufficient termination condition for a rule set.
pub fn is_terminating(rules: &[Grr]) -> bool {
    trigger_graph(rules).is_terminating()
}

/// Topologically stratify an **acyclic** trigger graph: rules grouped by
/// longest-path level, so every trigger edge points from an earlier
/// stratum to a strictly later one and no two rules in the same stratum
/// can enable each other. Running strata in order, each to fixpoint,
/// therefore never needs to revisit an earlier stratum — the scheduling
/// consequence of the paper's termination analysis. Returns `None` when
/// the trigger graph has any cycle (including self-loops).
pub fn stratify(tg: &TriggerGraph) -> Option<Vec<Vec<usize>>> {
    let mut indeg = vec![0usize; tg.n];
    let mut adj = vec![Vec::new(); tg.n];
    for &(a, b, _) in &tg.edges {
        if a == b {
            return None;
        }
        adj[a].push(b);
        indeg[b] += 1;
    }
    let mut level = vec![0usize; tg.n];
    let mut queue: Vec<usize> = (0..tg.n).filter(|&i| indeg[i] == 0).collect();
    let mut head = 0;
    while head < queue.len() {
        let u = queue[head];
        head += 1;
        let lu = level[u];
        for &v in &adj[u] {
            level[v] = level[v].max(lu + 1);
            indeg[v] -= 1;
            if indeg[v] == 0 {
                queue.push(v);
            }
        }
    }
    if head != tg.n {
        return None; // a cycle kept some rule's in-degree positive
    }
    let depth = level.iter().copied().max().map_or(0, |m| m + 1);
    let mut strata = vec![Vec::new(); depth];
    for (i, &l) in level.iter().enumerate() {
        strata[l].push(i);
    }
    Some(strata)
}

/// Fingerprint of a rule set covering everything scheduling depends on:
/// pattern structure, actions, and priorities. The engine's stratified
/// scheduler and the lint layer key their analysis caches on it.
pub fn set_fingerprint(rules: &[Grr]) -> u64 {
    use std::hash::{Hash, Hasher};
    let mut h = rustc_hash::FxHasher::default();
    rules.len().hash(&mut h);
    for r in rules {
        r.pattern.fingerprint().hash(&mut h);
        r.priority.hash(&mut h);
        // Actions have no Hash impl; their Debug form is deterministic
        // and covers every field the trigger graph reads.
        format!("{:?}", r.actions).hash(&mut h);
    }
    h.finish()
}

fn tarjan_sccs(n: usize, adj: &[Vec<usize>]) -> Vec<Vec<usize>> {
    struct St<'a> {
        adj: &'a [Vec<usize>],
        index: Vec<Option<usize>>,
        low: Vec<usize>,
        on_stack: Vec<bool>,
        stack: Vec<usize>,
        next: usize,
        out: Vec<Vec<usize>>,
    }
    fn visit(st: &mut St<'_>, v: usize) {
        st.index[v] = Some(st.next);
        st.low[v] = st.next;
        st.next += 1;
        st.stack.push(v);
        st.on_stack[v] = true;
        for i in 0..st.adj[v].len() {
            let w = st.adj[v][i];
            if st.index[w].is_none() {
                visit(st, w);
                st.low[v] = st.low[v].min(st.low[w]);
            } else if st.on_stack[w] {
                st.low[v] = st.low[v].min(st.index[w].unwrap());
            }
        }
        if st.low[v] == st.index[v].unwrap() {
            let mut comp = Vec::new();
            loop {
                let w = st.stack.pop().unwrap();
                st.on_stack[w] = false;
                comp.push(w);
                if w == v {
                    break;
                }
            }
            comp.sort_unstable();
            st.out.push(comp);
        }
    }
    let mut st = St {
        adj,
        index: vec![None; n],
        low: vec![0; n],
        on_stack: vec![false; n],
        stack: Vec::new(),
        next: 0,
        out: Vec::new(),
    };
    for v in 0..n {
        if st.index[v].is_none() {
            visit(&mut st, v);
        }
    }
    st.out
}

// ---------------------------------------------------------------------------
// Conflicts (consistency)
// ---------------------------------------------------------------------------

/// The kind of contradiction two rules can prescribe.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum ConflictKind {
    /// Both set the same attribute of unifiable nodes to different
    /// constants.
    AttrSetClash,
    /// Both relabel unifiable nodes to different labels.
    NodeRelabelClash,
    /// Both relabel unifiable edges to different labels.
    EdgeRelabelClash,
    /// One deletes a node the other updates / merges / attaches edges to.
    DeleteVsUse,
    /// One inserts an edge the other deletes.
    InsertVsDelete,
}

impl fmt::Display for ConflictKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ConflictKind::AttrSetClash => "attr-set clash",
            ConflictKind::NodeRelabelClash => "node-relabel clash",
            ConflictKind::EdgeRelabelClash => "edge-relabel clash",
            ConflictKind::DeleteVsUse => "delete vs use",
            ConflictKind::InsertVsDelete => "insert vs delete",
        };
        f.write_str(s)
    }
}

/// A potential contradiction between two rules.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct RuleConflict {
    /// First rule index.
    pub a: usize,
    /// Second rule index.
    pub b: usize,
    /// Contradiction kind.
    pub kind: ConflictKind,
    /// Human-readable witness description.
    pub detail: String,
}

fn var_label(rule: &Grr, v: Var) -> &L {
    &rule.pattern.nodes[v.index()].label
}

/// Detect pairwise prescription conflicts between distinct rules.
///
/// Unification is label-level (two variables unify if their label
/// requirements overlap), which over-approximates: every *real* runtime
/// contradiction is reported, plus possibly benign pairs whose patterns can
/// never co-match. The engine resolves reported pairs at runtime by cost.
pub fn find_conflicts(rules: &[Grr]) -> Vec<RuleConflict> {
    let mut out = Vec::new();
    for a in 0..rules.len() {
        for b in (a + 1)..rules.len() {
            conflicts_between(rules, a, b, &mut out);
        }
    }
    out
}

fn conflicts_between(rules: &[Grr], ai: usize, bi: usize, out: &mut Vec<RuleConflict>) {
    let ra = &rules[ai];
    let rb = &rules[bi];
    let mut push = |kind, detail: String| {
        out.push(RuleConflict {
            a: ai,
            b: bi,
            kind,
            detail,
        })
    };

    // Variables a rule *uses* (updates, merges, attaches edges to).
    fn used_vars(r: &Grr) -> Vec<(Var, &'static str)> {
        let mut out = Vec::new();
        for act in &r.actions {
            match act {
                Action::UpdateNode { node, .. } => out.push((*node, "update")),
                Action::MergeNodes { keep, .. } => out.push((*keep, "merge-keep")),
                Action::InsertEdge { src, dst, .. } => {
                    for t in [src, dst] {
                        if let Target::Var(v) = t {
                            out.push((*v, "edge-endpoint"));
                        }
                    }
                }
                _ => {}
            }
        }
        out
    }
    fn deleted_vars(r: &Grr) -> Vec<Var> {
        r.actions
            .iter()
            .filter_map(|a| match a {
                Action::DeleteNode(v) => Some(*v),
                Action::MergeNodes { merged, .. } => Some(*merged),
                _ => None,
            })
            .collect()
    }

    // Delete vs use, both directions.
    for (del_rule, del_idx, use_rule) in [(ra, ai, rb), (rb, bi, ra)] {
        for dv in deleted_vars(del_rule) {
            for (uv, how) in used_vars(use_rule) {
                if l_overlap(var_label(del_rule, dv), var_label(use_rule, uv)) {
                    push(
                        ConflictKind::DeleteVsUse,
                        format!(
                            "rule #{del_idx} deletes {:?}-labelled nodes that the other rule \
                             touches ({how})",
                            var_label(del_rule, dv).as_deref().unwrap_or("*"),
                        ),
                    );
                }
            }
        }
    }

    // Attr set / relabel clashes and insert-vs-delete.
    for act_a in &ra.actions {
        for act_b in &rb.actions {
            match (act_a, act_b) {
                (
                    Action::UpdateNode {
                        node: va,
                        set_attrs: sa,
                        set_label: la,
                        ..
                    },
                    Action::UpdateNode {
                        node: vb,
                        set_attrs: sb,
                        set_label: lb,
                        ..
                    },
                ) => {
                    if !l_overlap(var_label(ra, *va), var_label(rb, *vb)) {
                        continue;
                    }
                    if let (Some(x), Some(y)) = (la, lb) {
                        if x != y {
                            push(
                                ConflictKind::NodeRelabelClash,
                                format!("relabel to {x:?} vs {y:?}"),
                            );
                        }
                    }
                    for (ka, srca) in sa {
                        for (kb, srcb) in sb {
                            if ka != kb {
                                continue;
                            }
                            if let (ValueSource::Const(x), ValueSource::Const(y)) = (srca, srcb)
                            {
                                if x != y {
                                    push(
                                        ConflictKind::AttrSetClash,
                                        format!("both set .{ka}: {x} vs {y}"),
                                    );
                                }
                            }
                        }
                    }
                }
                (
                    Action::UpdateEdgeLabel {
                        edge: PatternEdgeRef(ea),
                        label: la,
                    },
                    Action::UpdateEdgeLabel {
                        edge: PatternEdgeRef(eb),
                        label: lb,
                    },
                ) => {
                    if la == lb {
                        continue;
                    }
                    let pea = &ra.pattern.edges[*ea];
                    let peb = &rb.pattern.edges[*eb];
                    if l_overlap(&pea.label, &peb.label)
                        && l_overlap(var_label(ra, pea.src), var_label(rb, peb.src))
                        && l_overlap(var_label(ra, pea.dst), var_label(rb, peb.dst))
                    {
                        push(
                            ConflictKind::EdgeRelabelClash,
                            format!("relabel edge to {la:?} vs {lb:?}"),
                        );
                    }
                }
                _ => {}
            }
        }
    }

    // Insert vs delete, both directions.
    for (ins_rule, del_rule) in [(ra, rb), (rb, ra)] {
        for act_i in &ins_rule.actions {
            let Action::InsertEdge { src, dst, label } = act_i else {
                continue;
            };
            let (Target::Var(sv), Target::Var(dv)) = (src, dst) else {
                continue; // fresh endpoints can't clash with matched edges
            };
            for act_d in &del_rule.actions {
                let Action::DeleteEdge(PatternEdgeRef(i)) = act_d else {
                    continue;
                };
                let pe = &del_rule.pattern.edges[*i];
                if l_overlap(&Some(label.clone()), &pe.label)
                    && l_overlap(var_label(ins_rule, *sv), var_label(del_rule, pe.src))
                    && l_overlap(var_label(ins_rule, *dv), var_label(del_rule, pe.dst))
                {
                    push(
                        ConflictKind::InsertVsDelete,
                        format!("one inserts and one deletes {label:?} edges"),
                    );
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Implication (rule redundancy)
// ---------------------------------------------------------------------------

/// `redundant` is subsumed by `by`: wherever `redundant` fires, `by` fires
/// with the identical repair.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Implication {
    /// Index of the subsumed rule.
    pub redundant: usize,
    /// Index of the subsuming rule.
    pub by: usize,
}

/// Find rules implied by other rules in the set.
///
/// Sound (every reported implication is a true subsumption) but not
/// complete (the embedding search commits to the first consistent edge
/// mapping).
pub fn find_implications(rules: &[Grr]) -> Vec<Implication> {
    let mut out = Vec::new();
    for r in 0..rules.len() {
        for b in 0..rules.len() {
            if r != b && subsumes(&rules[b], &rules[r]) {
                out.push(Implication {
                    redundant: r,
                    by: b,
                });
            }
        }
    }
    out
}

/// Does `general` subsume `specific`? Searches injective variable
/// embeddings h : vars(general) ↪ vars(specific).
fn subsumes(general: &Grr, specific: &Grr) -> bool {
    let gn = general.pattern.num_vars();
    let sn = specific.pattern.num_vars();
    if gn > sn {
        return false;
    }
    let mut map: Vec<Option<usize>> = vec![None; gn];
    let mut used = vec![false; sn];
    try_embed(general, specific, &mut map, &mut used, 0)
}

fn label_implies(general: &L, specific: &L) -> bool {
    match (general, specific) {
        (None, _) => true,
        (Some(g), Some(s)) => g == s,
        (Some(_), None) => false,
    }
}

fn try_embed(
    general: &Grr,
    specific: &Grr,
    map: &mut Vec<Option<usize>>,
    used: &mut Vec<bool>,
    v: usize,
) -> bool {
    if v == map.len() {
        return check_embedding(general, specific, map);
    }
    let glabel = &general.pattern.nodes[v].label;
    for s in 0..used.len() {
        if used[s] {
            continue;
        }
        if !label_implies(glabel, &specific.pattern.nodes[s].label) {
            continue;
        }
        map[v] = Some(s);
        used[s] = true;
        if try_embed(general, specific, map, used, v + 1) {
            return true;
        }
        map[v] = None;
        used[s] = false;
    }
    false
}

fn check_embedding(general: &Grr, specific: &Grr, map: &[Option<usize>]) -> bool {
    let h = |v: Var| Var(map[v.index()].unwrap() as u8);

    // Positive edges of `general` map to positive edges of `specific`
    // (recording the edge correspondence for action comparison).
    let mut edge_map: Vec<usize> = Vec::with_capacity(general.pattern.edges.len());
    for ge in &general.pattern.edges {
        let found = specific.pattern.edges.iter().position(|se| {
            se.src == h(ge.src) && se.dst == h(ge.dst) && label_implies(&ge.label, &se.label)
        });
        match found {
            Some(i) => edge_map.push(i),
            None => return false,
        }
    }
    // Negative conditions of `general` must be implied by `specific`'s.
    for ge in &general.pattern.neg_edges {
        let ok = specific.pattern.neg_edges.iter().any(|se| {
            se.src == h(ge.src)
                && se.dst == h(ge.dst)
                && match (&se.label, &ge.label) {
                    (None, _) => true, // specific forbids all ⇒ forbids l
                    (Some(s), Some(g)) => s == g,
                    (Some(_), None) => false,
                }
        }) || specific.pattern.constraints.iter().any(|c| {
            // A no-out-edge condition on the mapped source also implies the
            // absence of the specific negative edge.
            matches!(c, Constraint::NoOutEdge(v, l)
                if *v == h(ge.src) && match (l, &ge.label) {
                    (None, _) => true,
                    (Some(s), Some(g)) => s == g,
                    (Some(_), None) => false,
                })
        });
        if !ok {
            return false;
        }
    }
    // Constraints of `general` must appear in `specific` under h.
    for gc in &general.pattern.constraints {
        let mapped = map_constraint(gc, &h);
        let ok = specific.pattern.constraints.iter().any(|sc| {
            constraint_implies(sc, &mapped)
        });
        if !ok {
            return false;
        }
    }
    // Actions must be identical under h (and the edge correspondence).
    if general.actions.len() != specific.actions.len() {
        return false;
    }
    for (ga, sa) in general.actions.iter().zip(&specific.actions) {
        if map_action(ga, &h, &edge_map) != *sa {
            return false;
        }
    }
    true
}

fn map_constraint(c: &Constraint, h: &impl Fn(Var) -> Var) -> Constraint {
    match c {
        Constraint::HasAttr(v, k) => Constraint::HasAttr(h(*v), k.clone()),
        Constraint::MissingAttr(v, k) => Constraint::MissingAttr(h(*v), k.clone()),
        Constraint::Cmp { var, key, op, rhs } => Constraint::Cmp {
            var: h(*var),
            key: key.clone(),
            op: *op,
            rhs: match rhs {
                Rhs::Const(v) => Rhs::Const(v.clone()),
                Rhs::Attr(o, k2) => Rhs::Attr(h(*o), k2.clone()),
            },
        },
        Constraint::NoOutEdge(v, l) => Constraint::NoOutEdge(h(*v), l.clone()),
        Constraint::NoInEdge(v, l) => Constraint::NoInEdge(h(*v), l.clone()),
    }
}

/// Does constraint `specific` imply constraint `general_mapped`?
fn constraint_implies(specific: &Constraint, general_mapped: &Constraint) -> bool {
    if specific == general_mapped {
        return true;
    }
    // No-edge conditions: forbidding all edges implies forbidding one label.
    match (specific, general_mapped) {
        (Constraint::NoOutEdge(sv, None), Constraint::NoOutEdge(gv, Some(_))) => sv == gv,
        (Constraint::NoInEdge(sv, None), Constraint::NoInEdge(gv, Some(_))) => sv == gv,
        _ => false,
    }
}

fn map_action(a: &Action, h: &impl Fn(Var) -> Var, edge_map: &[usize]) -> Action {
    let map_target = |t: &Target| match t {
        Target::Var(v) => Target::Var(h(*v)),
        Target::Fresh(b) => Target::Fresh(b.clone()),
    };
    let map_vs = |s: &ValueSource| match s {
        ValueSource::Const(v) => ValueSource::Const(v.clone()),
        ValueSource::CopyAttr(v, k) => ValueSource::CopyAttr(h(*v), k.clone()),
    };
    match a {
        Action::InsertNode {
            binder,
            label,
            attrs,
        } => Action::InsertNode {
            binder: binder.clone(),
            label: label.clone(),
            attrs: attrs.iter().map(|(k, s)| (k.clone(), map_vs(s))).collect(),
        },
        Action::InsertEdge { src, dst, label } => Action::InsertEdge {
            src: map_target(src),
            dst: map_target(dst),
            label: label.clone(),
        },
        Action::DeleteNode(v) => Action::DeleteNode(h(*v)),
        Action::DeleteEdge(PatternEdgeRef(i)) => {
            Action::DeleteEdge(PatternEdgeRef(edge_map.get(*i).copied().unwrap_or(usize::MAX)))
        }
        Action::UpdateNode {
            node,
            set_label,
            set_attrs,
            del_attrs,
        } => Action::UpdateNode {
            node: h(*node),
            set_label: set_label.clone(),
            set_attrs: set_attrs
                .iter()
                .map(|(k, s)| (k.clone(), map_vs(s)))
                .collect(),
            del_attrs: del_attrs.clone(),
        },
        Action::UpdateEdgeLabel {
            edge: PatternEdgeRef(i),
            label,
        } => Action::UpdateEdgeLabel {
            edge: PatternEdgeRef(edge_map.get(*i).copied().unwrap_or(usize::MAX)),
            label: label.clone(),
        },
        Action::MergeNodes { keep, merged } => Action::MergeNodes {
            keep: h(*keep),
            merged: h(*merged),
        },
    }
}

// ---------------------------------------------------------------------------
// Aggregate report
// ---------------------------------------------------------------------------

/// Combined static-analysis report for a rule set (the T2 table row).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct AnalysisReport {
    /// Per-rule effectiveness verdicts.
    pub effectiveness: Vec<Effectiveness>,
    /// Whether the trigger graph proves termination.
    pub terminating: bool,
    /// Potential non-termination witnesses (trigger-graph cycles).
    pub cycles: Vec<Vec<usize>>,
    /// Prescription conflicts.
    pub conflicts: Vec<RuleConflict>,
    /// Subsumed rules.
    pub implications: Vec<Implication>,
    /// Wall time of the whole analysis, in microseconds.
    pub micros: u128,
}

/// Run all analyses over a rule set.
pub fn analyze(rules: &[Grr]) -> AnalysisReport {
    let start = std::time::Instant::now();
    let effectiveness = rules.iter().map(check_effectiveness).collect();
    let tg = trigger_graph(rules);
    let cycles = tg.cycles();
    let conflicts = find_conflicts(rules);
    let implications = find_implications(rules);
    AnalysisReport {
        effectiveness,
        terminating: cycles.is_empty(),
        cycles,
        conflicts,
        implications,
        micros: start.elapsed().as_micros(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dsl::parse_rule;

    fn citizenship() -> Grr {
        parse_rule(
            "rule add_citizenship [incompleteness]
             match (x:Person)-[livesIn]->(c:City)-[inCountry]->(k:Country)
             where not (x)-[citizenOf]->(k)
             repair insert edge (x)-[citizenOf]->(k)",
        )
        .unwrap()
    }

    #[test]
    fn canonical_instance_matches_identity() {
        let r = citizenship();
        let (g, m) = canonical_instance(&r.pattern).unwrap();
        assert_eq!(g.num_nodes(), 3);
        assert_eq!(g.num_edges(), 2);
        let found = Matcher::new(&g).find_all(&r.pattern);
        assert!(found.iter().any(|f| f.nodes == m.nodes));
    }

    #[test]
    fn canonical_instance_solves_constraints() {
        let r = parse_rule(
            "rule c [conflict]
             match (x:P), (y:P)
             where x.a == y.a, x.b != y.b, x.n >= 10, has(x.c), missing(y.c)
             repair delete node y",
        )
        .unwrap();
        let (g, m) = canonical_instance(&r.pattern).unwrap();
        let mut chk = m.clone();
        assert!(crate::apply::revalidate(&g, &r.pattern, &mut chk));
    }

    #[test]
    fn canonical_instance_detects_contradiction() {
        let r = parse_rule(
            "rule c [conflict]
             match (x:P)
             where has(x.a), missing(x.a)
             repair delete node x",
        )
        .unwrap();
        assert!(canonical_instance(&r.pattern).is_none());
    }

    #[test]
    fn effective_rule_detected() {
        assert_eq!(check_effectiveness(&citizenship()), Effectiveness::Effective);
    }

    #[test]
    fn ineffective_rule_detected() {
        // Repair does not touch the violation: sets an unrelated attribute.
        let r = parse_rule(
            "rule pointless [conflict]
             match (x:P)-[r]->(y:P)
             repair set x.seen = true",
        )
        .unwrap();
        assert_eq!(check_effectiveness(&r), Effectiveness::Ineffective);
    }

    #[test]
    fn delete_repair_is_effective() {
        let r = parse_rule(
            "rule drop [conflict]
             match (x:P)-[bad]->(y:P)
             repair delete edge (x)-[bad]->(y)",
        )
        .unwrap();
        assert_eq!(check_effectiveness(&r), Effectiveness::Effective);
    }

    #[test]
    fn trigger_graph_detects_enabling() {
        let r1 = parse_rule(
            "rule mk_edge [incompleteness]
             match (x:A) where not (x)-[r]->(*)
             repair insert node (y:B); insert edge (x)-[r]->(y)",
        )
        .unwrap();
        let r2 = parse_rule(
            "rule use_edge [conflict]
             match (x:A)-[r]->(y:B)
             repair delete edge (x)-[r]->(y)",
        )
        .unwrap();
        let tg = trigger_graph(&[r1, r2]);
        // r1 adds r-edges and B-nodes → triggers r2; r2 removes r-edges →
        // triggers r1's no-out-edge condition: a 2-cycle.
        assert!(tg.edges.iter().any(|&(a, b, _)| (a, b) == (0, 1)));
        assert!(tg.edges.iter().any(|&(a, b, _)| (a, b) == (1, 0)));
        assert!(!tg.is_terminating());
        assert_eq!(tg.cycles(), vec![vec![0, 1]]);
    }

    #[test]
    fn independent_rules_terminate() {
        let r1 = parse_rule(
            "rule a [conflict] match (x:A)-[p]->(y:A) repair delete edge (x)-[p]->(y)",
        )
        .unwrap();
        let r2 = parse_rule(
            "rule b [conflict] match (x:B)-[q]->(y:B) repair delete edge (x)-[q]->(y)",
        )
        .unwrap();
        assert!(is_terminating(&[r1, r2]));
    }

    #[test]
    fn self_loop_detected() {
        // Inserting an edge of the same label the pattern requires.
        let r = parse_rule(
            "rule grow [incompleteness]
             match (x:A)-[r]->(y:A)
             repair insert node (z:A); insert edge (y)-[r]->(z)",
        )
        .unwrap();
        let tg = trigger_graph(std::slice::from_ref(&r));
        assert!(!tg.is_terminating());
        assert_eq!(tg.cycles(), vec![vec![0]]);
    }

    #[test]
    fn stratify_levels_a_chain() {
        // stage0 enables stage1 enables stage2: three singleton strata in
        // topological order; an unrelated rule lands in stratum 0.
        let mut rules: Vec<Grr> = (0..3)
            .map(|i| {
                parse_rule(&format!(
                    "rule stage{i} [incompleteness]
                     match (x:T) where has(x.a{i}), missing(x.a{})
                     repair set x.a{} = true",
                    i + 1,
                    i + 1
                ))
                .unwrap()
            })
            .collect();
        rules.push(
            parse_rule(
                "rule unrelated [conflict]
                 match (x:Q)-[rel]->(y:Q)
                 repair delete edge (x)-[rel]->(y)",
            )
            .unwrap(),
        );
        let strata = stratify(&trigger_graph(&rules)).expect("chain is acyclic");
        assert_eq!(strata, vec![vec![0, 3], vec![1], vec![2]]);
    }

    #[test]
    fn stratify_declines_cycles_and_self_loops() {
        let r1 = parse_rule(
            "rule mk_edge [incompleteness]
             match (x:A) where not (x)-[r]->(*)
             repair insert node (y:B); insert edge (x)-[r]->(y)",
        )
        .unwrap();
        let r2 = parse_rule(
            "rule use_edge [conflict]
             match (x:A)-[r]->(y:B)
             repair delete edge (x)-[r]->(y)",
        )
        .unwrap();
        assert_eq!(stratify(&trigger_graph(&[r1, r2])), None);

        let grow = parse_rule(
            "rule grow [incompleteness]
             match (x:A)-[r]->(y:A)
             repair insert node (z:A); insert edge (y)-[r]->(z)",
        )
        .unwrap();
        assert_eq!(stratify(&trigger_graph(std::slice::from_ref(&grow))), None);

        // Empty sets stratify trivially.
        assert_eq!(stratify(&trigger_graph(&[])), Some(vec![]));
    }

    #[test]
    fn set_fingerprint_tracks_scheduling_inputs() {
        let a = parse_rule(
            "rule a [conflict] match (x:A)-[p]->(y:A) repair delete edge (x)-[p]->(y)",
        )
        .unwrap();
        let b = parse_rule(
            "rule b [conflict] match (x:B)-[q]->(y:B) repair delete edge (x)-[q]->(y)",
        )
        .unwrap();
        let fp = set_fingerprint(&[a.clone(), b.clone()]);
        assert_eq!(fp, set_fingerprint(&[a.clone(), b.clone()]), "deterministic");
        assert_ne!(fp, set_fingerprint(&[b.clone(), a.clone()]), "order matters");
        assert_ne!(fp, set_fingerprint(std::slice::from_ref(&a)));
        let a_pri = a.clone().with_priority(7);
        assert_ne!(fp, set_fingerprint(&[a_pri, b]));
    }

    #[test]
    fn conflicts_detected() {
        let r1 = parse_rule(
            "rule set_a [conflict] match (x:P) where has(x.k) repair set x.v = 1",
        )
        .unwrap();
        let r2 = parse_rule(
            "rule set_b [conflict] match (y:P) where has(y.k) repair set y.v = 2",
        )
        .unwrap();
        let r3 = parse_rule(
            "rule del [conflict] match (z:P) where z.spam == true repair delete node z",
        )
        .unwrap();
        let found = find_conflicts(&[r1, r2, r3]);
        assert!(found
            .iter()
            .any(|c| c.kind == ConflictKind::AttrSetClash && (c.a, c.b) == (0, 1)));
        assert!(found.iter().any(|c| c.kind == ConflictKind::DeleteVsUse));
    }

    #[test]
    fn insert_delete_conflict() {
        let r1 = parse_rule(
            "rule ins [incompleteness]
             match (x:P), (y:Q) where not (x)-[r]->(y)
             repair insert edge (x)-[r]->(y)",
        )
        .unwrap();
        let r2 = parse_rule(
            "rule del [conflict]
             match (x:P)-[r]->(y:Q)
             repair delete edge (x)-[r]->(y)",
        )
        .unwrap();
        let found = find_conflicts(&[r1, r2]);
        assert!(found.iter().any(|c| c.kind == ConflictKind::InsertVsDelete));
    }

    #[test]
    fn disjoint_labels_do_not_conflict() {
        let r1 =
            parse_rule("rule a [conflict] match (x:A) repair set x.v = 1").unwrap();
        let r2 =
            parse_rule("rule b [conflict] match (x:B) repair set x.v = 2").unwrap();
        assert!(find_conflicts(&[r1, r2]).is_empty());
    }

    #[test]
    fn implication_found_for_specialization() {
        let general = parse_rule(
            "rule general [conflict]
             match (x:P)-[bad]->(y:P)
             repair delete edge (x)-[bad]->(y)",
        )
        .unwrap();
        let specific = parse_rule(
            "rule specific [conflict]
             match (x:P)-[bad]->(y:P)
             where x.vip == true
             repair delete edge (x)-[bad]->(y)",
        )
        .unwrap();
        let imps = find_implications(&[general, specific]);
        assert_eq!(
            imps,
            vec![Implication {
                redundant: 1,
                by: 0
            }]
        );
    }

    #[test]
    fn different_actions_are_not_implied() {
        let r1 = parse_rule(
            "rule a [conflict] match (x:P)-[bad]->(y:P) repair delete edge (x)-[bad]->(y)",
        )
        .unwrap();
        let r2 = parse_rule(
            "rule b [conflict] match (x:P)-[bad]->(y:P) repair delete node y",
        )
        .unwrap();
        assert!(find_implications(&[r1, r2]).is_empty());
    }

    #[test]
    fn aggregate_report() {
        let rules = vec![citizenship()];
        let report = analyze(&rules);
        assert_eq!(report.effectiveness, vec![Effectiveness::Effective]);
        assert!(report.conflicts.is_empty());
        assert!(report.implications.is_empty());
    }
}
