//! # grepair-core
//!
//! Graph Repairing Rules (GRRs) — the primary contribution of
//! *"Rule-Based Graph Repairing: Semantic and Efficient Repairing
//! Methods"* (ICDE 2018), reconstructed in Rust.
//!
//! A [`Grr`] pairs a pattern (what an inconsistency looks like) with
//! repair actions (how to fix it) drawn from the paper's seven operations.
//! This crate provides:
//!
//! - the rule model ([`rule`]) and a text DSL ([`dsl`]);
//! - rule application with idempotent semantics and revalidation
//!   ([`apply`]);
//! - the edit-distance repair cost model ([`cost`]);
//! - static rule-set analyses: effectiveness, termination, consistency,
//!   implication ([`analysis`]);
//! - the naive and incremental repair engines with cost-based best-repair
//!   arbitration ([`engine`]);
//! - rule-set containers and serialization ([`ruleset`]).
//!
//! ```
//! use grepair_core::{RepairEngine, RuleSet};
//! use grepair_graph::Graph;
//!
//! let mut g = Graph::new();
//! let p = g.add_node_named("Person");
//! let c = g.add_node_named("City");
//! let k = g.add_node_named("Country");
//! g.add_edge_named(p, c, "livesIn").unwrap();
//! g.add_edge_named(c, k, "inCountry").unwrap();
//!
//! let rules = RuleSet::from_dsl(
//!     "demo",
//!     "rule add_citizenship [incompleteness]
//!      match (x:Person)-[livesIn]->(c:City)-[inCountry]->(k:Country)
//!      where not (x)-[citizenOf]->(k)
//!      repair insert edge (x)-[citizenOf]->(k)",
//! )
//! .unwrap();
//!
//! let report = RepairEngine::default().repair(&mut g, &rules.rules);
//! assert!(report.converged);
//! assert_eq!(report.repairs_applied, 1);
//! ```

#![forbid(unsafe_code)]

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod analysis;
pub mod apply;
pub mod cost;
pub mod dsl;
pub mod engine;
pub mod lint;
pub mod watch;
pub mod printer;
pub mod rule;
pub mod ruleset;

pub use analysis::{
    analyze, canonical_instance, check_effectiveness, find_conflicts, find_implications,
    is_terminating, set_fingerprint, stratify, trigger_graph, AnalysisReport, ConflictKind,
    Effectiveness, Implication, RuleConflict, TriggerGraph, TriggerReason,
};
pub use lint::{lint_rules, Finding, LintCode, LintPolicy, LintReport, Severity};
pub use apply::{apply_rule, revalidate, Applied, AppliedOp};
pub use cost::{estimate_cost, op_cost};
pub use dsl::{parse_rule, parse_rules, parse_rules_with_spans, ParseError, RuleSpan};
pub use engine::{
    EngineConfig, EngineMode, RepairEngine, RepairOutcome, RepairReport, RepairSink, RuleStats,
};
// Re-exported so downstream crates (the store's repair hook, the CLI)
// can hold a long-lived planner without depending on grepair-match
// directly.
pub use grepair_match::{Planner, StatsSource};
pub use printer::{rule_to_dsl, ruleset_to_dsl};
pub use watch::{LiveViolation, Watcher};
pub use rule::{Action, Category, Grr, PatternEdgeRef, RuleError, Target, ValueSource};
pub use ruleset::{RuleSet, RuleSetError};
