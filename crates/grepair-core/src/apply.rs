//! Applying a GRR to a concrete match, and revalidating stale matches.
//!
//! Application is **idempotent where possible** (inserting an edge that
//! already exists, deleting an element already gone, setting an attribute
//! to its current value are all no-ops) so that queued violations whose
//! repairs partially overlap do not corrupt the graph. Every applied
//! operation is logged as an [`AppliedOp`] — the repair report, the cost
//! accounting (F7), and the quality metrics all consume this log.

use crate::cost::op_cost;
use crate::rule::{Action, Grr, PatternEdgeRef, Target, ValueSource};
use grepair_graph::{EditCosts, EdgeId, Graph, GraphError, NodeId, Value};
use grepair_match::{Match, Pattern, TouchSet};
use rustc_hash::FxHashMap;
use serde::{Deserialize, Serialize};

/// A concrete repair operation that was applied to the graph.
///
/// Labels and keys are recorded as strings so the log survives graph
/// re-interning and can be serialized into experiment artifacts.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum AppliedOp {
    /// A node was created.
    InsertNode {
        /// New node.
        node: NodeId,
        /// Its label.
        label: String,
        /// Attributes set at creation, in application order. Recorded in
        /// full (not just a count) so the op log is *replayable* — a
        /// durable store can re-derive the exact graph state from the
        /// log alone.
        attrs: Vec<(String, Value)>,
    },
    /// An edge was created.
    InsertEdge {
        /// New edge.
        edge: EdgeId,
        /// Source node.
        src: NodeId,
        /// Target node.
        dst: NodeId,
        /// Relation label.
        label: String,
    },
    /// A node (and its incident edges) was deleted.
    DeleteNode {
        /// Deleted node.
        node: NodeId,
        /// Label it carried.
        label: String,
        /// Incident edges removed along with it.
        removed_edges: usize,
    },
    /// An edge was deleted.
    DeleteEdge {
        /// Deleted edge.
        edge: EdgeId,
        /// Its source.
        src: NodeId,
        /// Its target.
        dst: NodeId,
        /// Its label.
        label: String,
    },
    /// A node was relabelled.
    RelabelNode {
        /// The node.
        node: NodeId,
        /// Previous label.
        from: String,
        /// New label.
        to: String,
    },
    /// An attribute was set (created or overwritten).
    SetAttr {
        /// The node.
        node: NodeId,
        /// Attribute key.
        key: String,
        /// New value.
        value: Value,
        /// Previous value, if overwritten.
        old: Option<Value>,
    },
    /// An attribute was removed.
    RemoveAttr {
        /// The node.
        node: NodeId,
        /// Attribute key.
        key: String,
        /// Removed value.
        old: Value,
    },
    /// An edge was relabelled.
    RelabelEdge {
        /// The edge.
        edge: EdgeId,
        /// Previous label.
        from: String,
        /// New label.
        to: String,
    },
    /// Two nodes were merged.
    Merge {
        /// Surviving node.
        keep: NodeId,
        /// Absorbed node.
        merged: NodeId,
        /// Edges redirected onto `keep`.
        rewired: usize,
        /// Parallel duplicates dropped.
        dropped: usize,
    },
}

/// Result of applying one rule to one match.
#[derive(Clone, Debug, Default)]
pub struct Applied {
    /// Concrete operations performed (no-ops omitted).
    pub ops: Vec<AppliedOp>,
    /// Nodes whose structure/attributes changed — the delta anchor set for
    /// incremental re-matching. Includes surviving neighbors of deleted
    /// nodes and endpoints of touched edges.
    pub touched: TouchSet,
    /// Summed edit cost of `ops`.
    pub cost: f64,
}

impl Applied {
    /// Whether the application changed anything.
    pub fn is_noop(&self) -> bool {
        self.ops.is_empty()
    }
}

/// Apply `rule`'s actions to `g` under the variable assignment `m`.
///
/// The caller is expected to have [`revalidate`]d the match; stale element
/// references inside the match degrade to no-ops rather than errors, so a
/// repair raced by an earlier repair in the same round is safe.
pub fn apply_rule(
    g: &mut Graph,
    rule: &Grr,
    m: &Match,
    costs: &EditCosts,
) -> Result<Applied, GraphError> {
    let mut out = Applied::default();
    let mut fresh: FxHashMap<&str, NodeId> = FxHashMap::default();

    let node_of = |t: &Target, fresh: &FxHashMap<&str, NodeId>| -> Option<NodeId> {
        match t {
            Target::Var(v) => m.nodes.get(v.index()).copied(),
            Target::Fresh(b) => fresh.get(b.as_str()).copied(),
        }
    };

    for action in &rule.actions {
        match action {
            Action::InsertNode {
                binder,
                label,
                attrs,
            } => {
                let l = g.label(label);
                let node = g.add_node(l);
                let mut set = Vec::new();
                for (key, src) in attrs {
                    let value = match src {
                        ValueSource::Const(v) => Some(v.clone()),
                        ValueSource::CopyAttr(v, k) => {
                            let src_node = m.nodes[v.index()];
                            g.try_attr_key(k)
                                .and_then(|kk| g.attr(src_node, kk))
                                .cloned()
                        }
                    };
                    if let Some(value) = value {
                        let kk = g.attr_key(key);
                        g.set_attr(node, kk, value.clone())?;
                        set.push((key.clone(), value));
                    }
                }
                fresh.insert(binder.as_str(), node);
                out.touched.insert(node);
                record(&mut out, costs, AppliedOp::InsertNode {
                    node,
                    label: label.clone(),
                    attrs: set,
                });
            }
            Action::InsertEdge { src, dst, label } => {
                let (Some(s), Some(d)) = (node_of(src, &fresh), node_of(dst, &fresh)) else {
                    continue;
                };
                if !g.contains_node(s) || !g.contains_node(d) {
                    continue; // deleted by an earlier racing repair
                }
                let l = g.label(label);
                if g.has_edge_labeled(s, d, l) {
                    continue; // idempotent
                }
                let edge = g.add_edge(s, d, l)?;
                out.touched.insert(s);
                out.touched.insert(d);
                record(&mut out, costs, AppliedOp::InsertEdge {
                    edge,
                    src: s,
                    dst: d,
                    label: label.clone(),
                });
            }
            Action::DeleteNode(v) => {
                let node = m.nodes[v.index()];
                if !g.contains_node(node) {
                    continue;
                }
                let label = g.label_name(g.node_label(node)?).to_owned();
                // Neighbors survive and their adjacency changes.
                let neighbors: Vec<NodeId> = g
                    .incident_edges(node)
                    .filter_map(|e| {
                        let er = g.edge(e).ok()?;
                        Some(if er.src == node { er.dst } else { er.src })
                    })
                    .filter(|&n| n != node)
                    .collect();
                let removed = g.remove_node(node)?;
                out.touched.extend(neighbors);
                record(&mut out, costs, AppliedOp::DeleteNode {
                    node,
                    label,
                    removed_edges: removed.len(),
                });
            }
            Action::DeleteEdge(PatternEdgeRef(i)) => {
                let Some(&edge) = m.edges.get(*i) else { continue };
                let Ok(er) = g.edge(edge) else { continue };
                let label = g.label_name(er.label).to_owned();
                g.remove_edge(edge)?;
                out.touched.insert(er.src);
                out.touched.insert(er.dst);
                record(&mut out, costs, AppliedOp::DeleteEdge {
                    edge,
                    src: er.src,
                    dst: er.dst,
                    label,
                });
            }
            Action::UpdateNode {
                node,
                set_label,
                set_attrs,
                del_attrs,
            } => {
                let n = m.nodes[node.index()];
                if !g.contains_node(n) {
                    continue;
                }
                if let Some(new_label) = set_label {
                    let from = g.label_name(g.node_label(n)?).to_owned();
                    if &from != new_label {
                        let l = g.label(new_label);
                        g.set_node_label(n, l)?;
                        out.touched.insert(n);
                        record(&mut out, costs, AppliedOp::RelabelNode {
                            node: n,
                            from,
                            to: new_label.clone(),
                        });
                    }
                }
                for (key, src) in set_attrs {
                    let value = match src {
                        ValueSource::Const(v) => Some(v.clone()),
                        ValueSource::CopyAttr(v, k) => {
                            let src_node = m.nodes[v.index()];
                            g.try_attr_key(k)
                                .and_then(|kk| g.attr(src_node, kk))
                                .cloned()
                        }
                    };
                    let Some(value) = value else { continue };
                    let kk = g.attr_key(key);
                    if g.attr(n, kk) == Some(&value) {
                        continue; // idempotent
                    }
                    let old = g.set_attr(n, kk, value.clone())?;
                    out.touched.insert(n);
                    record(&mut out, costs, AppliedOp::SetAttr {
                        node: n,
                        key: key.clone(),
                        value,
                        old,
                    });
                }
                for key in del_attrs {
                    let Some(kk) = g.try_attr_key(key) else { continue };
                    if let Some(old) = g.remove_attr(n, kk)? {
                        out.touched.insert(n);
                        record(&mut out, costs, AppliedOp::RemoveAttr {
                            node: n,
                            key: key.clone(),
                            old,
                        });
                    }
                }
            }
            Action::UpdateEdgeLabel {
                edge: PatternEdgeRef(i),
                label,
            } => {
                let Some(&edge) = m.edges.get(*i) else { continue };
                let Ok(er) = g.edge(edge) else { continue };
                let from = g.label_name(er.label).to_owned();
                if &from == label {
                    continue;
                }
                let l = g.label(label);
                g.set_edge_label(edge, l)?;
                out.touched.insert(er.src);
                out.touched.insert(er.dst);
                record(&mut out, costs, AppliedOp::RelabelEdge {
                    edge,
                    from,
                    to: label.clone(),
                });
            }
            Action::MergeNodes { keep, merged } => {
                let k = m.nodes[keep.index()];
                let d = m.nodes[merged.index()];
                if !g.contains_node(k) || !g.contains_node(d) || k == d {
                    continue;
                }
                let outcome = g.merge_nodes(k, d, true)?;
                out.touched.insert(k);
                for &e in &outcome.rewired {
                    if let Ok(er) = g.edge(e) {
                        out.touched.insert(er.src);
                        out.touched.insert(er.dst);
                    }
                }
                record(&mut out, costs, AppliedOp::Merge {
                    keep: k,
                    merged: d,
                    rewired: outcome.rewired.len(),
                    dropped: outcome.dropped.len(),
                });
            }
        }
    }
    Ok(out)
}

fn record(out: &mut Applied, costs: &EditCosts, op: AppliedOp) {
    out.cost += op_cost(&op, costs);
    out.ops.push(op);
}

/// Re-check a previously found match against the current graph state,
/// refreshing witness edges (a deleted witness may have a surviving
/// parallel edge). Returns `false` if the match no longer holds.
pub fn revalidate(g: &Graph, pattern: &Pattern, m: &mut Match) -> bool {
    // Nodes alive with required labels.
    for (i, pn) in pattern.nodes.iter().enumerate() {
        let n = m.nodes[i];
        let Ok(label) = g.node_label(n) else {
            return false;
        };
        if let Some(want) = &pn.label {
            if g.label_name(label) != want {
                return false;
            }
        }
    }
    // Injectivity can only be violated by merges: check pairwise.
    for i in 0..m.nodes.len() {
        for j in (i + 1)..m.nodes.len() {
            if m.nodes[i] == m.nodes[j] {
                return false;
            }
        }
    }
    // Positive edges, refreshing witnesses.
    for (i, pe) in pattern.edges.iter().enumerate() {
        let s = m.nodes[pe.src.index()];
        let d = m.nodes[pe.dst.index()];
        let found = match &pe.label {
            Some(name) => g.try_label(name).and_then(|l| g.find_edge(s, d, l)),
            None => g.find_edge_any(s, d),
        };
        match found {
            Some(e) => m.edges[i] = e,
            None => return false,
        }
    }
    // Negative edges.
    for pe in &pattern.neg_edges {
        let s = m.nodes[pe.src.index()];
        let d = m.nodes[pe.dst.index()];
        let exists = match &pe.label {
            Some(name) => g
                .try_label(name)
                .map(|l| g.has_edge_labeled(s, d, l))
                .unwrap_or(false),
            None => g.edges_between(s, d).next().is_some(),
        };
        if exists {
            return false;
        }
    }
    // Constraints.
    for c in &pattern.constraints {
        if !eval_constraint(g, c, &m.nodes) {
            return false;
        }
    }
    true
}

fn eval_constraint(g: &Graph, c: &grepair_match::Constraint, nodes: &[NodeId]) -> bool {
    use grepair_match::{Constraint, Rhs};
    let attr_of = |v: grepair_match::Var, key: &str| -> Option<&Value> {
        g.try_attr_key(key).and_then(|k| g.attr(nodes[v.index()], k))
    };
    let has_dir_edge = |v: &grepair_match::Var, label: &Option<String>, out: bool| -> bool {
        let n = nodes[v.index()];
        let lid = label.as_ref().and_then(|name| g.try_label(name));
        if label.is_some() && lid.is_none() {
            return false;
        }
        let edges: Vec<_> = if out {
            g.out_edges(n).collect()
        } else {
            g.in_edges(n).collect()
        };
        edges.into_iter().any(|e| match lid {
            None => true,
            Some(l) => g.edge(e).map(|er| er.label == l).unwrap_or(false),
        })
    };
    match c {
        Constraint::HasAttr(v, k) => attr_of(*v, k).is_some(),
        Constraint::MissingAttr(v, k) => attr_of(*v, k).is_none(),
        Constraint::NoOutEdge(v, l) => !has_dir_edge(v, l, true),
        Constraint::NoInEdge(v, l) => !has_dir_edge(v, l, false),
        Constraint::Cmp { var, key, op, rhs } => {
            let Some(lhs) = attr_of(*var, key) else {
                return false;
            };
            match rhs {
                Rhs::Const(v) => op.eval(lhs, v),
                Rhs::Attr(o, k2) => match attr_of(*o, k2) {
                    Some(r) => op.eval(lhs, r),
                    None => false,
                },
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rule::Category;
    use grepair_match::{Matcher, Pattern, Var};

    /// Person lives in city with country; missing citizenship.
    fn incompleteness_fixture() -> (Graph, Grr) {
        let mut g = Graph::new();
        let x = g.add_node_named("Person");
        let c = g.add_node_named("City");
        let k = g.add_node_named("Country");
        g.add_edge_named(x, c, "livesIn").unwrap();
        g.add_edge_named(c, k, "inCountry").unwrap();

        let mut b = Pattern::builder();
        let vx = b.node("x", Some("Person"));
        let vc = b.node("c", Some("City"));
        let vk = b.node("k", Some("Country"));
        b.edge(vx, vc, "livesIn");
        b.edge(vc, vk, "inCountry");
        b.neg_edge(vx, vk, "citizenOf");
        let rule = Grr::new(
            "add-citizenship",
            Category::Incompleteness,
            b.build().unwrap(),
            vec![Action::InsertEdge {
                src: Target::Var(vx),
                dst: Target::Var(vk),
                label: "citizenOf".into(),
            }],
        )
        .unwrap();
        (g, rule)
    }

    #[test]
    fn insert_edge_repair_eliminates_violation() {
        let (mut g, rule) = incompleteness_fixture();
        let matches = Matcher::new(&g).find_all(&rule.pattern);
        assert_eq!(matches.len(), 1);
        let applied = apply_rule(&mut g, &rule, &matches[0], &EditCosts::default()).unwrap();
        assert_eq!(applied.ops.len(), 1);
        assert!(applied.cost > 0.0);
        assert!(Matcher::new(&g).find_all(&rule.pattern).is_empty());
        // Idempotent: applying again is a no-op.
        let again = apply_rule(&mut g, &rule, &matches[0], &EditCosts::default()).unwrap();
        assert!(again.is_noop());
        g.check_invariants().unwrap();
    }

    #[test]
    fn insert_node_with_binder_and_copied_attr() {
        let mut g = Graph::new();
        let x = g.add_node_named("Person");
        let name_k = g.attr_key("name");
        g.set_attr(x, name_k, Value::from("Ann")).unwrap();

        let mut b = Pattern::builder();
        let vx = b.node("x", Some("Person"));
        b.missing_attr(vx, "profileId");
        let rule = Grr::new(
            "create-profile",
            Category::Incompleteness,
            b.build().unwrap(),
            vec![
                Action::InsertNode {
                    binder: "p".into(),
                    label: "Profile".into(),
                    attrs: vec![
                        ("owner".into(), ValueSource::CopyAttr(vx, "name".into())),
                        ("ghost".into(), ValueSource::CopyAttr(vx, "missing".into())),
                    ],
                },
                Action::InsertEdge {
                    src: Target::Var(vx),
                    dst: Target::Fresh("p".into()),
                    label: "hasProfile".into(),
                },
                Action::UpdateNode {
                    node: vx,
                    set_label: None,
                    set_attrs: vec![(
                        "profileId".into(),
                        ValueSource::Const(Value::Int(1)),
                    )],
                    del_attrs: vec![],
                },
            ],
        )
        .unwrap();
        let matches = Matcher::new(&g).find_all(&rule.pattern);
        assert_eq!(matches.len(), 1);
        let applied = apply_rule(&mut g, &rule, &matches[0], &EditCosts::default()).unwrap();
        // insert-node + insert-edge + set-attr (the absent copy source was skipped).
        assert_eq!(applied.ops.len(), 3);
        let profile = g
            .nodes()
            .find(|&n| g.label_name(g.node_label(n).unwrap()) == "Profile")
            .unwrap();
        let owner = g.try_attr_key("owner").unwrap();
        assert_eq!(g.attr(profile, owner), Some(&Value::from("Ann")));
        assert!(g.try_attr_key("ghost").is_none() || g.attr(profile, g.try_attr_key("ghost").unwrap()).is_none());
        assert!(Matcher::new(&g).find_all(&rule.pattern).is_empty());
        g.check_invariants().unwrap();
    }

    #[test]
    fn delete_and_update_ops() {
        let mut g = Graph::new();
        let a = g.add_node_named("Person");
        let b_ = g.add_node_named("Person");
        g.add_edge_named(a, b_, "marriedTo").unwrap();
        g.add_edge_named(b_, a, "marriedTo").unwrap();
        g.add_edge_named(a, a, "marriedTo").unwrap(); // conflict: self marriage

        let mut pb = Pattern::builder();
        let vx = pb.node("x", Some("Person"));
        pb.edge(vx, vx, "marriedTo");
        let rule = Grr::new(
            "no-self-marriage",
            Category::Conflict,
            pb.build().unwrap(),
            vec![Action::DeleteEdge(PatternEdgeRef(0))],
        )
        .unwrap();
        let matches = Matcher::new(&g).find_all(&rule.pattern);
        assert_eq!(matches.len(), 1);
        let applied = apply_rule(&mut g, &rule, &matches[0], &EditCosts::default()).unwrap();
        assert!(matches!(applied.ops[0], AppliedOp::DeleteEdge { .. }));
        assert_eq!(g.num_edges(), 2);
        g.check_invariants().unwrap();
    }

    #[test]
    fn merge_repair() {
        let mut g = Graph::new();
        let ssn = g.attr_key("ssn");
        let a = g.add_node_named("Person");
        let b_ = g.add_node_named("Person");
        g.set_attr(a, ssn, Value::Int(123)).unwrap();
        g.set_attr(b_, ssn, Value::Int(123)).unwrap();
        let city = g.add_node_named("City");
        g.add_edge_named(a, city, "livesIn").unwrap();
        g.add_edge_named(b_, city, "livesIn").unwrap();

        let mut pb = Pattern::builder();
        let vx = pb.node("x", Some("Person"));
        let vy = pb.node("y", Some("Person"));
        pb.attr_eq_var(vx, "ssn", vy, "ssn");
        let rule = Grr::new(
            "dedup-person",
            Category::Redundancy,
            pb.build().unwrap(),
            vec![Action::MergeNodes {
                keep: vx,
                merged: vy,
            }],
        )
        .unwrap();
        let mut matches = Matcher::new(&g).find_all(&rule.pattern);
        assert_eq!(matches.len(), 2); // symmetric
        matches.sort_by_key(|m| m.nodes.clone());
        let applied = apply_rule(&mut g, &rule, &matches[0], &EditCosts::default()).unwrap();
        assert!(matches!(applied.ops[0], AppliedOp::Merge { .. }));
        assert_eq!(g.num_nodes(), 2);
        // Duplicate livesIn edge deduped by merge.
        assert_eq!(g.num_edges(), 1);
        assert!(Matcher::new(&g).find_all(&rule.pattern).is_empty());
        // The stale symmetric match degrades to a no-op.
        let again = apply_rule(&mut g, &rule, &matches[1], &EditCosts::default()).unwrap();
        assert!(again.is_noop());
        g.check_invariants().unwrap();
    }

    #[test]
    fn revalidate_detects_staleness_and_refreshes_witnesses() {
        let (mut g, rule) = incompleteness_fixture();
        let mut m = Matcher::new(&g).find_all(&rule.pattern).remove(0);
        assert!(revalidate(&g, &rule.pattern, &mut m));

        // Add a parallel livesIn edge, delete the witness: match survives
        // with a refreshed witness.
        let x = m.nodes[0];
        let c = m.nodes[1];
        let lives = g.try_label("livesIn").unwrap();
        let old_witness = m.edges[0];
        let parallel = g.add_edge(x, c, lives).unwrap();
        g.remove_edge(old_witness).unwrap();
        assert!(revalidate(&g, &rule.pattern, &mut m));
        assert_eq!(m.edges[0], parallel);

        // Satisfy the negative edge: match dies.
        let k = m.nodes[2];
        g.add_edge_named(x, k, "citizenOf").unwrap();
        assert!(!revalidate(&g, &rule.pattern, &mut m));
    }

    #[test]
    fn revalidate_detects_deleted_node_and_label_change() {
        let (mut g, rule) = incompleteness_fixture();
        let mut m = Matcher::new(&g).find_all(&rule.pattern).remove(0);
        let robot = g.label("Robot");
        g.set_node_label(m.nodes[0], robot).unwrap();
        assert!(!revalidate(&g, &rule.pattern, &mut m.clone()));
        let person = g.try_label("Person").unwrap();
        g.set_node_label(m.nodes[0], person).unwrap();
        assert!(revalidate(&g, &rule.pattern, &mut m.clone()));
        g.remove_node(m.nodes[2]).unwrap();
        assert!(!revalidate(&g, &rule.pattern, &mut m));
    }

    #[test]
    fn update_node_relabel_and_attr_semantics() {
        let mut g = Graph::new();
        let n = g.add_node_named("Typo");
        let k = g.attr_key("verified");
        g.set_attr(n, k, Value::Bool(false)).unwrap();

        let mut pb = Pattern::builder();
        let vx = pb.node("x", Some("Typo"));
        let rule = Grr::new(
            "fix-label",
            Category::Conflict,
            pb.build().unwrap(),
            vec![Action::UpdateNode {
                node: vx,
                set_label: Some("Person".into()),
                set_attrs: vec![("verified".into(), ValueSource::Const(Value::Bool(true)))],
                del_attrs: vec!["verified_old".into()],
            }],
        )
        .unwrap();
        let matches = Matcher::new(&g).find_all(&rule.pattern);
        let applied = apply_rule(&mut g, &rule, &matches[0], &EditCosts::default()).unwrap();
        // relabel + set-attr; del of absent attr is a no-op.
        assert_eq!(applied.ops.len(), 2);
        assert_eq!(g.label_name(g.node_label(n).unwrap()), "Person");
        assert_eq!(g.attr(n, k), Some(&Value::Bool(true)));
    }

    #[test]
    fn touched_set_covers_neighbors_of_deleted_node() {
        let mut g = Graph::new();
        let bad = g.add_node_named("Spam");
        let v1 = g.add_node_named("Person");
        let v2 = g.add_node_named("Person");
        g.add_edge_named(bad, v1, "follows").unwrap();
        g.add_edge_named(v2, bad, "follows").unwrap();

        let mut pb = Pattern::builder();
        let vx = pb.node("x", Some("Spam"));
        let _ = vx;
        let rule = Grr::new(
            "kill-spam",
            Category::Conflict,
            pb.build().unwrap(),
            vec![Action::DeleteNode(Var(0))],
        )
        .unwrap();
        let matches = Matcher::new(&g).find_all(&rule.pattern);
        let applied = apply_rule(&mut g, &rule, &matches[0], &EditCosts::default()).unwrap();
        assert!(applied.touched.contains(&v1));
        assert!(applied.touched.contains(&v2));
        assert!(!g.contains_node(bad));
    }
}
