//! Text DSL for Graph Repairing Rules.
//!
//! Rules ship as data: rule sets are mined, curated, and exchanged as
//! files. The DSL is a compact Cypher-flavoured syntax:
//!
//! ```text
//! rule add_citizenship [incompleteness] priority 2
//! match (x:Person)-[livesIn]->(c:City)-[inCountry]->(k:Country)
//! where not (x)-[citizenOf]->(k)
//! repair insert edge (x)-[citizenOf]->(k)
//!
//! rule dedup_person [redundancy]
//! match (x:Person), (y:Person)
//! where x.ssn == y.ssn
//! repair merge y into x
//! ```
//!
//! Grammar (keywords case-insensitive, `#` starts a line comment):
//!
//! ```text
//! rule    := "rule" NAME [ "[" category "]" ] [ "priority" INT ]
//!            "match" chain ("," chain)*
//!            [ "where" cond ("," cond)* ]
//!            "repair" action ((";" | ",") action)*
//! chain   := node ( "-[" rel "]->" node )*
//! node    := "(" VAR [ ":" LABEL ] ")"
//! rel     := NAME | "*"
//! cond    := "not" node "-[" rel "]->" node
//!          | "missing" "(" VAR "." KEY ")" | "has" "(" VAR "." KEY ")"
//!          | VAR "." KEY op rhs
//! op      := "==" | "!=" | "<" | "<=" | ">" | ">="
//! rhs     := literal | VAR "." KEY
//! action  := "insert node" "(" BINDER ":" LABEL [ "{" KEY ":" rhs ("," KEY ":" rhs)* "}" ] ")"
//!          | "insert edge" node "-[" NAME "]->" node
//!          | "delete node" VAR
//!          | "delete edge" node "-[" rel "]->" node      (a matched edge)
//!          | "relabel node" VAR "to" LABEL
//!          | "relabel edge" node "-[" rel "]->" node "to" NAME
//!          | "set" VAR "." KEY "=" rhs
//!          | "unset" VAR "." KEY
//!          | "merge" VAR "into" VAR
//! ```

use crate::rule::{Action, Category, Grr, PatternEdgeRef, Target, ValueSource};
use grepair_match::{CmpOp, Constraint, Pattern, PatternEdge, PatternNode, Rhs, Var};
use grepair_graph::Value;
use std::fmt;

/// DSL parse error with line information.
#[derive(Clone, Debug, PartialEq)]
pub struct ParseError {
    /// 1-based source line of the offending token.
    pub line: usize,
    /// Explanation.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Source span of one rule definition: 1-based, inclusive line/column
/// range from the `rule` keyword to the last token of the final repair
/// action. Produced by [`parse_rules_with_spans`] so diagnostics (lints,
/// rule-validation errors) can point at the offending definition rather
/// than just the file.
#[derive(Clone, Debug, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct RuleSpan {
    /// Name of the rule this span covers.
    pub name: String,
    /// Line of the `rule` keyword.
    pub start_line: usize,
    /// Column of the `rule` keyword.
    pub start_col: usize,
    /// Line of the rule's last token.
    pub end_line: usize,
    /// Column of the rule's last token.
    pub end_col: usize,
}

impl fmt::Display for RuleSpan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.start_line, self.start_col)
    }
}

/// Parse a whole rules file (zero or more rules).
pub fn parse_rules(src: &str) -> Result<Vec<Grr>, ParseError> {
    parse_rules_with_spans(src).map(|(rules, _)| rules)
}

/// Parse a whole rules file, also returning one [`RuleSpan`] per rule
/// (same order as the rules).
pub fn parse_rules_with_spans(src: &str) -> Result<(Vec<Grr>, Vec<RuleSpan>), ParseError> {
    let tokens = lex(src)?;
    let mut p = Parser { tokens, pos: 0 };
    let mut rules = Vec::new();
    let mut spans = Vec::new();
    while !p.at_end() {
        let (rule, span) = p.rule()?;
        rules.push(rule);
        spans.push(span);
    }
    Ok((rules, spans))
}

/// Parse exactly one rule.
pub fn parse_rule(src: &str) -> Result<Grr, ParseError> {
    let rules = parse_rules(src)?;
    match rules.len() {
        1 => Ok(rules.into_iter().next().unwrap()),
        n => Err(ParseError {
            line: 1,
            message: format!("expected exactly one rule, found {n}"),
        }),
    }
}

// ---- lexer ---------------------------------------------------------------

#[derive(Clone, Debug, PartialEq)]
enum Tok {
    Ident(String),
    Int(i64),
    Float(f64),
    Str(String),
    LParen,
    RParen,
    LBrack,
    RBrack,
    LBrace,
    RBrace,
    Colon,
    Comma,
    Semi,
    Dot,
    Star,
    Assign,
    EqEq,
    Ne,
    Le,
    Ge,
    Lt,
    Gt,
    /// `-[`: edge opener.
    EdgeOpen,
    /// `]->`: edge closer.
    EdgeClose,
}

#[derive(Clone, Debug)]
struct Sp {
    tok: Tok,
    line: usize,
    col: usize,
}

fn lex(src: &str) -> Result<Vec<Sp>, ParseError> {
    let mut out = Vec::new();
    let mut line = 1usize;
    let mut line_start = 0usize;
    let bytes: Vec<char> = src.chars().collect();
    let mut i = 0usize;
    let err = |line: usize, msg: String| ParseError { line, message: msg };
    while i < bytes.len() {
        let c = bytes[i];
        // 1-based column (in chars) of the token starting here.
        let col = i - line_start + 1;
        match c {
            '\n' => {
                line += 1;
                line_start = i + 1;
                i += 1;
            }
            ' ' | '\t' | '\r' => i += 1,
            '#' => {
                while i < bytes.len() && bytes[i] != '\n' {
                    i += 1;
                }
            }
            '(' => {
                out.push(Sp { tok: Tok::LParen, line, col });
                i += 1;
            }
            ')' => {
                out.push(Sp { tok: Tok::RParen, line, col });
                i += 1;
            }
            '[' => {
                out.push(Sp { tok: Tok::LBrack, line, col });
                i += 1;
            }
            ']' => {
                // "]->" closes an edge.
                if bytes.get(i + 1) == Some(&'-') && bytes.get(i + 2) == Some(&'>') {
                    out.push(Sp { tok: Tok::EdgeClose, line, col });
                    i += 3;
                } else {
                    out.push(Sp { tok: Tok::RBrack, line, col });
                    i += 1;
                }
            }
            '{' => {
                out.push(Sp { tok: Tok::LBrace, line, col });
                i += 1;
            }
            '}' => {
                out.push(Sp { tok: Tok::RBrace, line, col });
                i += 1;
            }
            ':' => {
                out.push(Sp { tok: Tok::Colon, line, col });
                i += 1;
            }
            ',' => {
                out.push(Sp { tok: Tok::Comma, line, col });
                i += 1;
            }
            ';' => {
                out.push(Sp { tok: Tok::Semi, line, col });
                i += 1;
            }
            '.' => {
                out.push(Sp { tok: Tok::Dot, line, col });
                i += 1;
            }
            '*' => {
                out.push(Sp { tok: Tok::Star, line, col });
                i += 1;
            }
            '-' => {
                if bytes.get(i + 1) == Some(&'[') {
                    out.push(Sp { tok: Tok::EdgeOpen, line, col });
                    i += 2;
                } else if bytes.get(i + 1).is_some_and(|d| d.is_ascii_digit()) {
                    let (tok, ni) = lex_number(&bytes, i, line)?;
                    out.push(Sp { tok, line, col });
                    i = ni;
                } else {
                    return Err(err(line, "stray '-' (expected '-[' or a number)".into()));
                }
            }
            '=' => {
                if bytes.get(i + 1) == Some(&'=') {
                    out.push(Sp { tok: Tok::EqEq, line, col });
                    i += 2;
                } else {
                    out.push(Sp { tok: Tok::Assign, line, col });
                    i += 1;
                }
            }
            '!' => {
                if bytes.get(i + 1) == Some(&'=') {
                    out.push(Sp { tok: Tok::Ne, line, col });
                    i += 2;
                } else {
                    return Err(err(line, "stray '!' (expected '!=')".into()));
                }
            }
            '<' => {
                if bytes.get(i + 1) == Some(&'=') {
                    out.push(Sp { tok: Tok::Le, line, col });
                    i += 2;
                } else {
                    out.push(Sp { tok: Tok::Lt, line, col });
                    i += 1;
                }
            }
            '>' => {
                if bytes.get(i + 1) == Some(&'=') {
                    out.push(Sp { tok: Tok::Ge, line, col });
                    i += 2;
                } else {
                    out.push(Sp { tok: Tok::Gt, line, col });
                    i += 1;
                }
            }
            '"' => {
                let mut s = String::new();
                i += 1;
                loop {
                    match bytes.get(i) {
                        Some('"') => {
                            i += 1;
                            break;
                        }
                        Some('\\') => {
                            match bytes.get(i + 1) {
                                Some('"') => s.push('"'),
                                Some('\\') => s.push('\\'),
                                Some('n') => s.push('\n'),
                                other => {
                                    return Err(err(
                                        line,
                                        format!("bad escape {other:?} in string"),
                                    ))
                                }
                            }
                            i += 2;
                        }
                        Some(&ch) => {
                            if ch == '\n' {
                                return Err(err(line, "unterminated string".into()));
                            }
                            s.push(ch);
                            i += 1;
                        }
                        None => return Err(err(line, "unterminated string".into())),
                    }
                }
                out.push(Sp { tok: Tok::Str(s), line, col });
            }
            c if c.is_ascii_digit() => {
                let (tok, ni) = lex_number(&bytes, i, line)?;
                out.push(Sp { tok, line, col });
                i = ni;
            }
            c if c.is_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len() && (bytes[i].is_alphanumeric() || bytes[i] == '_') {
                    i += 1;
                }
                let word: String = bytes[start..i].iter().collect();
                out.push(Sp {
                    tok: Tok::Ident(word),
                    line,
                    col,
                });
            }
            other => return Err(err(line, format!("unexpected character {other:?}"))),
        }
    }
    Ok(out)
}

fn lex_number(bytes: &[char], mut i: usize, line: usize) -> Result<(Tok, usize), ParseError> {
    let start = i;
    if bytes[i] == '-' {
        i += 1;
    }
    while i < bytes.len() && bytes[i].is_ascii_digit() {
        i += 1;
    }
    let mut is_float = false;
    if i + 1 < bytes.len() && bytes[i] == '.' && bytes[i + 1].is_ascii_digit() {
        is_float = true;
        i += 1;
        while i < bytes.len() && bytes[i].is_ascii_digit() {
            i += 1;
        }
    }
    let text: String = bytes[start..i].iter().collect();
    let tok = if is_float {
        Tok::Float(text.parse().map_err(|_| ParseError {
            line,
            message: format!("bad float {text:?}"),
        })?)
    } else {
        Tok::Int(text.parse().map_err(|_| ParseError {
            line,
            message: format!("bad integer {text:?}"),
        })?)
    };
    Ok((tok, i))
}

// ---- parser ----------------------------------------------------------------

struct Parser {
    tokens: Vec<Sp>,
    pos: usize,
}

/// Pattern under construction, with name → var resolution.
#[derive(Default)]
struct PatternCtx {
    nodes: Vec<PatternNode>,
    edges: Vec<PatternEdge>,
    neg_edges: Vec<PatternEdge>,
    constraints: Vec<Constraint>,
}

impl PatternCtx {
    fn declare(&mut self, name: &str, label: Option<String>, line: usize) -> Result<Var, ParseError> {
        if let Some(i) = self.nodes.iter().position(|n| n.name == name) {
            // Re-mention: label must agree (or be omitted).
            if let Some(l) = label {
                match &self.nodes[i].label {
                    Some(prev) if *prev != l => {
                        return Err(ParseError {
                            line,
                            message: format!(
                                "variable {name:?} redeclared with label {l:?} (was {prev:?})"
                            ),
                        })
                    }
                    Some(_) => {}
                    None => self.nodes[i].label = Some(l),
                }
            }
            Ok(Var(i as u8))
        } else {
            if self.nodes.len() >= 64 {
                return Err(ParseError {
                    line,
                    message: "too many pattern variables (max 64)".into(),
                });
            }
            self.nodes.push(PatternNode {
                name: name.to_owned(),
                label,
            });
            Ok(Var((self.nodes.len() - 1) as u8))
        }
    }

    fn lookup(&self, name: &str, line: usize) -> Result<Var, ParseError> {
        self.nodes
            .iter()
            .position(|n| n.name == name)
            .map(|i| Var(i as u8))
            .ok_or_else(|| ParseError {
                line,
                message: format!("unknown variable {name:?} (declare it in the match clause)"),
            })
    }
}

impl Parser {
    fn at_end(&self) -> bool {
        self.pos >= self.tokens.len()
    }

    fn line(&self) -> usize {
        self.tokens
            .get(self.pos.min(self.tokens.len().saturating_sub(1)))
            .map(|t| t.line)
            .unwrap_or(1)
    }

    fn peek(&self) -> Option<&Tok> {
        self.tokens.get(self.pos).map(|t| &t.tok)
    }

    fn next(&mut self) -> Option<Tok> {
        let t = self.tokens.get(self.pos).map(|t| t.tok.clone());
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn err(&self, msg: impl Into<String>) -> ParseError {
        ParseError {
            line: self.line(),
            message: msg.into(),
        }
    }

    fn expect(&mut self, want: &Tok, what: &str) -> Result<(), ParseError> {
        match self.peek() {
            Some(t) if t == want => {
                self.pos += 1;
                Ok(())
            }
            other => Err(self.err(format!("expected {what}, found {other:?}"))),
        }
    }

    fn ident(&mut self, what: &str) -> Result<String, ParseError> {
        match self.next() {
            Some(Tok::Ident(s)) => Ok(s),
            other => Err(ParseError {
                line: self.line(),
                message: format!("expected {what}, found {other:?}"),
            }),
        }
    }

    /// Case-insensitive keyword check without consuming.
    fn peek_kw(&self, kw: &str) -> bool {
        matches!(self.peek(), Some(Tok::Ident(s)) if s.eq_ignore_ascii_case(kw))
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if self.peek_kw(kw) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_kw(&mut self, kw: &str) -> Result<(), ParseError> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            Err(self.err(format!("expected keyword {kw:?}, found {:?}", self.peek())))
        }
    }

    /// (line, col) of the token at `idx`, for span bookkeeping.
    fn tok_pos(&self, idx: usize) -> (usize, usize) {
        self.tokens
            .get(idx.min(self.tokens.len().saturating_sub(1)))
            .map(|t| (t.line, t.col))
            .unwrap_or((1, 1))
    }

    // rule := "rule" NAME [ "[" category "]" ] [ "priority" INT ] match … repair …
    fn rule(&mut self) -> Result<(Grr, RuleSpan), ParseError> {
        let (start_line, start_col) = self.tok_pos(self.pos);
        self.expect_kw("rule")?;
        let name = self.ident("rule name")?;
        let mut category = Category::Conflict;
        if self.peek() == Some(&Tok::LBrack) {
            self.pos += 1;
            let cat = self.ident("category")?;
            category = match cat.to_ascii_lowercase().as_str() {
                "incompleteness" => Category::Incompleteness,
                "conflict" => Category::Conflict,
                "redundancy" => Category::Redundancy,
                other => {
                    return Err(self.err(format!(
                        "unknown category {other:?} (expected incompleteness/conflict/redundancy)"
                    )))
                }
            };
            self.expect(&Tok::RBrack, "']'")?;
        }
        let mut priority = 0i32;
        if self.eat_kw("priority") {
            match self.next() {
                Some(Tok::Int(i)) => priority = i as i32,
                other => return Err(self.err(format!("expected integer priority, found {other:?}"))),
            }
        }

        let mut ctx = PatternCtx::default();
        self.expect_kw("match")?;
        loop {
            self.chain(&mut ctx)?;
            if self.peek() == Some(&Tok::Comma) {
                self.pos += 1;
            } else {
                break;
            }
        }
        if self.eat_kw("where") {
            loop {
                self.cond(&mut ctx)?;
                if self.peek() == Some(&Tok::Comma) {
                    self.pos += 1;
                } else {
                    break;
                }
            }
        }
        self.expect_kw("repair")?;
        let mut actions = Vec::new();
        let mut binders: Vec<String> = Vec::new();
        loop {
            actions.push(self.action(&ctx, &mut binders)?);
            if matches!(self.peek(), Some(Tok::Semi | Tok::Comma)) {
                self.pos += 1;
            } else {
                break;
            }
        }

        let pattern = Pattern {
            nodes: ctx.nodes,
            edges: ctx.edges,
            neg_edges: ctx.neg_edges,
            constraints: ctx.constraints,
        };
        let grr = Grr {
            name,
            category,
            pattern,
            actions,
            priority,
        };
        let (end_line, end_col) = self.tok_pos(self.pos.saturating_sub(1));
        let span = RuleSpan {
            name: grr.name.clone(),
            start_line,
            start_col,
            end_line,
            end_col,
        };
        // Point validation errors at the rule definition, not at whatever
        // token the parser happens to sit on after it.
        grr.validate().map_err(|e| ParseError {
            line: span.start_line,
            message: format!("rule {:?}: {e}", grr.name),
        })?;
        Ok((grr, span))
    }

    // node := "(" VAR [":" LABEL] ")"
    fn node(&mut self, ctx: &mut PatternCtx) -> Result<Var, ParseError> {
        self.expect(&Tok::LParen, "'('")?;
        let name = self.ident("variable name")?;
        let label = if self.peek() == Some(&Tok::Colon) {
            self.pos += 1;
            Some(self.ident("label")?)
        } else {
            None
        };
        let line = self.line();
        let v = ctx.declare(&name, label, line)?;
        self.expect(&Tok::RParen, "')'")?;
        Ok(v)
    }

    // rel := NAME | "*"
    fn rel(&mut self) -> Result<Option<String>, ParseError> {
        match self.next() {
            Some(Tok::Ident(s)) => Ok(Some(s)),
            Some(Tok::Star) => Ok(None),
            other => Err(self.err(format!("expected relation name or '*', found {other:?}"))),
        }
    }

    // chain := node ( "-[" rel "]->" node )*
    fn chain(&mut self, ctx: &mut PatternCtx) -> Result<(), ParseError> {
        let mut prev = self.node(ctx)?;
        while self.peek() == Some(&Tok::EdgeOpen) {
            self.pos += 1;
            let label = self.rel()?;
            self.expect(&Tok::EdgeClose, "']->'")?;
            let next = self.node(ctx)?;
            ctx.edges.push(PatternEdge {
                src: prev,
                dst: next,
                label,
            });
            prev = next;
        }
        Ok(())
    }

    // cond := not-edge | missing(..) | has(..) | comparison
    fn cond(&mut self, ctx: &mut PatternCtx) -> Result<(), ParseError> {
        if self.eat_kw("not") {
            // Endpoints must be matched variables or the `(*)` wildcard;
            // `not (c)-[r]->(*)` means "c has no outgoing r edge at all".
            let src = self.neg_endpoint(ctx)?;
            self.expect(&Tok::EdgeOpen, "'-['")?;
            let label = self.rel()?;
            self.expect(&Tok::EdgeClose, "']->'")?;
            let dst = self.neg_endpoint(ctx)?;
            match (src, dst) {
                (Some(s), Some(d)) => ctx.neg_edges.push(PatternEdge {
                    src: s,
                    dst: d,
                    label,
                }),
                (Some(s), None) => ctx.constraints.push(Constraint::NoOutEdge(s, label)),
                (None, Some(d)) => ctx.constraints.push(Constraint::NoInEdge(d, label)),
                (None, None) => {
                    return Err(self.err("at most one endpoint of 'not' may be '(*)'"))
                }
            }
            return Ok(());
        }
        if self.eat_kw("missing") || self.peek_kw("has") {
            let is_missing = !self.eat_kw("has");
            self.expect(&Tok::LParen, "'('")?;
            let var_name = self.ident("variable")?;
            self.expect(&Tok::Dot, "'.'")?;
            let key = self.ident("attribute key")?;
            self.expect(&Tok::RParen, "')'")?;
            let line = self.line();
            let v = ctx.lookup(&var_name, line)?;
            ctx.constraints.push(if is_missing {
                Constraint::MissingAttr(v, key)
            } else {
                Constraint::HasAttr(v, key)
            });
            return Ok(());
        }
        // comparison: VAR "." KEY op rhs
        let var_name = self.ident("variable")?;
        self.expect(&Tok::Dot, "'.'")?;
        let key = self.ident("attribute key")?;
        let op = match self.next() {
            Some(Tok::EqEq) => CmpOp::Eq,
            Some(Tok::Ne) => CmpOp::Ne,
            Some(Tok::Lt) => CmpOp::Lt,
            Some(Tok::Le) => CmpOp::Le,
            Some(Tok::Gt) => CmpOp::Gt,
            Some(Tok::Ge) => CmpOp::Ge,
            other => return Err(self.err(format!("expected comparison operator, found {other:?}"))),
        };
        let rhs = self.rhs(ctx)?;
        let line = self.line();
        let var = ctx.lookup(&var_name, line)?;
        ctx.constraints.push(Constraint::Cmp { var, key, op, rhs });
        Ok(())
    }

    /// Endpoint of a `not` condition: `(var)` (must be declared in the
    /// match clause — negative conditions cannot introduce variables, which
    /// would silently flip the quantifier from "no edge" to "some node
    /// without an edge") or `(*)`.
    fn neg_endpoint(&mut self, ctx: &mut PatternCtx) -> Result<Option<Var>, ParseError> {
        self.expect(&Tok::LParen, "'('")?;
        let out = match self.next() {
            Some(Tok::Star) => None,
            Some(Tok::Ident(name)) => {
                let label = if self.peek() == Some(&Tok::Colon) {
                    self.pos += 1;
                    Some(self.ident("label")?)
                } else {
                    None
                };
                let line = self.line();
                if !ctx.nodes.iter().any(|n| n.name == name) {
                    return Err(ParseError {
                        line,
                        message: format!(
                            "variable {name:?} in 'not' is not bound by the match clause; \
                             use '(*)' for \"no such edge to any node\""
                        ),
                    });
                }
                Some(ctx.declare(&name, label, line)?)
            }
            other => {
                return Err(self.err(format!("expected variable or '*', found {other:?}")))
            }
        };
        self.expect(&Tok::RParen, "')'")?;
        Ok(out)
    }

    // rhs := literal | VAR "." KEY
    fn rhs(&mut self, ctx: &PatternCtx) -> Result<Rhs, ParseError> {
        match self.next() {
            Some(Tok::Int(i)) => Ok(Rhs::Const(Value::Int(i))),
            Some(Tok::Float(f)) => Ok(Rhs::Const(Value::Float(f))),
            Some(Tok::Str(s)) => Ok(Rhs::Const(Value::Str(s))),
            Some(Tok::Ident(w)) if w.eq_ignore_ascii_case("true") => {
                Ok(Rhs::Const(Value::Bool(true)))
            }
            Some(Tok::Ident(w)) if w.eq_ignore_ascii_case("false") => {
                Ok(Rhs::Const(Value::Bool(false)))
            }
            Some(Tok::Ident(var_name)) => {
                self.expect(&Tok::Dot, "'.' (or a literal)")?;
                let key = self.ident("attribute key")?;
                let line = self.line();
                let v = ctx.lookup(&var_name, line)?;
                Ok(Rhs::Attr(v, key))
            }
            other => Err(self.err(format!("expected value or var.attr, found {other:?}"))),
        }
    }

    /// Parse an edge reference `(x)-[rel]->(y)` and resolve it to a declared
    /// positive pattern edge.
    fn edge_ref(&mut self, ctx: &mut PatternCtx) -> Result<PatternEdgeRef, ParseError> {
        let line = self.line();
        let src = self.node(ctx)?;
        self.expect(&Tok::EdgeOpen, "'-['")?;
        let label = self.rel()?;
        self.expect(&Tok::EdgeClose, "']->'")?;
        let dst = self.node(ctx)?;
        ctx.edges
            .iter()
            .position(|e| e.src == src && e.dst == dst && e.label == label)
            .map(PatternEdgeRef)
            .ok_or_else(|| ParseError {
                line,
                message: "edge reference does not match any edge in the match clause".into(),
            })
    }

    fn action(
        &mut self,
        ctx: &PatternCtx,
        binders: &mut Vec<String>,
    ) -> Result<Action, ParseError> {
        // A mutable clone for edge_ref resolution (node() requires &mut; it
        // must not add variables, so we work on a scratch copy and verify).
        let mut scratch = PatternCtx {
            nodes: ctx.nodes.clone(),
            edges: ctx.edges.clone(),
            neg_edges: vec![],
            constraints: vec![],
        };
        let nvars = ctx.nodes.len();
        let check_no_new_vars = |s: &PatternCtx, line: usize| -> Result<(), ParseError> {
            if s.nodes.len() != nvars {
                Err(ParseError {
                    line,
                    message: format!(
                        "unknown variable {:?} in repair clause (declare it in match)",
                        s.nodes.last().unwrap().name
                    ),
                })
            } else {
                Ok(())
            }
        };

        if self.eat_kw("insert") {
            if self.eat_kw("node") {
                self.expect(&Tok::LParen, "'('")?;
                let binder = self.ident("binder name")?;
                self.expect(&Tok::Colon, "':'")?;
                let label = self.ident("label")?;
                let mut attrs = Vec::new();
                if self.peek() == Some(&Tok::LBrace) {
                    self.pos += 1;
                    loop {
                        let key = self.ident("attribute key")?;
                        self.expect(&Tok::Colon, "':'")?;
                        let rhs = self.rhs(ctx)?;
                        attrs.push((
                            key,
                            match rhs {
                                Rhs::Const(v) => ValueSource::Const(v),
                                Rhs::Attr(v, k) => ValueSource::CopyAttr(v, k),
                            },
                        ));
                        if self.peek() == Some(&Tok::Comma) {
                            self.pos += 1;
                        } else {
                            break;
                        }
                    }
                    self.expect(&Tok::RBrace, "'}'")?;
                }
                self.expect(&Tok::RParen, "')'")?;
                binders.push(binder.clone());
                return Ok(Action::InsertNode {
                    binder,
                    label,
                    attrs,
                });
            }
            self.expect_kw("edge")?;
            let src = self.target(ctx, binders)?;
            self.expect(&Tok::EdgeOpen, "'-['")?;
            let label = self.ident("relation label")?;
            self.expect(&Tok::EdgeClose, "']->'")?;
            let dst = self.target(ctx, binders)?;
            return Ok(Action::InsertEdge { src, dst, label });
        }
        if self.eat_kw("delete") {
            if self.eat_kw("node") {
                let name = self.ident("variable")?;
                let line = self.line();
                let v = ctx.lookup(&name, line)?;
                return Ok(Action::DeleteNode(v));
            }
            self.expect_kw("edge")?;
            let r = self.edge_ref(&mut scratch)?;
            check_no_new_vars(&scratch, self.line())?;
            return Ok(Action::DeleteEdge(r));
        }
        if self.eat_kw("relabel") {
            if self.eat_kw("node") {
                let name = self.ident("variable")?;
                let line = self.line();
                let v = ctx.lookup(&name, line)?;
                self.expect_kw("to")?;
                let label = self.ident("label")?;
                return Ok(Action::UpdateNode {
                    node: v,
                    set_label: Some(label),
                    set_attrs: vec![],
                    del_attrs: vec![],
                });
            }
            self.expect_kw("edge")?;
            let r = self.edge_ref(&mut scratch)?;
            check_no_new_vars(&scratch, self.line())?;
            self.expect_kw("to")?;
            let label = self.ident("relation label")?;
            return Ok(Action::UpdateEdgeLabel { edge: r, label });
        }
        if self.eat_kw("set") {
            let name = self.ident("variable")?;
            self.expect(&Tok::Dot, "'.'")?;
            let key = self.ident("attribute key")?;
            self.expect(&Tok::Assign, "'='")?;
            let rhs = self.rhs(ctx)?;
            let line = self.line();
            let v = ctx.lookup(&name, line)?;
            return Ok(Action::UpdateNode {
                node: v,
                set_label: None,
                set_attrs: vec![(
                    key,
                    match rhs {
                        Rhs::Const(val) => ValueSource::Const(val),
                        Rhs::Attr(o, k) => ValueSource::CopyAttr(o, k),
                    },
                )],
                del_attrs: vec![],
            });
        }
        if self.eat_kw("unset") {
            let name = self.ident("variable")?;
            self.expect(&Tok::Dot, "'.'")?;
            let key = self.ident("attribute key")?;
            let line = self.line();
            let v = ctx.lookup(&name, line)?;
            return Ok(Action::UpdateNode {
                node: v,
                set_label: None,
                set_attrs: vec![],
                del_attrs: vec![key],
            });
        }
        if self.eat_kw("merge") {
            let merged_name = self.ident("variable")?;
            self.expect_kw("into")?;
            let keep_name = self.ident("variable")?;
            let line = self.line();
            let merged = ctx.lookup(&merged_name, line)?;
            let keep = ctx.lookup(&keep_name, line)?;
            return Ok(Action::MergeNodes { keep, merged });
        }
        Err(self.err(format!("expected a repair action, found {:?}", self.peek())))
    }

    /// Edge endpoint in `insert edge`: pattern var or fresh binder.
    fn target(&mut self, ctx: &PatternCtx, binders: &[String]) -> Result<Target, ParseError> {
        self.expect(&Tok::LParen, "'('")?;
        let name = self.ident("variable or binder")?;
        self.expect(&Tok::RParen, "')'")?;
        if let Ok(v) = ctx.lookup(&name, self.line()) {
            Ok(Target::Var(v))
        } else if binders.contains(&name) {
            Ok(Target::Fresh(name))
        } else {
            Err(self.err(format!("unknown variable or binder {name:?}")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_incompleteness_rule() {
        let src = r#"
            # Every person living in a city of a country is its citizen.
            rule add_citizenship [incompleteness] priority 2
            match (x:Person)-[livesIn]->(c:City)-[inCountry]->(k:Country)
            where not (x)-[citizenOf]->(k)
            repair insert edge (x)-[citizenOf]->(k)
        "#;
        let r = parse_rule(src).unwrap();
        assert_eq!(r.name, "add_citizenship");
        assert_eq!(r.category, Category::Incompleteness);
        assert_eq!(r.priority, 2);
        assert_eq!(r.pattern.num_vars(), 3);
        assert_eq!(r.pattern.edges.len(), 2);
        assert_eq!(r.pattern.neg_edges.len(), 1);
        assert!(matches!(r.actions[0], Action::InsertEdge { .. }));
    }

    #[test]
    fn parses_redundancy_rule() {
        let src = r#"
            rule dedup_person [redundancy]
            match (x:Person), (y:Person)
            where x.ssn == y.ssn
            repair merge y into x
        "#;
        let r = parse_rule(src).unwrap();
        assert_eq!(r.category, Category::Redundancy);
        assert!(matches!(
            r.actions[0],
            Action::MergeNodes {
                keep: Var(0),
                merged: Var(1)
            }
        ));
    }

    #[test]
    fn parses_conflict_rule_with_delete_edge() {
        let src = r#"
            rule no_self_loop [conflict]
            match (x:Person)-[marriedTo]->(y:Person)-[marriedTo]->(x)
            where x.gender == y.gender, x.age >= 0
            repair delete edge (x)-[marriedTo]->(y)
        "#;
        let r = parse_rule(src).unwrap();
        assert_eq!(r.pattern.edges.len(), 2);
        assert_eq!(r.actions, vec![Action::DeleteEdge(PatternEdgeRef(0))]);
        assert_eq!(r.pattern.constraints.len(), 2);
    }

    #[test]
    fn parses_insert_node_with_attrs_and_multiple_actions() {
        let src = r#"
            rule create_country [incompleteness]
            match (c:City)
            where has(c.countryName), not (c)-[inCountry]->(*)
            repair
                insert node (k2:Country {name: c.countryName, verified: false});
                insert edge (c)-[inCountry]->(k2)
        "#;
        let r = parse_rule(src).unwrap();
        assert_eq!(r.actions.len(), 2);
        assert!(matches!(
            r.pattern.constraints[1],
            Constraint::NoOutEdge(Var(0), Some(ref l)) if l == "inCountry"
        ));
        match &r.actions[0] {
            Action::InsertNode { binder, label, attrs } => {
                assert_eq!(binder, "k2");
                assert_eq!(label, "Country");
                assert_eq!(attrs.len(), 2);
                assert!(matches!(attrs[0].1, ValueSource::CopyAttr(Var(0), _)));
                assert!(matches!(
                    attrs[1].1,
                    ValueSource::Const(Value::Bool(false))
                ));
            }
            other => panic!("unexpected action {other:?}"),
        }
        match &r.actions[1] {
            Action::InsertEdge { dst, .. } => {
                assert_eq!(dst, &Target::Fresh("k2".into()));
            }
            other => panic!("unexpected action {other:?}"),
        }
    }

    #[test]
    fn parses_set_unset_relabel() {
        let src = r#"
            rule fix_label [conflict]
            match (x:Persn)-[r]->(y:City)
            repair relabel node x to Person; set x.checked = true; unset x.legacy;
                   relabel edge (x)-[r]->(y) to livesIn
        "#;
        let r = parse_rule(src).unwrap();
        assert_eq!(r.actions.len(), 4);
        assert!(matches!(
            &r.actions[0],
            Action::UpdateNode { set_label: Some(l), .. } if l == "Person"
        ));
        assert!(matches!(&r.actions[3], Action::UpdateEdgeLabel { .. }));
    }

    #[test]
    fn parses_multiple_rules() {
        let src = r#"
            rule a [conflict]
            match (x:P)-[r]->(y:P)
            repair delete edge (x)-[r]->(y)

            rule b [redundancy]
            match (x:P), (y:P)
            where x.id == y.id
            repair merge y into x
        "#;
        let rules = parse_rules(src).unwrap();
        assert_eq!(rules.len(), 2);
        assert_eq!(rules[0].name, "a");
        assert_eq!(rules[1].name, "b");
    }

    #[test]
    fn star_relation_and_any_label() {
        let src = r#"
            rule drop_any [conflict]
            match (x:Ghost)-[*]->(y)
            repair delete edge (x)-[*]->(y)
        "#;
        let r = parse_rule(src).unwrap();
        assert_eq!(r.pattern.edges[0].label, None);
        assert_eq!(r.pattern.nodes[1].label, None);
    }

    #[test]
    fn error_unknown_variable_in_where() {
        let src = r#"
            rule bad [conflict]
            match (x:P)
            where z.a == 1
            repair delete node x
        "#;
        let err = parse_rule(src).unwrap_err();
        assert!(err.message.contains("unknown variable"), "{err}");
        assert!(err.line >= 3, "line was {}", err.line);
    }

    #[test]
    fn error_edge_ref_not_in_match() {
        let src = r#"
            rule bad [conflict]
            match (x:P)-[r]->(y:P)
            repair delete edge (y)-[r]->(x)
        "#;
        let err = parse_rule(src).unwrap_err();
        assert!(err.message.contains("does not match any edge"), "{err}");
    }

    #[test]
    fn error_label_mismatch_on_redeclare() {
        let src = r#"
            rule bad [conflict]
            match (x:P)-[r]->(x:Q)
            repair delete node x
        "#;
        let err = parse_rule(src).unwrap_err();
        assert!(err.message.contains("redeclared"), "{err}");
    }

    #[test]
    fn error_unterminated_string() {
        let err = parse_rules("rule a match (x:P) where x.n == \"oops\n").unwrap_err();
        assert!(err.message.contains("unterminated"), "{err}");
    }

    #[test]
    fn negative_numbers_and_strings_in_values() {
        let src = r#"
            rule vals [conflict]
            match (x:P)
            where x.a == -5, x.b == 2.5, x.c == "hi there"
            repair set x.a = -1
        "#;
        let r = parse_rule(src).unwrap();
        assert_eq!(r.pattern.constraints.len(), 3);
        match &r.actions[0] {
            Action::UpdateNode { set_attrs, .. } => {
                assert_eq!(set_attrs[0].1, ValueSource::Const(Value::Int(-1)));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn spans_cover_each_rule() {
        let src = "rule a [conflict]\nmatch (x:P)-[r]->(y:P)\nrepair delete edge (x)-[r]->(y)\n\n  rule b [redundancy]\n  match (x:P), (y:P)\n  where x.id == y.id\n  repair merge y into x\n";
        let (rules, spans) = parse_rules_with_spans(src).unwrap();
        assert_eq!(rules.len(), 2);
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].name, "a");
        assert_eq!((spans[0].start_line, spans[0].start_col), (1, 1));
        assert_eq!(spans[0].end_line, 3);
        assert_eq!(spans[1].name, "b");
        assert_eq!((spans[1].start_line, spans[1].start_col), (5, 3));
        assert_eq!(spans[1].end_line, 8);
        assert!(spans[1].end_col > 1);
        assert_eq!(spans[0].to_string(), "1:1");
    }

    #[test]
    fn validate_error_points_at_rule_start() {
        // `delete node x; set x.a = 1` is a use-after-delete caught by
        // Grr::validate, not the grammar; the error must name the rule and
        // point at its definition line.
        let src = "\n\nrule uad [conflict]\nmatch (x:P)\nrepair delete node x; set x.a = 1\n";
        let err = parse_rules(src).unwrap_err();
        assert_eq!(err.line, 3);
        assert!(err.message.contains("uad"), "{err}");
        assert!(err.message.contains("after delete"), "{err}");
    }

    #[test]
    fn display_round_trip_category_names() {
        for (cat, txt) in [
            (Category::Incompleteness, "incompleteness"),
            (Category::Conflict, "conflict"),
            (Category::Redundancy, "redundancy"),
        ] {
            let src = format!(
                "rule r [{txt}] match (x:P) repair delete node x"
            );
            assert_eq!(parse_rule(&src).unwrap().category, cat);
        }
    }
}
