//! Incremental violation watching across external edits.
//!
//! The repair engine fixes everything at once; real deployments instead
//! interleave *user edits* with *validation*. A [`Watcher`] owns a rule
//! set and maintains the live violation list incrementally: after each
//! batch of external edits, pass the touched nodes to
//! [`Watcher::update`] and only the affected neighborhood is re-matched
//! (the same delta discipline as the incremental engine). Optionally,
//! [`Watcher::repair_touched`] repairs just the newly introduced
//! violations.

use crate::apply::{apply_rule, revalidate};
use crate::cost::estimate_cost;
use crate::rule::Grr;
use grepair_graph::{EditCosts, Graph, NodeId};
use grepair_match::{Match, MatchConfig, Matcher, Planner, TouchSet};
use rustc_hash::FxHashMap;

/// A currently outstanding violation.
#[derive(Clone, Debug)]
pub struct LiveViolation {
    /// Index of the violated rule.
    pub rule: usize,
    /// The violating match.
    pub m: Match,
}

/// Incrementally maintained violation view over a graph.
///
/// The watcher does not hold the graph; callers pass it to each call and
/// are responsible for reporting every touched node. Stale entries are
/// pruned lazily via revalidation.
///
/// The watcher *does* own a long-lived [`Planner`]: every update and
/// repair pass matches through one warm plan cache, so the steady-state
/// cost of watching is delta re-matching alone — no per-call pattern
/// compilation, no statistics recompute (statistics refresh through the
/// drift gate, adopting the graph's maintained snapshot when
/// [`Graph::maintain_stats`] is on).
pub struct Watcher {
    rules: Vec<Grr>,
    /// Key: (rule, nodes) → violation. Deduplicates across updates.
    live: FxHashMap<(usize, Vec<NodeId>), LiveViolation>,
    costs: EditCosts,
    /// Warm planning state carried across every update/repair call.
    planner: Planner,
}

impl Watcher {
    /// Create a watcher and run the initial full scan.
    pub fn new(g: &Graph, rules: Vec<Grr>) -> Self {
        let mut w = Watcher {
            rules,
            live: FxHashMap::default(),
            costs: EditCosts::default(),
            planner: Planner::new(),
        };
        w.planner.refresh_stats(g);
        let matcher = Matcher::with_planner(g, MatchConfig::default(), &w.planner);
        for (ri, rule) in w.rules.iter().enumerate() {
            for m in matcher.find_all(&rule.pattern) {
                w.live.insert((ri, m.nodes.clone()), LiveViolation { rule: ri, m });
            }
        }
        w
    }

    /// The rules being watched.
    pub fn rules(&self) -> &[Grr] {
        &self.rules
    }

    /// The watcher's long-lived planner (plan-cache and statistics
    /// introspection).
    pub fn planner(&self) -> &Planner {
        &self.planner
    }

    /// Current number of outstanding violations (after pruning stale
    /// entries against `g`).
    pub fn violation_count(&mut self, g: &Graph) -> usize {
        self.prune(g);
        self.live.len()
    }

    /// Current violations, revalidated against `g`, in deterministic
    /// order.
    pub fn violations(&mut self, g: &Graph) -> Vec<LiveViolation> {
        self.prune(g);
        let mut out: Vec<LiveViolation> = self.live.values().cloned().collect();
        out.sort_by(|a, b| (a.rule, &a.m.nodes).cmp(&(b.rule, &b.m.nodes)));
        out
    }

    fn prune(&mut self, g: &Graph) {
        let rules = &self.rules;
        self.live
            .retain(|_, v| revalidate(g, &rules[v.rule].pattern, &mut v.m.clone()));
    }

    /// Report externally touched nodes; discovers new violations in their
    /// neighborhood. Returns how many new violations appeared.
    pub fn update(&mut self, g: &Graph, touched: &TouchSet) -> usize {
        self.planner.refresh_if_drifted(g);
        let matcher = Matcher::with_planner(g, MatchConfig::default(), &self.planner);
        let mut added = 0usize;
        for (ri, rule) in self.rules.iter().enumerate() {
            for m in matcher.find_touching(&rule.pattern, touched) {
                let key = (ri, m.nodes.clone());
                if let std::collections::hash_map::Entry::Vacant(e) = self.live.entry(key) {
                    e.insert(LiveViolation { rule: ri, m });
                    added += 1;
                }
            }
        }
        added
    }

    /// Repair all currently outstanding violations (cheapest first),
    /// updating the live set with any cascade. Returns the number of
    /// repairs applied.
    pub fn repair_all(&mut self, g: &mut Graph) -> usize {
        let mut applied_total = 0usize;
        // Bounded loop mirroring the engine's churn discipline.
        for _ in 0..64 {
            self.planner.refresh_if_drifted(g);
            self.prune(g);
            if self.live.is_empty() {
                break;
            }
            let mut pending: Vec<LiveViolation> = self.live.values().cloned().collect();
            pending.sort_by(|a, b| {
                let ca = estimate_cost(g, &self.rules[a.rule], &a.m, &self.costs);
                let cb = estimate_cost(g, &self.rules[b.rule], &b.m, &self.costs);
                ca.total_cmp(&cb)
                    .then_with(|| (a.rule, &a.m.nodes).cmp(&(b.rule, &b.m.nodes)))
            });
            let mut applied_round = 0usize;
            for mut v in pending {
                if !revalidate(g, &self.rules[v.rule].pattern, &mut v.m) {
                    self.live.remove(&(v.rule, v.m.nodes.clone()));
                    continue;
                }
                let applied = apply_rule(g, &self.rules[v.rule], &v.m, &self.costs)
                    .expect("validated rules cannot fail");
                self.live.remove(&(v.rule, v.m.nodes.clone()));
                if applied.is_noop() {
                    continue;
                }
                applied_round += 1;
                self.update(g, &applied.touched);
            }
            applied_total += applied_round;
            if applied_round == 0 {
                break;
            }
        }
        applied_total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dsl::parse_rules;
    use grepair_graph::Graph;

    fn setup() -> (Graph, Watcher) {
        let mut g = Graph::new();
        let p = g.add_node_named("Person");
        let c = g.add_node_named("City");
        let k = g.add_node_named("Country");
        g.add_edge_named(p, c, "livesIn").unwrap();
        g.add_edge_named(c, k, "inCountry").unwrap();
        g.add_edge_named(p, k, "citizenOf").unwrap();
        let rules = parse_rules(
            "rule add_citizenship [incompleteness]
             match (x:Person)-[livesIn]->(c:City)-[inCountry]->(k:Country)
             where not (x)-[citizenOf]->(k)
             repair insert edge (x)-[citizenOf]->(k)

             rule no_self_knows [conflict]
             match (x:Person)-[knows]->(x)
             repair delete edge (x)-[knows]->(x)",
        )
        .unwrap();
        let w = Watcher::new(&g, rules);
        (g, w)
    }

    #[test]
    fn clean_graph_watches_zero() {
        let (g, mut w) = setup();
        assert_eq!(w.violation_count(&g), 0);
    }

    #[test]
    fn external_edit_surfaces_violation_incrementally() {
        let (mut g, mut w) = setup();
        // External edit: a new person moves into the city (no
        // citizenship yet).
        let p2 = g.add_node_named("Person");
        let city = g.nodes().find(|&n| g.label_name(g.node_label(n).unwrap()) == "City").unwrap();
        g.add_edge_named(p2, city, "livesIn").unwrap();

        let touched: TouchSet = [p2, city].into_iter().collect();
        let added = w.update(&g, &touched);
        assert_eq!(added, 1);
        let v = w.violations(&g);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, 0);
        assert!(v[0].m.nodes.contains(&p2));
    }

    #[test]
    fn stale_violations_prune_after_manual_fix() {
        let (mut g, mut w) = setup();
        let p2 = g.add_node_named("Person");
        let city = g.nodes().find(|&n| g.label_name(g.node_label(n).unwrap()) == "City").unwrap();
        g.add_edge_named(p2, city, "livesIn").unwrap();
        w.update(&g, &[p2, city].into_iter().collect());
        assert_eq!(w.violation_count(&g), 1);

        // The user fixes it by hand.
        let country = g.nodes().find(|&n| g.label_name(g.node_label(n).unwrap()) == "Country").unwrap();
        g.add_edge_named(p2, country, "citizenOf").unwrap();
        assert_eq!(w.violation_count(&g), 0);
    }

    #[test]
    fn repair_all_fixes_and_cascades() {
        let (mut g, mut w) = setup();
        let p2 = g.add_node_named("Person");
        let city = g
            .nodes()
            .find(|&n| g.label_name(g.node_label(n).unwrap()) == "City")
            .unwrap();
        g.add_edge_named(p2, city, "livesIn").unwrap();
        g.add_edge_named(p2, p2, "knows").unwrap();
        w.update(&g, &[p2, city].into_iter().collect());

        let applied = w.repair_all(&mut g);
        assert_eq!(applied, 2, "citizenship insert + self-knows delete");
        assert_eq!(w.violation_count(&g), 0);
        g.check_invariants().unwrap();
    }

    #[test]
    fn watcher_planner_stays_warm_across_updates() {
        // Big enough that a handful of edits stays inside the planner's
        // drift tolerance — the cache must survive the whole session.
        let mut g = Graph::new();
        let city = g.add_node_named("City");
        let country = g.add_node_named("Country");
        g.add_edge_named(city, country, "inCountry").unwrap();
        for _ in 0..100 {
            let p = g.add_node_named("Person");
            g.add_edge_named(p, city, "livesIn").unwrap();
            g.add_edge_named(p, country, "citizenOf").unwrap();
        }
        let rules = parse_rules(
            "rule add_citizenship [incompleteness]
             match (x:Person)-[livesIn]->(c:City)-[inCountry]->(k:Country)
             where not (x)-[citizenOf]->(k)
             repair insert edge (x)-[citizenOf]->(k)",
        )
        .unwrap();
        let mut w = Watcher::new(&g, rules);
        assert_eq!(w.violation_count(&g), 0);

        // Warm-up edit: compiles the per-anchor delta plans once.
        let p = g.add_node_named("Person");
        g.add_edge_named(p, city, "livesIn").unwrap();
        w.update(&g, &[p, city].into_iter().collect());
        let warm_compiles = w.planner().compile_count();
        assert!(warm_compiles > 0);

        // Every later edit matches through the warmed cache.
        for _ in 0..3 {
            let p = g.add_node_named("Person");
            g.add_edge_named(p, city, "livesIn").unwrap();
            w.update(&g, &[p, city].into_iter().collect());
        }
        assert_eq!(
            w.planner().compile_count(),
            warm_compiles,
            "updates must not recompile cached per-anchor plans"
        );
        assert!(w.planner().cache_hit_count() > 0);
        assert_eq!(w.repair_all(&mut g), 4);
        assert_eq!(w.violation_count(&g), 0);
        g.check_invariants().unwrap();
    }

    #[test]
    fn duplicate_updates_do_not_double_count() {
        let (mut g, mut w) = setup();
        let p2 = g.add_node_named("Person");
        let city = g
            .nodes()
            .find(|&n| g.label_name(g.node_label(n).unwrap()) == "City")
            .unwrap();
        g.add_edge_named(p2, city, "livesIn").unwrap();
        let touched: TouchSet = [p2, city].into_iter().collect();
        assert_eq!(w.update(&g, &touched), 1);
        assert_eq!(w.update(&g, &touched), 0, "idempotent update");
        assert_eq!(w.violation_count(&g), 1);
    }
}
