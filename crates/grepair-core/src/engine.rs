//! The repair engines.
//!
//! Two engines share the same repair *semantics* and differ only in how
//! violations are discovered — the paper's efficiency contribution is
//! precisely this difference:
//!
//! - [`EngineMode::Naive`] re-enumerates **all** matches of **all** rules
//!   every round until a fixpoint. Cost per round is a full multi-pattern
//!   subgraph-matching pass; rounds repeat as long as repairs cascade.
//! - [`EngineMode::Incremental`] performs one full scan to seed a
//!   violation queue, then after each applied repair re-matches **only**
//!   patterns anchored in the repair's touched-node delta
//!   ([`grepair_match::Matcher::find_touching`]). Work is proportional to
//!   the affected neighborhood, not the graph.
//!
//! Shared semantics:
//!
//! - **Revalidation** — a queued violation is re-checked against the
//!   current graph before its repair is applied (earlier repairs may have
//!   fixed or invalidated it).
//! - **Cost arbitration** — pending violations are applied cheapest-first
//!   (graph-edit-distance estimate, then rule priority, then deterministic
//!   tie-breaks), which implements the paper's best-repair selection: when
//!   several rules can fix overlapping violations, the cheapest repair
//!   lands first and the costlier alternatives revalidate away.
//! - **Churn guard** — the same (rule, matched nodes) repair may be
//!   applied at most [`EngineConfig::max_churn`] times, which bounds
//!   runtime even for rule sets whose trigger graph is cyclic.
//!
//! ## Full scans over frozen snapshots
//!
//! Every *full* scan — each naive round, the incremental engine's seed
//! scan, and the final fixpoint verification — is a pure read phase. With
//! [`EngineConfig::freeze_scans`] the engine first compacts the graph
//! into a [`grepair_graph::FrozenGraph`] CSR snapshot and matches against
//! that, which trades one `O(V + E)` freeze for cache-friendly,
//! binary-searchable adjacency during the scan. Match output is
//! byte-identical to scanning the live graph (see
//! [`grepair_match::view`]), so the choice is purely a performance knob.
//! Delta-driven re-matching after each repair always runs on the live
//! graph — the snapshot would be stale after the first applied repair.

use crate::analysis::{l_overlap, preconditions_of, Preconditions};
use crate::apply::{apply_rule, revalidate, Applied, AppliedOp};
use crate::cost::estimate_cost;
use crate::rule::Grr;
use grepair_graph::{EditCosts, FrozenGraph, Graph, NodeId};
use grepair_match::{GraphView, Match, MatchConfig, Matcher, Planner, TouchSet};
use grepair_obs as obs;
use rayon::prelude::*;
use rustc_hash::FxHashMap;
use serde::{Deserialize, Serialize};
use std::collections::BinaryHeap;
use std::time::{Duration, Instant};

/// Violation-discovery strategy.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum EngineMode {
    /// Full re-scan every round (the efficiency baseline).
    Naive,
    /// Delta-driven incremental maintenance (the paper's efficient method).
    Incremental,
}

/// Engine configuration.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct EngineConfig {
    /// Discovery strategy.
    pub mode: EngineMode,
    /// Matcher optimization toggles (F5 ablation).
    pub match_config: MatchConfig,
    /// Maximum full rounds (naive mode) before giving up.
    pub max_rounds: usize,
    /// Hard cap on applied repairs (0 = derive `10·(|V|+|E|+1)` at run
    /// time) — a backstop for cyclic rule sets.
    pub max_repairs: usize,
    /// How many times the identical (rule, nodes) repair may be applied.
    /// Values > 1 allow legitimate re-application (e.g. deleting several
    /// parallel duplicate edges) while still bounding oscillation.
    pub max_churn: u32,
    /// Edit-cost table for arbitration and accounting.
    pub costs: EditCosts,
    /// Enumerate rule matches in parallel during full scans (F8).
    pub parallel: bool,
    /// Build a [`FrozenGraph`] CSR snapshot before every full scan
    /// (naive rounds, the incremental seed scan, fixpoint verification)
    /// and match against it instead of the live graph. Match output is
    /// byte-identical; the compacted layout pays off on label-filtered
    /// scans over non-tiny graphs. On by default for
    /// [`EngineConfig::naive_with_indexes`], whose cost is dominated by
    /// repeated full scans.
    pub freeze_scans: bool,
    /// Run a final full scan to count residual violations.
    pub verify_fixpoint: bool,
    /// Analysis-driven stratified scheduling. When the rule set's trigger
    /// graph is acyclic ([`crate::analysis::stratify`]), rules are grouped
    /// into topological strata and each stratum runs to fixpoint in order:
    /// earlier strata are never revisited, and the churn guard is skipped
    /// because the acyclic trigger graph *proves* the run terminates. The
    /// schedule is cached per rule-set fingerprint, so repeated runs over
    /// the same set skip the analysis. Cyclic sets fall back to the
    /// configured [`EngineMode`] worklist unchanged.
    pub stratify: bool,
}

impl Default for EngineConfig {
    fn default() -> Self {
        Self {
            mode: EngineMode::Incremental,
            match_config: MatchConfig::default(),
            max_rounds: 64,
            max_repairs: 0,
            max_churn: 16,
            costs: EditCosts::default(),
            parallel: false,
            freeze_scans: false,
            verify_fixpoint: true,
            stratify: true,
        }
    }
}

impl EngineConfig {
    /// The naive baseline: full re-scan rounds, unoptimized matcher.
    pub fn naive() -> Self {
        Self {
            mode: EngineMode::Naive,
            match_config: MatchConfig::naive(),
            ..Self::default()
        }
    }

    /// Naive rounds but with the optimized matcher (isolates the
    /// incremental-maintenance contribution, F6). Full scans run over a
    /// frozen CSR snapshot by default — this engine's cost is almost
    /// entirely repeated full scans, exactly the phase snapshots speed up.
    pub fn naive_with_indexes() -> Self {
        Self {
            mode: EngineMode::Naive,
            freeze_scans: true,
            ..Self::default()
        }
    }
}

/// How a repair run ended — the typed answer to "did it finish, and if
/// not, what stopped it". `converged = false` alone is ambiguous: it
/// covers both "residual violations the rules cannot fix" (outcome
/// [`RepairOutcome::Completed`]) and "a guard stopped the run early"
/// (any other variant).
///
/// Guardrail trips ([`Deadline`](RepairOutcome::Deadline),
/// [`Cancelled`](RepairOutcome::Cancelled),
/// [`OpBudget`](RepairOutcome::OpBudget)) are **round-atomic**: the
/// engine only observes its [`obs::Budget`] between rounds (and aborts
/// in-progress scans before applying anything), so the graph is always
/// left equal to some completed prefix of the untripped run's rounds.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum RepairOutcome {
    /// The run reached its natural fixpoint (or gave up on residual
    /// violations only noop/churn-guarded repairs could touch).
    #[default]
    Completed,
    /// An engine iteration cap tripped: `max_rounds` exhausted or the
    /// `max_repairs` backstop hit.
    RoundLimit,
    /// The budget deadline passed.
    Deadline,
    /// Cooperative cancellation (SIGINT, a [`obs::CancelToken`], or a
    /// scripted cancel schedule).
    Cancelled,
    /// The budget's op/match cap was exhausted.
    OpBudget,
}

impl RepairOutcome {
    /// Stable lowercase label (`completed`, `round-limit`, `deadline`,
    /// `cancelled`, `op-budget`) for CLI/JSON surfaces.
    pub fn as_str(&self) -> &'static str {
        match self {
            RepairOutcome::Completed => "completed",
            RepairOutcome::RoundLimit => "round-limit",
            RepairOutcome::Deadline => "deadline",
            RepairOutcome::Cancelled => "cancelled",
            RepairOutcome::OpBudget => "op-budget",
        }
    }

    /// Whether a runtime guardrail (not an engine iteration cap) ended
    /// the run.
    pub fn is_budget_trip(&self) -> bool {
        matches!(
            self,
            RepairOutcome::Deadline | RepairOutcome::Cancelled | RepairOutcome::OpBudget
        )
    }
}

impl std::fmt::Display for RepairOutcome {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

impl From<obs::TripReason> for RepairOutcome {
    fn from(r: obs::TripReason) -> Self {
        match r {
            obs::TripReason::Deadline => RepairOutcome::Deadline,
            obs::TripReason::Cancelled => RepairOutcome::Cancelled,
            obs::TripReason::OpBudget => RepairOutcome::OpBudget,
        }
    }
}

/// Consumer of a repair run's applied operations, with round-boundary
/// notifications.
///
/// [`RepairSink::op`] fires for every applied operation as it lands, in
/// application order. [`RepairSink::round_committed`] fires when the
/// ops delivered since the previous boundary form one *completed* round
/// (one full naive/stratified round, or one applied repair in
/// incremental mode) — the unit of atomicity for durable journaling and
/// graceful shutdown: a budget trip never leaves the graph between two
/// boundaries. Plain `FnMut(&AppliedOp)` closures implement the trait
/// with a no-op boundary, so op-only consumers are unaffected.
pub trait RepairSink {
    /// One applied operation, as it lands.
    fn op(&mut self, op: &AppliedOp);
    /// The ops since the previous boundary form one committed round.
    /// Also fired before an early `max_repairs` return, where the final
    /// (possibly short) batch is the run's last round.
    fn round_committed(&mut self) {}
}

impl<F: FnMut(&AppliedOp)> RepairSink for F {
    fn op(&mut self, op: &AppliedOp) {
        self(op)
    }
}

/// Per-rule outcome counters.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct RuleStats {
    /// Rule name.
    pub name: String,
    /// Violations found (pre-revalidation).
    pub matches_found: usize,
    /// Repairs actually applied (non-noop).
    pub repairs_applied: usize,
    /// Total edit cost of this rule's repairs.
    pub cost: f64,
    /// Full scans that included this rule. Under the naive engine's
    /// dirty-rule scheduling this stays below `RepairReport::rounds` for
    /// rules untouched by the cascade; the incremental engine scans every
    /// rule exactly once (the seed).
    pub scans: usize,
}

/// Result of a repair run.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct RepairReport {
    /// Full-scan rounds performed (naive) / 1 + re-scans (incremental).
    pub rounds: usize,
    /// Repairs applied (non-noop).
    pub repairs_applied: usize,
    /// Concrete operation log, in application order.
    #[serde(skip)]
    pub ops: Vec<AppliedOp>,
    /// Per-rule statistics (indexed like the rule slice).
    pub per_rule: Vec<RuleStats>,
    /// Total edit cost.
    pub total_cost: f64,
    /// `true` if the run ended with no detectable violations.
    pub converged: bool,
    /// Residual violations (only counted when `verify_fixpoint`).
    pub violations_remaining: usize,
    /// Patterns actually compiled during the run (plan-cache misses).
    /// With a caller-owned [`Planner`] these counters are per-run
    /// deltas, so a reused planner shows its warm cache as
    /// `plan_cache_hits > 0` with `pattern_compiles == 0`.
    pub pattern_compiles: u64,
    /// Pattern compiles avoided by the plan cache — fixpoint rounds and
    /// `find_touching`'s per-anchor compiles hitting cached plans.
    pub plan_cache_hits: u64,
    /// Adaptive re-plans triggered during the run (a scan's observed
    /// frontier blew past its estimate and the matcher re-planned with
    /// patched statistics).
    pub plan_replans: u64,
    /// Number of topological strata the run was scheduled into, when the
    /// trigger graph was acyclic and [`EngineConfig::stratify`] was on.
    /// `0` means the configured worklist mode ran (stratification off or
    /// the trigger graph cyclic).
    #[serde(default)]
    pub strata: usize,
    /// Wall-clock duration.
    #[serde(skip)]
    pub wall: Duration,
    /// How the run ended: natural fixpoint, an engine iteration cap, or
    /// a runtime guardrail trip. `violations_remaining` is only
    /// meaningful for [`RepairOutcome::Completed`] /
    /// [`RepairOutcome::RoundLimit`] — budget trips skip the final
    /// verification scan (it would itself be cut short).
    #[serde(default)]
    pub outcome: RepairOutcome,
}

/// Per-run engine telemetry: child counters of the global registry's
/// `engine.*` series, so a run's deltas both roll up into the
/// process-wide totals and serve as the authoritative source for the
/// corresponding [`RepairReport`] fields (`strata`, per-rule `scans`) —
/// the report is a *view* over these counters, not a parallel tally.
struct EngineTelemetry {
    rounds: obs::Counter,
    repairs_applied: obs::Counter,
    strata: obs::Counter,
    rule_scans: Vec<obs::Counter>,
    rule_repair_ns: std::sync::Arc<obs::Histogram>,
}

impl EngineTelemetry {
    fn for_run(n_rules: usize) -> Self {
        EngineTelemetry {
            rounds: obs::counter("engine.rounds").child(),
            repairs_applied: obs::counter("engine.repairs_applied").child(),
            strata: obs::counter("engine.strata").child(),
            rule_scans: (0..n_rules)
                .map(|_| obs::counter("engine.rule_scans").child())
                .collect(),
            rule_repair_ns: obs::histogram("engine.rule_repair_ns"),
        }
    }
}

/// One discovered violation, ordered for the arbitration queue.
#[derive(Clone, Debug)]
struct Violation {
    rule: usize,
    m: Match,
    cost: f64,
    priority: i32,
}

impl Violation {
    fn key(&self) -> (usize, &[NodeId]) {
        (self.rule, &self.m.nodes)
    }
}

/// Monotone map from `f64` into `u64`: IEEE-754 total order
/// (`f64::total_cmp`) for non-NaN values — flip the sign bit for
/// non-negatives, all bits for negatives — with every NaN canonicalized
/// to sort *last*. Degenerate rule cost tables can produce `±inf` (e.g.
/// an infinite per-op cost) or `NaN` (`inf − inf`, `0 × inf` during
/// estimation), and hardware NaNs carry an arbitrary sign bit (`inf −
/// inf` yields a *negative* NaN on x86-64, which raw total order would
/// rank cheapest of all); canonicalizing keeps the arbitration queue
/// total and deterministic — negative costs first, then finite, `+inf`,
/// and any NaN last — instead of relying on raw `f64` comparisons whose
/// `NaN` behaviour breaks the `Eq`/`Ord` contracts.
#[inline]
fn cost_order_bits(cost: f64) -> u64 {
    if cost.is_nan() {
        return u64::MAX;
    }
    let bits = cost.to_bits();
    if bits >> 63 == 1 {
        !bits
    } else {
        bits | (1 << 63)
    }
}

impl Violation {
    /// Min-heap order: cheapest cost (total order over all `f64`s,
    /// including non-finite), then highest priority, then rule index,
    /// then node ids — fully deterministic.
    fn cmp_key(&self) -> (u64, i32, usize, &[NodeId]) {
        (
            cost_order_bits(self.cost),
            -self.priority,
            self.rule,
            &self.m.nodes,
        )
    }
}

impl PartialEq for Violation {
    fn eq(&self, other: &Self) -> bool {
        self.cmp_key() == other.cmp_key()
    }
}
impl Eq for Violation {}

impl PartialOrd for Violation {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Violation {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reverse: BinaryHeap is a max-heap, we want the cheapest first.
        other.cmp_key().cmp(&self.cmp_key())
    }
}

/// The repair engine. Stateless across runs; all state lives in the
/// [`RepairReport`] — except the attached [`obs::Budget`], whose trips
/// are *sticky*: once tripped it stops every later run too, so attach a
/// fresh budget per logical request.
pub struct RepairEngine {
    config: EngineConfig,
    budget: obs::Budget,
}

impl Default for RepairEngine {
    fn default() -> Self {
        Self::new(EngineConfig::default())
    }
}

impl RepairEngine {
    /// Engine with the given configuration and an unlimited budget.
    pub fn new(config: EngineConfig) -> Self {
        Self {
            config,
            budget: obs::Budget::unlimited(),
        }
    }

    /// Attach a runtime [`obs::Budget`] (deadline / cancel token /
    /// op-match caps). The engine polls it between rounds and threads it
    /// into every matcher scan; on a trip the run stops at a round
    /// boundary with a typed [`RepairReport::outcome`].
    #[must_use]
    pub fn with_budget(mut self, budget: &obs::Budget) -> Self {
        self.budget = budget.clone();
        self
    }

    /// The attached budget (unlimited unless [`RepairEngine::with_budget`]
    /// was used).
    pub fn budget(&self) -> &obs::Budget {
        &self.budget
    }

    /// The configuration in use.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Repair `g` with `rules` until fixpoint (or a guard trips).
    pub fn repair(&self, g: &mut Graph, rules: &[Grr]) -> RepairReport {
        self.repair_with_sink(g, rules, |_: &AppliedOp| {})
    }

    /// Like [`RepairEngine::repair`], but invokes `sink` with every
    /// applied operation *as it lands*, in application order.
    ///
    /// This is the durability hook: a store wraps the graph, passes a
    /// sink that journals each op to its write-ahead log, and the repair
    /// run becomes replayable — the sink sees exactly the ops that
    /// mutated the graph (no-ops are never reported), before the next
    /// violation is attempted. The ops also still accumulate in
    /// [`RepairReport::ops`].
    ///
    /// `sink` is any [`RepairSink`]; a plain `FnMut(&AppliedOp)` closure
    /// works unchanged (round boundaries become no-ops).
    pub fn repair_with_sink(
        &self,
        g: &mut Graph,
        rules: &[Grr],
        sink: impl RepairSink,
    ) -> RepairReport {
        let planner = Planner::new();
        self.repair_with_planner_and_sink(g, rules, &planner, sink)
    }

    /// Repair with a **caller-owned, long-lived [`Planner`]** — the
    /// always-warm entry point. The planner carries its statistics
    /// snapshot, compiled-plan cache and pooled search buffers across
    /// repair runs, so a watch loop or a store's repair hook pays
    /// pattern compilation once and then runs every later repair
    /// entirely from cache (visible as
    /// [`RepairReport::plan_cache_hits`] with zero
    /// [`RepairReport::pattern_compiles`]).
    ///
    /// The planner must be dedicated to `g`'s lineage — see
    /// [`grepair_match::plan`]. Statistics are refreshed through
    /// [`Planner::refresh_if_drifted`]: within the drift tolerance the
    /// warmed plans survive; beyond it the refresh adopts the graph's
    /// write-path–maintained statistics when [`Graph::maintain_stats`]
    /// is on, or recomputes otherwise.
    pub fn repair_with_planner(
        &self,
        g: &mut Graph,
        rules: &[Grr],
        planner: &Planner,
    ) -> RepairReport {
        self.repair_with_planner_and_sink(g, rules, planner, |_: &AppliedOp| {})
    }

    /// [`RepairEngine::repair_with_planner`] + the op sink of
    /// [`RepairEngine::repair_with_sink`] — the full-control entry point
    /// durable stores use.
    pub fn repair_with_planner_and_sink(
        &self,
        g: &mut Graph,
        rules: &[Grr],
        planner: &Planner,
        mut sink: impl RepairSink,
    ) -> RepairReport {
        let start = Instant::now();
        let _span = obs::span("engine.repair", "engine");
        let tel = EngineTelemetry::for_run(rules.len());
        let mut report = RepairReport {
            per_rule: rules
                .iter()
                .map(|r| RuleStats {
                    name: r.name.clone(),
                    ..RuleStats::default()
                })
                .collect(),
            ..RepairReport::default()
        };
        let max_repairs = if self.config.max_repairs == 0 {
            10 * (g.num_nodes() + g.num_edges() + 1)
        } else {
            self.config.max_repairs
        };

        // Planner counters are cumulative for the planner's lifetime;
        // the report captures this run's deltas so a reused planner
        // shows warm-cache behaviour per run.
        let compiles0 = planner.compile_count();
        let hits0 = planner.cache_hit_count();
        let replans0 = planner.replan_count();

        // Cardinality statistics steer join orders and the plan cache
        // carries compiled patterns across fixpoint rounds (and, for a
        // caller-owned planner, across runs). With `connected_order` off
        // (the naive ablation) the cost model never reads statistics, so
        // skip the refresh — the baseline must not pay for machinery it
        // cannot use.
        if self.wants_stats() {
            planner.refresh_if_drifted(g);
        }

        // Analysis-driven scheduling: an acyclic trigger graph yields a
        // topological stratification (cached per rule-set fingerprint)
        // under which the run provably terminates without churn guards.
        let schedule = if self.config.stratify {
            cached_schedule(rules)
        } else {
            None
        };
        match schedule {
            Some(strata) => {
                tel.strata.add(strata.len() as u64);
                self.run_stratified(
                    g, rules, &strata, &mut report, max_repairs, &mut sink, planner, &tel,
                )
            }
            None => match self.config.mode {
                EngineMode::Naive => {
                    self.run_naive(g, rules, &mut report, max_repairs, &mut sink, planner, &tel)
                }
                EngineMode::Incremental => {
                    self.run_incremental(g, rules, &mut report, max_repairs, &mut sink, planner, &tel)
                }
            },
        }
        // The report's scheduling counters are read back from the run's
        // registry-backed telemetry (per-run children, so the values are
        // exact per-run deltas).
        report.strata = tel.strata.get() as usize;
        for (stats, scans) in report.per_rule.iter_mut().zip(&tel.rule_scans) {
            stats.scans = scans.get() as usize;
        }

        if self.config.verify_fixpoint && !report.outcome.is_budget_trip() {
            report.violations_remaining = self.count_violations_with(g, rules, planner);
            report.converged = report.violations_remaining == 0;
            // The deadline can expire during the verification scan
            // itself, cutting the count short — surface the trip rather
            // than report a bogus fixpoint.
            if report.outcome == RepairOutcome::Completed {
                if let Some(trip) = self.budget.tripped() {
                    report.outcome = trip.into();
                    report.converged = false;
                }
            }
        }
        obs::instant(
            match report.outcome {
                RepairOutcome::Completed => "engine.outcome.completed",
                RepairOutcome::RoundLimit => "engine.outcome.round_limit",
                RepairOutcome::Deadline => "engine.outcome.deadline",
                RepairOutcome::Cancelled => "engine.outcome.cancelled",
                RepairOutcome::OpBudget => "engine.outcome.op_budget",
            },
            "engine",
        );
        report.pattern_compiles = planner.compile_count() - compiles0;
        report.plan_cache_hits = planner.cache_hit_count() - hits0;
        report.plan_replans = planner.replan_count() - replans0;
        report.wall = start.elapsed();
        report
    }

    /// All matches of every rule's pattern, computed by one
    /// morsel-driven parallel sweep.
    ///
    /// This is the `RuleSet`-level parallel sweep: every rule's root
    /// candidates are cut into fixed-size morsels and scheduled together
    /// on one shared work queue
    /// ([`grepair_match::Matcher::par_find_all_many`]), so workers steal
    /// across rules *and* within a pattern — a skewed workload (one
    /// dominant rule) still scales with cores. Results are indexed like
    /// `rules.rules` and each inner vector is in the sequential
    /// `find_all` emission order, so the sweep is a drop-in,
    /// deterministic replacement for a serial scan. The same sweep backs
    /// [`RepairEngine::repair`]'s full scans when
    /// [`EngineConfig::parallel`] is set.
    #[cfg(feature = "parallel")]
    pub fn par_match_sweep(&self, g: &Graph, rules: &crate::ruleset::RuleSet) -> Vec<Vec<Match>> {
        let matcher = Matcher::with_config(g, self.config.match_config).with_budget(&self.budget);
        let refs: Vec<&Grr> = rules.rules.iter().collect();
        Self::parallel_scan(&matcher, &refs)
    }

    /// Multi-rule parallel sweep; with the `parallel` feature all rules'
    /// morsels share one work queue (stealing across rules and within a
    /// pattern).
    fn parallel_scan<G: GraphView + Sync>(
        matcher: &Matcher<'_, G>,
        rules: &[&Grr],
    ) -> Vec<Vec<Match>> {
        #[cfg(feature = "parallel")]
        {
            let patterns: Vec<&grepair_match::Pattern> =
                rules.iter().map(|r| &r.pattern).collect();
            matcher.par_find_all_many(&patterns)
        }
        #[cfg(not(feature = "parallel"))]
        rules
            .par_iter()
            .map(|r| matcher.find_all(&r.pattern))
            .collect()
    }

    /// One full multi-rule scan over an arbitrary view, honoring the
    /// `parallel` toggle. Results are indexed like `rules`.
    fn scan_matches<G: GraphView + Sync>(
        &self,
        matcher: &Matcher<'_, G>,
        rules: &[&Grr],
    ) -> Vec<Vec<Match>> {
        if self.config.parallel {
            Self::parallel_scan(matcher, rules)
        } else {
            rules.iter().map(|r| matcher.find_all(&r.pattern)).collect()
        }
    }

    /// Whether this configuration's plans can consume cardinality
    /// statistics at all (the cost model only runs under
    /// `connected_order`).
    fn wants_stats(&self) -> bool {
        self.config.match_config.connected_order
    }

    /// Count current violations without repairing.
    pub fn count_violations(&self, g: &Graph, rules: &[Grr]) -> usize {
        let planner = Planner::new();
        if self.wants_stats() {
            planner.refresh_stats(g);
        }
        self.count_violations_with(g, rules, &planner)
    }

    /// Freeze `g` for a scan, using the chunk-parallel freeze when this
    /// engine runs parallel (identical output either way).
    fn freeze_for_scan(&self, g: &Graph) -> FrozenGraph {
        #[cfg(feature = "parallel")]
        if self.config.parallel {
            return FrozenGraph::par_freeze(g);
        }
        FrozenGraph::freeze(g)
    }

    fn count_violations_with(&self, g: &Graph, rules: &[Grr], planner: &Planner) -> usize {
        if self.config.freeze_scans {
            let frozen = self.freeze_for_scan(g);
            self.count_with(
                &Matcher::with_planner(&frozen, self.config.match_config, planner)
                    .with_budget(&self.budget),
                rules,
            )
        } else {
            self.count_with(
                &Matcher::with_planner(g, self.config.match_config, planner)
                    .with_budget(&self.budget),
                rules,
            )
        }
    }

    fn count_with<G: GraphView + Sync>(&self, matcher: &Matcher<'_, G>, rules: &[Grr]) -> usize {
        if self.config.parallel {
            rules.par_iter().map(|r| matcher.count(&r.pattern)).sum()
        } else {
            rules.iter().map(|r| matcher.count(&r.pattern)).sum()
        }
    }

    /// Full scan: all violations of all rules, with cost estimates.
    fn full_scan(&self, g: &Graph, rules: &[Grr], planner: &Planner) -> Vec<Violation> {
        self.full_scan_filtered(g, rules, None, planner)
    }

    /// Full scan restricted to the rules marked in `dirty` (`None` = all
    /// rules) — the naive engine's label-keyed worklist skips rules whose
    /// match sets provably cannot have changed since their last scan.
    ///
    /// With [`EngineConfig::freeze_scans`] the matching itself runs over a
    /// freshly frozen CSR snapshot; cost estimation always reads the live
    /// graph (identical data — the snapshot is taken at the same version).
    fn full_scan_filtered(
        &self,
        g: &Graph,
        rules: &[Grr],
        dirty: Option<&[bool]>,
        planner: &Planner,
    ) -> Vec<Violation> {
        let selected: Vec<usize> = match dirty {
            None => (0..rules.len()).collect(),
            Some(d) => (0..rules.len()).filter(|&i| d[i]).collect(),
        };
        let subset: Vec<&Grr> = selected.iter().map(|&i| &rules[i]).collect();
        let per_rule: Vec<Vec<Match>> = if self.config.freeze_scans {
            let frozen = self.freeze_for_scan(g);
            let matcher = Matcher::with_planner(&frozen, self.config.match_config, planner)
                .with_budget(&self.budget);
            self.scan_matches(&matcher, &subset)
        } else {
            let matcher = Matcher::with_planner(g, self.config.match_config, planner)
                .with_budget(&self.budget);
            self.scan_matches(&matcher, &subset)
        };
        let mut out = Vec::new();
        for (k, ms) in per_rule.into_iter().enumerate() {
            let ri = selected[k];
            for m in ms {
                let cost = estimate_cost(g, &rules[ri], &m, &self.config.costs);
                out.push(Violation {
                    rule: ri,
                    m,
                    cost,
                    priority: rules[ri].priority,
                });
            }
        }
        out
    }

    #[allow(clippy::too_many_arguments)]
    fn run_naive(
        &self,
        g: &mut Graph,
        rules: &[Grr],
        report: &mut RepairReport,
        max_repairs: usize,
        sink: &mut dyn RepairSink,
        planner: &Planner,
        tel: &EngineTelemetry,
    ) {
        let mut churn: FxHashMap<u64, u32> = FxHashMap::default();
        // Label-keyed dirty-rule worklist. A rule is rescanned in round
        // k+1 only if (a) some round-k operation could have *enabled* a
        // new match at the label level ([`ops_can_enable`] — the same
        // sound over-approximation the incremental trigger filter uses),
        // or (b) one of its own repairs left its match still valid
        // (partial fixes like deleting one of several parallel witness
        // edges, and ineffective noop rules). Every other rule's match
        // set is provably unchanged: its round-k matches were all
        // attempted and eliminated, and nothing could have created new
        // ones.
        let preconditions: Vec<Preconditions> = rules.iter().map(preconditions_of).collect();
        let mut dirty = vec![true; rules.len()];
        for _round in 0..self.config.max_rounds {
            // Guardrail boundary: cancels/deadlines/caps are observed
            // *between* rounds, so a trip always leaves the graph at a
            // completed-round prefix.
            if let Some(trip) = self.budget.checkpoint() {
                report.outcome = trip.into();
                return;
            }
            let _round_span = obs::span("engine.round", "engine");
            // Repairs drift the distributions; re-snapshot statistics
            // once the drift is large enough to matter. Small drifts keep
            // the statistics epoch — and with it every cached plan.
            if self.wants_stats() {
                planner.refresh_if_drifted(g);
            }
            for (ri, d) in dirty.iter().enumerate() {
                if *d {
                    tel.rule_scans[ri].inc();
                }
            }
            let mut violations = self.full_scan_filtered(g, rules, Some(&dirty), planner);
            if self.budget.is_tripped() {
                // Mid-scan trip: the scan (and so the round) is partial —
                // abandon it without applying anything. Nothing of this
                // round reached the graph or the sink.
                report.outcome = self.budget.tripped().map(Into::into).unwrap_or_default();
                return;
            }
            report.rounds += 1;
            tel.rounds.inc();
            if violations.is_empty() {
                return;
            }
            for v in &violations {
                report.per_rule[v.rule].matches_found += 1;
            }
            // Cheapest-first within the round (best-repair arbitration).
            violations.sort_by(|a, b| a.cmp_key().cmp(&b.cmp_key()));
            let round_ops_start = report.ops.len();
            let mut next_dirty = vec![false; rules.len()];
            let mut applied_any = false;
            for mut v in violations {
                if report.repairs_applied >= max_repairs {
                    report.outcome = RepairOutcome::RoundLimit;
                    if report.ops.len() > round_ops_start {
                        sink.round_committed();
                    }
                    return;
                }
                if !revalidate(g, &rules[v.rule].pattern, &mut v.m) {
                    continue;
                }
                if !self.admit(&mut churn, &v) {
                    continue;
                }
                if self.apply_one(g, rules, &v, report, sink, tel) {
                    applied_any = true;
                }
                // Persisting match after its own repair: the rule must be
                // rescanned even if no operation label-triggers it. `v` is
                // owned and dead after this, so revalidate in place.
                if revalidate(g, &rules[v.rule].pattern, &mut v.m) {
                    next_dirty[v.rule] = true;
                }
            }
            sink.round_committed();
            self.budget
                .charge_ops((report.ops.len() - round_ops_start) as u64);
            if !applied_any {
                return;
            }
            let round_ops = &report.ops[round_ops_start..];
            for (ri, pre) in preconditions.iter().enumerate() {
                if !next_dirty[ri] && ops_can_enable(round_ops, pre) {
                    next_dirty[ri] = true;
                }
            }
            dirty = next_dirty;
            if !dirty.iter().any(|&d| d) {
                return;
            }
        }
        report.outcome = RepairOutcome::RoundLimit;
    }

    /// Stratified scheduling over an acyclic trigger graph. `strata` is a
    /// topological leveling from [`crate::analysis::stratify`]: no rule
    /// can enable a rule in its own or an earlier stratum, so each
    /// stratum is driven to fixpoint once, in order, and never revisited.
    /// The churn guard is intentionally absent — acyclicity *proves* that
    /// every chain of enablements is finite, so the only repeat work is a
    /// rule re-fixing partially repaired matches of its own pattern
    /// (e.g. several parallel duplicate edges), which strictly shrinks
    /// the match set. `max_repairs` stays as a backstop.
    #[allow(clippy::too_many_arguments)]
    fn run_stratified(
        &self,
        g: &mut Graph,
        rules: &[Grr],
        strata: &[Vec<usize>],
        report: &mut RepairReport,
        max_repairs: usize,
        sink: &mut dyn RepairSink,
        planner: &Planner,
        tel: &EngineTelemetry,
    ) {
        let preconditions: Vec<Preconditions> = rules.iter().map(preconditions_of).collect();
        for stratum in strata {
            let mut dirty = vec![false; rules.len()];
            for &ri in stratum {
                dirty[ri] = true;
            }
            loop {
                // Guardrail boundary — covers both the round edge and the
                // stratum edge (the first iteration per stratum).
                if let Some(trip) = self.budget.checkpoint() {
                    report.outcome = trip.into();
                    return;
                }
                let _round_span = obs::span("engine.round", "engine");
                if self.wants_stats() {
                    planner.refresh_if_drifted(g);
                }
                for (ri, d) in dirty.iter().enumerate() {
                    if *d {
                        tel.rule_scans[ri].inc();
                    }
                }
                let mut violations = self.full_scan_filtered(g, rules, Some(&dirty), planner);
                if self.budget.is_tripped() {
                    // Mid-scan trip: abandon the partial round entirely.
                    report.outcome = self.budget.tripped().map(Into::into).unwrap_or_default();
                    return;
                }
                report.rounds += 1;
                tel.rounds.inc();
                if violations.is_empty() {
                    break;
                }
                for v in &violations {
                    report.per_rule[v.rule].matches_found += 1;
                }
                // Cheapest-first within the pass (best-repair arbitration,
                // identical to the worklist engines).
                violations.sort_by(|a, b| a.cmp_key().cmp(&b.cmp_key()));
                let pass_ops_start = report.ops.len();
                let mut next_dirty = vec![false; rules.len()];
                let mut applied_any = false;
                for mut v in violations {
                    if report.repairs_applied >= max_repairs {
                        report.outcome = RepairOutcome::RoundLimit;
                        if report.ops.len() > pass_ops_start {
                            sink.round_committed();
                        }
                        return;
                    }
                    if !revalidate(g, &rules[v.rule].pattern, &mut v.m) {
                        continue;
                    }
                    if self.apply_one(g, rules, &v, report, sink, tel) {
                        applied_any = true;
                    }
                    if revalidate(g, &rules[v.rule].pattern, &mut v.m) {
                        next_dirty[v.rule] = true;
                    }
                }
                sink.round_committed();
                self.budget
                    .charge_ops((report.ops.len() - pass_ops_start) as u64);
                if !applied_any {
                    // Only noop repairs remain (ineffective rules): the
                    // stratum cannot make further progress.
                    break;
                }
                // Within a stratum no rule can label-enable another (that
                // edge would have forced a later stratum), but the check
                // keeps the scheduler honest if the approximation drifts.
                let pass_ops = &report.ops[pass_ops_start..];
                for &ri in stratum {
                    if !next_dirty[ri] && ops_can_enable(pass_ops, &preconditions[ri]) {
                        next_dirty[ri] = true;
                    }
                }
                dirty = next_dirty;
                if !dirty.iter().any(|&d| d) {
                    break;
                }
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn run_incremental(
        &self,
        g: &mut Graph,
        rules: &[Grr],
        report: &mut RepairReport,
        max_repairs: usize,
        sink: &mut dyn RepairSink,
        planner: &Planner,
        tel: &EngineTelemetry,
    ) {
        let mut churn: FxHashMap<u64, u32> = FxHashMap::default();
        report.rounds = 1;
        tel.rounds.inc();
        // Trigger filter: label-level preconditions per rule. After a
        // repair, only rules whose preconditions the applied operations
        // could have *enabled* are re-matched — the rule-dependency
        // pruning that keeps per-repair work independent of |Σ|.
        let preconditions: Vec<Preconditions> = rules.iter().map(preconditions_of).collect();
        for scans in tel.rule_scans.iter() {
            scans.inc();
        }
        let mut queue: BinaryHeap<Violation> = {
            let _seed_span = obs::span("engine.round", "engine");
            self.full_scan(g, rules, planner).into()
        };
        if self.budget.is_tripped() {
            // Mid-seed-scan trip: the queue is partial — stop before
            // applying anything, leaving the graph untouched.
            report.outcome = self.budget.tripped().map(Into::into).unwrap_or_default();
            return;
        }
        for v in queue.iter() {
            report.per_rule[v.rule].matches_found += 1;
        }
        let mut last_ops_start: usize;
        while let Some(mut v) = queue.pop() {
            // Guardrail boundary: in incremental mode one applied repair
            // (plus its cascade) is the atomic unit, so the budget is
            // observed between pops only.
            if let Some(trip) = self.budget.checkpoint() {
                report.outcome = trip.into();
                return;
            }
            if report.repairs_applied >= max_repairs {
                report.outcome = RepairOutcome::RoundLimit;
                return;
            }
            if !revalidate(g, &rules[v.rule].pattern, &mut v.m) {
                continue;
            }
            if !self.admit(&mut churn, &v) {
                continue;
            }
            last_ops_start = report.ops.len();
            let Some(touched) = self.apply_one_touched(g, rules, &v, report, sink, tel) else {
                continue;
            };
            sink.round_committed();
            self.budget
                .charge_ops((report.ops.len() - last_ops_start) as u64);
            let new_ops = &report.ops[last_ops_start..];
            // A repair may not fully eliminate its own violation (e.g. it
            // deleted one of several parallel witness edges): revalidate
            // the very match just repaired and requeue it if it persists —
            // the trigger filter below only covers *newly created* matches.
            let mut again = v.m.clone();
            if revalidate(g, &rules[v.rule].pattern, &mut again) {
                let cost = estimate_cost(g, &rules[v.rule], &again, &self.config.costs);
                queue.push(Violation {
                    rule: v.rule,
                    m: again,
                    cost,
                    priority: rules[v.rule].priority,
                });
            }
            // Delta-driven discovery: only trigger-affected rules, only
            // matches anchored in the delta. The planner's cache serves
            // the per-anchor plans — compiled once per (pattern, anchor),
            // not once per repair.
            let matcher =
                Matcher::with_planner(g, self.config.match_config, planner).with_budget(&self.budget);
            for (ri, rule) in rules.iter().enumerate() {
                if !ops_can_enable(new_ops, &preconditions[ri]) {
                    continue;
                }
                for m in matcher.find_touching(&rule.pattern, &touched) {
                    let cost = estimate_cost(g, rule, &m, &self.config.costs);
                    report.per_rule[ri].matches_found += 1;
                    queue.push(Violation {
                        rule: ri,
                        m,
                        cost,
                        priority: rule.priority,
                    });
                }
            }
        }
    }

    /// Churn admission: identical (rule, nodes) repairs are capped.
    fn admit(&self, churn: &mut FxHashMap<u64, u32>, v: &Violation) -> bool {
        use std::hash::{Hash, Hasher};
        let mut h = rustc_hash::FxHasher::default();
        v.key().hash(&mut h);
        let counter = churn.entry(h.finish()).or_insert(0);
        if *counter >= self.config.max_churn {
            return false;
        }
        *counter += 1;
        true
    }

    fn apply_one(
        &self,
        g: &mut Graph,
        rules: &[Grr],
        v: &Violation,
        report: &mut RepairReport,
        sink: &mut dyn RepairSink,
        tel: &EngineTelemetry,
    ) -> bool {
        self.apply_one_touched(g, rules, v, report, sink, tel).is_some()
    }

    /// Apply; returns the touched set if the repair changed anything.
    fn apply_one_touched(
        &self,
        g: &mut Graph,
        rules: &[Grr],
        v: &Violation,
        report: &mut RepairReport,
        sink: &mut dyn RepairSink,
        tel: &EngineTelemetry,
    ) -> Option<TouchSet> {
        let repair_started = obs::timer();
        let applied: Applied = apply_rule(g, &rules[v.rule], &v.m, &self.config.costs)
            .expect("validated rule on revalidated match cannot fail");
        obs::record_since(&tel.rule_repair_ns, repair_started);
        if applied.is_noop() {
            return None;
        }
        report.repairs_applied += 1;
        tel.repairs_applied.inc();
        report.total_cost += applied.cost;
        report.per_rule[v.rule].repairs_applied += 1;
        report.per_rule[v.rule].cost += applied.cost;
        for op in &applied.ops {
            sink.op(op);
        }
        report.ops.extend(applied.ops);
        Some(applied.touched)
    }
}

/// Process-global cache of stratification results keyed by the rule
/// set's fingerprint ([`crate::analysis::set_fingerprint`]); repeated
/// runs over the same set — a watch loop, a store's repair hook — skip
/// the trigger-graph analysis entirely. A cached `None` records "the
/// trigger graph is cyclic: use the configured worklist".
fn cached_schedule(rules: &[Grr]) -> Option<std::sync::Arc<Vec<Vec<usize>>>> {
    use std::sync::{Arc, Mutex, OnceLock};
    type Cache = Mutex<FxHashMap<u64, Option<Arc<Vec<Vec<usize>>>>>>;
    static CACHE: OnceLock<Cache> = OnceLock::new();
    let fp = crate::analysis::set_fingerprint(rules);
    let mut cache = CACHE
        .get_or_init(|| Mutex::new(FxHashMap::default()))
        .lock()
        .unwrap();
    cache
        .entry(fp)
        .or_insert_with(|| {
            crate::analysis::stratify(&crate::analysis::trigger_graph(rules)).map(Arc::new)
        })
        .clone()
}

/// Can any of `ops` enable a new match of a rule with preconditions
/// `pre`? Sound over-approximation at the label level: every real
/// enablement is caught; spurious re-matches only cost time.
fn ops_can_enable(ops: &[AppliedOp], pre: &Preconditions) -> bool {
    let some = |l: &str| Some(l.to_owned());
    for op in ops {
        let hit = match op {
            AppliedOp::InsertNode { label, .. } => pre
                .node_label
                .iter()
                .any(|p| l_overlap(&some(label), p)),
            AppliedOp::InsertEdge { label, .. } => {
                pre.pos_edge.iter().any(|p| l_overlap(&some(label), p))
            }
            // Deleting a node removes incident edges of unknown labels:
            // any negative / no-edge condition could be enabled.
            AppliedOp::DeleteNode { .. } => !pre.neg_edge.is_empty(),
            AppliedOp::DeleteEdge { label, .. } => {
                pre.neg_edge.iter().any(|p| l_overlap(&some(label), p))
            }
            AppliedOp::RelabelNode { to, .. } => {
                pre.node_label.iter().any(|p| l_overlap(&some(to), p))
            }
            AppliedOp::SetAttr { key, .. } => {
                pre.needs_attr.iter().any(|p| l_overlap(&some(key), p))
            }
            AppliedOp::RemoveAttr { key, .. } => {
                pre.missing_attr.iter().any(|p| l_overlap(&some(key), p))
            }
            AppliedOp::RelabelEdge { from, to, .. } => {
                pre.pos_edge.iter().any(|p| l_overlap(&some(to), p))
                    || pre.neg_edge.iter().any(|p| l_overlap(&some(from), p))
            }
            // Merges rewire edges of arbitrary labels and union
            // attributes: conservatively affects everything.
            AppliedOp::Merge { .. } => true,
        };
        if hit {
            return true;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dsl::parse_rules;
    use grepair_graph::Value;

    /// A small KG with one violation of each class.
    fn dirty_graph() -> Graph {
        let mut g = Graph::new();
        let ssn = g.attr_key("ssn");
        // Incompleteness: person in a city of a country, no citizenship.
        let p1 = g.add_node_named("Person");
        let c1 = g.add_node_named("City");
        let k1 = g.add_node_named("Country");
        g.add_edge_named(p1, c1, "livesIn").unwrap();
        g.add_edge_named(c1, k1, "inCountry").unwrap();
        // Conflict: self-marriage loop.
        let p2 = g.add_node_named("Person");
        g.add_edge_named(p2, p2, "marriedTo").unwrap();
        // Redundancy: two persons with the same ssn.
        let d1 = g.add_node_named("Person");
        let d2 = g.add_node_named("Person");
        g.set_attr(d1, ssn, Value::Int(42)).unwrap();
        g.set_attr(d2, ssn, Value::Int(42)).unwrap();
        g.add_edge_named(d1, c1, "livesIn").unwrap();
        g.add_edge_named(d2, c1, "livesIn").unwrap();
        g
    }

    fn rules() -> Vec<Grr> {
        parse_rules(
            "rule add_citizenship [incompleteness]
             match (x:Person)-[livesIn]->(c:City)-[inCountry]->(k:Country)
             where not (x)-[citizenOf]->(k)
             repair insert edge (x)-[citizenOf]->(k)

             rule no_self_marriage [conflict]
             match (x:Person)-[marriedTo]->(x)
             repair delete edge (x)-[marriedTo]->(x)

             rule dedup_person [redundancy]
             match (x:Person), (y:Person)
             where x.ssn == y.ssn
             repair merge y into x",
        )
        .unwrap()
    }

    #[cfg(feature = "parallel")]
    #[test]
    fn par_match_sweep_agrees_with_serial_scan() {
        let g = dirty_graph();
        let rule_set = crate::ruleset::RuleSet::new("t", rules()).unwrap();
        let engine = RepairEngine::default();
        let par = engine.par_match_sweep(&g, &rule_set);
        let matcher = Matcher::with_config(&g, engine.config().match_config);
        let serial: Vec<Vec<Match>> = rule_set
            .rules
            .iter()
            .map(|r| matcher.find_all(&r.pattern))
            .collect();
        assert_eq!(par, serial);

        // A single-rule set exercises the matcher-level parallel path.
        let single =
            crate::ruleset::RuleSet::new("one", vec![rule_set.rules[0].clone()]).unwrap();
        let par_one = engine.par_match_sweep(&g, &single);
        assert_eq!(par_one, serial[0..1].to_vec());

        assert!(engine.par_match_sweep(&g, &crate::ruleset::RuleSet::default()).is_empty());
    }

    #[test]
    fn incremental_engine_repairs_all_classes() {
        let mut g = dirty_graph();
        let rules = rules();
        let report = RepairEngine::default().repair(&mut g, &rules);
        assert!(report.converged, "residual: {}", report.violations_remaining);
        assert!(report.repairs_applied >= 3);
        g.check_invariants().unwrap();
        // Citizenship edges exist for all remaining persons in c1/k1.
        let citizen = g.try_label("citizenOf").unwrap();
        assert!(g.count_edges_with_label(citizen) >= 1);
        // Duplicates merged: 42-ssn person unique.
        let ssn = g.try_attr_key("ssn").unwrap();
        let dupes = g
            .nodes()
            .filter(|&n| g.attr(n, ssn) == Some(&Value::Int(42)))
            .count();
        assert_eq!(dupes, 1);
    }

    #[test]
    fn naive_engine_reaches_same_fixpoint() {
        let rules = rules();
        let mut g1 = dirty_graph();
        let mut g2 = dirty_graph();
        let r1 = RepairEngine::new(EngineConfig::naive()).repair(&mut g1, &rules);
        let r2 = RepairEngine::default().repair(&mut g2, &rules);
        assert!(r1.converged && r2.converged);
        // Same final shape (not necessarily identical ids).
        assert_eq!(g1.num_nodes(), g2.num_nodes());
        assert_eq!(g1.num_edges(), g2.num_edges());
    }

    #[test]
    fn repair_is_idempotent() {
        let mut g = dirty_graph();
        let rules = rules();
        let engine = RepairEngine::default();
        engine.repair(&mut g, &rules);
        let before = (g.num_nodes(), g.num_edges());
        let second = engine.repair(&mut g, &rules);
        assert!(second.converged);
        assert_eq!(second.repairs_applied, 0, "fixpoint must be stable");
        assert_eq!((g.num_nodes(), g.num_edges()), before);
    }

    #[test]
    fn cascading_repairs_propagate() {
        // Fixing citizenship enables a second rule keyed on citizenOf.
        let mut g = Graph::new();
        let p = g.add_node_named("Person");
        let c = g.add_node_named("City");
        let k = g.add_node_named("Country");
        g.add_edge_named(p, c, "livesIn").unwrap();
        g.add_edge_named(c, k, "inCountry").unwrap();
        let rules = parse_rules(
            "rule add_citizenship [incompleteness]
             match (x:Person)-[livesIn]->(c:City)-[inCountry]->(k:Country)
             where not (x)-[citizenOf]->(k)
             repair insert edge (x)-[citizenOf]->(k)

             rule mark_citizen [incompleteness]
             match (x:Person)-[citizenOf]->(k:Country)
             where missing(x.hasCitizenship)
             repair set x.hasCitizenship = true",
        )
        .unwrap();
        let report = RepairEngine::default().repair(&mut g, &rules);
        assert!(report.converged);
        assert_eq!(report.repairs_applied, 2);
        let key = g.try_attr_key("hasCitizenship").unwrap();
        assert_eq!(g.attr(p, key), Some(&Value::Bool(true)));
    }

    #[test]
    fn churn_guard_stops_oscillation() {
        // Two rules that flip an attribute forever.
        let mut g = Graph::new();
        let n = g.add_node_named("P");
        let k = g.attr_key("v");
        g.set_attr(n, k, Value::Int(0)).unwrap();
        let rules = parse_rules(
            "rule up [conflict] match (x:P) where x.v == 0 repair set x.v = 1
             rule down [conflict] match (x:P) where x.v == 1 repair set x.v = 0",
        )
        .unwrap();
        let config = EngineConfig {
            max_churn: 4,
            verify_fixpoint: true,
            ..EngineConfig::default()
        };
        let report = RepairEngine::new(config).repair(&mut g, &rules);
        assert!(!report.converged, "oscillation cannot converge");
        assert!(report.repairs_applied <= 8, "churn guard must bound work");
        g.check_invariants().unwrap();
    }

    #[test]
    fn max_rounds_bounds_naive_engine() {
        let mut g = Graph::new();
        let n = g.add_node_named("P");
        let k = g.attr_key("v");
        g.set_attr(n, k, Value::Int(0)).unwrap();
        let rules = parse_rules(
            "rule up [conflict] match (x:P) where x.v == 0 repair set x.v = 1
             rule down [conflict] match (x:P) where x.v == 1 repair set x.v = 0",
        )
        .unwrap();
        let config = EngineConfig {
            mode: EngineMode::Naive,
            max_rounds: 3,
            max_churn: u32::MAX,
            ..EngineConfig::default()
        };
        let report = RepairEngine::new(config).repair(&mut g, &rules);
        assert_eq!(report.rounds, 3);
        assert!(!report.converged);
        assert_eq!(report.outcome, RepairOutcome::RoundLimit);
    }

    /// A few flagged nodes plus the single rule that clears the flag.
    fn flag_fixture() -> (Graph, Vec<Grr>) {
        let mut g = Graph::new();
        let k = g.attr_key("flag");
        for _ in 0..3 {
            let n = g.add_node_named("P");
            g.set_attr(n, k, Value::Int(0)).unwrap();
        }
        let rules =
            parse_rules("rule f [conflict] match (x:P) where x.flag == 0 repair set x.flag = 1")
                .unwrap();
        (g, rules)
    }

    #[test]
    fn converged_run_reports_completed_outcome() {
        let (mut g, rules) = flag_fixture();
        let report = RepairEngine::new(EngineConfig::default()).repair(&mut g, &rules);
        assert!(report.converged);
        assert_eq!(report.outcome, RepairOutcome::Completed);
        assert!(!report.outcome.is_budget_trip());
    }

    #[test]
    fn pre_cancelled_budget_yields_cancelled_outcome_and_untouched_graph() {
        let (mut g, rules) = flag_fixture();
        let before = g.to_doc();
        let budget = obs::Budget::unlimited();
        budget.cancel();
        let report = RepairEngine::new(EngineConfig::default())
            .with_budget(&budget)
            .repair(&mut g, &rules);
        assert_eq!(report.outcome, RepairOutcome::Cancelled);
        assert!(report.ops.is_empty());
        assert_eq!(g.to_doc(), before);
    }

    #[test]
    fn expired_test_clock_deadline_yields_deadline_outcome() {
        let (mut g, rules) = flag_fixture();
        let clock = obs::TestClock::new();
        let budget = obs::Budget::unlimited()
            .with_test_clock(&clock)
            .with_deadline(std::time::Duration::from_millis(5));
        clock.advance(std::time::Duration::from_millis(10));
        for mode in [EngineMode::Naive, EngineMode::Incremental] {
            let mut g2 = g.clone();
            let fresh = obs::Budget::unlimited()
                .with_test_clock(&clock)
                .with_deadline(std::time::Duration::from_millis(5));
            let report = RepairEngine::new(EngineConfig {
                mode,
                ..EngineConfig::default()
            })
            .with_budget(&fresh)
            .repair(&mut g2, &rules);
            assert_eq!(report.outcome, RepairOutcome::Deadline, "mode {mode:?}");
            assert!(report.ops.is_empty());
        }
        let report = RepairEngine::new(EngineConfig::default())
            .with_budget(&budget)
            .repair(&mut g, &rules);
        assert_eq!(report.outcome, RepairOutcome::Deadline);
    }

    #[test]
    fn op_budget_trips_after_committed_round() {
        // Two independent violations repaired across rounds; op cap of 1 trips
        // after the first committed round in incremental mode.
        let mut g = Graph::new();
        let k = g.attr_key("flag");
        for _ in 0..4 {
            let n = g.add_node_named("P");
            g.set_attr(n, k, Value::Int(0)).unwrap();
        }
        let rules =
            parse_rules("rule f [conflict] match (x:P) where x.flag == 0 repair set x.flag = 1")
                .unwrap();
        let budget = obs::Budget::unlimited().with_op_cap(1);
        let report = RepairEngine::new(EngineConfig {
            mode: EngineMode::Incremental,
            ..EngineConfig::default()
        })
        .with_budget(&budget)
        .repair(&mut g, &rules);
        assert_eq!(report.outcome, RepairOutcome::OpBudget);
        assert!(!report.ops.is_empty());
        assert!(report.ops.len() < 4, "should stop before fixing all nodes");
    }

    #[test]
    fn sink_round_committed_marks_every_applied_prefix() {
        #[derive(Clone, Default)]
        struct Recorder {
            state: std::rc::Rc<std::cell::RefCell<(usize, Vec<usize>)>>,
        }
        impl RepairSink for Recorder {
            fn op(&mut self, _op: &AppliedOp) {
                self.state.borrow_mut().0 += 1;
            }
            fn round_committed(&mut self) {
                let mut st = self.state.borrow_mut();
                let n = std::mem::take(&mut st.0);
                st.1.push(n);
            }
        }
        let mut g = Graph::new();
        let k = g.attr_key("flag");
        for _ in 0..3 {
            let n = g.add_node_named("P");
            g.set_attr(n, k, Value::Int(0)).unwrap();
        }
        let rules =
            parse_rules("rule f [conflict] match (x:P) where x.flag == 0 repair set x.flag = 1")
                .unwrap();
        let configs = [
            (EngineMode::Naive, false),
            (EngineMode::Naive, true),
            (EngineMode::Incremental, false),
        ];
        for (mode, stratify) in configs {
            let mut g2 = g.clone();
            let rec = Recorder::default();
            let report = RepairEngine::new(EngineConfig {
                mode,
                stratify,
                ..EngineConfig::default()
            })
            .repair_with_sink(&mut g2, &rules, rec.clone());
            assert_eq!(
                report.outcome,
                RepairOutcome::Completed,
                "mode {mode:?}/stratify {stratify}"
            );
            let st = rec.state.borrow();
            assert_eq!(
                st.0, 0,
                "mode {mode:?}/stratify {stratify}: ops after final round_committed"
            );
            let total: usize = st.1.iter().sum();
            assert_eq!(total, report.ops.len(), "mode {mode:?}/stratify {stratify}");
        }
    }

    #[test]
    fn cost_arbitration_prefers_cheap_repair() {
        // Two rules can fix the same violation: one deletes a hub node
        // (expensive), one deletes the offending edge (cheap). The cheap
        // one must win and the expensive one revalidate away.
        let mut g = Graph::new();
        let hub = g.add_node_named("Person");
        let spouse = g.add_node_named("Person");
        g.add_edge_named(hub, spouse, "marriedTo").unwrap();
        g.add_edge_named(hub, hub, "marriedTo").unwrap(); // violation
        for _ in 0..5 {
            let f = g.add_node_named("Person");
            g.add_edge_named(hub, f, "knows").unwrap();
        }
        let rules = parse_rules(
            "rule drop_self_marriage [conflict]
             match (x:Person)-[marriedTo]->(x)
             repair delete edge (x)-[marriedTo]->(x)

             rule nuke_self_marrier [conflict]
             match (x:Person)-[marriedTo]->(x)
             repair delete node x",
        )
        .unwrap();
        let report = RepairEngine::default().repair(&mut g, &rules);
        assert!(report.converged);
        assert!(g.contains_node(hub), "hub must survive (cheap repair wins)");
        assert_eq!(report.per_rule[0].repairs_applied, 1);
        assert_eq!(report.per_rule[1].repairs_applied, 0);
    }

    #[test]
    fn priority_breaks_cost_ties() {
        let mk = |g: &mut Graph| {
            let a = g.add_node_named("P");
            let b = g.add_node_named("P");
            g.add_edge_named(a, b, "bad").unwrap();
            (a, b)
        };
        let rules = parse_rules(
            "rule low [conflict] priority 1
             match (x:P)-[bad]->(y:P)
             repair relabel edge (x)-[bad]->(y) to fineLow

             rule high [conflict] priority 9
             match (x:P)-[bad]->(y:P)
             repair relabel edge (x)-[bad]->(y) to fineHigh",
        )
        .unwrap();
        let mut g = Graph::new();
        mk(&mut g);
        let report = RepairEngine::default().repair(&mut g, &rules);
        assert!(report.converged);
        assert_eq!(report.per_rule[1].repairs_applied, 1, "high priority wins");
        assert_eq!(report.per_rule[0].repairs_applied, 0);
        assert!(g.try_label("fineHigh").is_some());
    }

    #[test]
    fn parallel_scan_equals_sequential() {
        let rules = rules();
        let mut g1 = dirty_graph();
        let mut g2 = dirty_graph();
        let seq = RepairEngine::default().repair(&mut g1, &rules);
        let par = RepairEngine::new(EngineConfig {
            parallel: true,
            ..EngineConfig::default()
        })
        .repair(&mut g2, &rules);
        assert_eq!(seq.repairs_applied, par.repairs_applied);
        assert_eq!(g1.num_nodes(), g2.num_nodes());
        assert_eq!(g1.num_edges(), g2.num_edges());
    }

    #[test]
    fn sink_sees_every_applied_op_in_order() {
        for config in [EngineConfig::default(), EngineConfig::naive()] {
            let mut g = dirty_graph();
            let mut seen: Vec<AppliedOp> = Vec::new();
            let report = RepairEngine::new(config).repair_with_sink(&mut g, &rules(), |op: &AppliedOp| {
                seen.push(op.clone())
            });
            assert!(report.converged);
            assert_eq!(seen, report.ops, "sink must mirror the op log exactly");
            assert!(!seen.is_empty());
        }
    }

    #[test]
    fn report_accounting_consistent() {
        let mut g = dirty_graph();
        let rules = rules();
        let report = RepairEngine::default().repair(&mut g, &rules);
        let per_rule_sum: usize = report.per_rule.iter().map(|s| s.repairs_applied).sum();
        assert_eq!(per_rule_sum, report.repairs_applied);
        let per_rule_cost: f64 = report.per_rule.iter().map(|s| s.cost).sum();
        assert!((per_rule_cost - report.total_cost).abs() < 1e-9);
        assert!(!report.ops.is_empty());
    }

    #[test]
    fn trigger_filter_skips_unrelated_rules() {
        // A cascade over attribute a0→a1→…, plus rules keyed on labels and
        // attributes the repairs never touch. The unrelated rules must not
        // be re-matched after any repair: their matches_found stays at the
        // initial-scan count (zero).
        let mut src = String::new();
        for i in 0..4 {
            src.push_str(&format!(
                "rule stage{i} [incompleteness]
                 match (x:T) where has(x.a{i}), missing(x.a{next})
                 repair set x.a{next} = true\n",
                next = i + 1
            ));
        }
        for i in 0..20 {
            src.push_str(&format!(
                "rule unrelated{i} [conflict]
                 match (x:Q)-[rel{i}]->(y:Q)
                 where x.other{i} == 1
                 repair delete edge (x)-[rel{i}]->(y)\n"
            ));
        }
        let rules = parse_rules(&src).unwrap();
        let mut g = Graph::new();
        let a0 = g.attr_key("a0");
        for _ in 0..20 {
            let n = g.add_node_named("T");
            g.set_attr(n, a0, Value::Bool(true)).unwrap();
        }
        let report = RepairEngine::default().repair(&mut g, &rules);
        assert!(report.converged);
        assert_eq!(report.repairs_applied, 4 * 20);
        for s in report.per_rule.iter().filter(|s| s.name.starts_with("unrelated")) {
            assert_eq!(
                s.matches_found, 0,
                "{} must never be re-matched",
                s.name
            );
        }
    }

    /// The attribute-cascade rule source shared by the scheduling and
    /// plan-cache tests (the planner bench runs the same shape via
    /// `grepair_bench::cascade_rules_dsl`).
    fn cascade_src(stages: usize) -> String {
        let mut src = String::new();
        for i in 0..stages {
            src.push_str(&format!(
                "rule stage{i} [incompleteness]
                 match (x:T) where has(x.a{i}), missing(x.a{next})
                 repair set x.a{next} = true\n",
                next = i + 1
            ));
        }
        src
    }

    /// `n` T-nodes carrying only `a0` — the cascade's starting line.
    fn cascade_graph(n: usize) -> Graph {
        let mut g = Graph::new();
        let a0 = g.attr_key("a0");
        for _ in 0..n {
            let node = g.add_node_named("T");
            g.set_attr(node, a0, Value::Bool(true)).unwrap();
        }
        g
    }

    #[test]
    fn naive_dirty_scheduling_skips_clean_rules() {
        // The attribute cascade dirties only the stage rules; the 20
        // unrelated rules must be scanned exactly once (round 1) even
        // though the naive engine runs many rounds.
        let mut src = cascade_src(4);
        for i in 0..20 {
            src.push_str(&format!(
                "rule unrelated{i} [conflict]
                 match (x:Q)-[rel{i}]->(y:Q)
                 where x.other{i} == 1
                 repair delete edge (x)-[rel{i}]->(y)\n"
            ));
        }
        let rules = parse_rules(&src).unwrap();
        let mut g = cascade_graph(20);
        // This test exercises the worklist scheduler specifically; the
        // cascade's trigger graph is acyclic, so stratification (which
        // finishes each stage in a single pass) must be disabled.
        let config = EngineConfig {
            stratify: false,
            ..EngineConfig::naive()
        };
        let report = RepairEngine::new(config).repair(&mut g, &rules);
        assert!(report.converged);
        assert_eq!(report.repairs_applied, 4 * 20);
        assert!(report.rounds > 1);
        for s in report.per_rule.iter().filter(|s| s.name.starts_with("unrelated")) {
            assert_eq!(s.scans, 1, "{} must only see the initial scan", s.name);
            assert_eq!(s.matches_found, 0);
        }
        // The cascade stages themselves are rescanned across rounds.
        assert!(report.per_rule[1].scans > 1, "stage1 must be rescanned");
    }

    #[test]
    fn naive_dirty_scheduling_rescans_partial_fixes() {
        // Deleting one of several parallel duplicate edges leaves the
        // match valid: the rule must stay dirty until every duplicate is
        // gone, even though DeleteEdge never label-enables the pattern.
        let mut g = Graph::new();
        let a = g.add_node_named("P");
        let b = g.add_node_named("P");
        for _ in 0..3 {
            g.add_edge_named(a, b, "dup").unwrap();
        }
        let rules = parse_rules(
            "rule drop_dup [redundancy]
             match (x:P)-[dup]->(y:P)
             repair delete edge (x)-[dup]->(y)",
        )
        .unwrap();
        let report = RepairEngine::new(EngineConfig::naive()).repair(&mut g, &rules);
        assert!(report.converged, "residual: {}", report.violations_remaining);
        assert_eq!(report.repairs_applied, 3);
        assert_eq!(g.num_edges(), 0);
        assert!(report.per_rule[0].scans >= 3);
    }

    #[test]
    fn plan_cache_avoids_per_repair_compiles_incremental() {
        // Attribute cascade: every repair triggers a `find_touching` of
        // the next stage, but the (pattern, anchor) plan is compiled once
        // and then served from the cache — SetAttr ops never drift the
        // node/edge counts, so the statistics epoch stays put.
        let rules = parse_rules(&cascade_src(4)).unwrap();
        let mut g = cascade_graph(20);
        // Pin the incremental worklist: `find_touching`'s per-anchor plan
        // reuse is exactly what this test measures, and the acyclic
        // cascade would otherwise run stratified (no per-repair
        // re-matching at all).
        let config = EngineConfig {
            stratify: false,
            ..EngineConfig::default()
        };
        let report = RepairEngine::new(config).repair(&mut g, &rules);
        assert!(report.converged);
        assert_eq!(report.repairs_applied, 80);
        assert!(report.pattern_compiles > 0);
        assert!(
            report.plan_cache_hits > report.pattern_compiles,
            "80 repairs × re-matching must mostly hit the cache (compiles {}, hits {})",
            report.pattern_compiles,
            report.plan_cache_hits
        );
    }

    #[test]
    fn plan_cache_carries_naive_rounds() {
        // Repeated naive rounds over a stable vocabulary: one compile,
        // then every later round's scan reuses the plan. The graph is big
        // enough that deleting one edge per round stays inside the
        // statistics drift tolerance.
        let mut g = Graph::new();
        let nodes: Vec<_> = (0..200).map(|_| g.add_node_named("P")).collect();
        for w in nodes.windows(2) {
            g.add_edge_named(w[0], w[1], "knows").unwrap();
        }
        for _ in 0..3 {
            g.add_edge_named(nodes[0], nodes[1], "dup").unwrap();
        }
        let rules = parse_rules(
            "rule drop_dup [redundancy]
             match (x:P)-[dup]->(y:P)
             repair delete edge (x)-[dup]->(y)",
        )
        .unwrap();
        let report =
            RepairEngine::new(EngineConfig::naive_with_indexes()).repair(&mut g, &rules);
        assert!(report.converged);
        assert_eq!(report.repairs_applied, 3);
        assert!(report.rounds >= 3, "one duplicate per round");
        assert!(
            report.plan_cache_hits >= report.rounds as u64 - 1,
            "later rounds must reuse the round-1 plan (compiles {}, hits {})",
            report.pattern_compiles,
            report.plan_cache_hits
        );
    }

    #[test]
    fn caller_owned_planner_carries_plans_across_runs() {
        // One long-lived planner over repeated repair runs: the second
        // run's scans must be served entirely from the warmed plan
        // cache, and the report counters must be per-run deltas rather
        // than planner-lifetime totals.
        let rules = parse_rules(&cascade_src(3)).unwrap();
        let mut g = cascade_graph(10);
        g.maintain_stats(true);
        // Worklist mode: the hit/compile arithmetic below assumes the
        // incremental engine's per-anchor plans, not stratified scans.
        let engine = RepairEngine::new(EngineConfig {
            stratify: false,
            ..EngineConfig::default()
        });
        let planner = Planner::new();
        let r1 = engine.repair_with_planner(&mut g, &rules, &planner);
        assert!(r1.converged);
        assert_eq!(r1.repairs_applied, 30);
        assert!(r1.pattern_compiles > 0);

        let r2 = engine.repair_with_planner(&mut g, &rules, &planner);
        assert!(r2.converged);
        assert_eq!(r2.repairs_applied, 0, "already at fixpoint");
        assert_eq!(
            r2.pattern_compiles, 0,
            "every run-2 plan must come from the warmed cache"
        );
        assert!(r2.plan_cache_hits > 0);
        assert!(
            r2.plan_cache_hits < r1.plan_cache_hits + r1.pattern_compiles,
            "counters must be per-run deltas, not lifetime totals"
        );
        g.check_invariants().unwrap();
    }

    #[test]
    fn stratified_scheduling_used_on_acyclic_sets() {
        // The attribute cascade's trigger graph is a chain: the default
        // engine must run it stratified (one stratum per stage) and reach
        // the same fixpoint as the worklist engines.
        let rules = parse_rules(&cascade_src(4)).unwrap();
        let mut g = cascade_graph(20);
        let report = RepairEngine::default().repair(&mut g, &rules);
        assert_eq!(report.strata, 4, "one stratum per cascade stage");
        assert!(report.converged);
        assert_eq!(report.repairs_applied, 80);

        let mut g2 = cascade_graph(20);
        let worklist = RepairEngine::new(EngineConfig {
            stratify: false,
            ..EngineConfig::default()
        })
        .repair(&mut g2, &rules);
        assert_eq!(worklist.strata, 0);
        assert_eq!(report.repairs_applied, worklist.repairs_applied);
        assert_eq!(
            report.violations_remaining,
            worklist.violations_remaining
        );
        assert_eq!(g.to_doc(), g2.to_doc(), "fixpoints must match");
    }

    #[test]
    fn stratified_falls_back_on_cyclic_sets() {
        // The up/down oscillator's trigger graph is a 2-cycle: the
        // stratified scheduler must decline and the churn-guarded
        // worklist must run instead.
        let rules = parse_rules(
            "rule up [conflict]
             match (x:P) where x.v == 0
             repair set x.v = 1

             rule down [conflict]
             match (x:P) where x.v == 1
             repair set x.v = 0",
        )
        .unwrap();
        let mut g = Graph::new();
        let v = g.attr_key("v");
        let n = g.add_node_named("P");
        g.set_attr(n, v, Value::Int(0)).unwrap();
        let report = RepairEngine::default().repair(&mut g, &rules);
        assert_eq!(report.strata, 0, "cyclic sets must use the worklist");
        assert!(report.repairs_applied > 0);
    }

    #[test]
    fn stratified_handles_partial_fixes_without_churn_guard() {
        // Parallel duplicate edges: each repair deletes one witness and
        // the match persists until all three are gone. The stratified
        // path has no churn guard, so this exercises its own
        // persisting-match rescan loop.
        let mut g = Graph::new();
        let a = g.add_node_named("P");
        let b = g.add_node_named("P");
        for _ in 0..3 {
            g.add_edge_named(a, b, "dup").unwrap();
        }
        let rules = parse_rules(
            "rule drop_dup [redundancy]
             match (x:P)-[dup]->(y:P)
             repair delete edge (x)-[dup]->(y)",
        )
        .unwrap();
        let report = RepairEngine::default().repair(&mut g, &rules);
        assert_eq!(report.strata, 1);
        assert!(report.converged);
        assert_eq!(report.repairs_applied, 3);
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    fn stratified_stops_on_ineffective_noop_rules() {
        // An ineffective rule's match persists after its (first, real)
        // repair and every later application is a noop: without a churn
        // guard the stratified loop must still terminate via its
        // no-progress check.
        let rules = parse_rules(
            "rule noop [conflict]
             match (x:P)-[r]->(y:P)
             repair set x.seen = true",
        )
        .unwrap();
        let mut g = Graph::new();
        let a = g.add_node_named("P");
        let b = g.add_node_named("P");
        g.add_edge_named(a, b, "r").unwrap();
        let report = RepairEngine::default().repair(&mut g, &rules);
        assert_eq!(report.strata, 1);
        assert_eq!(report.repairs_applied, 1, "the attribute set lands once");
        assert!(!report.converged, "the match legitimately persists");
        assert_eq!(report.violations_remaining, 1);
    }

    #[test]
    fn maintained_graph_repairs_identically_to_unmaintained() {
        let rules = rules();
        let mut plain = dirty_graph();
        let mut maintained = dirty_graph();
        maintained.maintain_stats(true);
        let r1 = RepairEngine::default().repair(&mut plain, &rules);
        let r2 = RepairEngine::default().repair(&mut maintained, &rules);
        assert!(r1.converged && r2.converged);
        assert_eq!(r1.repairs_applied, r2.repairs_applied);
        assert_eq!(plain.to_doc(), maintained.to_doc(), "fixpoints must match");
        maintained.check_invariants().unwrap();
    }

    #[test]
    fn violation_order_is_total_for_non_finite_costs() {
        // Degenerate cost tables can estimate ±inf or NaN repairs; the
        // arbitration queue must still order them deterministically and
        // uphold the Eq/Ord contracts (regression: the key used raw f64s,
        // so a NaN violation was unequal to itself while Ord::cmp said
        // Equal — undefined queue behaviour).
        let mk = |cost: f64| Violation {
            rule: 0,
            m: Match {
                nodes: vec![NodeId(0)],
                edges: vec![],
            },
            cost,
            priority: 0,
        };
        let nan = mk(f64::NAN);
        assert_eq!(nan, mk(f64::NAN), "NaN violations must be self-equal");
        assert_eq!(nan.cmp(&mk(f64::NAN)), std::cmp::Ordering::Equal);
        // Hardware NaNs can carry a set sign bit (x86-64's `inf - inf`
        // does); they must rank identically to positive NaN, not below
        // -inf.
        let neg_nan = f64::from_bits(f64::NAN.to_bits() | (1 << 63));
        assert!(neg_nan.is_nan() && neg_nan.is_sign_negative());
        assert_eq!(nan.cmp(&mk(neg_nan)), std::cmp::Ordering::Equal);

        let mut heap: BinaryHeap<Violation> = [
            neg_nan,
            f64::INFINITY,
            1.0,
            f64::NEG_INFINITY,
            -0.0,
            0.0,
            2.0,
        ]
        .into_iter()
        .map(mk)
        .collect();
        let mut popped = Vec::new();
        while let Some(v) = heap.pop() {
            popped.push(v.cost);
        }
        // Cheapest-first total order: -inf < -0.0 < +0.0 < finite < +inf
        // < NaN.
        assert_eq!(popped[0], f64::NEG_INFINITY);
        assert!(popped[1].is_sign_negative() && popped[1] == 0.0);
        assert!(!popped[2].is_sign_negative() && popped[2] == 0.0);
        assert_eq!(popped[3], 1.0);
        assert_eq!(popped[4], 2.0);
        assert_eq!(popped[5], f64::INFINITY);
        assert!(popped[6].is_nan(), "NaN must sort last: {popped:?}");
    }

    #[test]
    fn frozen_scans_reach_identical_fixpoints() {
        let rules = rules();
        for base_cfg in [
            EngineConfig::default(),
            EngineConfig::naive_with_indexes(),
        ] {
            let mut live_cfg = base_cfg.clone();
            live_cfg.freeze_scans = false;
            let mut frozen_cfg = base_cfg;
            frozen_cfg.freeze_scans = true;

            let mut g1 = dirty_graph();
            let r1 = RepairEngine::new(live_cfg).repair(&mut g1, &rules);
            let mut g2 = dirty_graph();
            let r2 = RepairEngine::new(frozen_cfg).repair(&mut g2, &rules);
            assert!(r1.converged && r2.converged);
            assert_eq!(r1.repairs_applied, r2.repairs_applied);
            assert_eq!(r1.rounds, r2.rounds);
            assert_eq!(g1.num_nodes(), g2.num_nodes());
            assert_eq!(g1.num_edges(), g2.num_edges());
            assert_eq!(g1.to_doc(), g2.to_doc(), "fixpoints must be identical");
        }
    }

    #[test]
    fn naive_with_indexes_freezes_by_default() {
        assert!(EngineConfig::naive_with_indexes().freeze_scans);
        assert!(!EngineConfig::default().freeze_scans);
        assert!(!EngineConfig::naive().freeze_scans);
    }

    #[test]
    fn empty_rules_or_graph() {
        let mut g = dirty_graph();
        let report = RepairEngine::default().repair(&mut g, &[]);
        assert!(report.converged);
        assert_eq!(report.repairs_applied, 0);

        let mut empty = Graph::new();
        let report = RepairEngine::default().repair(&mut empty, &rules());
        assert!(report.converged);
        assert_eq!(report.repairs_applied, 0);
    }
}
