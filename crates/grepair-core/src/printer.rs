//! Pretty-printer: render rules back to DSL source.
//!
//! `parse(print(rule)) == rule` — the printer is the inverse of
//! [`crate::dsl`], which makes rule sets first-class artifacts: mined or
//! programmatically built rules can be written to `.grr` files, reviewed,
//! edited, and reloaded. Round-tripping is property-tested.

use crate::rule::{Action, Grr, PatternEdgeRef, Target, ValueSource};
use crate::ruleset::RuleSet;
use grepair_match::{Constraint, Pattern, Rhs, Var};
use grepair_graph::Value;
use std::fmt::Write as _;

/// Render one rule as DSL source.
pub fn rule_to_dsl(rule: &Grr) -> String {
    let mut out = String::new();
    write!(out, "rule {} [{}]", rule.name, rule.category).unwrap();
    if rule.priority != 0 {
        write!(out, " priority {}", rule.priority).unwrap();
    }
    out.push('\n');

    // match clause: every positive edge as its own atom (chains are sugar
    // the printer does not need), lone variables as node atoms. The first
    // mention of a variable carries its label.
    let p = &rule.pattern;
    let mut mentioned = vec![false; p.num_vars()];
    let node_atom = |v: Var, mentioned: &mut Vec<bool>| -> String {
        let pn = &p.nodes[v.index()];
        if mentioned[v.index()] {
            format!("({})", pn.name)
        } else {
            mentioned[v.index()] = true;
            match &pn.label {
                Some(l) => format!("({}:{})", pn.name, l),
                None => format!("({})", pn.name),
            }
        }
    };
    let mut atoms: Vec<String> = Vec::new();
    for e in &p.edges {
        let src = node_atom(e.src, &mut mentioned);
        let dst = node_atom(e.dst, &mut mentioned);
        atoms.push(format!(
            "{src}-[{}]->{dst}",
            e.label.as_deref().unwrap_or("*")
        ));
    }
    for i in 0..p.num_vars() {
        if !mentioned[i] {
            atoms.push(node_atom(Var(i as u8), &mut mentioned));
        }
    }
    writeln!(out, "match {}", atoms.join(", ")).unwrap();

    // where clause.
    let mut conds: Vec<String> = Vec::new();
    for e in &p.neg_edges {
        conds.push(format!(
            "not ({})-[{}]->({})",
            p.var_name(e.src),
            e.label.as_deref().unwrap_or("*"),
            p.var_name(e.dst)
        ));
    }
    for c in &p.constraints {
        conds.push(match c {
            Constraint::HasAttr(v, k) => format!("has({}.{k})", p.var_name(*v)),
            Constraint::MissingAttr(v, k) => format!("missing({}.{k})", p.var_name(*v)),
            Constraint::Cmp { var, key, op, rhs } => format!(
                "{}.{key} {} {}",
                p.var_name(*var),
                op.symbol(),
                rhs_to_dsl(p, rhs)
            ),
            Constraint::NoOutEdge(v, l) => format!(
                "not ({})-[{}]->(*)",
                p.var_name(*v),
                l.as_deref().unwrap_or("*")
            ),
            Constraint::NoInEdge(v, l) => format!(
                "not (*)-[{}]->({})",
                l.as_deref().unwrap_or("*"),
                p.var_name(*v)
            ),
        });
    }
    if !conds.is_empty() {
        writeln!(out, "where {}", conds.join(", ")).unwrap();
    }

    // repair clause.
    let actions: Vec<String> = rule.actions.iter().map(|a| action_to_dsl(rule, a)).collect();
    writeln!(out, "repair {}", actions.join(";\n       ")).unwrap();
    out
}

/// Render a whole rule set as DSL source.
pub fn ruleset_to_dsl(set: &RuleSet) -> String {
    let mut out = format!("# rule set: {}\n\n", set.name);
    for r in &set.rules {
        out.push_str(&rule_to_dsl(r));
        out.push('\n');
    }
    out
}

fn value_to_dsl(v: &Value) -> String {
    match v {
        Value::Str(s) => format!("{s:?}"),
        Value::Int(i) => i.to_string(),
        Value::Float(f) => {
            // Keep a decimal point so the lexer reads a float back.
            let s = format!("{f}");
            if s.contains('.') || s.contains('e') {
                s
            } else {
                format!("{s}.0")
            }
        }
        Value::Bool(b) => b.to_string(),
    }
}

fn rhs_to_dsl(p: &Pattern, rhs: &Rhs) -> String {
    match rhs {
        Rhs::Const(v) => value_to_dsl(v),
        Rhs::Attr(o, k) => format!("{}.{k}", p.var_name(*o)),
    }
}

fn vs_to_dsl(p: &Pattern, vs: &ValueSource) -> String {
    match vs {
        ValueSource::Const(v) => value_to_dsl(v),
        ValueSource::CopyAttr(o, k) => format!("{}.{k}", p.var_name(*o)),
    }
}

fn edge_ref_to_dsl(rule: &Grr, PatternEdgeRef(i): &PatternEdgeRef) -> String {
    let e = &rule.pattern.edges[*i];
    format!(
        "({})-[{}]->({})",
        rule.pattern.var_name(e.src),
        e.label.as_deref().unwrap_or("*"),
        rule.pattern.var_name(e.dst)
    )
}

fn target_to_dsl(rule: &Grr, t: &Target) -> String {
    match t {
        Target::Var(v) => format!("({})", rule.pattern.var_name(*v)),
        Target::Fresh(b) => format!("({b})"),
    }
}

fn action_to_dsl(rule: &Grr, a: &Action) -> String {
    let p = &rule.pattern;
    match a {
        Action::InsertNode {
            binder,
            label,
            attrs,
        } => {
            let mut s = format!("insert node ({binder}:{label}");
            if !attrs.is_empty() {
                let body: Vec<String> = attrs
                    .iter()
                    .map(|(k, v)| format!("{k}: {}", vs_to_dsl(p, v)))
                    .collect();
                write!(s, " {{{}}}", body.join(", ")).unwrap();
            }
            s.push(')');
            s
        }
        Action::InsertEdge { src, dst, label } => format!(
            "insert edge {}-[{label}]->{}",
            target_to_dsl(rule, src),
            target_to_dsl(rule, dst)
        ),
        Action::DeleteNode(v) => format!("delete node {}", p.var_name(*v)),
        Action::DeleteEdge(e) => format!("delete edge {}", edge_ref_to_dsl(rule, e)),
        Action::UpdateNode {
            node,
            set_label,
            set_attrs,
            del_attrs,
        } => {
            // UpdateNode decomposes into the DSL's relabel/set/unset sugar.
            let name = p.var_name(*node);
            let mut parts = Vec::new();
            if let Some(l) = set_label {
                parts.push(format!("relabel node {name} to {l}"));
            }
            for (k, v) in set_attrs {
                parts.push(format!("set {name}.{k} = {}", vs_to_dsl(p, v)));
            }
            for k in del_attrs {
                parts.push(format!("unset {name}.{k}"));
            }
            parts.join(";\n       ")
        }
        Action::UpdateEdgeLabel { edge, label } => {
            format!("relabel edge {} to {label}", edge_ref_to_dsl(rule, edge))
        }
        Action::MergeNodes { keep, merged } => format!(
            "merge {} into {}",
            p.var_name(*merged),
            p.var_name(*keep)
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dsl::{parse_rule, parse_rules};

    /// A composite UpdateNode splits into several DSL actions; for
    /// round-trip comparison, normalise both sides by re-parsing.
    fn round_trip(src: &str) {
        let r1 = parse_rule(src).unwrap();
        let printed = rule_to_dsl(&r1);
        let r2 = parse_rule(&printed).unwrap_or_else(|e| panic!("reparse failed: {e}\n{printed}"));
        // Compare through a second print (prints are canonical).
        assert_eq!(rule_to_dsl(&r2), printed, "print not stable:\n{printed}");
        assert_eq!(r2.pattern, r1.pattern);
        assert_eq!(r2.category, r1.category);
        assert_eq!(r2.priority, r1.priority);
    }

    #[test]
    fn round_trips_core_shapes() {
        round_trip(
            "rule a [incompleteness] priority 3
             match (x:Person)-[livesIn]->(c:City)-[inCountry]->(k:Country)
             where not (x)-[citizenOf]->(k)
             repair insert edge (x)-[citizenOf]->(k)",
        );
        round_trip(
            "rule b [redundancy]
             match (x:Person), (y:Person)
             where x.ssn == y.ssn
             repair merge y into x",
        );
        round_trip(
            "rule c [conflict]
             match (x:P)-[r]->(y)
             where x.a != y.b, has(x.c), missing(y.d), not (x)-[q]->(*)
             repair delete edge (x)-[r]->(y)",
        );
        round_trip(
            "rule d [conflict]
             match (x:P)
             where x.n >= 2.5, x.s == \"weird \\\"quoted\\\" value\", x.t == -7
             repair set x.s = \"clean\"; unset x.n; relabel node x to Q",
        );
        round_trip(
            "rule e [incompleteness]
             match (c:City)
             where not (c)-[inCountry]->(*), has(c.countryName)
             repair insert node (k:Country {name: c.countryName, seen: true});
                    insert edge (c)-[inCountry]->(k)",
        );
    }

    #[test]
    fn gold_catalog_round_trips() {
        // Print and reparse the whole DSL gold catalog; semantic equality
        // via canonical print.
        let rules = parse_rules(grepair_test_catalog()).unwrap();
        for r in &rules {
            let printed = rule_to_dsl(r);
            let back = parse_rule(&printed)
                .unwrap_or_else(|e| panic!("{}: {e}\n{printed}", r.name));
            assert_eq!(rule_to_dsl(&back), printed, "{}", r.name);
        }
    }

    /// Inline copy of representative gold rules (the real catalog lives
    /// in grepair-gen, which depends on this crate).
    fn grepair_test_catalog() -> &'static str {
        "rule add_citizenship [incompleteness]
         match (x:Person)-[livesIn]->(c:City)-[inCountry]->(k:Country)
         where not (x)-[citizenOf]->(k)
         repair insert edge (x)-[citizenOf]->(k)

         rule fix_country_attr [conflict]
         match (x:Person)-[livesIn]->(c:City)-[inCountry]->(k:Country)
         where x.country != k.name
         repair set x.country = k.name

         rule fix_mistyped [conflict]
         match (x:Person)-[livesIn]->(k:Country)
         where not (x)-[citizenOf]->(k)
         repair relabel edge (x)-[livesIn]->(k) to citizenOf

         rule dedup_person [redundancy]
         match (x:Person), (y:Person)
         where x.ssn == y.ssn
         repair merge y into x"
    }

    #[test]
    fn ruleset_printer_includes_all_rules() {
        let set = RuleSet::from_dsl("demo", grepair_test_catalog()).unwrap();
        let printed = ruleset_to_dsl(&set);
        for r in &set.rules {
            assert!(printed.contains(&format!("rule {}", r.name)));
        }
        let back = RuleSet::from_dsl("demo", &printed).unwrap();
        assert_eq!(back.len(), set.len());
    }

    #[test]
    fn float_values_stay_floats() {
        let r = parse_rule(
            "rule f [conflict] match (x:P) where x.v == 2.0 repair set x.v = 3.0",
        )
        .unwrap();
        let printed = rule_to_dsl(&r);
        let back = parse_rule(&printed).unwrap();
        assert_eq!(back.pattern, r.pattern);
        assert_eq!(back.actions, r.actions);
    }
}
