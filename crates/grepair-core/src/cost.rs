//! The repair cost model: graph-edit-distance weights over repair
//! operations.
//!
//! The paper selects the "best" repair by edit-distance cost when several
//! rules (or several matches of one rule) can fix the same violation. Two
//! entry points:
//!
//! - [`op_cost`] — exact cost of an [`AppliedOp`] already performed
//!   (repair-report accounting, F7).
//! - [`estimate_cost`] — predicted cost of applying a rule to a match
//!   *without* mutating the graph (repair arbitration in the engine). The
//!   estimate equals the applied cost whenever the graph is unchanged
//!   between estimation and application; racing repairs can only lower the
//!   real cost (idempotent skips).

use crate::apply::AppliedOp;
use crate::rule::{Action, Grr, PatternEdgeRef, Target, ValueSource};
use grepair_graph::{EditCosts, Graph};
use grepair_match::Match;

/// Exact edit cost of a performed operation.
pub fn op_cost(op: &AppliedOp, costs: &EditCosts) -> f64 {
    match op {
        AppliedOp::InsertNode { attrs, .. } => {
            costs.node_insert + attrs.len() as f64 * costs.attr_change
        }
        AppliedOp::InsertEdge { .. } => costs.edge_insert,
        AppliedOp::DeleteNode { removed_edges, .. } => {
            costs.node_delete + *removed_edges as f64 * costs.edge_delete
        }
        AppliedOp::DeleteEdge { .. } => costs.edge_delete,
        AppliedOp::RelabelNode { .. } => costs.node_relabel,
        AppliedOp::SetAttr { .. } | AppliedOp::RemoveAttr { .. } => costs.attr_change,
        AppliedOp::RelabelEdge { .. } => costs.edge_relabel,
        // A merge deletes one node; rewired edges preserve information and
        // dropped parallels are deduplication, both free under the paper's
        // "preserve as much as possible" reading.
        AppliedOp::Merge { .. } => costs.node_delete,
    }
}

/// Predicted cost of applying `rule` at `m` against the current graph.
///
/// Idempotent sub-operations (inserting an existing edge, relabelling to
/// the current label, setting an attribute to its current value, deleting
/// a dead element) are predicted at zero, mirroring
/// [`crate::apply::apply_rule`]'s no-op behaviour.
pub fn estimate_cost(g: &Graph, rule: &Grr, m: &Match, costs: &EditCosts) -> f64 {
    let mut total = 0.0;
    // Fresh binders: assume they will be created (their edges too).
    let mut fresh: Vec<&str> = Vec::new();
    for action in &rule.actions {
        match action {
            Action::InsertNode { binder, attrs, .. } => {
                let settable = attrs
                    .iter()
                    .filter(|(_, s)| match s {
                        ValueSource::Const(_) => true,
                        ValueSource::CopyAttr(v, k) => g
                            .try_attr_key(k)
                            .and_then(|kk| g.attr(m.nodes[v.index()], kk))
                            .is_some(),
                    })
                    .count();
                total += costs.node_insert + settable as f64 * costs.attr_change;
                fresh.push(binder.as_str());
            }
            Action::InsertEdge { src, dst, label } => {
                let exists = match (src, dst) {
                    (Target::Var(s), Target::Var(d)) => {
                        let (sn, dn) = (m.nodes[s.index()], m.nodes[d.index()]);
                        g.try_label(label)
                            .map(|l| g.has_edge_labeled(sn, dn, l))
                            .unwrap_or(false)
                    }
                    // An edge to/from a fresh node can never pre-exist.
                    _ => false,
                };
                if !exists {
                    total += costs.edge_insert;
                }
            }
            Action::DeleteNode(v) => {
                let n = m.nodes[v.index()];
                if g.contains_node(n) {
                    total += costs.node_delete + g.degree(n) as f64 * costs.edge_delete;
                }
            }
            Action::DeleteEdge(PatternEdgeRef(i)) => {
                if m.edges.get(*i).is_some_and(|&e| g.contains_edge(e)) {
                    total += costs.edge_delete;
                }
            }
            Action::UpdateNode {
                node,
                set_label,
                set_attrs,
                del_attrs,
            } => {
                let n = m.nodes[node.index()];
                if !g.contains_node(n) {
                    continue;
                }
                if let Some(new_label) = set_label {
                    if g.label_name(g.node_label(n).unwrap()) != new_label {
                        total += costs.node_relabel;
                    }
                }
                for (key, src) in set_attrs {
                    let value = match src {
                        ValueSource::Const(v) => Some(v.clone()),
                        ValueSource::CopyAttr(v, k) => g
                            .try_attr_key(k)
                            .and_then(|kk| g.attr(m.nodes[v.index()], kk))
                            .cloned(),
                    };
                    let Some(value) = value else { continue };
                    let current = g.try_attr_key(key).and_then(|kk| g.attr(n, kk));
                    if current != Some(&value) {
                        total += costs.attr_change;
                    }
                }
                for key in del_attrs {
                    if g.try_attr_key(key).and_then(|kk| g.attr(n, kk)).is_some() {
                        total += costs.attr_change;
                    }
                }
            }
            Action::UpdateEdgeLabel {
                edge: PatternEdgeRef(i),
                label,
            } => {
                if let Some(&e) = m.edges.get(*i) {
                    if let Ok(er) = g.edge(e) {
                        if g.label_name(er.label) != label {
                            total += costs.edge_relabel;
                        }
                    }
                }
            }
            Action::MergeNodes { keep, merged } => {
                let (k, d) = (m.nodes[keep.index()], m.nodes[merged.index()]);
                if g.contains_node(k) && g.contains_node(d) && k != d {
                    total += costs.node_delete;
                }
            }
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apply::apply_rule;
    use crate::rule::{Category, Grr};
    use grepair_graph::Value;
    use grepair_match::{Matcher, Pattern};

    /// estimate == actual for every op kind on a static graph.
    #[test]
    fn estimate_matches_actual_cost() {
        let mut g = Graph::new();
        let a = g.add_node_named("Person");
        let b = g.add_node_named("Person");
        let ssn = g.attr_key("ssn");
        g.set_attr(a, ssn, Value::Int(1)).unwrap();
        g.set_attr(b, ssn, Value::Int(1)).unwrap();
        g.add_edge_named(a, b, "dupOf").unwrap();

        let mut pb = Pattern::builder();
        let vx = pb.node("x", Some("Person"));
        let vy = pb.node("y", Some("Person"));
        pb.edge(vx, vy, "dupOf");
        let rule = Grr::new(
            "merge-dups",
            Category::Redundancy,
            pb.build().unwrap(),
            vec![
                crate::rule::Action::DeleteEdge(PatternEdgeRef(0)),
                crate::rule::Action::MergeNodes {
                    keep: grepair_match::Var(0),
                    merged: grepair_match::Var(1),
                },
            ],
        )
        .unwrap();
        let costs = EditCosts::default();
        let m = Matcher::new(&g).find_all(&rule.pattern).remove(0);
        let est = estimate_cost(&g, &rule, &m, &costs);
        let mut g2 = g.clone();
        let applied = apply_rule(&mut g2, &rule, &m, &costs).unwrap();
        assert!((est - applied.cost).abs() < 1e-9, "est {est} vs {}", applied.cost);
    }

    #[test]
    fn idempotent_ops_cost_zero() {
        let mut g = Graph::new();
        let a = g.add_node_named("Person");
        let c = g.add_node_named("City");
        g.add_edge_named(a, c, "livesIn").unwrap();

        let mut pb = Pattern::builder();
        let vx = pb.node("x", Some("Person"));
        let vc = pb.node("c", Some("City"));
        pb.edge(vx, vc, "livesIn");
        // Rule inserting the edge that already exists.
        let rule = Grr::new(
            "noop-insert",
            Category::Incompleteness,
            pb.build().unwrap(),
            vec![crate::rule::Action::InsertEdge {
                src: Target::Var(grepair_match::Var(0)),
                dst: Target::Var(grepair_match::Var(1)),
                label: "livesIn".into(),
            }],
        )
        .unwrap();
        let m = Matcher::new(&g).find_all(&rule.pattern).remove(0);
        assert_eq!(estimate_cost(&g, &rule, &m, &EditCosts::default()), 0.0);
    }

    #[test]
    fn delete_node_cost_includes_degree() {
        let mut g = Graph::new();
        let hub = g.add_node_named("Spam");
        for _ in 0..4 {
            let n = g.add_node_named("Person");
            g.add_edge_named(hub, n, "follows").unwrap();
        }
        let mut pb = Pattern::builder();
        pb.node("x", Some("Spam"));
        let rule = Grr::new(
            "kill",
            Category::Conflict,
            pb.build().unwrap(),
            vec![crate::rule::Action::DeleteNode(grepair_match::Var(0))],
        )
        .unwrap();
        let costs = EditCosts::default();
        let m = Matcher::new(&g).find_all(&rule.pattern).remove(0);
        let est = estimate_cost(&g, &rule, &m, &costs);
        assert_eq!(est, costs.node_delete + 4.0 * costs.edge_delete);
        let mut g2 = g.clone();
        let applied = apply_rule(&mut g2, &rule, &m, &costs).unwrap();
        assert_eq!(est, applied.cost);
    }
}
