//! Graph Repairing Rules (GRRs).
//!
//! A [`Grr`] couples a *pattern* (what an inconsistency looks like — see
//! [`grepair_match::Pattern`]) with *repair semantics*: an ordered list of
//! [`Action`]s over the matched variables. This is the paper's central
//! object — unlike detection-only constraints (GFDs, keys), a GRR says how
//! to fix what it finds.
//!
//! The action vocabulary is exactly the paper's **seven repair
//! operations**:
//!
//! | # | Action | typical inconsistency class |
//! |---|--------|------------------------------|
//! | 1 | [`Action::InsertNode`]      | incompleteness |
//! | 2 | [`Action::InsertEdge`]      | incompleteness |
//! | 3 | [`Action::DeleteNode`]      | conflict |
//! | 4 | [`Action::DeleteEdge`]      | conflict / redundancy |
//! | 5 | [`Action::UpdateNode`]      | conflict (labels & attributes) |
//! | 6 | [`Action::UpdateEdgeLabel`] | conflict |
//! | 7 | [`Action::MergeNodes`]      | redundancy |

use grepair_match::{Pattern, Var};
use grepair_graph::Value;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The paper's three inconsistency classes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Category {
    /// Missing nodes, edges, or attribute values.
    Incompleteness,
    /// Contradictory labels, edges, or attribute values.
    Conflict,
    /// Duplicate entities or duplicated edges.
    Redundancy,
}

impl fmt::Display for Category {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Category::Incompleteness => write!(f, "incompleteness"),
            Category::Conflict => write!(f, "conflict"),
            Category::Redundancy => write!(f, "redundancy"),
        }
    }
}

/// Where an action's attribute value comes from.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum ValueSource {
    /// A constant value.
    Const(Value),
    /// Copied from a matched variable's attribute at repair time. If the
    /// source attribute is absent, the assignment is skipped.
    CopyAttr(Var, String),
}

/// Endpoint of an inserted edge: a matched variable or a node freshly
/// created by a preceding [`Action::InsertNode`] in the same rule.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum Target {
    /// A pattern variable.
    Var(Var),
    /// A fresh node, referenced by the binder name given at insertion.
    Fresh(String),
}

/// Reference to a matched edge: the index of a *positive* pattern edge —
/// the repair acts on that edge's witness in the match.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
#[serde(transparent)]
pub struct PatternEdgeRef(pub usize);

/// One repair operation, parameterised over the match.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum Action {
    /// (1) Create a fresh node; `binder` names it for later
    /// [`Action::InsertEdge`] targets.
    InsertNode {
        /// Name under which subsequent actions can reference the node.
        binder: String,
        /// Label of the new node.
        label: String,
        /// Initial attributes.
        attrs: Vec<(String, ValueSource)>,
    },
    /// (2) Insert an edge (skipped if an identical edge already exists —
    /// repairs are idempotent).
    InsertEdge {
        /// Source endpoint.
        src: Target,
        /// Target endpoint.
        dst: Target,
        /// Relation label.
        label: String,
    },
    /// (3) Delete a matched node (and its incident edges).
    DeleteNode(Var),
    /// (4) Delete a matched edge.
    DeleteEdge(PatternEdgeRef),
    /// (5) Update a matched node: relabel and/or set/remove attributes.
    UpdateNode {
        /// The node to update.
        node: Var,
        /// New label, if relabelling.
        set_label: Option<String>,
        /// Attributes to set.
        set_attrs: Vec<(String, ValueSource)>,
        /// Attribute keys to remove.
        del_attrs: Vec<String>,
    },
    /// (6) Relabel a matched edge.
    UpdateEdgeLabel {
        /// The edge to relabel.
        edge: PatternEdgeRef,
        /// The new relation label.
        label: String,
    },
    /// (7) Merge `merged` into `keep`: redirect edges, union attributes
    /// (`keep` wins conflicts), delete `merged`.
    MergeNodes {
        /// Surviving node.
        keep: Var,
        /// Node absorbed and deleted.
        merged: Var,
    },
}

impl Action {
    /// Pattern variables read or written by this action.
    pub fn vars(&self) -> Vec<Var> {
        match self {
            Action::InsertNode { attrs, .. } => attrs
                .iter()
                .filter_map(|(_, s)| match s {
                    ValueSource::CopyAttr(v, _) => Some(*v),
                    ValueSource::Const(_) => None,
                })
                .collect(),
            Action::InsertEdge { src, dst, .. } => [src, dst]
                .into_iter()
                .filter_map(|t| match t {
                    Target::Var(v) => Some(*v),
                    Target::Fresh(_) => None,
                })
                .collect(),
            Action::DeleteNode(v) => vec![*v],
            Action::DeleteEdge(_) => vec![],
            Action::UpdateNode {
                node, set_attrs, ..
            } => {
                let mut vs = vec![*node];
                for (_, s) in set_attrs {
                    if let ValueSource::CopyAttr(v, _) = s {
                        vs.push(*v);
                    }
                }
                vs
            }
            Action::UpdateEdgeLabel { .. } => vec![],
            Action::MergeNodes { keep, merged } => vec![*keep, *merged],
        }
    }

    /// Short operation name (for reports and the T2 analysis table).
    pub fn op_name(&self) -> &'static str {
        match self {
            Action::InsertNode { .. } => "insert-node",
            Action::InsertEdge { .. } => "insert-edge",
            Action::DeleteNode(_) => "delete-node",
            Action::DeleteEdge(_) => "delete-edge",
            Action::UpdateNode { .. } => "update-node",
            Action::UpdateEdgeLabel { .. } => "update-edge-label",
            Action::MergeNodes { .. } => "merge-nodes",
        }
    }
}

/// A Graph Repairing Rule.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Grr {
    /// Unique rule name.
    pub name: String,
    /// Inconsistency class this rule addresses.
    pub category: Category,
    /// The matching half: pattern + condition.
    pub pattern: Pattern,
    /// The repairing half: ordered operations.
    pub actions: Vec<Action>,
    /// Higher priority wins cost ties during repair arbitration.
    pub priority: i32,
}

/// Rule validation error.
#[derive(Clone, Debug, PartialEq)]
pub enum RuleError {
    /// The pattern itself is malformed.
    Pattern(String),
    /// An action is malformed (unknown var, edge index, binder, …).
    Action {
        /// Index of the offending action.
        index: usize,
        /// Explanation.
        reason: String,
    },
    /// The rule has no actions — it detects but cannot repair.
    NoActions,
}

impl fmt::Display for RuleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuleError::Pattern(msg) => write!(f, "invalid pattern: {msg}"),
            RuleError::Action { index, reason } => {
                write!(f, "invalid action #{index}: {reason}")
            }
            RuleError::NoActions => write!(f, "rule has no repair actions"),
        }
    }
}

impl std::error::Error for RuleError {}

impl Grr {
    /// Construct and validate a rule.
    pub fn new(
        name: impl Into<String>,
        category: Category,
        pattern: Pattern,
        actions: Vec<Action>,
    ) -> Result<Self, RuleError> {
        let rule = Grr {
            name: name.into(),
            category,
            pattern,
            actions,
            priority: 0,
        };
        rule.validate()?;
        Ok(rule)
    }

    /// Set the arbitration priority (builder style).
    pub fn with_priority(mut self, priority: i32) -> Self {
        self.priority = priority;
        self
    }

    /// Validate structure: pattern well-formed, every action references
    /// existing variables / pattern edges / previously bound fresh binders,
    /// and no variable is used after being deleted or merged away.
    pub fn validate(&self) -> Result<(), RuleError> {
        self.pattern.validate().map_err(RuleError::Pattern)?;
        if self.actions.is_empty() {
            return Err(RuleError::NoActions);
        }
        let nvars = self.pattern.num_vars();
        let nedges = self.pattern.edges.len();
        let mut binders: Vec<String> = Vec::new();
        let mut dead: Vec<Var> = Vec::new();

        let check_var = |v: Var, i: usize, dead: &[Var]| -> Result<(), RuleError> {
            if v.index() >= nvars {
                return Err(RuleError::Action {
                    index: i,
                    reason: format!("unknown variable {v:?}"),
                });
            }
            if dead.contains(&v) {
                return Err(RuleError::Action {
                    index: i,
                    reason: format!("variable {v:?} used after delete/merge"),
                });
            }
            Ok(())
        };

        for (i, a) in self.actions.iter().enumerate() {
            match a {
                Action::InsertNode { binder, attrs, .. } => {
                    if binders.iter().any(|b| b == binder)
                        || self.pattern.var(binder).is_some()
                    {
                        return Err(RuleError::Action {
                            index: i,
                            reason: format!("binder {binder:?} shadows an existing name"),
                        });
                    }
                    for (_, s) in attrs {
                        if let ValueSource::CopyAttr(v, _) = s {
                            check_var(*v, i, &dead)?;
                        }
                    }
                    binders.push(binder.clone());
                }
                Action::InsertEdge { src, dst, .. } => {
                    for t in [src, dst] {
                        match t {
                            Target::Var(v) => check_var(*v, i, &dead)?,
                            Target::Fresh(b) => {
                                if !binders.iter().any(|x| x == b) {
                                    return Err(RuleError::Action {
                                        index: i,
                                        reason: format!("unknown fresh binder {b:?}"),
                                    });
                                }
                            }
                        }
                    }
                }
                Action::DeleteNode(v) => {
                    check_var(*v, i, &dead)?;
                    dead.push(*v);
                }
                Action::DeleteEdge(PatternEdgeRef(e)) => {
                    if *e >= nedges {
                        return Err(RuleError::Action {
                            index: i,
                            reason: format!("pattern edge index {e} out of range"),
                        });
                    }
                }
                Action::UpdateNode {
                    node, set_attrs, ..
                } => {
                    check_var(*node, i, &dead)?;
                    for (_, s) in set_attrs {
                        if let ValueSource::CopyAttr(v, _) = s {
                            check_var(*v, i, &dead)?;
                        }
                    }
                }
                Action::UpdateEdgeLabel {
                    edge: PatternEdgeRef(e),
                    ..
                } => {
                    if *e >= nedges {
                        return Err(RuleError::Action {
                            index: i,
                            reason: format!("pattern edge index {e} out of range"),
                        });
                    }
                }
                Action::MergeNodes { keep, merged } => {
                    check_var(*keep, i, &dead)?;
                    check_var(*merged, i, &dead)?;
                    if keep == merged {
                        return Err(RuleError::Action {
                            index: i,
                            reason: "cannot merge a variable with itself".into(),
                        });
                    }
                    dead.push(*merged);
                }
            }
        }
        Ok(())
    }
}

impl fmt::Display for Grr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "rule {} [{}]: match {} repair ",
            self.name, self.category, self.pattern
        )?;
        for (i, a) in self.actions.iter().enumerate() {
            if i > 0 {
                write!(f, "; ")?;
            }
            write!(f, "{}", a.op_name())?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grepair_match::Pattern;

    fn two_var_pattern() -> Pattern {
        let mut b = Pattern::builder();
        let x = b.node("x", Some("Person"));
        let c = b.node("c", Some("City"));
        b.edge(x, c, "livesIn");
        b.build().unwrap()
    }

    #[test]
    fn valid_rule_builds() {
        let p = two_var_pattern();
        let r = Grr::new(
            "del-live",
            Category::Conflict,
            p,
            vec![Action::DeleteEdge(PatternEdgeRef(0))],
        )
        .unwrap();
        assert_eq!(r.priority, 0);
        assert!(r.to_string().contains("delete-edge"));
    }

    #[test]
    fn no_actions_rejected() {
        let p = two_var_pattern();
        assert_eq!(
            Grr::new("noop", Category::Conflict, p, vec![]).unwrap_err(),
            RuleError::NoActions
        );
    }

    #[test]
    fn unknown_var_rejected() {
        let p = two_var_pattern();
        let err = Grr::new(
            "bad",
            Category::Conflict,
            p,
            vec![Action::DeleteNode(Var(9))],
        )
        .unwrap_err();
        assert!(matches!(err, RuleError::Action { index: 0, .. }));
    }

    #[test]
    fn use_after_delete_rejected() {
        let p = two_var_pattern();
        let err = Grr::new(
            "uad",
            Category::Conflict,
            p,
            vec![
                Action::DeleteNode(Var(0)),
                Action::UpdateNode {
                    node: Var(0),
                    set_label: Some("Robot".into()),
                    set_attrs: vec![],
                    del_attrs: vec![],
                },
            ],
        )
        .unwrap_err();
        assert!(matches!(err, RuleError::Action { index: 1, .. }));
    }

    #[test]
    fn use_after_merge_rejected() {
        let mut b = Pattern::builder();
        let x = b.node("x", Some("P"));
        let y = b.node("y", Some("P"));
        let _ = (x, y);
        let p = b.build().unwrap();
        let err = Grr::new(
            "uam",
            Category::Redundancy,
            p,
            vec![
                Action::MergeNodes {
                    keep: Var(0),
                    merged: Var(1),
                },
                Action::DeleteNode(Var(1)),
            ],
        )
        .unwrap_err();
        assert!(matches!(err, RuleError::Action { index: 1, .. }));
    }

    #[test]
    fn fresh_binder_scoping() {
        let p = two_var_pattern();
        // Edge to unbound binder: error.
        let err = Grr::new(
            "bad-binder",
            Category::Incompleteness,
            p.clone(),
            vec![Action::InsertEdge {
                src: Target::Var(Var(0)),
                dst: Target::Fresh("k".into()),
                label: "citizenOf".into(),
            }],
        )
        .unwrap_err();
        assert!(matches!(err, RuleError::Action { index: 0, .. }));

        // Bound first: ok.
        Grr::new(
            "good-binder",
            Category::Incompleteness,
            p.clone(),
            vec![
                Action::InsertNode {
                    binder: "k".into(),
                    label: "Country".into(),
                    attrs: vec![],
                },
                Action::InsertEdge {
                    src: Target::Var(Var(0)),
                    dst: Target::Fresh("k".into()),
                    label: "citizenOf".into(),
                },
            ],
        )
        .unwrap();

        // Binder shadowing a pattern var name: error.
        let err = Grr::new(
            "shadow",
            Category::Incompleteness,
            p,
            vec![Action::InsertNode {
                binder: "x".into(),
                label: "Country".into(),
                attrs: vec![],
            }],
        )
        .unwrap_err();
        assert!(matches!(err, RuleError::Action { index: 0, .. }));
    }

    #[test]
    fn edge_index_bounds_checked() {
        let p = two_var_pattern();
        let err = Grr::new(
            "bad-edge",
            Category::Conflict,
            p,
            vec![Action::DeleteEdge(PatternEdgeRef(5))],
        )
        .unwrap_err();
        assert!(matches!(err, RuleError::Action { index: 0, .. }));
    }

    #[test]
    fn self_merge_rejected() {
        let p = two_var_pattern();
        let err = Grr::new(
            "self-merge",
            Category::Redundancy,
            p,
            vec![Action::MergeNodes {
                keep: Var(0),
                merged: Var(0),
            }],
        )
        .unwrap_err();
        assert!(matches!(err, RuleError::Action { index: 0, .. }));
    }

    #[test]
    fn action_vars_reported() {
        let a = Action::UpdateNode {
            node: Var(0),
            set_label: None,
            set_attrs: vec![("x".into(), ValueSource::CopyAttr(Var(1), "y".into()))],
            del_attrs: vec![],
        };
        assert_eq!(a.vars(), vec![Var(0), Var(1)]);
        assert_eq!(a.op_name(), "update-node");
    }

    #[test]
    fn serde_round_trip() {
        let p = two_var_pattern();
        let r = Grr::new(
            "rt",
            Category::Conflict,
            p,
            vec![Action::DeleteEdge(PatternEdgeRef(0))],
        )
        .unwrap();
        let json = serde_json::to_string(&r).unwrap();
        let back: Grr = serde_json::from_str(&json).unwrap();
        assert_eq!(back, r);
    }
}
