//! Rule-set container: a named, validated collection of GRRs.

use crate::dsl::{parse_rules_with_spans, ParseError, RuleSpan};
use crate::rule::{Category, Grr, RuleError};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A named collection of Graph Repairing Rules.
#[derive(Clone, Debug, Default, Serialize, Deserialize, PartialEq)]
pub struct RuleSet {
    /// Set name (dataset/domain it was curated for).
    pub name: String,
    /// The rules, in priority-irrelevant declaration order.
    pub rules: Vec<Grr>,
}

/// Rule-set level validation error.
#[derive(Clone, Debug, PartialEq)]
pub enum RuleSetError {
    /// Two rules share a name.
    DuplicateName(String),
    /// A rule failed its own validation.
    Rule {
        /// Offending rule name.
        name: String,
        /// Underlying error.
        error: RuleError,
    },
}

impl fmt::Display for RuleSetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuleSetError::DuplicateName(n) => write!(f, "duplicate rule name {n:?}"),
            RuleSetError::Rule { name, error } => write!(f, "rule {name:?}: {error}"),
        }
    }
}

impl std::error::Error for RuleSetError {}

impl RuleSet {
    /// Build and validate a rule set.
    pub fn new(name: impl Into<String>, rules: Vec<Grr>) -> Result<Self, RuleSetError> {
        let set = RuleSet {
            name: name.into(),
            rules,
        };
        set.validate()?;
        Ok(set)
    }

    /// Parse a rule set from DSL source.
    pub fn from_dsl(name: impl Into<String>, src: &str) -> Result<Self, ParseError> {
        RuleSet::from_dsl_with_spans(name, src).map(|(set, _)| set)
    }

    /// Parse a rule set from DSL source, also returning the source span of
    /// each rule (same order as `rules`). Set-level validation errors point
    /// at the offending rule's definition.
    pub fn from_dsl_with_spans(
        name: impl Into<String>,
        src: &str,
    ) -> Result<(Self, Vec<RuleSpan>), ParseError> {
        let (rules, spans) = parse_rules_with_spans(src)?;
        let set = RuleSet::new(name, rules).map_err(|e| {
            // Locate the rule the error names; for duplicates that is the
            // *second* definition carrying the name.
            let offender = match &e {
                RuleSetError::DuplicateName(n) => {
                    spans.iter().filter(|s| &s.name == n).nth(1)
                }
                RuleSetError::Rule { name, .. } => spans.iter().find(|s| &s.name == name),
            };
            ParseError {
                line: offender.map(|s| s.start_line).unwrap_or(1),
                message: e.to_string(),
            }
        })?;
        Ok((set, spans))
    }

    /// Validate: rule names unique, each rule internally valid.
    pub fn validate(&self) -> Result<(), RuleSetError> {
        let mut names = std::collections::HashSet::new();
        for r in &self.rules {
            if !names.insert(&r.name) {
                return Err(RuleSetError::DuplicateName(r.name.clone()));
            }
            r.validate().map_err(|error| RuleSetError::Rule {
                name: r.name.clone(),
                error,
            })?;
        }
        Ok(())
    }

    /// Number of rules.
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// Look up a rule by name.
    pub fn get(&self, name: &str) -> Option<&Grr> {
        self.rules.iter().find(|r| r.name == name)
    }

    /// Rules of one inconsistency class.
    pub fn by_category(&self, cat: Category) -> impl Iterator<Item = &Grr> {
        self.rules.iter().filter(move |r| r.category == cat)
    }

    /// Counts per category: (incompleteness, conflict, redundancy).
    pub fn category_counts(&self) -> (usize, usize, usize) {
        let mut c = (0, 0, 0);
        for r in &self.rules {
            match r.category {
                Category::Incompleteness => c.0 += 1,
                Category::Conflict => c.1 += 1,
                Category::Redundancy => c.2 += 1,
            }
        }
        c
    }

    /// Serialize to pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("RuleSet is always serializable")
    }

    /// Parse from JSON, re-validating.
    pub fn from_json(s: &str) -> Result<Self, String> {
        let set: RuleSet = serde_json::from_str(s).map_err(|e| e.to_string())?;
        set.validate().map_err(|e| e.to_string())?;
        Ok(set)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SRC: &str = "
        rule a [incompleteness]
        match (x:Person)-[livesIn]->(c:City)
        where not (x)-[registeredIn]->(c)
        repair insert edge (x)-[registeredIn]->(c)

        rule b [conflict]
        match (x:Person)-[marriedTo]->(x)
        repair delete edge (x)-[marriedTo]->(x)

        rule c [redundancy]
        match (x:Person), (y:Person)
        where x.ssn == y.ssn
        repair merge y into x
    ";

    #[test]
    fn from_dsl_and_queries() {
        let set = RuleSet::from_dsl("kg", SRC).unwrap();
        assert_eq!(set.len(), 3);
        assert!(!set.is_empty());
        assert!(set.get("b").is_some());
        assert!(set.get("zzz").is_none());
        assert_eq!(set.category_counts(), (1, 1, 1));
        assert_eq!(set.by_category(Category::Redundancy).count(), 1);
    }

    #[test]
    fn duplicate_names_rejected() {
        let src = "
            rule a [conflict] match (x:P)-[r]->(y:P) repair delete edge (x)-[r]->(y)
            rule a [conflict] match (x:Q)-[r]->(y:Q) repair delete edge (x)-[r]->(y)
        ";
        let err = RuleSet::from_dsl("dup", src).unwrap_err();
        assert!(err.message.contains("duplicate"), "{err}");
    }

    #[test]
    fn json_round_trip() {
        let set = RuleSet::from_dsl("kg", SRC).unwrap();
        let json = set.to_json();
        let back = RuleSet::from_json(&json).unwrap();
        assert_eq!(back, set);
    }

    #[test]
    fn invalid_json_rule_rejected() {
        // A structurally valid JSON rule set whose rule has no actions.
        let mut set = RuleSet::from_dsl("kg", SRC).unwrap();
        set.rules[0].actions.clear();
        let json = set.to_json();
        assert!(RuleSet::from_json(&json).is_err());
    }
}
