//! Rule-set linting: stable diagnostic codes over the static analyses.
//!
//! Each [`LintCode`] packages one of the paper's rule-set quality
//! properties (termination, consistency, effectiveness, implication) — or
//! a purely syntactic hygiene check — as a stable, policy-controllable
//! diagnostic. [`lint_rules`] runs every analysis over a rule set and
//! returns a [`LintReport`] whose findings carry severities from a
//! [`LintPolicy`], source spans threaded from the `.grr` parser, and both
//! rustc-style text and JSON renderings.
//!
//! ```
//! use grepair_core::lint::{lint_rules, LintPolicy};
//! use grepair_core::parse_rules_with_spans;
//!
//! let (rules, spans) = parse_rules_with_spans(
//!     "rule noop [conflict]
//!      match (x:P)-[r]->(y:P)
//!      repair set x.seen = true",
//! )
//! .unwrap();
//! let report = lint_rules(&rules, &spans, &LintPolicy::default());
//! // `noop` never removes its own match: GR003 ineffective-rule.
//! assert!(report.findings.iter().any(|f| f.code.code() == "GR003"));
//! ```

use crate::analysis::{
    check_effectiveness, find_conflicts, find_implications, trigger_graph, Effectiveness,
};
use crate::dsl::RuleSpan;
use crate::rule::{Action, Grr, ValueSource};
use grepair_match::{unsatisfiable, CmpOp, Constraint, Rhs, Var};
use grepair_graph::Value;
use std::fmt;
use std::time::Instant;

/// Stable lint diagnostic codes. The numeric part never changes meaning;
/// policies reference codes (`GR003`) or names (`ineffective-rule`).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum LintCode {
    /// **GR001 `non-terminating-cycle`** — rules that may enable each
    /// other (or themselves) forever. Approximates the paper's
    /// *termination* property: a cycle in the label-level trigger graph
    /// means the sufficient termination condition fails, so a repair run
    /// over these rules can only be bounded by runtime churn guards.
    NonTerminatingCycle,
    /// **GR002 `conflicting-repairs`** — two rules whose repairs can
    /// contradict each other on overlapping matches (set the same
    /// attribute to different constants, relabel the same node/edge
    /// differently, delete what the other uses). Approximates the paper's
    /// *consistency* property for rule sets.
    ConflictingRepairs,
    /// **GR003 `ineffective-rule`** — a rule whose repair does not
    /// eliminate the violation it matches: applied to its own canonical
    /// violation instance, the pattern still matches. This is the paper's
    /// *effectiveness* check, decided exactly when a canonical instance
    /// can be materialised.
    IneffectiveRule,
    /// **GR004 `subsumed-rule`** — a rule implied by another: wherever it
    /// fires, the subsuming rule fires with an identical repair, so the
    /// rule is dead weight. Approximates the paper's *implication*
    /// analysis via injective pattern embedding.
    SubsumedRule,
    /// **GR005 `unsatisfiable-pattern`** — the matching half denotes the
    /// empty set: a required edge is also forbidden, a compared attribute
    /// is also required missing, or constant comparisons carve out an
    /// empty set of values. A sound (never-wrong) proof that the rule can
    /// never fire on any graph.
    UnsatisfiablePattern,
    /// **GR006 `unused-pattern-variable`** — a pattern variable that no
    /// edge, negative edge, constraint, or repair action references. It
    /// only multiplies the match count (one match per node with that
    /// label), inflating repair work without influencing the repair.
    UnusedPatternVariable,
    /// **GR007 `action-type-mismatch`** — a repair writes a value whose
    /// kind (number / string / boolean) contradicts how the rule set's
    /// patterns compare that attribute. Since the DSL's ordering
    /// comparisons are type-sensitive, such a repair produces values no
    /// pattern in the set can ever select again.
    ActionTypeMismatch,
}

impl LintCode {
    /// Every lint code, in numeric order.
    pub const ALL: [LintCode; 7] = [
        LintCode::NonTerminatingCycle,
        LintCode::ConflictingRepairs,
        LintCode::IneffectiveRule,
        LintCode::SubsumedRule,
        LintCode::UnsatisfiablePattern,
        LintCode::UnusedPatternVariable,
        LintCode::ActionTypeMismatch,
    ];

    /// Stable code string, e.g. `"GR003"`.
    pub fn code(self) -> &'static str {
        match self {
            LintCode::NonTerminatingCycle => "GR001",
            LintCode::ConflictingRepairs => "GR002",
            LintCode::IneffectiveRule => "GR003",
            LintCode::SubsumedRule => "GR004",
            LintCode::UnsatisfiablePattern => "GR005",
            LintCode::UnusedPatternVariable => "GR006",
            LintCode::ActionTypeMismatch => "GR007",
        }
    }

    /// Human-readable lint name, e.g. `"ineffective-rule"`.
    pub fn name(self) -> &'static str {
        match self {
            LintCode::NonTerminatingCycle => "non-terminating-cycle",
            LintCode::ConflictingRepairs => "conflicting-repairs",
            LintCode::IneffectiveRule => "ineffective-rule",
            LintCode::SubsumedRule => "subsumed-rule",
            LintCode::UnsatisfiablePattern => "unsatisfiable-pattern",
            LintCode::UnusedPatternVariable => "unused-pattern-variable",
            LintCode::ActionTypeMismatch => "action-type-mismatch",
        }
    }

    /// One-line note tying the code to the rule-set property it
    /// approximates; rendered under each finding.
    pub fn summary(self) -> &'static str {
        match self {
            LintCode::NonTerminatingCycle => {
                "termination: the trigger graph has a cycle, so the sufficient \
                 termination condition fails and churn guards bound the run"
            }
            LintCode::ConflictingRepairs => {
                "consistency: on overlapping matches these repairs contradict \
                 each other, so the result depends on application order"
            }
            LintCode::IneffectiveRule => {
                "effectiveness: applying the rule to its own canonical \
                 violation leaves the pattern matching"
            }
            LintCode::SubsumedRule => {
                "implication: another rule fires on every match of this one \
                 with an identical repair"
            }
            LintCode::UnsatisfiablePattern => {
                "satisfiability: the match clause contradicts itself and \
                 denotes the empty set on every graph"
            }
            LintCode::UnusedPatternVariable => {
                "hygiene: the variable only multiplies the match count without \
                 influencing the repair"
            }
            LintCode::ActionTypeMismatch => {
                "typing: the written value kind contradicts how the rule set's \
                 comparisons use the attribute"
            }
        }
    }

    /// Default severity before policy overrides. Sound proofs of a broken
    /// rule (GR003, GR005) deny; heuristic or hygiene findings warn.
    pub fn default_severity(self) -> Severity {
        match self {
            LintCode::IneffectiveRule | LintCode::UnsatisfiablePattern => Severity::Deny,
            _ => Severity::Warn,
        }
    }

    /// Parse a code (`GR001`) or name (`non-terminating-cycle`),
    /// case-insensitively.
    pub fn parse(s: &str) -> Option<LintCode> {
        let s = s.trim();
        LintCode::ALL
            .into_iter()
            .find(|c| c.code().eq_ignore_ascii_case(s) || c.name().eq_ignore_ascii_case(s))
    }
}

impl fmt::Display for LintCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.code())
    }
}

/// How seriously a lint finding is taken.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Suppressed: the finding is dropped from the report.
    Allow,
    /// Reported, does not fail the lint.
    Warn,
    /// Reported and fails the lint (non-zero exit, refused pre-flight).
    Deny,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Allow => "allow",
            Severity::Warn => "warn",
            Severity::Deny => "deny",
        })
    }
}

/// Per-code severity overrides layered over
/// [`LintCode::default_severity`]. Later overrides win, mirroring
/// command-line flag order.
#[derive(Clone, Debug, Default)]
pub struct LintPolicy {
    overrides: Vec<(LintCode, Severity)>,
}

impl LintPolicy {
    /// Override a code's severity (appended; last override wins).
    pub fn set(&mut self, code: LintCode, severity: Severity) -> &mut Self {
        self.overrides.push((code, severity));
        self
    }

    /// Effective severity of a code under this policy.
    pub fn severity_of(&self, code: LintCode) -> Severity {
        self.overrides
            .iter()
            .rev()
            .find(|(c, _)| *c == code)
            .map(|(_, s)| *s)
            .unwrap_or_else(|| code.default_severity())
    }
}

/// One lint finding.
#[derive(Clone, Debug)]
pub struct Finding {
    /// The diagnostic code.
    pub code: LintCode,
    /// Severity under the policy the report was produced with.
    pub severity: Severity,
    /// Primary rule the finding is attached to.
    pub rule: String,
    /// Other rules involved (cycle members, conflicting peer, subsumer).
    pub related: Vec<String>,
    /// Human-readable description with a concrete witness.
    pub message: String,
    /// Source span of the primary rule, when parsed from `.grr` text.
    pub span: Option<RuleSpan>,
}

/// Result of linting a rule set.
#[derive(Clone, Debug, Default)]
pub struct LintReport {
    /// Findings at warn or deny severity (allow-level findings are
    /// dropped), ordered by code then rule.
    pub findings: Vec<Finding>,
    /// Wall-clock time of the lint pass in microseconds.
    pub micros: u128,
}

impl LintReport {
    /// Number of deny-level findings.
    pub fn deny_count(&self) -> usize {
        self.findings
            .iter()
            .filter(|f| f.severity == Severity::Deny)
            .count()
    }

    /// Number of warn-level findings.
    pub fn warn_count(&self) -> usize {
        self.findings
            .iter()
            .filter(|f| f.severity == Severity::Warn)
            .count()
    }

    /// Does any finding deny (fail the lint)?
    pub fn has_denials(&self) -> bool {
        self.deny_count() > 0
    }

    /// Rustc-style text rendering. `origin` names the rule source (file
    /// path or `<input>`) for the `-->` span lines.
    pub fn render_text(&self, origin: &str) -> String {
        let mut out = String::new();
        for f in &self.findings {
            let level = match f.severity {
                Severity::Deny => "error",
                _ => "warning",
            };
            out.push_str(&format!("{level}[{}]: {}\n", f.code.code(), f.message));
            match &f.span {
                Some(sp) => out.push_str(&format!(
                    "  --> {origin}:{}:{} (rule `{}`)\n",
                    sp.start_line, sp.start_col, f.rule
                )),
                None => out.push_str(&format!("  --> {origin} (rule `{}`)\n", f.rule)),
            }
            out.push_str(&format!("  = note: {}: {}\n\n", f.code.name(), f.code.summary()));
        }
        let (d, w) = (self.deny_count(), self.warn_count());
        out.push_str(&format!(
            "lint: {d} error{}, {w} warning{}\n",
            if d == 1 { "" } else { "s" },
            if w == 1 { "" } else { "s" },
        ));
        out
    }

    /// Machine-readable JSON rendering (stable schema; see README).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"findings\": [");
        for (i, f) in self.findings.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    {");
            out.push_str(&format!(
                "\"code\": \"{}\", \"name\": \"{}\", \"severity\": \"{}\", \"rule\": \"{}\"",
                f.code.code(),
                f.code.name(),
                f.severity,
                esc(&f.rule),
            ));
            out.push_str(", \"related\": [");
            for (j, r) in f.related.iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                out.push_str(&format!("\"{}\"", esc(r)));
            }
            out.push_str("], ");
            match &f.span {
                Some(sp) => out.push_str(&format!(
                    "\"span\": {{\"start_line\": {}, \"start_col\": {}, \
                     \"end_line\": {}, \"end_col\": {}}}, ",
                    sp.start_line, sp.start_col, sp.end_line, sp.end_col
                )),
                None => out.push_str("\"span\": null, "),
            }
            out.push_str(&format!("\"message\": \"{}\"}}", esc(&f.message)));
        }
        out.push_str(&format!(
            "\n  ],\n  \"deny\": {},\n  \"warn\": {},\n  \"micros\": {}\n}}\n",
            self.deny_count(),
            self.warn_count(),
            self.micros,
        ));
        out
    }
}

fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Value kinds for GR007: the DSL's ordering comparisons never hold
/// across kinds, and `==` across kinds is always false.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Kind {
    Number,
    Text,
    Truth,
}

fn kind_of(v: &Value) -> Kind {
    match v {
        Value::Int(_) | Value::Float(_) => Kind::Number,
        Value::Str(_) => Kind::Text,
        Value::Bool(_) => Kind::Truth,
    }
}

fn kind_name(k: Kind) -> &'static str {
    match k {
        Kind::Number => "a number",
        Kind::Text => "a string",
        Kind::Truth => "a boolean",
    }
}

/// Run every lint over `rules`. `spans` (from
/// [`crate::parse_rules_with_spans`]) attaches source positions to
/// findings; pass `&[]` for programmatically built rules. Allow-level
/// findings are dropped.
pub fn lint_rules(rules: &[Grr], spans: &[RuleSpan], policy: &LintPolicy) -> LintReport {
    let start = Instant::now();
    let span_of = |name: &str| spans.iter().find(|s| s.name == name).cloned();
    let mut findings: Vec<Finding> = Vec::new();
    let mut push = |code: LintCode, rule: &str, related: Vec<String>, message: String| {
        let severity = policy.severity_of(code);
        if severity == Severity::Allow {
            return;
        }
        findings.push(Finding {
            code,
            severity,
            rule: rule.to_string(),
            related,
            message,
            span: span_of(rule),
        });
    };

    // GR001: trigger-graph cycles (Tarjan SCCs and self-loops).
    for cycle in trigger_graph(rules).cycles() {
        let names: Vec<String> = cycle.iter().map(|&i| rules[i].name.clone()).collect();
        let message = if names.len() == 1 {
            format!(
                "rule `{}` can re-enable itself: its repair may create new \
                 matches of its own pattern",
                names[0]
            )
        } else {
            let chain = names
                .iter()
                .map(|n| format!("`{n}`"))
                .collect::<Vec<_>>()
                .join(" -> ");
            format!("rules {chain} can enable each other in a cycle")
        };
        push(
            LintCode::NonTerminatingCycle,
            &names[0],
            names[1..].to_vec(),
            message,
        );
    }

    // GR002: contradictory repairs on overlapping matches.
    let mut seen_pairs: Vec<(usize, usize, String)> = Vec::new();
    for c in find_conflicts(rules) {
        let key = (c.a, c.b, c.kind.to_string());
        if seen_pairs.contains(&key) {
            continue;
        }
        seen_pairs.push(key);
        let (a, b) = (&rules[c.a].name, &rules[c.b].name);
        push(
            LintCode::ConflictingRepairs,
            a,
            vec![b.clone()],
            format!(
                "rules `{a}` and `{b}` can prescribe contradictory repairs \
                 on overlapping matches ({}: {})",
                c.kind, c.detail
            ),
        );
    }

    // GR003: rules that do not fix what they match.
    for r in rules {
        if check_effectiveness(r) == Effectiveness::Ineffective {
            push(
                LintCode::IneffectiveRule,
                &r.name,
                vec![],
                format!(
                    "rule `{}` does not eliminate the violation it matches: \
                     applied to its own canonical instance, the pattern still \
                     matches afterwards",
                    r.name
                ),
            );
        }
    }

    // GR004: rules subsumed by another rule.
    for imp in find_implications(rules) {
        let (red, by) = (&rules[imp.redundant].name, &rules[imp.by].name);
        push(
            LintCode::SubsumedRule,
            red,
            vec![by.clone()],
            format!(
                "rule `{red}` is subsumed by `{by}`: wherever it fires, \
                 `{by}` fires with an identical repair"
            ),
        );
    }

    // GR005: patterns that can never match (sound proof).
    for r in rules {
        if let Some(witness) = unsatisfiable(&r.pattern) {
            push(
                LintCode::UnsatisfiablePattern,
                &r.name,
                vec![],
                format!("pattern of rule `{}` can never match: {witness}", r.name),
            );
        }
    }

    // GR006: pattern variables nothing references.
    for r in rules {
        let n = r.pattern.num_vars();
        let mut used = vec![false; n];
        for e in &r.pattern.edges {
            used[e.src.index()] = true;
            used[e.dst.index()] = true;
        }
        for e in &r.pattern.neg_edges {
            used[e.src.index()] = true;
            used[e.dst.index()] = true;
        }
        for c in &r.pattern.constraints {
            for v in c.vars() {
                used[v.index()] = true;
            }
        }
        for a in &r.actions {
            for v in a.vars() {
                used[v.index()] = true;
            }
        }
        for (i, seen) in used.iter().enumerate() {
            if *seen {
                continue;
            }
            let v = Var(i as u8);
            push(
                LintCode::UnusedPatternVariable,
                &r.name,
                vec![],
                format!(
                    "variable `{}` in rule `{}` is never constrained, \
                     connected, or repaired; it multiplies the match count by \
                     the number of candidate nodes",
                    r.pattern.var_name(v),
                    r.name
                ),
            );
        }
    }

    // GR007: repairs writing a value kind the set's comparisons reject.
    // Evidence: constant comparisons (excluding `!=`, which holds across
    // kinds) pin an attribute key to a kind; keys with conflicting
    // evidence are ambiguous and skipped.
    let mut evidence: Vec<(&str, Kind, String)> = Vec::new(); // key -> kind, witness
    let mut ambiguous: Vec<&str> = Vec::new();
    for r in rules {
        for c in &r.pattern.constraints {
            let Constraint::Cmp {
                var,
                key,
                op,
                rhs: Rhs::Const(v),
            } = c
            else {
                continue;
            };
            if *op == CmpOp::Ne {
                continue;
            }
            let kind = kind_of(v);
            let witness = format!(
                "rule `{}` compares `{}.{} {} {}`",
                r.name,
                r.pattern.var_name(*var),
                key,
                op.symbol(),
                v
            );
            match evidence.iter().find(|(k, _, _)| *k == key.as_str()) {
                Some((_, k, _)) if *k != kind => ambiguous.push(key.as_str()),
                Some(_) => {}
                None => evidence.push((key.as_str(), kind, witness)),
            }
        }
    }
    let kind_for = |key: &str| {
        if ambiguous.contains(&key) {
            return None;
        }
        evidence
            .iter()
            .find(|(k, _, _)| *k == key)
            .map(|(_, kind, w)| (*kind, w.clone()))
    };
    for r in rules {
        let mut assignments: Vec<(&str, &ValueSource)> = Vec::new();
        for a in &r.actions {
            match a {
                Action::InsertNode { attrs, .. } => {
                    assignments.extend(attrs.iter().map(|(k, s)| (k.as_str(), s)));
                }
                Action::UpdateNode { set_attrs, .. } => {
                    assignments.extend(set_attrs.iter().map(|(k, s)| (k.as_str(), s)));
                }
                _ => {}
            }
        }
        for (key, src) in assignments {
            let Some((expected, witness)) = kind_for(key) else {
                continue;
            };
            match src {
                ValueSource::Const(v) if kind_of(v) != expected => {
                    push(
                        LintCode::ActionTypeMismatch,
                        &r.name,
                        vec![],
                        format!(
                            "rule `{}` sets `.{key}` to {} ({v}), but the rule \
                             set uses `.{key}` as {} ({witness})",
                            r.name,
                            kind_name(kind_of(v)),
                            kind_name(expected),
                        ),
                    );
                }
                ValueSource::CopyAttr(_, src_key) => {
                    if let Some((src_kind, src_witness)) = kind_for(src_key) {
                        if src_kind != expected {
                            push(
                                LintCode::ActionTypeMismatch,
                                &r.name,
                                vec![],
                                format!(
                                    "rule `{}` copies `.{src_key}` ({}; \
                                     {src_witness}) into `.{key}`, which the \
                                     rule set uses as {} ({witness})",
                                    r.name,
                                    kind_name(src_kind),
                                    kind_name(expected),
                                ),
                            );
                        }
                    }
                }
                _ => {}
            }
        }
    }

    findings.sort_by(|a, b| (a.code, &a.rule).cmp(&(b.code, &b.rule)));
    LintReport {
        findings,
        micros: start.elapsed().as_micros(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dsl::parse_rules_with_spans;

    fn lint_src(src: &str) -> LintReport {
        let (rules, spans) = parse_rules_with_spans(src).unwrap();
        lint_rules(&rules, &spans, &LintPolicy::default())
    }

    fn codes(r: &LintReport) -> Vec<&'static str> {
        r.findings.iter().map(|f| f.code.code()).collect()
    }

    #[test]
    fn code_parse_round_trips() {
        for c in LintCode::ALL {
            assert_eq!(LintCode::parse(c.code()), Some(c));
            assert_eq!(LintCode::parse(&c.code().to_lowercase()), Some(c));
            assert_eq!(LintCode::parse(c.name()), Some(c));
        }
        assert_eq!(LintCode::parse("GR099"), None);
    }

    #[test]
    fn policy_overrides_win_in_order() {
        let mut p = LintPolicy::default();
        assert_eq!(p.severity_of(LintCode::NonTerminatingCycle), Severity::Warn);
        p.set(LintCode::NonTerminatingCycle, Severity::Deny);
        p.set(LintCode::NonTerminatingCycle, Severity::Allow);
        assert_eq!(
            p.severity_of(LintCode::NonTerminatingCycle),
            Severity::Allow
        );
    }

    #[test]
    fn gr001_reported_on_cycle() {
        let r = lint_src(
            "rule up [conflict]
             match (x:P) where x.v == 0
             repair set x.v = 1

             rule down [conflict]
             match (x:P) where x.v == 1
             repair set x.v = 0",
        );
        assert!(codes(&r).contains(&"GR001"), "{:?}", codes(&r));
        let f = r
            .findings
            .iter()
            .find(|f| f.code == LintCode::NonTerminatingCycle)
            .unwrap();
        assert_eq!(f.severity, Severity::Warn);
        assert!(!f.related.is_empty() || f.message.contains("re-enable"));
    }

    #[test]
    fn gr003_reported_and_denies() {
        let r = lint_src(
            "rule noop [conflict]
             match (x:P)-[r]->(y:P)
             repair set x.seen = true",
        );
        let f = r
            .findings
            .iter()
            .find(|f| f.code == LintCode::IneffectiveRule)
            .expect("GR003 expected");
        assert_eq!(f.severity, Severity::Deny);
        assert!(r.has_denials());
    }

    #[test]
    fn gr005_reported_with_span() {
        let r = lint_src(
            "rule sane [conflict]
             match (x:P)-[r]->(y:P)
             repair delete edge (x)-[r]->(y)

             rule impossible [conflict]
             match (x:P)-[r]->(y:P) where not (x)-[r]->(y)
             repair delete node x",
        );
        let f = r
            .findings
            .iter()
            .find(|f| f.code == LintCode::UnsatisfiablePattern)
            .expect("GR005 expected");
        assert_eq!(f.rule, "impossible");
        assert_eq!(f.span.as_ref().unwrap().start_line, 5);
    }

    #[test]
    fn gr006_reported_for_loose_var() {
        let r = lint_src(
            "rule loose [conflict]
             match (x:P)-[r]->(y:P), (z:Q)
             repair delete edge (x)-[r]->(y)",
        );
        let f = r
            .findings
            .iter()
            .find(|f| f.code == LintCode::UnusedPatternVariable)
            .expect("GR006 expected");
        assert!(f.message.contains("`z`"), "{}", f.message);
    }

    #[test]
    fn gr007_reported_for_kind_clash() {
        let r = lint_src(
            "rule guard [conflict]
             match (x:P) where x.age >= 150
             repair delete node x

             rule fill [incompleteness]
             match (y:P) where missing(y.age)
             repair set y.age = \"unknown\"",
        );
        let f = r
            .findings
            .iter()
            .find(|f| f.code == LintCode::ActionTypeMismatch)
            .expect("GR007 expected");
        assert_eq!(f.rule, "fill");
        assert!(f.message.contains("a string"), "{}", f.message);
        assert!(f.message.contains("a number"), "{}", f.message);
    }

    #[test]
    fn clean_set_is_quiet() {
        let r = lint_src(
            "rule add_citizenship [incompleteness]
             match (x:Person)-[livesIn]->(c:City)-[inCountry]->(k:Country)
             where not (x)-[citizenOf]->(k)
             repair insert edge (x)-[citizenOf]->(k)",
        );
        assert!(r.findings.is_empty(), "{:?}", codes(&r));
        assert!(!r.has_denials());
    }

    #[test]
    fn renderings_are_stable() {
        let r = lint_src(
            "rule noop [conflict]
             match (x:P)-[r]->(y:P)
             repair set x.seen = true",
        );
        let text = r.render_text("rules.grr");
        assert!(text.contains("error[GR003]"), "{text}");
        assert!(text.contains("--> rules.grr:1:1"), "{text}");
        assert!(text.contains("= note: ineffective-rule"), "{text}");
        assert!(text.contains("lint: 1 error"), "{text}");

        let json = r.to_json();
        assert!(json.contains("\"code\": \"GR003\""), "{json}");
        assert!(json.contains("\"severity\": \"deny\""), "{json}");
        assert!(json.contains("\"start_line\": 1"), "{json}");
        assert!(json.contains("\"deny\": 1"), "{json}");
    }

    #[test]
    fn allow_policy_drops_findings() {
        let (rules, spans) = parse_rules_with_spans(
            "rule noop [conflict]
             match (x:P)-[r]->(y:P)
             repair set x.seen = true",
        )
        .unwrap();
        let mut p = LintPolicy::default();
        p.set(LintCode::IneffectiveRule, Severity::Allow);
        let r = lint_rules(&rules, &spans, &p);
        assert!(!r.findings.iter().any(|f| f.code == LintCode::IneffectiveRule));
    }
}
