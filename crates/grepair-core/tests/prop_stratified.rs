//! Stratified-scheduling property suite.
//!
//! On randomly generated *acyclic* cascade rule sets over KG and social
//! substrates:
//!
//! - the analysis must prove the trigger graph acyclic and the default
//!   engine must schedule the run into topological strata;
//! - the run must terminate and converge even though the stratified path
//!   carries no churn guard at all;
//! - a worklist run with `max_churn: 1` — where a single churn-guard trip
//!   would suppress a repair — must reach the identical fixpoint, which
//!   certifies that acyclic sets terminate with **zero** guard trips;
//! - stratified and worklist residuals and repaired documents must match
//!   exactly.

use grepair_core::{stratify, trigger_graph, EngineConfig, RepairEngine, RuleSet};
use grepair_gen::{generate_kg, generate_social, KgConfig, SocialConfig};
use grepair_graph::Graph;
use proptest::prelude::*;

/// Deterministically derive a layered cascade rule set from `seed`:
/// `stages` layers of 1–3 rules each, every rule guarded by one attribute
/// of the previous layer and filling one attribute of its own layer. The
/// attribute flow is strictly forward, so the trigger graph is a DAG.
fn cascade_rules(label: &str, stages: usize, seed: u64) -> RuleSet {
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
    let mut next = move |bound: usize| {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state as usize) % bound.max(1)
    };
    let mut widths = vec![1usize];
    for _ in 1..stages {
        widths.push(1 + next(3));
    }
    let mut src = String::new();
    for (stage, &width) in widths.iter().enumerate() {
        for slot in 0..width {
            if stage == 0 {
                src.push_str(&format!(
                    "rule seed{slot} [incompleteness]
                     match (x:{label})
                     where missing(x.s0_{slot})
                     repair set x.s0_{slot} = true\n"
                ));
            } else {
                let from = next(widths[stage - 1]);
                src.push_str(&format!(
                    "rule fill{stage}_{slot} [incompleteness]
                     match (x:{label})
                     where has(x.s{prev}_{from}), missing(x.s{stage}_{slot})
                     repair set x.s{stage}_{slot} = true\n",
                    prev = stage - 1,
                ));
            }
        }
    }
    RuleSet::from_dsl("cascade", &src).expect("cascade DSL must parse")
}

/// The stratified run must terminate churn-free and agree exactly with a
/// worklist run whose churn guard is wound down to a hair trigger.
fn assert_stratified_agrees(base: &Graph, rules: &RuleSet, stages: usize, ctx: &str) -> Result<(), TestCaseError> {
    let strata = stratify(&trigger_graph(&rules.rules));
    prop_assert!(strata.is_some(), "{ctx}: cascade must be acyclic");
    prop_assert_eq!(strata.unwrap().len(), stages, "{}: one stratum per layer", ctx);

    let mut g1 = base.clone();
    let strat = RepairEngine::default().repair(&mut g1, &rules.rules);
    prop_assert_eq!(strat.strata, stages, "{}: stratified path must run", ctx);
    prop_assert!(strat.converged, "{ctx}: residual {}", strat.violations_remaining);

    // max_churn: 1 means a single guard trip would suppress a repair and
    // break the fixpoint equality below — so equality certifies that the
    // run needed zero trips.
    let mut g2 = base.clone();
    let work = RepairEngine::new(EngineConfig {
        stratify: false,
        max_churn: 1,
        ..EngineConfig::default()
    })
    .repair(&mut g2, &rules.rules);
    prop_assert!(work.converged, "{ctx}: worklist residual {}", work.violations_remaining);
    prop_assert_eq!(work.strata, 0, "{}: pinned-off run must not stratify", ctx);
    prop_assert_eq!(
        strat.repairs_applied,
        work.repairs_applied,
        "{}: zero churn trips implies equal repair counts",
        ctx
    );
    prop_assert_eq!(
        strat.violations_remaining,
        work.violations_remaining,
        "{}: residuals diverged",
        ctx
    );
    prop_assert_eq!(g1.to_doc(), g2.to_doc(), "{}: fixpoints diverged", ctx);
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// KG substrate: Person nodes pick up the full cascade.
    #[test]
    fn stratified_terminates_churn_free_on_kg(
        persons in 6usize..24,
        stages in 2usize..5,
        seed in 0u64..1_000,
    ) {
        let (g, _) = generate_kg(&KgConfig {
            seed,
            ..KgConfig::with_persons(persons)
        });
        let rules = cascade_rules("Person", stages, seed);
        assert_stratified_agrees(&g, &rules, stages, &format!("kg-{persons}p-{stages}s"))?;
    }

    /// Social substrate: Account nodes, including the generator's
    /// built-in dirty duplicates and bots.
    #[test]
    fn stratified_terminates_churn_free_on_social(
        accounts in 6usize..20,
        stages in 2usize..5,
        seed in 0u64..1_000,
    ) {
        let (g, _) = generate_social(&SocialConfig {
            accounts,
            seed,
            ..SocialConfig::default()
        });
        let rules = cascade_rules("Account", stages, seed);
        assert_stratified_agrees(&g, &rules, stages, &format!("social-{accounts}a-{stages}s"))?;
    }
}
