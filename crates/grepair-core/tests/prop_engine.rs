//! Property tests for the repair engines: convergence, fixpoint
//! stability, invariant preservation, and engine equivalence on random
//! graphs and random (terminating) rule sets.

use grepair_core::{
    check_effectiveness, Effectiveness, EngineConfig, RepairEngine, RuleSet,
};
use grepair_graph::{Graph, NodeId, Value};
use proptest::prelude::*;

const NODE_LABELS: [&str; 3] = ["P", "Q", "R"];
const EDGE_LABELS: [&str; 3] = ["a", "b", "c"];

#[derive(Clone, Debug)]
struct RandGraph {
    labels: Vec<u8>,
    edges: Vec<(u8, u8, u8)>,
    attrs: Vec<(u8, i64)>,
}

fn graph_strategy() -> impl Strategy<Value = RandGraph> {
    (
        prop::collection::vec(any::<u8>(), 1..12),
        prop::collection::vec((any::<u8>(), any::<u8>(), any::<u8>()), 0..24),
        prop::collection::vec((any::<u8>(), 0i64..4), 0..8),
    )
        .prop_map(|(labels, edges, attrs)| RandGraph {
            labels,
            edges,
            attrs,
        })
}

fn build_graph(rg: &RandGraph) -> Graph {
    let mut g = Graph::new();
    let key = g.attr_key("ssn");
    let nodes: Vec<NodeId> = rg
        .labels
        .iter()
        .map(|l| g.add_node_named(NODE_LABELS[*l as usize % NODE_LABELS.len()]))
        .collect();
    for (s, d, l) in &rg.edges {
        let s = nodes[*s as usize % nodes.len()];
        let d = nodes[*d as usize % nodes.len()];
        g.add_edge_named(s, d, EDGE_LABELS[*l as usize % EDGE_LABELS.len()])
            .unwrap();
    }
    for (n, v) in &rg.attrs {
        let n = nodes[*n as usize % nodes.len()];
        g.set_attr(n, key, Value::Int(*v)).unwrap();
    }
    g
}

/// A random *terminating* rule set: decreasing rules only (deletions and
/// merges never enable insert-style rules here).
fn rules_strategy() -> impl Strategy<Value = RuleSet> {
    prop::collection::vec((any::<u8>(), any::<u8>(), any::<u8>(), any::<bool>()), 1..4).prop_map(
        |specs| {
            let mut src = String::new();
            for (i, (a, b, l, merge)) in specs.into_iter().enumerate() {
                let la = NODE_LABELS[a as usize % NODE_LABELS.len()];
                let lb = NODE_LABELS[b as usize % NODE_LABELS.len()];
                let rel = EDGE_LABELS[l as usize % EDGE_LABELS.len()];
                if merge {
                    src.push_str(&format!(
                        "rule m{i} [redundancy]
                         match (x:{la}), (y:{la})
                         where x.ssn == y.ssn
                         repair merge y into x\n"
                    ));
                } else {
                    src.push_str(&format!(
                        "rule d{i} [conflict]
                         match (x:{la})-[{rel}]->(y:{lb})
                         repair delete edge (x)-[{rel}]->(y)\n"
                    ));
                }
            }
            RuleSet::from_dsl("prop", &src).expect("generated rules parse")
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Decreasing rule sets always converge, preserve invariants, and the
    /// fixpoint is stable under a second run.
    #[test]
    fn decreasing_rules_converge(rg in graph_strategy(), rules in rules_strategy()) {
        let mut g = build_graph(&rg);
        let engine = RepairEngine::default();
        let report = engine.repair(&mut g, &rules.rules);
        prop_assert!(report.converged, "residual {}", report.violations_remaining);
        prop_assert!(g.check_invariants().is_ok());

        let again = engine.repair(&mut g, &rules.rules);
        prop_assert!(again.converged);
        prop_assert_eq!(again.repairs_applied, 0, "fixpoint must be stable");
    }

    /// Both engines end with zero violations and identical graph sizes on
    /// deletion/merge rule sets (confluent up to element identity).
    #[test]
    fn engines_agree_on_fixpoint_shape(rg in graph_strategy(), rules in rules_strategy()) {
        let base = build_graph(&rg);
        let mut g1 = base.clone();
        let r1 = RepairEngine::default().repair(&mut g1, &rules.rules);
        let mut g2 = base.clone();
        let r2 = RepairEngine::new(EngineConfig::naive()).repair(&mut g2, &rules.rules);
        prop_assert!(r1.converged && r2.converged);
        prop_assert_eq!(g1.num_nodes(), g2.num_nodes());
        prop_assert_eq!(g1.num_edges(), g2.num_edges());
    }

    /// The morsel-driven parallel sweep returns byte-identical match
    /// sets (same matches, same order) to a serial per-rule scan across
    /// thread counts {1, 2, 8} — all rules' morsels share one work
    /// queue, so this also exercises cross-rule stealing.
    #[cfg(feature = "parallel")]
    #[test]
    fn par_match_sweep_identical_across_thread_counts(
        rg in graph_strategy(),
        rules in rules_strategy(),
    ) {
        let g = build_graph(&rg);
        let engine = RepairEngine::default();
        let matcher = grepair_match::Matcher::with_config(&g, engine.config().match_config);
        let serial: Vec<Vec<grepair_match::Match>> = rules
            .rules
            .iter()
            .map(|r| matcher.find_all(&r.pattern))
            .collect();
        for threads in [1usize, 2, 8] {
            let pool = rayon::ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .unwrap();
            let par = pool.install(|| engine.par_match_sweep(&g, &rules));
            prop_assert_eq!(&par, &serial, "{} sweep threads", threads);
        }
    }

    /// Every generated rule passes the semantic effectiveness check.
    #[test]
    fn generated_rules_are_effective(rules in rules_strategy()) {
        for r in &rules.rules {
            prop_assert_ne!(
                check_effectiveness(r),
                Effectiveness::Ineffective,
                "rule {} judged ineffective", r.name
            );
        }
    }

    /// Report accounting: per-rule sums equal totals; cost is non-negative
    /// and zero iff nothing was applied.
    #[test]
    fn report_accounting(rg in graph_strategy(), rules in rules_strategy()) {
        let mut g = build_graph(&rg);
        let report = RepairEngine::default().repair(&mut g, &rules.rules);
        let per_rule: usize = report.per_rule.iter().map(|s| s.repairs_applied).sum();
        prop_assert_eq!(per_rule, report.repairs_applied);
        prop_assert!(report.total_cost >= 0.0);
        prop_assert_eq!(report.total_cost == 0.0, report.repairs_applied == 0);
        prop_assert_eq!(report.ops.is_empty(), report.repairs_applied == 0);
    }
}
