//! Cross-engine differential property suite.
//!
//! On generated knowledge-graph scenarios with injected noise and
//! (already dirty) social scenarios, every engine configuration — Naive,
//! NaiveWithIndexes (frozen scans), Incremental, frozen Incremental, and
//! the parallel sweep — must:
//!
//! - converge, and agree on the residual violation count as measured by
//!   one canonical counter;
//! - leave a structurally valid graph (`check_invariants`);
//! - agree on the repaired graph's shape (node/edge counts — element ids
//!   may differ between engines, the content may not).
//!
//! Sizes are kept small because the fully naive engine (no indexes, no
//! join ordering) is intentionally exponential-ish; the point here is
//! differential coverage, not throughput.

use grepair_core::{EngineConfig, RepairEngine};
use grepair_gen::{
    generate_kg, generate_social, gold_kg_rules, inject_kg_noise, social_rules, KgConfig,
    NoiseConfig, SocialConfig,
};
use grepair_graph::Graph;
use grepair_core::Grr;
use proptest::prelude::*;

/// Every engine configuration under differential test, labelled.
fn engine_matrix() -> Vec<(&'static str, EngineConfig)> {
    let nwi_live = EngineConfig {
        freeze_scans: false,
        ..EngineConfig::naive_with_indexes()
    };
    let inc_frozen = EngineConfig {
        freeze_scans: true,
        ..EngineConfig::default()
    };
    vec![
        ("incremental", EngineConfig::default()),
        ("incremental-frozen", inc_frozen),
        ("naive-indexed-frozen", EngineConfig::naive_with_indexes()),
        ("naive-indexed-live", nwi_live),
        ("naive-full", EngineConfig::naive()),
        (
            "parallel-sweep",
            EngineConfig {
                parallel: true,
                ..EngineConfig::default()
            },
        ),
    ]
}

/// Repair `base` under every configuration and cross-check the outcomes.
fn assert_engines_agree(base: &Graph, rules: &[Grr], ctx: &str) -> Result<(), TestCaseError> {
    // One canonical counter for residuals, so engine-specific matcher
    // configuration cannot mask a divergence.
    let canonical = RepairEngine::default();
    let mut outcomes = Vec::new();
    for (name, cfg) in engine_matrix() {
        let mut g = base.clone();
        let report = RepairEngine::new(cfg).repair(&mut g, rules);
        prop_assert!(
            g.check_invariants().is_ok(),
            "{ctx}/{name}: invariants broken: {:?}",
            g.check_invariants()
        );
        let residual = canonical.count_violations(&g, rules);
        prop_assert_eq!(
            residual,
            report.violations_remaining,
            "{}/{}: engine's own residual count disagrees with canonical",
            ctx,
            name
        );
        prop_assert!(
            report.converged,
            "{ctx}/{name}: residual {residual} violations"
        );
        outcomes.push((name, residual, g.num_nodes(), g.num_edges()));
    }
    let (_, r0, n0, e0) = outcomes[0];
    for (name, r, n, e) in &outcomes {
        prop_assert_eq!(
            (*r, *n, *e),
            (r0, n0, e0),
            "{}/{} diverged: {:?}",
            ctx,
            name,
            outcomes
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// KG scenarios: clean generation + mixed-class noise injection.
    #[test]
    fn engines_agree_on_noisy_kg(
        persons in 8usize..28,
        gen_seed in 0u64..1_000,
        noise_seed in 0u64..1_000,
        rate in 0.05f64..0.3,
    ) {
        let (mut g, refs) = generate_kg(&KgConfig {
            seed: gen_seed,
            ..KgConfig::with_persons(persons)
        });
        inject_kg_noise(
            &mut g,
            &refs,
            &NoiseConfig {
                rate,
                seed: noise_seed,
                ..NoiseConfig::default()
            },
        );
        let rules = gold_kg_rules();
        assert_engines_agree(&g, &rules.rules, &format!("kg-{persons}p"))?;
    }

    /// Social scenarios: the generator's built-in dirt (duplicate
    /// handles, bots, self-follows, missing names).
    #[test]
    fn engines_agree_on_dirty_social(
        accounts in 8usize..24,
        seed in 0u64..1_000,
    ) {
        let (g, _) = generate_social(&SocialConfig {
            accounts,
            seed,
            ..SocialConfig::default()
        });
        let rules = social_rules();
        assert_engines_agree(&g, &rules.rules, &format!("social-{accounts}a"))?;
    }
}
