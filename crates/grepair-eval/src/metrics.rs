//! Repair-quality metrics: precision / recall / F1 of repairs.
//!
//! The standard data-repair accounting: view each graph as a **multiset of
//! canonical triples** (node existence, edges, attributes, all expressed
//! over *identity-canonicalised* node representatives), then compare the
//! *changes the repair made* (dirty → repaired) against the *changes that
//! were needed* (dirty → clean):
//!
//! ```text
//! needed  = Δ(dirty → clean)          (ground truth edits)
//! made    = Δ(dirty → repaired)       (what the system did)
//! correct = made ∩ needed             (multiset intersection, per side)
//! precision = |correct| / |made|      recall = |correct| / |needed|
//! ```
//!
//! Identity canonicalisation maps every node to a stable representative:
//! injected clones map to their originals (from the noise ledger) and
//! merge survivors inherit the merged-away node's class (from the repair
//! op log) — so a duplicate shows up as *multiplicity 2* of the original's
//! triples, and a correct merge shows up as exactly the multiplicity
//! reduction the ground truth demands.

use grepair_core::AppliedOp;
use grepair_gen::GroundTruth;
use grepair_graph::{Graph, NodeId, Value};
use rustc_hash::FxHashMap;
use serde::{Deserialize, Serialize};

/// A canonical graph fact.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
enum Triple {
    /// A node with its label.
    Node(NodeId, String),
    /// An edge (by canonical endpoints and label).
    Edge(NodeId, String, NodeId),
    /// An attribute value.
    Attr(NodeId, String, Value),
}

type Multiset = FxHashMap<Triple, i64>;

/// Node-identity canonicalisation map.
#[derive(Clone, Debug, Default)]
pub struct CanonMap {
    /// merged node → surviving node (from repair ops; chains resolved at
    /// lookup).
    merges: FxHashMap<NodeId, NodeId>,
    /// clone → original (from the noise ledger).
    clone_of: FxHashMap<NodeId, NodeId>,
}

impl CanonMap {
    /// Build from the noise ledger and the repair operation log.
    pub fn new(truth: &GroundTruth, ops: &[AppliedOp]) -> Self {
        let mut merges = FxHashMap::default();
        for op in ops {
            if let AppliedOp::Merge { keep, merged, .. } = op {
                merges.insert(*merged, *keep);
            }
        }
        CanonMap {
            merges,
            clone_of: truth.clone_of.clone(),
        }
    }

    /// Canonical representative of a node.
    pub fn rep(&self, mut n: NodeId) -> NodeId {
        // Resolve merge chains (bounded: merges form a forest).
        let mut hops = 0;
        while let Some(&next) = self.merges.get(&n) {
            n = next;
            hops += 1;
            if hops > 64 {
                break; // defensive: malformed op logs must not hang metrics
            }
        }
        self.clone_of.get(&n).copied().unwrap_or(n)
    }
}

fn triples(g: &Graph, canon: &CanonMap) -> Multiset {
    let mut m: Multiset = FxHashMap::default();
    for n in g.nodes() {
        let rep = canon.rep(n);
        let label = g.label_name(g.node_label(n).unwrap()).to_owned();
        *m.entry(Triple::Node(rep, label)).or_default() += 1;
        for (k, v) in g.attrs(n) {
            let key = g.attr_key_name(*k).to_owned();
            *m.entry(Triple::Attr(rep, key, v.clone())).or_default() += 1;
        }
    }
    for e in g.edges() {
        let er = g.edge(e).unwrap();
        let label = g.label_name(er.label).to_owned();
        *m.entry(Triple::Edge(canon.rep(er.src), label, canon.rep(er.dst)))
            .or_default() += 1;
    }
    m
}

/// `from → to` delta: additions and removals as non-negative multisets.
fn delta(from: &Multiset, to: &Multiset) -> (Multiset, Multiset) {
    let mut adds: Multiset = FxHashMap::default();
    let mut dels: Multiset = FxHashMap::default();
    for (t, &ct) in to {
        let cf = from.get(t).copied().unwrap_or(0);
        if ct > cf {
            adds.insert(t.clone(), ct - cf);
        }
    }
    for (t, &cf) in from {
        let ct = to.get(t).copied().unwrap_or(0);
        if cf > ct {
            dels.insert(t.clone(), cf - ct);
        }
    }
    (adds, dels)
}

fn overlap(a: &Multiset, b: &Multiset) -> i64 {
    a.iter()
        .map(|(t, &ca)| ca.min(b.get(t).copied().unwrap_or(0)))
        .sum()
}

fn total(m: &Multiset) -> i64 {
    m.values().sum()
}

/// Precision / recall / F1 of a repair run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct RepairQuality {
    /// Fraction of made changes that were needed.
    pub precision: f64,
    /// Fraction of needed changes that were made.
    pub recall: f64,
    /// Harmonic mean.
    pub f1: f64,
    /// Ground-truth edit count (dirty → clean).
    pub needed: i64,
    /// Edit count performed by the system (dirty → repaired).
    pub made: i64,
    /// Edits that were both made and needed.
    pub correct: i64,
}

impl RepairQuality {
    fn from_counts(needed: i64, made: i64, correct: i64) -> Self {
        let precision = if made == 0 {
            1.0
        } else {
            correct as f64 / made as f64
        };
        let recall = if needed == 0 {
            1.0
        } else {
            correct as f64 / needed as f64
        };
        let f1 = if precision + recall == 0.0 {
            0.0
        } else {
            2.0 * precision * recall / (precision + recall)
        };
        RepairQuality {
            precision,
            recall,
            f1,
            needed,
            made,
            correct,
        }
    }
}

/// Evaluate a repair run.
///
/// `clean` is the pre-noise graph, `dirty` the graph after noise (before
/// repair), `repaired` the graph after repair; `truth` is the noise
/// ledger and `ops` the repair op log (for merge canonicalisation).
pub fn evaluate_repair(
    clean: &Graph,
    dirty: &Graph,
    repaired: &Graph,
    truth: &GroundTruth,
    ops: &[AppliedOp],
) -> RepairQuality {
    let _span = grepair_obs::span("eval.evaluate_repair", "eval");
    grepair_obs::counter("eval.evaluations").inc();
    let canon = CanonMap::new(truth, ops);
    let c = triples(clean, &canon);
    let d = triples(dirty, &canon);
    let r = triples(repaired, &canon);

    let (need_add, need_del) = delta(&d, &c);
    let (made_add, made_del) = delta(&d, &r);
    let correct = overlap(&need_add, &made_add) + overlap(&need_del, &made_del);
    RepairQuality::from_counts(
        total(&need_add) + total(&need_del),
        total(&made_add) + total(&made_del),
        correct,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use grepair_core::{RepairEngine, RuleSet};
    use grepair_gen::{generate_kg, gold_kg_rules, inject_kg_noise, KgConfig, NoiseConfig};

    fn pipeline(rate: f64, seed: u64) -> RepairQuality {
        let (clean, refs) = generate_kg(&KgConfig::with_persons(300));
        let mut dirty = clean.clone();
        let truth = inject_kg_noise(
            &mut dirty,
            &refs,
            &NoiseConfig {
                rate,
                seed,
                ..NoiseConfig::default()
            },
        );
        let mut repaired = dirty.clone();
        let rules = gold_kg_rules();
        let report = RepairEngine::default().repair(&mut repaired, &rules.rules);
        evaluate_repair(&clean, &dirty, &repaired, &truth, &report.ops)
    }

    #[test]
    fn perfect_repair_on_untouched_graph() {
        let (clean, _) = generate_kg(&KgConfig::with_persons(100));
        let q = evaluate_repair(&clean, &clean, &clean, &GroundTruth::default(), &[]);
        assert_eq!(q.precision, 1.0);
        assert_eq!(q.recall, 1.0);
        assert_eq!(q.needed, 0);
    }

    #[test]
    fn no_repair_scores_zero_recall() {
        let (clean, refs) = generate_kg(&KgConfig::with_persons(200));
        let mut dirty = clean.clone();
        let truth = inject_kg_noise(&mut dirty, &refs, &NoiseConfig::default());
        let q = evaluate_repair(&clean, &dirty, &dirty, &truth, &[]);
        assert!(q.needed > 0);
        assert_eq!(q.made, 0);
        assert_eq!(q.recall, 0.0);
        assert_eq!(q.precision, 1.0, "vacuous precision when nothing made");
    }

    #[test]
    fn gold_rules_score_high_f1() {
        let q = pipeline(0.1, 3);
        assert!(q.f1 > 0.9, "gold repair should be near-perfect: {q:?}");
        assert!(q.precision > 0.9, "{q:?}");
        assert!(q.recall > 0.9, "{q:?}");
    }

    #[test]
    fn destructive_repair_scores_low() {
        // Deleting every violating person fixes violations but not the data.
        let (clean, refs) = generate_kg(&KgConfig::with_persons(200));
        let mut dirty = clean.clone();
        let truth = inject_kg_noise(&mut dirty, &refs, &NoiseConfig::default());
        let mut repaired = dirty.clone();
        let delete_rules = RuleSet::from_dsl(
            "deleter",
            "rule nuke [conflict]
             match (x:Person)-[livesIn]->(c:City)-[inCountry]->(k:Country)
             where not (x)-[citizenOf]->(k)
             repair delete node x",
        )
        .unwrap();
        let report = RepairEngine::default().repair(&mut repaired, &delete_rules.rules);
        let q = evaluate_repair(&clean, &dirty, &repaired, &truth, &report.ops);
        let gold = pipeline(0.1, 7);
        assert!(
            q.f1 < gold.f1,
            "destructive {:.3} must underperform semantic {:.3}",
            q.f1,
            gold.f1
        );
    }

    #[test]
    fn canon_map_resolves_chains() {
        let mut truth = GroundTruth::default();
        truth.clone_of.insert(NodeId(10), NodeId(1));
        let ops = vec![
            AppliedOp::Merge {
                keep: NodeId(10),
                merged: NodeId(1),
                rewired: 0,
                dropped: 0,
            },
            AppliedOp::Merge {
                keep: NodeId(20),
                merged: NodeId(10),
                rewired: 0,
                dropped: 0,
            },
        ];
        let canon = CanonMap::new(&truth, &ops);
        // 1 → 10 → 20, then 20 has no clone mapping.
        assert_eq!(canon.rep(NodeId(1)), NodeId(20));
        // 10 → 20 directly.
        assert_eq!(canon.rep(NodeId(10)), NodeId(20));
        // Clone resolution applies after merge resolution.
        assert_eq!(canon.rep(NodeId(30)), NodeId(30));
    }

    #[test]
    fn quality_counts_are_consistent() {
        let q = pipeline(0.15, 11);
        assert!(q.correct <= q.made);
        assert!(q.correct <= q.needed);
        assert!(q.f1 <= 1.0 && q.f1 >= 0.0);
    }
}
