//! # grepair-eval
//!
//! Evaluation substrate: repair-quality metrics, comparison baselines,
//! and the experiment harness that regenerates every table and figure of
//! the reconstructed ICDE 2018 evaluation (see `DESIGN.md` §4 and
//! `EXPERIMENTS.md`).
//!
//! - [`metrics`] — precision/recall/F1 over canonical triple-multiset
//!   deltas (made-changes vs needed-changes).
//! - [`baselines`] — delete-only constraint cleaning and random repair.
//! - [`experiments`] — one `exp_*` function per table/figure; run them
//!   via `cargo run -p grepair-bench --release --bin experiments`.
//! - [`table`] — aligned text/CSV table rendering.

#![forbid(unsafe_code)]

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod baselines;
pub mod experiments;
pub mod metrics;
pub mod table;

pub use baselines::{delete_only_rules, random_repair, BaselineReport};
pub use experiments::{run, Profile};
pub use metrics::{evaluate_repair, CanonMap, RepairQuality};
pub use table::Table;
