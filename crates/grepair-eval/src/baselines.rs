//! Comparison baselines for the quality experiments (F1/F2/F7).
//!
//! Re-implementations of the repair strategies the paper compares
//! against, run over the *same* violation detection (the GRR patterns) so
//! the comparison isolates repair *semantics*:
//!
//! - [`delete_only_rules`] — constraint-cleaning style: every violation is
//!   fixed by deleting a violating element (what GFD/key-based cleaners
//!   do). Detects exactly what the gold rules detect but can never restore
//!   information, so recall on incompleteness errors collapses — the
//!   paper's central quality argument.
//! - [`random_repair`] — picks a uniformly random element of each
//!   violation to delete; the sanity-check floor.

use grepair_core::{apply_rule, revalidate, Action, AppliedOp, Grr, PatternEdgeRef, RuleSet};
use grepair_graph::{EditCosts, Graph};
use grepair_match::{Matcher, Var};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Derive the delete-only variant of a rule set: same patterns, repairs
/// replaced by "delete a witness edge, else delete the first matched
/// node".
pub fn delete_only_rules(rules: &RuleSet) -> RuleSet {
    let derived = rules
        .rules
        .iter()
        .map(|r| {
            let actions = if !r.pattern.edges.is_empty() {
                vec![Action::DeleteEdge(PatternEdgeRef(0))]
            } else {
                vec![Action::DeleteNode(Var(0))]
            };
            Grr {
                name: format!("{}__delete_only", r.name),
                category: r.category,
                pattern: r.pattern.clone(),
                actions,
                priority: r.priority,
            }
        })
        .collect();
    RuleSet::new(format!("{}-delete-only", rules.name), derived)
        .expect("derived delete-only rules are structurally valid")
}

/// Outcome of a baseline repair loop.
#[derive(Clone, Debug, Default)]
pub struct BaselineReport {
    /// Operations applied.
    pub ops: Vec<AppliedOp>,
    /// Number of repair steps.
    pub repairs_applied: usize,
    /// Whether no violations remained at the end.
    pub converged: bool,
}

/// Random-deletion repair: per violation, delete a uniformly random
/// element of the match (witness edge or matched node).
pub fn random_repair(
    g: &mut Graph,
    rules: &[Grr],
    seed: u64,
    max_rounds: usize,
) -> BaselineReport {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut report = BaselineReport::default();
    let costs = EditCosts::default();
    for _ in 0..max_rounds {
        let mut progressed = false;
        let violations: Vec<(usize, grepair_match::Match)> = {
            let matcher = Matcher::new(g);
            rules
                .iter()
                .enumerate()
                .flat_map(|(ri, r)| {
                    matcher
                        .find_all(&r.pattern)
                        .into_iter()
                        .map(move |m| (ri, m))
                })
                .collect()
        };
        if violations.is_empty() {
            report.converged = true;
            return report;
        }
        for (ri, mut m) in violations {
            let rule = &rules[ri];
            if !revalidate(g, &rule.pattern, &mut m) {
                continue;
            }
            // Choose a random victim: a witness edge or a matched node.
            let n_edges = m.edges.len();
            let n_nodes = m.nodes.len();
            let pick = rng.gen_range(0..(n_edges + n_nodes));
            let action = if pick < n_edges {
                Action::DeleteEdge(PatternEdgeRef(pick))
            } else {
                Action::DeleteNode(Var((pick - n_edges) as u8))
            };
            let scratch = Grr {
                name: "random".into(),
                category: rule.category,
                pattern: rule.pattern.clone(),
                actions: vec![action],
                priority: 0,
            };
            let applied = apply_rule(g, &scratch, &m, &costs).expect("delete ops cannot fail");
            if !applied.is_noop() {
                report.repairs_applied += 1;
                report.ops.extend(applied.ops);
                progressed = true;
            }
        }
        if !progressed {
            break;
        }
    }
    report.converged = {
        let matcher = Matcher::new(g);
        rules.iter().all(|r| !matcher.exists(&r.pattern))
    };
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::evaluate_repair;
    use grepair_core::RepairEngine;
    use grepair_gen::{generate_kg, gold_kg_rules, inject_kg_noise, KgConfig, NoiseConfig};

    #[test]
    fn delete_only_derivation() {
        let gold = gold_kg_rules();
        let del = delete_only_rules(&gold);
        assert_eq!(del.len(), gold.len());
        for r in &del.rules {
            assert_eq!(r.actions.len(), 1);
            assert!(matches!(
                r.actions[0],
                Action::DeleteEdge(_) | Action::DeleteNode(_)
            ));
        }
    }

    #[test]
    fn baselines_lose_to_gold_rules() {
        let (clean, refs) = generate_kg(&KgConfig::with_persons(300));
        let mut dirty = clean.clone();
        let truth = inject_kg_noise(&mut dirty, &refs, &NoiseConfig::default());
        let gold = gold_kg_rules();

        let mut g_gold = dirty.clone();
        let rep_gold = RepairEngine::default().repair(&mut g_gold, &gold.rules);
        let q_gold = evaluate_repair(&clean, &dirty, &g_gold, &truth, &rep_gold.ops);

        let mut g_del = dirty.clone();
        let del = delete_only_rules(&gold);
        let rep_del = RepairEngine::default().repair(&mut g_del, &del.rules);
        let q_del = evaluate_repair(&clean, &dirty, &g_del, &truth, &rep_del.ops);

        let mut g_rand = dirty.clone();
        let rep_rand = random_repair(&mut g_rand, &gold.rules, 5, 16);
        let q_rand = evaluate_repair(&clean, &dirty, &g_rand, &truth, &rep_rand.ops);

        assert!(
            q_gold.f1 > q_del.f1 && q_gold.f1 > q_rand.f1,
            "gold {:.3} must beat delete-only {:.3} and random {:.3}",
            q_gold.f1,
            q_del.f1,
            q_rand.f1
        );
        g_del.check_invariants().unwrap();
        g_rand.check_invariants().unwrap();
    }

    #[test]
    fn random_repair_eventually_silences_violations() {
        let (clean, refs) = generate_kg(&KgConfig::with_persons(150));
        let mut dirty = clean.clone();
        inject_kg_noise(&mut dirty, &refs, &NoiseConfig::default());
        let gold = gold_kg_rules();
        let report = random_repair(&mut dirty, &gold.rules, 1, 64);
        assert!(report.repairs_applied > 0);
        // Deletion always terminates; convergence expected on small inputs.
        assert!(report.converged);
    }
}
