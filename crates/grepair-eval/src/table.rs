//! Minimal aligned-text table used by the experiment harness to print the
//! rows/series the paper's tables and figures report.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A titled table of string cells.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct Table {
    /// Experiment id (`t1`, `f3`, …).
    pub id: String,
    /// Human-readable caption.
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Data rows (ragged rows are padded on display).
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Create an empty table.
    pub fn new(id: &str, title: &str, headers: &[&str]) -> Self {
        Table {
            id: id.to_owned(),
            title: title.to_owned(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row.
    pub fn row(&mut self, cells: Vec<String>) {
        self.rows.push(cells);
    }

    /// Render as CSV (headers + rows).
    pub fn to_csv(&self) -> String {
        let esc = |s: &str| {
            if s.contains(',') || s.contains('"') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_owned()
            }
        };
        let mut out = String::new();
        out.push_str(
            &self
                .headers
                .iter()
                .map(|h| esc(h))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
        for r in &self.rows {
            out.push_str(&r.iter().map(|c| esc(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let cols = self
            .headers
            .len()
            .max(self.rows.iter().map(Vec::len).max().unwrap_or(0));
        let mut widths = vec![0usize; cols];
        for (i, h) in self.headers.iter().enumerate() {
            widths[i] = widths[i].max(h.chars().count());
        }
        for r in &self.rows {
            for (i, c) in r.iter().enumerate() {
                widths[i] = widths[i].max(c.chars().count());
            }
        }
        writeln!(f, "== {} — {} ==", self.id.to_uppercase(), self.title)?;
        let line = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            let mut parts = Vec::with_capacity(cols);
            for (i, width) in widths.iter().enumerate() {
                let cell = cells.get(i).map(String::as_str).unwrap_or("");
                parts.push(format!("{cell:>width$}"));
            }
            writeln!(f, "| {} |", parts.join(" | "))
        };
        line(f, &self.headers)?;
        let sep: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
        line(f, &sep)?;
        for r in &self.rows {
            line(f, r)?;
        }
        Ok(())
    }
}

/// Format a float to 3 decimals.
pub fn f3(x: f64) -> String {
    format!("{x:.3}")
}

/// Format a duration in adaptive units.
pub fn ms(d: std::time::Duration) -> String {
    let us = d.as_micros();
    if us < 1_000 {
        format!("{us}µs")
    } else if us < 10_000_000 {
        format!("{:.2}ms", us as f64 / 1000.0)
    } else {
        format!("{:.2}s", us as f64 / 1_000_000.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new("t0", "demo", &["name", "value"]);
        t.row(vec!["a".into(), "1".into()]);
        t.row(vec!["longer".into(), "22".into()]);
        let s = t.to_string();
        assert!(s.contains("== T0 — demo =="));
        assert!(s.lines().count() >= 4);
        // All data lines have the same width.
        let widths: Vec<usize> = s
            .lines()
            .skip(1)
            .map(|l| l.chars().count())
            .collect();
        assert!(widths.windows(2).all(|w| w[0] == w[1]), "{s}");
    }

    #[test]
    fn csv_escaping() {
        let mut t = Table::new("t0", "demo", &["a,b", "c"]);
        t.row(vec!["x\"y".into(), "z".into()]);
        let csv = t.to_csv();
        assert!(csv.contains("\"a,b\""));
        assert!(csv.contains("\"x\"\"y\""));
    }

    #[test]
    fn duration_formatting() {
        use std::time::Duration;
        assert_eq!(ms(Duration::from_micros(500)), "500µs");
        assert_eq!(ms(Duration::from_millis(1)), "1.00ms");
        assert_eq!(ms(Duration::from_secs(12)), "12.00s");
    }
}
