//! The experiment harness: one function per reconstructed table/figure.
//!
//! Every entry of the per-experiment index in `DESIGN.md` §4 maps to one
//! `exp_*` function here; the `experiments` binary in `grepair-bench`
//! prints the same rows/series the paper reports, and `EXPERIMENTS.md`
//! records the measured outcomes. Profiles control workload sizes so the
//! full suite stays laptop-scale.

use crate::baselines::{delete_only_rules, random_repair};
use crate::metrics::{evaluate_repair, RepairQuality};
use crate::table::{f3, ms, Table};
use grepair_core::{analyze, EngineConfig, RepairEngine, RuleSet};
use grepair_gen::{
    generate_kg, generate_social, gold_kg_rules, inject_kg_noise, synthetic_rules, ErrorClass,
    KgConfig, NoiseConfig, SocialConfig,
};
use grepair_graph::{Graph, GraphStats};
use grepair_match::MatchConfig;
use std::time::{Duration, Instant};

/// Workload sizes for the harness.
#[derive(Clone, Debug)]
pub struct Profile {
    /// Person counts of the small/medium/large KGs (T1, F1/F2 use medium).
    pub kg_sizes: [usize; 3],
    /// Person counts of the |G| scaling sweep (F3).
    pub scale_points: Vec<usize>,
    /// Largest size at which the naive engine still runs in F3/F4
    /// (beyond it the harness reports `timeout`, like the paper's plots).
    pub naive_cutoff: usize,
    /// Rule counts for the |Σ| sweep (T2, F4).
    pub rule_points: Vec<usize>,
    /// Noise rates for F1.
    pub noise_rates: Vec<f64>,
    /// Seeds averaged over in quality experiments.
    pub seeds: Vec<u64>,
    /// Thread counts for F8.
    pub threads: Vec<usize>,
}

impl Profile {
    /// Seconds-scale profile for tests and CI.
    pub fn quick() -> Self {
        Profile {
            kg_sizes: [200, 500, 1_000],
            scale_points: vec![200, 500, 1_000],
            naive_cutoff: 500,
            rule_points: vec![5, 10, 20],
            noise_rates: vec![0.05, 0.1],
            seeds: vec![1],
            threads: vec![1, 2],
        }
    }

    /// The full evaluation profile (minutes-scale).
    pub fn standard() -> Self {
        Profile {
            kg_sizes: [1_000, 5_000, 20_000],
            scale_points: vec![500, 1_000, 2_000, 5_000, 10_000, 20_000],
            naive_cutoff: 2_000,
            rule_points: vec![10, 20, 40, 80, 160],
            noise_rates: vec![0.02, 0.05, 0.10, 0.15, 0.20],
            seeds: vec![1, 2, 3],
            threads: vec![1, 2, 4, 8],
        }
    }
}

fn time<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed())
}

/// Clean graph + dirty copy + ledger for one (size, rate, seed) cell.
fn dirty_kg(
    persons: usize,
    rate: f64,
    seed: u64,
    classes: Option<ErrorClass>,
) -> (Graph, Graph, grepair_gen::GroundTruth) {
    let (clean, refs) = generate_kg(&KgConfig {
        seed: seed.wrapping_mul(31).wrapping_add(7),
        ..KgConfig::with_persons(persons)
    });
    let mut dirty = clean.clone();
    let cfg = match classes {
        Some(c) => NoiseConfig::single_class(c, rate, seed),
        None => NoiseConfig {
            rate,
            seed,
            ..NoiseConfig::default()
        },
    };
    let truth = inject_kg_noise(&mut dirty, &refs, &cfg);
    (clean, dirty, truth)
}

// ---------------------------------------------------------------------------
// T1 — dataset statistics
// ---------------------------------------------------------------------------

/// T1: the dataset table.
pub fn exp_datasets(p: &Profile) -> Table {
    let mut t = Table::new(
        "t1",
        "dataset statistics",
        &[
            "dataset", "|V|", "|E|", "node-labels", "edge-labels", "avg-deg", "max-deg", "|Σ|",
        ],
    );
    let gold = gold_kg_rules();
    for (name, persons) in [
        ("kg-small", p.kg_sizes[0]),
        ("kg-medium", p.kg_sizes[1]),
        ("kg-large", p.kg_sizes[2]),
    ] {
        let (g, _) = generate_kg(&KgConfig::with_persons(persons));
        let s = GraphStats::compute(&g);
        t.row(vec![
            name.into(),
            s.nodes.to_string(),
            s.edges.to_string(),
            s.node_labels.to_string(),
            s.edge_labels.to_string(),
            format!("{:.2}", s.avg_degree),
            s.max_degree.to_string(),
            gold.len().to_string(),
        ]);
    }
    let (g, _) = generate_social(&SocialConfig {
        accounts: p.kg_sizes[1],
        ..SocialConfig::default()
    });
    let s = GraphStats::compute(&g);
    let social = grepair_gen::social_rules();
    t.row(vec![
        "social".into(),
        s.nodes.to_string(),
        s.edges.to_string(),
        s.node_labels.to_string(),
        s.edge_labels.to_string(),
        format!("{:.2}", s.avg_degree),
        s.max_degree.to_string(),
        social.len().to_string(),
    ]);
    t
}

// ---------------------------------------------------------------------------
// T2 — static rule-set analysis
// ---------------------------------------------------------------------------

/// T2: consistency/implication/termination checking vs |Σ|.
pub fn exp_static_analysis(p: &Profile) -> Table {
    let mut t = Table::new(
        "t2",
        "static rule-set analysis vs |Σ|",
        &[
            "rule set",
            "|Σ|",
            "effective",
            "terminating",
            "conflicts",
            "implied",
            "time",
        ],
    );
    let mut sets: Vec<RuleSet> = vec![gold_kg_rules()];
    for &n in &p.rule_points {
        sets.push(synthetic_rules(n));
    }
    for set in sets {
        let (report, _) = time(|| analyze(&set.rules));
        let effective = report
            .effectiveness
            .iter()
            .filter(|e| **e == grepair_core::Effectiveness::Effective)
            .count();
        t.row(vec![
            set.name.clone(),
            set.len().to_string(),
            format!("{effective}/{}", set.len()),
            report.terminating.to_string(),
            report.conflicts.len().to_string(),
            report.implications.len().to_string(),
            format!("{:.2}ms", report.micros as f64 / 1000.0),
        ]);
    }
    t
}

// ---------------------------------------------------------------------------
// F1 / F2 — repair quality
// ---------------------------------------------------------------------------

fn quality_row(
    clean: &Graph,
    dirty: &Graph,
    truth: &grepair_gen::GroundTruth,
    method: &str,
) -> RepairQuality {
    let gold = gold_kg_rules();
    match method {
        "grr" => {
            let mut g = dirty.clone();
            let report = RepairEngine::default().repair(&mut g, &gold.rules);
            evaluate_repair(clean, dirty, &g, truth, &report.ops)
        }
        "delete-only" => {
            let mut g = dirty.clone();
            let del = delete_only_rules(&gold);
            let report = RepairEngine::default().repair(&mut g, &del.rules);
            evaluate_repair(clean, dirty, &g, truth, &report.ops)
        }
        "random" => {
            let mut g = dirty.clone();
            let report = random_repair(&mut g, &gold.rules, 17, 64);
            evaluate_repair(clean, dirty, &g, truth, &report.ops)
        }
        other => panic!("unknown method {other}"),
    }
}

fn averaged_quality(
    p: &Profile,
    persons: usize,
    rate: f64,
    class: Option<ErrorClass>,
    method: &str,
) -> RepairQuality {
    let mut acc = RepairQuality::default();
    for &seed in &p.seeds {
        let (clean, dirty, truth) = dirty_kg(persons, rate, seed, class);
        let q = quality_row(&clean, &dirty, &truth, method);
        acc.precision += q.precision;
        acc.recall += q.recall;
        acc.f1 += q.f1;
        acc.needed += q.needed;
        acc.made += q.made;
        acc.correct += q.correct;
    }
    let n = p.seeds.len() as f64;
    acc.precision /= n;
    acc.recall /= n;
    acc.f1 /= n;
    acc
}

/// F1: P/R/F1 vs noise rate, GRR vs baselines.
pub fn exp_quality_noise(p: &Profile) -> Table {
    let mut t = Table::new(
        "f1",
        "repair quality vs noise rate (medium KG)",
        &[
            "noise", "method", "precision", "recall", "F1",
        ],
    );
    let persons = p.kg_sizes[1];
    for &rate in &p.noise_rates {
        for method in ["grr", "delete-only", "random"] {
            let q = averaged_quality(p, persons, rate, None, method);
            t.row(vec![
                format!("{:.0}%", rate * 100.0),
                method.into(),
                f3(q.precision),
                f3(q.recall),
                f3(q.f1),
            ]);
        }
    }
    t
}

/// F2: per-inconsistency-class quality at 10% noise.
pub fn exp_quality_class(p: &Profile) -> Table {
    let mut t = Table::new(
        "f2",
        "repair quality per inconsistency class (10% single-class noise)",
        &["class", "method", "precision", "recall", "F1"],
    );
    let persons = p.kg_sizes[1];
    for (class, name) in [
        (ErrorClass::Incompleteness, "incompleteness"),
        (ErrorClass::Conflict, "conflict"),
        (ErrorClass::Redundancy, "redundancy"),
    ] {
        for method in ["grr", "delete-only", "random"] {
            let q = averaged_quality(p, persons, 0.10, Some(class), method);
            t.row(vec![
                name.into(),
                method.into(),
                f3(q.precision),
                f3(q.recall),
                f3(q.f1),
            ]);
        }
    }
    t
}

// ---------------------------------------------------------------------------
// F3 / F4 — efficiency scaling
// ---------------------------------------------------------------------------

/// F3: repair wall-time vs |G|, optimized vs naive engines.
pub fn exp_scale_graph(p: &Profile) -> Table {
    let mut t = Table::new(
        "f3",
        "repair wall-time vs |G| (10% noise)",
        &[
            "persons", "|V|", "|E|", "incremental", "naive+idx", "naive", "speedup",
        ],
    );
    for &persons in &p.scale_points {
        let (_, dirty, _) = dirty_kg(persons, 0.10, 1, None);
        let gold = gold_kg_rules();
        let stats = GraphStats::compute(&dirty);

        let mut g1 = dirty.clone();
        let (rep_inc, d_inc) =
            time(|| RepairEngine::default().repair(&mut g1, &gold.rules));
        assert!(rep_inc.converged, "incremental must converge");

        let mut g2 = dirty.clone();
        let (_, d_naive_idx) = time(|| {
            RepairEngine::new(EngineConfig::naive_with_indexes()).repair(&mut g2, &gold.rules)
        });

        let naive_cell = if persons <= p.naive_cutoff {
            let mut g3 = dirty.clone();
            let (_, d_naive) =
                time(|| RepairEngine::new(EngineConfig::naive()).repair(&mut g3, &gold.rules));
            ms(d_naive)
        } else {
            "timeout".into()
        };

        t.row(vec![
            persons.to_string(),
            stats.nodes.to_string(),
            stats.edges.to_string(),
            ms(d_inc),
            ms(d_naive_idx),
            naive_cell,
            format!("{:.1}×", d_naive_idx.as_secs_f64() / d_inc.as_secs_f64().max(1e-9)),
        ]);
    }
    t
}

/// F4: repair wall-time vs |Σ| (synthetic rules on the medium KG).
pub fn exp_scale_rules(p: &Profile) -> Table {
    let mut t = Table::new(
        "f4",
        "repair wall-time vs |Σ| (medium KG, 10% noise)",
        &["|Σ|", "incremental", "naive+idx", "naive"],
    );
    let persons = p.kg_sizes[1];
    let (_, dirty, _) = dirty_kg(persons, 0.10, 1, None);
    for &n in &p.rule_points {
        let mut rules = gold_kg_rules().rules;
        rules.extend(synthetic_rules(n).rules);

        let mut g1 = dirty.clone();
        let (_, d_inc) = time(|| RepairEngine::default().repair(&mut g1, &rules));
        let mut g2 = dirty.clone();
        let (_, d_idx) = time(|| {
            RepairEngine::new(EngineConfig::naive_with_indexes()).repair(&mut g2, &rules)
        });
        let naive_cell = if n <= p.naive_cutoff.min(40) {
            let mut g3 = dirty.clone();
            let (_, d) =
                time(|| RepairEngine::new(EngineConfig::naive()).repair(&mut g3, &rules));
            ms(d)
        } else {
            "timeout".into()
        };
        t.row(vec![
            format!("{}", n + 10),
            ms(d_inc),
            ms(d_idx),
            naive_cell,
        ]);
    }
    t
}

// ---------------------------------------------------------------------------
// F5 / F6 — ablations
// ---------------------------------------------------------------------------

/// F5: matcher-optimization ablation (violation-scan time on the dirty
/// medium KG).
pub fn exp_ablation_matching(p: &Profile) -> Table {
    let mut t = Table::new(
        "f5",
        "matcher ablation: full violation scan on dirty medium KG",
        &["configuration", "scan time", "violations"],
    );
    let (_, dirty, _) = dirty_kg(p.kg_sizes[1], 0.10, 1, None);
    let gold = gold_kg_rules();
    let full = MatchConfig::default();
    let configs: Vec<(&str, MatchConfig)> = vec![
        ("full", full),
        (
            "-label-index",
            MatchConfig {
                use_label_index: false,
                ..full
            },
        ),
        (
            "-signature",
            MatchConfig {
                use_signature: false,
                ..full
            },
        ),
        (
            "-degree-filter",
            MatchConfig {
                use_degree_filter: false,
                ..full
            },
        ),
        (
            "-attr-index",
            MatchConfig {
                use_attr_index: false,
                ..full
            },
        ),
        (
            "-join-order",
            MatchConfig {
                connected_order: false,
                ..full
            },
        ),
        ("naive (all off)", MatchConfig::naive()),
    ];
    for (name, cfg) in configs {
        let engine = RepairEngine::new(EngineConfig {
            match_config: cfg,
            ..EngineConfig::default()
        });
        let (count, d) = time(|| engine.count_violations(&dirty, &gold.rules));
        t.row(vec![name.into(), ms(d), count.to_string()]);
    }
    t
}

/// F6: incremental maintenance ablation (work per engine).
pub fn exp_ablation_incremental(p: &Profile) -> Table {
    let mut t = Table::new(
        "f6",
        "incremental-maintenance ablation (dirty medium KG)",
        &[
            "engine", "wall", "rounds", "matches-examined", "repairs",
        ],
    );
    let (_, dirty, _) = dirty_kg(p.kg_sizes[1], 0.10, 1, None);
    let gold = gold_kg_rules();
    for (name, cfg) in [
        ("incremental", EngineConfig::default()),
        ("full-rescan", EngineConfig::naive_with_indexes()),
    ] {
        let mut g = dirty.clone();
        let (report, d) = time(|| RepairEngine::new(cfg).repair(&mut g, &gold.rules));
        let examined: usize = report.per_rule.iter().map(|s| s.matches_found).sum();
        t.row(vec![
            name.into(),
            ms(d),
            report.rounds.to_string(),
            examined.to_string(),
            report.repairs_applied.to_string(),
        ]);
    }
    t
}

// ---------------------------------------------------------------------------
// F7 — repair cost (best-repair selection)
// ---------------------------------------------------------------------------

/// F7: edit cost and closeness-to-truth of the produced repairs.
pub fn exp_cost(p: &Profile) -> Table {
    let mut t = Table::new(
        "f7",
        "repair cost: edit distance of produced repairs (medium KG, 10% noise)",
        &[
            "method", "repairs", "edits made", "edits needed", "correct", "F1",
        ],
    );
    let persons = p.kg_sizes[1];
    let (clean, dirty, truth) = dirty_kg(persons, 0.10, 1, None);
    let gold = gold_kg_rules();

    let mut g = dirty.clone();
    let rep = RepairEngine::default().repair(&mut g, &gold.rules);
    let q = evaluate_repair(&clean, &dirty, &g, &truth, &rep.ops);
    t.row(vec![
        "grr".into(),
        rep.repairs_applied.to_string(),
        q.made.to_string(),
        q.needed.to_string(),
        q.correct.to_string(),
        f3(q.f1),
    ]);

    let mut g = dirty.clone();
    let del = delete_only_rules(&gold);
    let rep = RepairEngine::default().repair(&mut g, &del.rules);
    let q = evaluate_repair(&clean, &dirty, &g, &truth, &rep.ops);
    t.row(vec![
        "delete-only".into(),
        rep.repairs_applied.to_string(),
        q.made.to_string(),
        q.needed.to_string(),
        q.correct.to_string(),
        f3(q.f1),
    ]);

    let mut g = dirty.clone();
    let rep = random_repair(&mut g, &gold.rules, 17, 64);
    let q = evaluate_repair(&clean, &dirty, &g, &truth, &rep.ops);
    t.row(vec![
        "random".into(),
        rep.repairs_applied.to_string(),
        q.made.to_string(),
        q.needed.to_string(),
        q.correct.to_string(),
        f3(q.f1),
    ]);
    t
}

// ---------------------------------------------------------------------------
// F8 — parallel scaling
// ---------------------------------------------------------------------------

/// F8: violation-scan speedup vs thread count on the large KG.
pub fn exp_parallel(p: &Profile) -> Table {
    let mut t = Table::new(
        "f8",
        "parallel scan speedup vs threads (large KG)",
        &["threads", "scan time", "speedup"],
    );
    let (_, dirty, _) = dirty_kg(p.kg_sizes[2], 0.10, 1, None);
    let mut rules = gold_kg_rules().rules;
    rules.extend(synthetic_rules(*p.rule_points.last().unwrap_or(&20)).rules);
    let mut base = Duration::ZERO;
    for &threads in &p.threads {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .expect("thread pool");
        let engine = RepairEngine::new(EngineConfig {
            parallel: true,
            ..EngineConfig::default()
        });
        let (_, d) = pool.install(|| time(|| engine.count_violations(&dirty, &rules)));
        if base.is_zero() {
            base = d;
        }
        t.row(vec![
            threads.to_string(),
            ms(d),
            format!("{:.2}×", base.as_secs_f64() / d.as_secs_f64().max(1e-9)),
        ]);
    }
    t
}

/// An experiment entry point.
type ExpFn = fn(&Profile) -> Table;

/// Run experiments by id (`"all"` runs everything).
pub fn run(id: &str, p: &Profile) -> Vec<Table> {
    let all: Vec<(&str, ExpFn)> = vec![
        ("t1", exp_datasets),
        ("t2", exp_static_analysis),
        ("f1", exp_quality_noise),
        ("f2", exp_quality_class),
        ("f3", exp_scale_graph),
        ("f4", exp_scale_rules),
        ("f5", exp_ablation_matching),
        ("f6", exp_ablation_incremental),
        ("f7", exp_cost),
        ("f8", exp_parallel),
    ];
    all.iter()
        .filter(|(eid, _)| id == "all" || *eid == id)
        .map(|(_, f)| f(p))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Profile {
        Profile {
            kg_sizes: [100, 150, 200],
            scale_points: vec![100, 200],
            naive_cutoff: 200,
            rule_points: vec![3, 6],
            noise_rates: vec![0.1],
            seeds: vec![1],
            threads: vec![1, 2],
        }
    }

    #[test]
    fn t1_t2_smoke() {
        let p = tiny();
        let t1 = exp_datasets(&p);
        assert_eq!(t1.rows.len(), 4);
        let t2 = exp_static_analysis(&p);
        assert_eq!(t2.rows.len(), 3);
        assert!(!t1.to_string().is_empty());
    }

    #[test]
    fn f1_grr_beats_baselines() {
        let p = tiny();
        let t = exp_quality_noise(&p);
        // rows per rate: grr, delete-only, random.
        let f1_of = |method: &str| -> f64 {
            t.rows
                .iter()
                .find(|r| r[1] == method)
                .map(|r| r[4].parse().unwrap())
                .unwrap()
        };
        assert!(f1_of("grr") > f1_of("delete-only"));
        assert!(f1_of("grr") > f1_of("random"));
    }

    #[test]
    fn f3_converges_and_reports() {
        let p = tiny();
        let t = exp_scale_graph(&p);
        assert_eq!(t.rows.len(), 2);
        for row in &t.rows {
            assert!(!row[3].is_empty());
        }
    }

    #[test]
    fn f5_f6_smoke() {
        let p = tiny();
        let t5 = exp_ablation_matching(&p);
        assert_eq!(t5.rows.len(), 7);
        // All configs must agree on the violation count.
        let counts: Vec<&String> = t5.rows.iter().map(|r| &r[2]).collect();
        assert!(counts.windows(2).all(|w| w[0] == w[1]), "{t5}");
        let t6 = exp_ablation_incremental(&p);
        assert_eq!(t6.rows.len(), 2);
    }

    #[test]
    fn f7_f8_smoke() {
        let p = tiny();
        let t7 = exp_cost(&p);
        assert_eq!(t7.rows.len(), 3);
        let t8 = exp_parallel(&p);
        assert_eq!(t8.rows.len(), 2);
    }

    #[test]
    fn run_dispatch() {
        let p = tiny();
        assert_eq!(run("t1", &p).len(), 1);
        assert_eq!(run("zzz", &p).len(), 0);
    }
}
