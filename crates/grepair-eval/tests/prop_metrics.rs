//! Property tests for the quality metrics: bounds, monotonicity, and the
//! perfect/no-op calibration points, across random pipeline instances.

use grepair_core::RepairEngine;
use grepair_eval::{delete_only_rules, evaluate_repair};
use grepair_gen::{generate_kg, gold_kg_rules, inject_kg_noise, KgConfig, NoiseConfig};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Metric bounds hold on arbitrary pipeline instances, for both the
    /// gold repair and the delete-only baseline.
    #[test]
    fn metric_bounds(
        persons in 60usize..180,
        rate in 0.02f64..0.2,
        seed in 0u64..300,
    ) {
        let (clean, refs) = generate_kg(&KgConfig { seed, ..KgConfig::with_persons(persons) });
        let mut dirty = clean.clone();
        let truth = inject_kg_noise(&mut dirty, &refs, &NoiseConfig { rate, seed, ..NoiseConfig::default() });
        let gold = gold_kg_rules();

        for method in 0..2 {
            let mut g = dirty.clone();
            let report = if method == 0 {
                RepairEngine::default().repair(&mut g, &gold.rules)
            } else {
                let del = delete_only_rules(&gold);
                RepairEngine::default().repair(&mut g, &del.rules)
            };
            let q = evaluate_repair(&clean, &dirty, &g, &truth, &report.ops);
            prop_assert!((0.0..=1.0).contains(&q.precision), "{q:?}");
            prop_assert!((0.0..=1.0).contains(&q.recall), "{q:?}");
            prop_assert!((0.0..=1.0).contains(&q.f1), "{q:?}");
            prop_assert!(q.correct <= q.made, "{q:?}");
            prop_assert!(q.correct <= q.needed, "{q:?}");
            prop_assert!(q.needed > 0, "noise must require edits");
        }
    }

    /// Calibration: the no-op repair has recall 0 / vacuous precision 1;
    /// a repaired graph equal to the clean graph scores a perfect F1.
    #[test]
    fn calibration_points(
        persons in 60usize..150,
        seed in 0u64..300,
    ) {
        let (clean, refs) = generate_kg(&KgConfig { seed, ..KgConfig::with_persons(persons) });
        let mut dirty = clean.clone();
        let truth = inject_kg_noise(&mut dirty, &refs, &NoiseConfig { seed, ..NoiseConfig::default() });

        let noop = evaluate_repair(&clean, &dirty, &dirty, &truth, &[]);
        prop_assert_eq!(noop.recall, 0.0);
        prop_assert_eq!(noop.precision, 1.0);
        prop_assert_eq!(noop.made, 0);

        // The gold repair on this workload reconstructs the clean graph's
        // canonical triples; F1 is high (≥0.9 at these scales).
        let gold = gold_kg_rules();
        let mut g = dirty.clone();
        let report = RepairEngine::default().repair(&mut g, &gold.rules);
        let q = evaluate_repair(&clean, &dirty, &g, &truth, &report.ops);
        prop_assert!(q.f1 >= 0.9, "{q:?}");
    }
}
