//! Golden-file round-trip tests for `grepair_graph::io`.
//!
//! Each golden file under `tests/golden/` is the canonical serialization
//! of a fixture graph. The tests assert byte-exact stability of the
//! serializers (`parse(golden) → graph → serialize == golden`) and deep
//! equality of the document model through every round trip — including
//! fixtures whose build history leaves free-list tombstones, which both
//! the doc exporter and the CSR snapshot builder must compact.
//!
//! Regenerate after an intentional format change with
//! `GOLDEN_REGEN=1 cargo test -p grepair-graph --test golden_io`.

use grepair_graph::{FrozenGraph, Graph, GraphDoc, Value};
use std::path::PathBuf;

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name)
}

/// Compare `actual` against the golden file, or rewrite it under
/// `GOLDEN_REGEN=1`.
fn assert_golden(name: &str, actual: &str) {
    let path = golden_path(name);
    if std::env::var_os("GOLDEN_REGEN").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, actual).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden file {}: {e}", path.display()));
    assert_eq!(
        actual,
        expected,
        "{name} drifted from its golden file; run with GOLDEN_REGEN=1 if intentional"
    );
}

/// A small KG exercising every value type, quoted strings, parallel
/// edges and a self-loop.
fn clean_fixture() -> Graph {
    let mut g = Graph::new();
    let person = g.label("Person");
    let city = g.label("City");
    let lives = g.label("livesIn");
    let knows = g.label("knows");
    let name = g.attr_key("name");
    let age = g.attr_key("age");
    let score = g.attr_key("score");
    let active = g.attr_key("active");
    let ann = g.add_node_with_attrs(
        person,
        vec![
            (name, Value::from("Ann \"The Graph\" Lee")),
            (age, Value::Int(34)),
            (score, Value::Float(0.5)),
            (active, Value::Bool(true)),
        ],
    );
    let bob = g.add_node_with_attrs(person, vec![(name, Value::from("Bob"))]);
    let oslo = g.add_node(city);
    g.add_edge(ann, oslo, lives).unwrap();
    g.add_edge(bob, oslo, lives).unwrap();
    g.add_edge(ann, bob, knows).unwrap();
    g.add_edge(ann, bob, knows).unwrap(); // parallel
    g.add_edge(bob, bob, knows).unwrap(); // self-loop
    g
}

/// The same shape built through deletions, leaving node and edge
/// tombstones in the free lists (plus one recycled slot).
fn tombstoned_fixture() -> Graph {
    let mut g = clean_fixture();
    let org = g.add_node_named("Org");
    let person = g.try_label("Person").unwrap();
    let doomed = g.add_node(person);
    let city = g.try_label("City").unwrap();
    let oslo = g.nodes_with_label(city)[0];
    let lives = g.try_label("livesIn").unwrap();
    let e = g.add_edge(doomed, oslo, lives).unwrap();
    g.remove_edge(e).unwrap();
    g.remove_node(doomed).unwrap();
    g.remove_node(org).unwrap();
    // Recycle one freed slot so doc handles and node ids diverge.
    g.add_node(city);
    g.remove_node(g.nodes_with_label(city)[1]).unwrap();
    g
}

#[test]
fn json_golden_round_trip() {
    let g = clean_fixture();
    let doc = g.to_doc();
    let json = doc.to_json();
    assert_golden("kg_small.json", &json);

    let parsed = GraphDoc::from_json(&json).unwrap();
    assert_eq!(parsed, doc, "parse(serialize(doc)) must deep-equal doc");
    let rebuilt = Graph::from_doc(&parsed).unwrap();
    assert_eq!(rebuilt.to_doc(), doc, "graph round trip must be stable");
    assert_eq!(rebuilt.to_doc().to_json(), json);
}

#[test]
fn text_golden_round_trip() {
    let g = clean_fixture();
    let doc = g.to_doc();
    let text = doc.to_text();
    assert_golden("kg_small.txt", &text);

    let parsed = GraphDoc::from_text(&text).unwrap();
    assert_eq!(parsed, doc);
    let rebuilt = Graph::from_doc(&parsed).unwrap();
    assert_eq!(rebuilt.to_doc().to_text(), text);
}

#[test]
fn tombstoned_graph_round_trips_compactly() {
    let g = tombstoned_fixture();
    g.check_invariants().unwrap();
    let doc = g.to_doc();
    // The doc only carries live elements, densely renumbered.
    assert_eq!(doc.nodes.len(), g.num_nodes());
    assert_eq!(doc.edges.len(), g.num_edges());
    let json = doc.to_json();
    assert_golden("kg_tombstoned.json", &json);

    let rebuilt = Graph::from_doc(&GraphDoc::from_json(&json).unwrap()).unwrap();
    assert_eq!(rebuilt.to_doc(), doc);
    rebuilt.check_invariants().unwrap();

    // Text format agrees on the same fixture.
    let text = doc.to_text();
    assert_golden("kg_tombstoned.txt", &text);
    assert_eq!(GraphDoc::from_text(&text).unwrap(), doc);
}

#[test]
fn csr_builder_compacts_tombstoned_fixture() {
    let g = tombstoned_fixture();
    let frozen = FrozenGraph::freeze(&g);
    frozen.check_against(&g).unwrap();
    assert_eq!(frozen.num_nodes(), g.num_nodes());
    assert_eq!(frozen.num_edges(), g.num_edges());

    // A graph rebuilt from the portable doc freezes to the same shape:
    // same per-label node counts, same per-label edge counts.
    let rebuilt = Graph::from_doc(&g.to_doc()).unwrap();
    let frozen2 = FrozenGraph::freeze(&rebuilt);
    frozen2.check_against(&rebuilt).unwrap();
    for (id, name) in g.labels().iter() {
        let l = grepair_graph::LabelId(id);
        let l2 = rebuilt.try_label(name);
        let count2 = l2.map(|l2| frozen2.count_nodes_with_label(l2)).unwrap_or(0);
        assert_eq!(frozen.count_nodes_with_label(l), count2, "label {name}");
        let ecount2 = l2.map(|l2| frozen2.count_edges_with_label(l2)).unwrap_or(0);
        assert_eq!(frozen.count_edges_with_label(l), ecount2, "label {name}");
    }
}
