//! Property tests for the storage substrate: arbitrary mutation sequences
//! must preserve every structural invariant, documents must round-trip,
//! and the edit-distance bounds must hold.

use grepair_graph::{
    ged_lower_bound, graph_edit_distance, EdgeId, EditCosts, Graph, GraphDoc, NodeId, Value,
};
use proptest::prelude::*;

/// A mutation in a random op sequence.
#[derive(Clone, Debug)]
enum Op {
    AddNode(u8),
    AddEdge(u8, u8, u8),
    RemoveNode(u8),
    RemoveEdge(u8),
    RelabelNode(u8, u8),
    RelabelEdge(u8, u8),
    SetAttr(u8, u8, i64),
    RemoveAttr(u8, u8),
    Merge(u8, u8),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        any::<u8>().prop_map(Op::AddNode),
        (any::<u8>(), any::<u8>(), any::<u8>()).prop_map(|(a, b, l)| Op::AddEdge(a, b, l)),
        any::<u8>().prop_map(Op::RemoveNode),
        any::<u8>().prop_map(Op::RemoveEdge),
        (any::<u8>(), any::<u8>()).prop_map(|(n, l)| Op::RelabelNode(n, l)),
        (any::<u8>(), any::<u8>()).prop_map(|(e, l)| Op::RelabelEdge(e, l)),
        (any::<u8>(), any::<u8>(), any::<i64>()).prop_map(|(n, k, v)| Op::SetAttr(n, k, v)),
        (any::<u8>(), any::<u8>()).prop_map(|(n, k)| Op::RemoveAttr(n, k)),
        (any::<u8>(), any::<u8>()).prop_map(|(a, b)| Op::Merge(a, b)),
    ]
}

/// Apply ops best-effort: ids are taken modulo the live population, so
/// every op targets a plausible element when one exists.
fn apply_ops(ops: &[Op]) -> Graph {
    let mut g = Graph::new();
    let labels: Vec<_> = (0..4).map(|i| g.label(&format!("L{i}"))).collect();
    let keys: Vec<_> = (0..3).map(|i| g.attr_key(&format!("k{i}"))).collect();
    let pick_node = |g: &Graph, sel: u8| -> Option<NodeId> {
        let nodes: Vec<NodeId> = g.nodes().collect();
        if nodes.is_empty() {
            None
        } else {
            Some(nodes[sel as usize % nodes.len()])
        }
    };
    let pick_edge = |g: &Graph, sel: u8| -> Option<EdgeId> {
        let edges: Vec<EdgeId> = g.edges().collect();
        if edges.is_empty() {
            None
        } else {
            Some(edges[sel as usize % edges.len()])
        }
    };
    for op in ops {
        match op {
            Op::AddNode(l) => {
                g.add_node(labels[*l as usize % labels.len()]);
            }
            Op::AddEdge(a, b, l) => {
                if let (Some(s), Some(d)) = (pick_node(&g, *a), pick_node(&g, *b)) {
                    g.add_edge(s, d, labels[*l as usize % labels.len()]).unwrap();
                }
            }
            Op::RemoveNode(n) => {
                if let Some(n) = pick_node(&g, *n) {
                    g.remove_node(n).unwrap();
                }
            }
            Op::RemoveEdge(e) => {
                if let Some(e) = pick_edge(&g, *e) {
                    g.remove_edge(e).unwrap();
                }
            }
            Op::RelabelNode(n, l) => {
                if let Some(n) = pick_node(&g, *n) {
                    g.set_node_label(n, labels[*l as usize % labels.len()]).unwrap();
                }
            }
            Op::RelabelEdge(e, l) => {
                if let Some(e) = pick_edge(&g, *e) {
                    g.set_edge_label(e, labels[*l as usize % labels.len()]).unwrap();
                }
            }
            Op::SetAttr(n, k, v) => {
                if let Some(n) = pick_node(&g, *n) {
                    g.set_attr(n, keys[*k as usize % keys.len()], Value::Int(*v % 8))
                        .unwrap();
                }
            }
            Op::RemoveAttr(n, k) => {
                if let Some(n) = pick_node(&g, *n) {
                    g.remove_attr(n, keys[*k as usize % keys.len()]).unwrap();
                }
            }
            Op::Merge(a, b) => {
                if let (Some(keep), Some(merged)) = (pick_node(&g, *a), pick_node(&g, *b)) {
                    if keep != merged {
                        g.merge_nodes(keep, merged, true).unwrap();
                    }
                }
            }
        }
    }
    g
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The headline invariant: any op sequence leaves the graph
    /// structurally sound (adjacency symmetry, index freshness,
    /// signatures, counts — see `Graph::check_invariants`).
    #[test]
    fn mutation_sequences_preserve_invariants(ops in prop::collection::vec(op_strategy(), 0..60)) {
        let g = apply_ops(&ops);
        prop_assert!(g.check_invariants().is_ok(), "{:?}", g.check_invariants());
    }

    /// Documents round-trip: graph → doc → graph → doc is a fixpoint.
    #[test]
    fn doc_round_trip(ops in prop::collection::vec(op_strategy(), 0..40)) {
        let g = apply_ops(&ops);
        let doc = g.to_doc();
        let g2 = Graph::from_doc(&doc).unwrap();
        prop_assert_eq!(g2.to_doc(), doc.clone());
        // And through JSON.
        let doc3 = GraphDoc::from_json(&doc.to_json()).unwrap();
        prop_assert_eq!(doc3, doc);
    }

    /// Node/edge counts agree with iterator lengths after any history.
    #[test]
    fn counts_agree_with_iterators(ops in prop::collection::vec(op_strategy(), 0..60)) {
        let g = apply_ops(&ops);
        prop_assert_eq!(g.nodes().count(), g.num_nodes());
        prop_assert_eq!(g.edges().count(), g.num_edges());
        let degree_sum: usize = g.nodes().map(|n| g.degree(n)).sum();
        prop_assert_eq!(degree_sum, 2 * g.num_edges());
    }

    /// GED properties on small graphs: identity is 0, symmetry under unit
    /// costs, and the label lower bound is sound.
    #[test]
    fn ged_properties(
        ops_a in prop::collection::vec(op_strategy(), 0..14),
        ops_b in prop::collection::vec(op_strategy(), 0..14),
    ) {
        let a = apply_ops(&ops_a);
        let b = apply_ops(&ops_b);
        prop_assume!(a.num_nodes() <= 5 && b.num_nodes() <= 5);
        let costs = EditCosts::unit();
        let d_aa = graph_edit_distance(&a, &a, &costs, 6).unwrap();
        prop_assert_eq!(d_aa, 0.0);
        let d_ab = graph_edit_distance(&a, &b, &costs, 6).unwrap();
        let d_ba = graph_edit_distance(&b, &a, &costs, 6).unwrap();
        prop_assert!((d_ab - d_ba).abs() < 1e-9, "asymmetric: {d_ab} vs {d_ba}");
        let lb = ged_lower_bound(&a, &b, &costs);
        prop_assert!(lb <= d_ab + 1e-9, "lb {lb} > exact {d_ab}");
    }

    /// The attribute value index agrees with a full scan.
    #[test]
    fn attr_index_agrees_with_scan(ops in prop::collection::vec(op_strategy(), 0..60)) {
        let g = apply_ops(&ops);
        let Some(key) = g.try_attr_key("k0") else { return Ok(()); };
        for v in 0..8i64 {
            for sign in [1i64, -1] {
                let val = Value::Int(v * sign);
                let mut indexed = g.nodes_with_attr(key, &val);
                indexed.sort_unstable();
                let mut scanned: Vec<_> = g
                    .nodes()
                    .filter(|&n| g.attr(n, key) == Some(&val))
                    .collect();
                scanned.sort_unstable();
                prop_assert_eq!(indexed, scanned);
            }
        }
    }
}
