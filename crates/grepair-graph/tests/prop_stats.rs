//! Differential property tests for write-path statistics maintenance:
//! after an arbitrary mutation sequence — including merges, tombstone
//! reuse and slot-dump round-trips — the maintained [`CardinalityStats`]
//! must be *exactly* what a fresh full recompute produces.

use grepair_graph::{CardinalityStats, EdgeId, Graph, NodeId, Value};
use proptest::prelude::*;

/// A mutation in a random op sequence (mirrors `prop_graph.rs`).
#[derive(Clone, Debug)]
enum Op {
    AddNode(u8),
    AddNodeWithAttrs(u8, u8, i64),
    AddEdge(u8, u8, u8),
    RemoveNode(u8),
    RemoveEdge(u8),
    RelabelNode(u8, u8),
    RelabelEdge(u8, u8),
    SetAttr(u8, u8, i64),
    SetAttrFloat(u8, u8, i64),
    SetAttrStr(u8, u8),
    RemoveAttr(u8, u8),
    Merge(u8, u8, bool),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        any::<u8>().prop_map(Op::AddNode),
        (any::<u8>(), any::<u8>(), -4i64..4).prop_map(|(l, k, v)| Op::AddNodeWithAttrs(l, k, v)),
        (any::<u8>(), any::<u8>(), any::<u8>()).prop_map(|(a, b, l)| Op::AddEdge(a, b, l)),
        any::<u8>().prop_map(Op::RemoveNode),
        any::<u8>().prop_map(Op::RemoveEdge),
        (any::<u8>(), any::<u8>()).prop_map(|(n, l)| Op::RelabelNode(n, l)),
        (any::<u8>(), any::<u8>()).prop_map(|(e, l)| Op::RelabelEdge(e, l)),
        (any::<u8>(), any::<u8>(), -4i64..4).prop_map(|(n, k, v)| Op::SetAttr(n, k, v)),
        (any::<u8>(), any::<u8>(), -4i64..4).prop_map(|(n, k, v)| Op::SetAttrFloat(n, k, v)),
        (any::<u8>(), any::<u8>()).prop_map(|(n, k)| Op::SetAttrStr(n, k)),
        (any::<u8>(), any::<u8>()).prop_map(|(n, k)| Op::RemoveAttr(n, k)),
        (any::<u8>(), any::<u8>(), any::<bool>()).prop_map(|(a, b, d)| Op::Merge(a, b, d)),
    ]
}

fn pick_node(g: &Graph, sel: u8) -> Option<NodeId> {
    let nodes: Vec<NodeId> = g.nodes().collect();
    if nodes.is_empty() {
        None
    } else {
        Some(nodes[sel as usize % nodes.len()])
    }
}

fn pick_edge(g: &Graph, sel: u8) -> Option<EdgeId> {
    let edges: Vec<EdgeId> = g.edges().collect();
    if edges.is_empty() {
        None
    } else {
        Some(edges[sel as usize % edges.len()])
    }
}

/// Apply one op best-effort (ids modulo the live population).
fn apply(g: &mut Graph, op: &Op) {
    let label = |g: &mut Graph, l: u8| g.label(&format!("L{}", l % 4));
    let key = |g: &mut Graph, k: u8| g.attr_key(&format!("k{}", k % 3));
    match op {
        Op::AddNode(l) => {
            let l = label(g, *l);
            g.add_node(l);
        }
        Op::AddNodeWithAttrs(l, k, v) => {
            let l = label(g, *l);
            let k = key(g, *k);
            g.add_node_with_attrs(l, vec![(k, Value::Int(*v))]);
        }
        Op::AddEdge(a, b, l) => {
            if let (Some(a), Some(b)) = (pick_node(g, *a), pick_node(g, *b)) {
                let l = label(g, *l);
                g.add_edge(a, b, l).unwrap();
            }
        }
        Op::RemoveNode(n) => {
            if let Some(n) = pick_node(g, *n) {
                g.remove_node(n).unwrap();
            }
        }
        Op::RemoveEdge(e) => {
            if let Some(e) = pick_edge(g, *e) {
                g.remove_edge(e).unwrap();
            }
        }
        Op::RelabelNode(n, l) => {
            if let Some(n) = pick_node(g, *n) {
                let l = label(g, *l);
                g.set_node_label(n, l).unwrap();
            }
        }
        Op::RelabelEdge(e, l) => {
            if let Some(e) = pick_edge(g, *e) {
                let l = label(g, *l);
                g.set_edge_label(e, l).unwrap();
            }
        }
        Op::SetAttr(n, k, v) => {
            if let Some(n) = pick_node(g, *n) {
                let k = key(g, *k);
                g.set_attr(n, k, Value::Int(*v)).unwrap();
            }
        }
        Op::SetAttrFloat(n, k, v) => {
            if let Some(n) = pick_node(g, *n) {
                let k = key(g, *k);
                g.set_attr(n, k, Value::Float(*v as f64 / 2.0)).unwrap();
            }
        }
        Op::SetAttrStr(n, k) => {
            if let Some(n) = pick_node(g, *n) {
                let k = key(g, *k);
                g.set_attr(n, k, Value::from("s")).unwrap();
            }
        }
        Op::RemoveAttr(n, k) => {
            if let Some(n) = pick_node(g, *n) {
                let k = key(g, *k);
                g.remove_attr(n, k).unwrap();
            }
        }
        Op::Merge(a, b, dedup) => {
            if let (Some(a), Some(b)) = (pick_node(g, *a), pick_node(g, *b)) {
                if a != b {
                    g.merge_nodes(a, b, *dedup).unwrap();
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// After every single op of an arbitrary sequence, the maintained
    /// snapshot equals a full recompute (merges, tombstone reuse and
    /// mixed-kind attribute churn included).
    #[test]
    fn maintained_stats_equal_recompute_after_every_op(
        ops in prop::collection::vec(op_strategy(), 0..80)
    ) {
        let mut g = Graph::new();
        g.maintain_stats(true);
        for op in &ops {
            apply(&mut g, op);
            let maintained = g.maintained_stats().expect("maintenance on");
            let fresh = CardinalityStats::compute(&g);
            prop_assert_eq!(maintained, &fresh, "diverged after {:?}", op);
            prop_assert_eq!(maintained.version, g.version());
        }
        // `check_invariants` runs the same differential plus the rest of
        // the structural checks.
        g.check_invariants().unwrap();
    }

    /// Maintenance composes with slot dumps: restoring a dump and
    /// re-enabling maintenance, then mutating further, stays exact; a
    /// cloned maintained graph keeps its own exact snapshot too.
    #[test]
    fn maintained_stats_survive_dump_restore_and_clone(
        ops in prop::collection::vec(op_strategy(), 0..40),
        more in prop::collection::vec(op_strategy(), 0..20)
    ) {
        let mut g = Graph::new();
        g.maintain_stats(true);
        for op in &ops {
            apply(&mut g, op);
        }
        let mut restored = Graph::restore_slots(&g.dump_slots()).unwrap();
        prop_assert!(restored.maintained_stats().is_none(), "restores start unmaintained");
        restored.maintain_stats(true);
        let mut cloned = g.clone();
        for op in &more {
            apply(&mut restored, op);
            apply(&mut cloned, op);
        }
        prop_assert_eq!(
            restored.maintained_stats().unwrap(),
            &CardinalityStats::compute(&restored)
        );
        prop_assert_eq!(
            cloned.maintained_stats().unwrap(),
            &CardinalityStats::compute(&cloned)
        );
        // Same op history ⇒ same aggregate shape (label *ids* may differ
        // between the two graphs — restores re-intern in dump order).
        let a = restored.maintained_stats().unwrap();
        let b = cloned.maintained_stats().unwrap();
        prop_assert_eq!((a.nodes, a.edges), (b.nodes, b.edges));
    }
}
