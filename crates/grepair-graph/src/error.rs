//! Error type for graph operations.

use crate::ids::{EdgeId, NodeId};
use std::fmt;

/// Errors produced by mutating or querying a [`crate::Graph`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum GraphError {
    /// The node id does not refer to a live node.
    NodeNotFound(NodeId),
    /// The edge id does not refer to a live edge.
    EdgeNotFound(EdgeId),
    /// Attempted to merge a node with itself.
    SelfMerge(NodeId),
    /// Malformed input during parsing/loading.
    Parse(String),
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::NodeNotFound(n) => write!(f, "node {n} not found or deleted"),
            GraphError::EdgeNotFound(e) => write!(f, "edge {e} not found or deleted"),
            GraphError::SelfMerge(n) => write!(f, "cannot merge node {n} with itself"),
            GraphError::Parse(msg) => write!(f, "parse error: {msg}"),
        }
    }
}

impl std::error::Error for GraphError {}

/// Convenience result alias for graph operations.
pub type Result<T, E = GraphError> = std::result::Result<T, E>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert_eq!(
            GraphError::NodeNotFound(NodeId(3)).to_string(),
            "node n3 not found or deleted"
        );
        assert_eq!(
            GraphError::EdgeNotFound(EdgeId(1)).to_string(),
            "edge e1 not found or deleted"
        );
        assert!(GraphError::Parse("bad line".into())
            .to_string()
            .contains("bad line"));
    }
}
