//! Frozen CSR snapshots of a [`Graph`] for scan-heavy matching phases.
//!
//! The mutable [`Graph`] is optimized for the repair engine's write path:
//! stable ids, tombstoned slots, per-node `Vec<EdgeId>` adjacency and
//! hash-based indexes. Full pattern-matching scans pay for that layout in
//! pointer chasing. A [`FrozenGraph`] is a read-only, compacted snapshot
//! rebuilt in one pass:
//!
//! - **tombstone-free node/edge arrays** — live elements only, addressed
//!   densely; dead-slot checks become one array lookup;
//! - **CSR adjacency, both directions**, with each node's run sorted by
//!   `(edge_label, neighbor_label, neighbor, edge)` so label-constrained
//!   neighbor enumeration and edge-existence checks are binary searches
//!   over a contiguous slice instead of a filtered list walk;
//! - **contiguous per-label node runs** (ascending node id) backing the
//!   matcher's label-index candidate retrieval with zero re-sorting;
//! - **precomputed neighbor-signature bitsets** copied out of the live
//!   graph (see [`crate::sig_bit`]);
//! - **columnar attribute storage** — one flat key-sorted `(key, value)`
//!   column partitioned by node, plus a `(key, value) → sorted node list`
//!   index for equality-join candidate retrieval.
//!
//! All queries answer in terms of the **original** [`NodeId`]/[`EdgeId`]s,
//! so a matcher running over a snapshot produces output byte-identical to
//! one running over the live graph. A snapshot records the
//! [`Graph::version`] it was built from; [`FrozenGraph::is_stale`] tells
//! callers when a rebuild is due.

use crate::graph::Graph;
use crate::ids::{AttrKeyId, EdgeId, LabelId, NodeId};
use crate::interner::Interner;
use crate::value::Value;
use rustc_hash::FxHashMap;

/// Sentinel marking a dead or out-of-range slot in dense maps.
const DEAD: u32 = u32::MAX;

/// One CSR adjacency entry: an incident edge seen from its anchor node.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CsrEntry {
    /// Relation label of the edge.
    pub label: LabelId,
    /// Label of the neighbor endpoint.
    pub neighbor_label: LabelId,
    /// Neighbor endpoint (original id).
    pub neighbor: NodeId,
    /// The edge itself (original id).
    pub edge: EdgeId,
}

impl CsrEntry {
    #[inline]
    fn sort_key(&self) -> (LabelId, LabelId, NodeId, EdgeId) {
        (self.label, self.neighbor_label, self.neighbor, self.edge)
    }
}

/// Read-only compacted CSR snapshot of a [`Graph`].
///
/// Built with [`FrozenGraph::freeze`]; see the module docs for the layout.
#[derive(Clone, Debug, Default)]
pub struct FrozenGraph {
    /// `Graph::version` at freeze time.
    built_version: u64,
    /// Original slot index → dense index (`DEAD` for tombstones /
    /// out-of-range).
    dense_of: Vec<u32>,
    /// Dense index → original node id, strictly ascending.
    node_ids: Vec<NodeId>,
    /// Node label per dense index.
    labels: Vec<LabelId>,
    /// Neighbor-label signature per dense index.
    sigs: Vec<u64>,
    /// Attribute column offsets (`len = nodes + 1`).
    attr_off: Vec<u32>,
    /// Flat attribute column, key-sorted within each node's partition.
    attrs: Vec<(AttrKeyId, Value)>,
    /// Out-CSR offsets (`len = nodes + 1`).
    out_off: Vec<u32>,
    /// Out-CSR entries, sorted by [`CsrEntry::sort_key`] within each run.
    out: Vec<CsrEntry>,
    /// In-CSR offsets (`len = nodes + 1`).
    in_off: Vec<u32>,
    /// In-CSR entries, sorted like `out`.
    inc: Vec<CsrEntry>,
    /// Per-label node-run offsets (`len = labels + 1`).
    label_off: Vec<u32>,
    /// Concatenated per-label node runs, ascending ids within each run.
    label_nodes: Vec<NodeId>,
    /// Live-edge count per edge label.
    edge_label_counts: Vec<u64>,
    /// `(key, value)` → ascending node ids carrying exactly that attribute.
    attr_index: FxHashMap<(AttrKeyId, Value), Vec<NodeId>>,
    /// Label vocabulary at freeze time.
    label_interner: Interner,
    /// Attribute-key vocabulary at freeze time.
    attr_key_interner: Interner,
    n_edges: usize,
}

impl FrozenGraph {
    /// Build a snapshot of `g`. One pass over live elements plus a
    /// per-node sort of adjacency runs: `O(V + E log d_max)`.
    pub fn freeze(g: &Graph) -> Self {
        let _span = grepair_obs::span("graph.freeze", "graph");
        let freeze_started = grepair_obs::timer();
        let frozen = Self::freeze_inner(g);
        grepair_obs::record_since_named("graph.freeze_ns", freeze_started);
        frozen
    }

    fn freeze_inner(g: &Graph) -> Self {
        let n = g.num_nodes();
        let slot_cap = g.nodes().last().map(|id| id.index() + 1).unwrap_or(0);
        let mut dense_of = vec![DEAD; slot_cap];
        let mut node_ids = Vec::with_capacity(n);
        let mut labels = Vec::with_capacity(n);
        let mut sigs = Vec::with_capacity(n);
        for (dense, id) in g.nodes().enumerate() {
            dense_of[id.index()] = dense as u32;
            node_ids.push(id);
            labels.push(g.node_label(id).expect("live node has a label"));
            sigs.push(g.signature(id));
        }

        // Attribute column + (key, value) index. Node iteration is in
        // ascending id order, so index buckets come out sorted.
        let mut attr_off = Vec::with_capacity(n + 1);
        let mut attrs = Vec::new();
        let mut attr_index: FxHashMap<(AttrKeyId, Value), Vec<NodeId>> = FxHashMap::default();
        attr_off.push(0u32);
        for &id in &node_ids {
            for (k, v) in g.attrs(id) {
                attrs.push((*k, v.clone()));
                attr_index.entry((*k, v.clone())).or_default().push(id);
            }
            attr_off.push(attrs.len() as u32);
        }

        // CSR adjacency, both directions, label-sorted runs.
        let label_of = |dense_of: &[u32], labels: &[LabelId], id: NodeId| -> LabelId {
            labels[dense_of[id.index()] as usize]
        };
        let mut out_off = Vec::with_capacity(n + 1);
        let mut out = Vec::with_capacity(g.num_edges());
        let mut in_off = Vec::with_capacity(n + 1);
        let mut inc = Vec::with_capacity(g.num_edges());
        out_off.push(0u32);
        in_off.push(0u32);
        for &id in &node_ids {
            let start = out.len();
            for e in g.out_edges(id) {
                let er = g.edge(e).expect("live adjacency edge");
                out.push(CsrEntry {
                    label: er.label,
                    neighbor_label: label_of(&dense_of, &labels, er.dst),
                    neighbor: er.dst,
                    edge: e,
                });
            }
            out[start..].sort_unstable_by_key(CsrEntry::sort_key);
            out_off.push(out.len() as u32);

            let start = inc.len();
            for e in g.in_edges(id) {
                let er = g.edge(e).expect("live adjacency edge");
                inc.push(CsrEntry {
                    label: er.label,
                    neighbor_label: label_of(&dense_of, &labels, er.src),
                    neighbor: er.src,
                    edge: e,
                });
            }
            inc[start..].sort_unstable_by_key(CsrEntry::sort_key);
            in_off.push(inc.len() as u32);
        }

        // Contiguous per-label node runs via counting sort; ascending-id
        // node iteration keeps each run sorted.
        let n_labels = g.labels().len();
        let mut counts = vec![0u32; n_labels];
        for &l in &labels {
            counts[l.index()] += 1;
        }
        let mut label_off = Vec::with_capacity(n_labels + 1);
        label_off.push(0u32);
        for c in &counts {
            label_off.push(label_off.last().unwrap() + c);
        }
        let mut cursor: Vec<u32> = label_off[..n_labels].to_vec();
        let mut label_nodes = vec![NodeId(0); n];
        for (dense, &id) in node_ids.iter().enumerate() {
            let l = labels[dense].index();
            label_nodes[cursor[l] as usize] = id;
            cursor[l] += 1;
        }

        let mut edge_label_counts = vec![0u64; n_labels];
        for entry in &out {
            edge_label_counts[entry.label.index()] += 1;
        }

        FrozenGraph {
            built_version: g.version(),
            dense_of,
            node_ids,
            labels,
            sigs,
            attr_off,
            attrs,
            out_off,
            out,
            in_off,
            inc,
            label_off,
            label_nodes,
            edge_label_counts,
            attr_index,
            label_interner: g.labels().clone(),
            attr_key_interner: g.attr_keys().clone(),
            n_edges: g.num_edges(),
        }
    }

    /// Build a snapshot of `g` with the per-node work fanned out over
    /// rayon workers.
    ///
    /// The dense node maps are built serially (one cheap pass), then the
    /// heavy per-node work — CSR adjacency runs (including each run's
    /// sort) and the attribute column — is computed over fixed-size node
    /// chunks in parallel and stitched back together in chunk order.
    /// Because chunk outputs are concatenated in ascending-dense order,
    /// every array, offset table and index bucket comes out identical to
    /// [`FrozenGraph::freeze`]'s; the result is byte-for-byte the same
    /// snapshot (verifiable with [`FrozenGraph::check_against`]).
    #[cfg(feature = "parallel")]
    pub fn par_freeze(g: &Graph) -> Self {
        let _span = grepair_obs::span("graph.freeze", "graph");
        let freeze_started = grepair_obs::timer();
        let frozen = Self::par_freeze_inner(g);
        grepair_obs::record_since_named("graph.freeze_ns", freeze_started);
        frozen
    }

    #[cfg(feature = "parallel")]
    fn par_freeze_inner(g: &Graph) -> Self {
        use rayon::prelude::*;

        /// Nodes per freeze chunk: large enough to amortize scheduling,
        /// small enough that skewed degree distributions balance.
        const FREEZE_CHUNK: usize = 1024;

        let n = g.num_nodes();
        let slot_cap = g.nodes().last().map(|id| id.index() + 1).unwrap_or(0);
        let mut dense_of = vec![DEAD; slot_cap];
        let mut node_ids = Vec::with_capacity(n);
        let mut labels = Vec::with_capacity(n);
        let mut sigs = Vec::with_capacity(n);
        for (dense, id) in g.nodes().enumerate() {
            dense_of[id.index()] = dense as u32;
            node_ids.push(id);
            labels.push(g.node_label(id).expect("live node has a label"));
            sigs.push(g.signature(id));
        }

        /// Everything one node chunk contributes, in dense-node order.
        #[derive(Default)]
        struct ChunkOut {
            attrs: Vec<(AttrKeyId, Value)>,
            attr_lens: Vec<u32>,
            attr_index: FxHashMap<(AttrKeyId, Value), Vec<NodeId>>,
            out: Vec<CsrEntry>,
            out_lens: Vec<u32>,
            inc: Vec<CsrEntry>,
            in_lens: Vec<u32>,
        }

        let bounds: Vec<(usize, usize)> = (0..n)
            .step_by(FREEZE_CHUNK.max(1))
            .map(|lo| (lo, (lo + FREEZE_CHUNK).min(n)))
            .collect();
        let dense_of_ref = &dense_of;
        let labels_ref = &labels;
        let node_ids_ref = &node_ids;
        let chunk_outs: Vec<ChunkOut> = bounds
            .par_iter()
            .map(|&(lo, hi)| {
                let label_of = |id: NodeId| labels_ref[dense_of_ref[id.index()] as usize];
                let mut co = ChunkOut::default();
                for &id in &node_ids_ref[lo..hi] {
                    let astart = co.attrs.len();
                    for (k, v) in g.attrs(id) {
                        co.attrs.push((*k, v.clone()));
                        co.attr_index.entry((*k, v.clone())).or_default().push(id);
                    }
                    co.attr_lens.push((co.attrs.len() - astart) as u32);

                    let start = co.out.len();
                    for e in g.out_edges(id) {
                        let er = g.edge(e).expect("live adjacency edge");
                        co.out.push(CsrEntry {
                            label: er.label,
                            neighbor_label: label_of(er.dst),
                            neighbor: er.dst,
                            edge: e,
                        });
                    }
                    co.out[start..].sort_unstable_by_key(CsrEntry::sort_key);
                    co.out_lens.push((co.out.len() - start) as u32);

                    let start = co.inc.len();
                    for e in g.in_edges(id) {
                        let er = g.edge(e).expect("live adjacency edge");
                        co.inc.push(CsrEntry {
                            label: er.label,
                            neighbor_label: label_of(er.src),
                            neighbor: er.src,
                            edge: e,
                        });
                    }
                    co.inc[start..].sort_unstable_by_key(CsrEntry::sort_key);
                    co.in_lens.push((co.inc.len() - start) as u32);
                }
                co
            })
            .collect();

        // Stitch chunk outputs back together in chunk (= dense) order.
        // Index buckets stay ascending because chunk node ids ascend
        // across chunks.
        let mut attr_off = Vec::with_capacity(n + 1);
        let mut attrs = Vec::new();
        let mut attr_index: FxHashMap<(AttrKeyId, Value), Vec<NodeId>> = FxHashMap::default();
        let mut out_off = Vec::with_capacity(n + 1);
        let mut out = Vec::with_capacity(g.num_edges());
        let mut in_off = Vec::with_capacity(n + 1);
        let mut inc = Vec::with_capacity(g.num_edges());
        attr_off.push(0u32);
        out_off.push(0u32);
        in_off.push(0u32);
        for mut co in chunk_outs {
            for len in co.attr_lens {
                attr_off.push(attr_off.last().unwrap() + len);
            }
            attrs.append(&mut co.attrs);
            for (key, mut bucket) in co.attr_index {
                attr_index.entry(key).or_default().append(&mut bucket);
            }
            for len in co.out_lens {
                out_off.push(out_off.last().unwrap() + len);
            }
            out.append(&mut co.out);
            for len in co.in_lens {
                in_off.push(in_off.last().unwrap() + len);
            }
            inc.append(&mut co.inc);
        }

        // Per-label runs and edge-label counts, exactly as in `freeze`.
        let n_labels = g.labels().len();
        let mut counts = vec![0u32; n_labels];
        for &l in &labels {
            counts[l.index()] += 1;
        }
        let mut label_off = Vec::with_capacity(n_labels + 1);
        label_off.push(0u32);
        for c in &counts {
            label_off.push(label_off.last().unwrap() + c);
        }
        let mut cursor: Vec<u32> = label_off[..n_labels].to_vec();
        let mut label_nodes = vec![NodeId(0); n];
        for (dense, &id) in node_ids.iter().enumerate() {
            let l = labels[dense].index();
            label_nodes[cursor[l] as usize] = id;
            cursor[l] += 1;
        }

        let mut edge_label_counts = vec![0u64; n_labels];
        for entry in &out {
            edge_label_counts[entry.label.index()] += 1;
        }

        FrozenGraph {
            built_version: g.version(),
            dense_of,
            node_ids,
            labels,
            sigs,
            attr_off,
            attrs,
            out_off,
            out,
            in_off,
            inc,
            label_off,
            label_nodes,
            edge_label_counts,
            attr_index,
            label_interner: g.labels().clone(),
            attr_key_interner: g.attr_keys().clone(),
            n_edges: g.num_edges(),
        }
    }

    // ---- staleness --------------------------------------------------------

    /// The [`Graph::version`] this snapshot was built from.
    #[inline]
    pub fn built_version(&self) -> u64 {
        self.built_version
    }

    /// Whether `g` has mutated since this snapshot was frozen.
    #[inline]
    pub fn is_stale(&self, g: &Graph) -> bool {
        g.version() != self.built_version
    }

    // ---- vocabulary -------------------------------------------------------

    /// Look up a label by name (freeze-time vocabulary).
    pub fn try_label(&self, name: &str) -> Option<LabelId> {
        self.label_interner.get(name).map(LabelId)
    }

    /// Resolve a label id to its name.
    pub fn label_name(&self, id: LabelId) -> &str {
        self.label_interner.resolve(id.0)
    }

    /// Look up an attribute key by name (freeze-time vocabulary).
    pub fn try_attr_key(&self, name: &str) -> Option<AttrKeyId> {
        self.attr_key_interner.get(name).map(AttrKeyId)
    }

    /// Size of the freeze-time label vocabulary. Interners are
    /// append-only, so equal sizes mean identical vocabularies — the
    /// property plan caches key on.
    pub fn num_labels(&self) -> usize {
        self.label_interner.len()
    }

    /// Size of the freeze-time attribute-key vocabulary.
    pub fn num_attr_keys(&self) -> usize {
        self.attr_key_interner.len()
    }

    // ---- basic queries ----------------------------------------------------

    /// Number of nodes in the snapshot.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.node_ids.len()
    }

    /// Number of edges in the snapshot.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.n_edges
    }

    #[inline]
    fn dense(&self, id: NodeId) -> Option<usize> {
        match self.dense_of.get(id.index()) {
            Some(&d) if d != DEAD => Some(d as usize),
            _ => None,
        }
    }

    /// Whether `id` was live at freeze time.
    #[inline]
    pub fn contains_node(&self, id: NodeId) -> bool {
        self.dense(id).is_some()
    }

    /// Label of a node, if live at freeze time.
    #[inline]
    pub fn node_label(&self, id: NodeId) -> Option<LabelId> {
        self.dense(id).map(|d| self.labels[d])
    }

    /// Neighbor-label signature of a node (0 for unknown nodes).
    #[inline]
    pub fn signature(&self, id: NodeId) -> u64 {
        self.dense(id).map(|d| self.sigs[d]).unwrap_or(0)
    }

    /// All node ids, ascending.
    pub fn node_ids(&self) -> &[NodeId] {
        &self.node_ids
    }

    // ---- adjacency --------------------------------------------------------

    #[inline]
    fn out_run(&self, dense: usize) -> &[CsrEntry] {
        &self.out[self.out_off[dense] as usize..self.out_off[dense + 1] as usize]
    }

    #[inline]
    fn in_run(&self, dense: usize) -> &[CsrEntry] {
        &self.inc[self.in_off[dense] as usize..self.in_off[dense + 1] as usize]
    }

    /// Out-degree (0 for unknown nodes).
    #[inline]
    pub fn out_degree(&self, id: NodeId) -> usize {
        self.dense(id).map(|d| self.out_run(d).len()).unwrap_or(0)
    }

    /// In-degree (0 for unknown nodes).
    #[inline]
    pub fn in_degree(&self, id: NodeId) -> usize {
        self.dense(id).map(|d| self.in_run(d).len()).unwrap_or(0)
    }

    /// Outgoing CSR run of a node (label-sorted; empty for unknown nodes).
    pub fn out_entries(&self, id: NodeId) -> &[CsrEntry] {
        self.dense(id).map(|d| self.out_run(d)).unwrap_or(&[])
    }

    /// Incoming CSR run of a node (label-sorted; empty for unknown nodes).
    pub fn in_entries(&self, id: NodeId) -> &[CsrEntry] {
        self.dense(id).map(|d| self.in_run(d)).unwrap_or(&[])
    }

    /// Label-restricted sub-run of a CSR run, by binary search.
    fn label_slice(run: &[CsrEntry], label: LabelId) -> &[CsrEntry] {
        let lo = run.partition_point(|e| e.label < label);
        let hi = run.partition_point(|e| e.label <= label);
        &run[lo..hi]
    }

    /// Outgoing entries with a given edge label (binary-searched sub-run).
    pub fn out_entries_labeled(&self, id: NodeId, label: LabelId) -> &[CsrEntry] {
        Self::label_slice(self.out_entries(id), label)
    }

    /// Incoming entries with a given edge label (binary-searched sub-run).
    pub fn in_entries_labeled(&self, id: NodeId, label: LabelId) -> &[CsrEntry] {
        Self::label_slice(self.in_entries(id), label)
    }

    /// Minimal edge id `src --label--> dst`, if any. Matches the live
    /// graph's [`Graph::find_edge`] min-id convention.
    pub fn find_edge(&self, src: NodeId, dst: NodeId, label: LabelId) -> Option<EdgeId> {
        let nl = self.node_label(dst)?;
        let run = self.out_entries_labeled(src, label);
        let lo = run.partition_point(|e| (e.neighbor_label, e.neighbor) < (nl, dst));
        match run.get(lo) {
            Some(e) if e.neighbor == dst => Some(e.edge),
            _ => None,
        }
    }

    /// Minimal edge id `src --*--> dst` over any label, if any.
    pub fn find_edge_any(&self, src: NodeId, dst: NodeId) -> Option<EdgeId> {
        self.out_entries(src)
            .iter()
            .filter(|e| e.neighbor == dst)
            .map(|e| e.edge)
            .min()
    }

    /// Whether some edge `src --label--> dst` exists.
    pub fn has_edge_labeled(&self, src: NodeId, dst: NodeId, label: LabelId) -> bool {
        self.find_edge(src, dst, label).is_some()
    }

    // ---- indexes ----------------------------------------------------------

    /// Nodes carrying `label`, ascending ids (a contiguous run).
    pub fn nodes_with_label(&self, label: LabelId) -> &[NodeId] {
        match self.label_off.get(label.index() + 1) {
            Some(&hi) => &self.label_nodes[self.label_off[label.index()] as usize..hi as usize],
            None => &[],
        }
    }

    /// Count of nodes with `label`.
    pub fn count_nodes_with_label(&self, label: LabelId) -> usize {
        self.nodes_with_label(label).len()
    }

    /// Count of edges with `label`.
    pub fn count_edges_with_label(&self, label: LabelId) -> u64 {
        self.edge_label_counts
            .get(label.index())
            .copied()
            .unwrap_or(0)
    }

    /// Nodes whose attribute `key` equals `value`, ascending ids.
    pub fn nodes_with_attr(&self, key: AttrKeyId, value: &Value) -> &[NodeId] {
        self.attr_index
            .get(&(key, value.clone()))
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// All attributes of a node, key-sorted (empty for unknown nodes).
    pub fn attrs(&self, id: NodeId) -> &[(AttrKeyId, Value)] {
        match self.dense(id) {
            Some(d) => &self.attrs[self.attr_off[d] as usize..self.attr_off[d + 1] as usize],
            None => &[],
        }
    }

    /// Attribute value of a node, by binary search over its partition.
    pub fn attr(&self, id: NodeId, key: AttrKeyId) -> Option<&Value> {
        let part = self.attrs(id);
        part.binary_search_by_key(&key, |(k, _)| *k)
            .ok()
            .map(|i| &part[i].1)
    }

    // ---- verification -----------------------------------------------------

    /// Verify this snapshot against the graph it was built from: same
    /// element sets, labels, attributes, adjacency, signatures and index
    /// contents. Test / debug support.
    pub fn check_against(&self, g: &Graph) -> Result<(), String> {
        if self.is_stale(g) {
            return Err(format!(
                "snapshot built at version {} but graph is at {}",
                self.built_version,
                g.version()
            ));
        }
        if self.num_nodes() != g.num_nodes() || self.num_edges() != g.num_edges() {
            return Err("element counts diverge".into());
        }
        let live: Vec<NodeId> = g.nodes().collect();
        if live != self.node_ids {
            return Err("node id sets diverge".into());
        }
        for &id in &self.node_ids {
            if self.node_label(id) != g.node_label(id).ok() {
                return Err(format!("{id}: label diverges"));
            }
            if self.signature(id) != g.signature(id) {
                return Err(format!("{id}: signature diverges"));
            }
            if self.attrs(id) != g.attrs(id) {
                return Err(format!("{id}: attrs diverge"));
            }
            let mut live_out: Vec<EdgeId> = g.out_edges(id).collect();
            live_out.sort_unstable();
            let mut frozen_out: Vec<EdgeId> = self.out_entries(id).iter().map(|e| e.edge).collect();
            frozen_out.sort_unstable();
            if live_out != frozen_out {
                return Err(format!("{id}: out adjacency diverges"));
            }
            let mut live_in: Vec<EdgeId> = g.in_edges(id).collect();
            live_in.sort_unstable();
            let mut frozen_in: Vec<EdgeId> = self.in_entries(id).iter().map(|e| e.edge).collect();
            frozen_in.sort_unstable();
            if live_in != frozen_in {
                return Err(format!("{id}: in adjacency diverges"));
            }
            if !self
                .out_entries(id)
                .windows(2)
                .all(|w| w[0].sort_key() <= w[1].sort_key())
            {
                return Err(format!("{id}: out run not sorted"));
            }
            if !self
                .in_entries(id)
                .windows(2)
                .all(|w| w[0].sort_key() <= w[1].sort_key())
            {
                return Err(format!("{id}: in run not sorted"));
            }
        }
        for (label_idx, _) in self.label_interner.iter() {
            let l = LabelId(label_idx);
            let mut live: Vec<NodeId> = g.nodes_with_label(l).to_vec();
            live.sort_unstable();
            if live != self.nodes_with_label(l) {
                return Err(format!("label {l}: node run diverges"));
            }
            if self.count_edges_with_label(l) != g.count_edges_with_label(l) {
                return Err(format!("label {l}: edge count diverges"));
            }
        }
        for ((k, v), bucket) in &self.attr_index {
            let mut live = g.nodes_with_attr(*k, v);
            live.sort_unstable();
            if &live != bucket {
                return Err(format!("attr index bucket {k:?} diverges"));
            }
            if !bucket.windows(2).all(|w| w[0] < w[1]) {
                return Err(format!("attr index bucket {k:?} not sorted"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::Direction;
    use crate::sig_bit;

    fn sample() -> Graph {
        let mut g = Graph::new();
        let p = g.label("Person");
        let c = g.label("City");
        let lives = g.label("livesIn");
        let knows = g.label("knows");
        let name = g.attr_key("name");
        let a = g.add_node_with_attrs(p, vec![(name, Value::from("Ann"))]);
        let b = g.add_node(p);
        let c1 = g.add_node(c);
        let c2 = g.add_node(c);
        g.add_edge(a, c1, lives).unwrap();
        g.add_edge(b, c1, lives).unwrap();
        g.add_edge(b, c2, lives).unwrap();
        g.add_edge(a, b, knows).unwrap();
        g
    }

    #[test]
    fn freeze_preserves_everything() {
        let g = sample();
        let f = FrozenGraph::freeze(&g);
        f.check_against(&g).unwrap();
        assert_eq!(f.num_nodes(), 4);
        assert_eq!(f.num_edges(), 4);
        assert!(!f.is_stale(&g));
    }

    #[test]
    fn freeze_compacts_tombstones() {
        let mut g = sample();
        let extra = g.add_node_named("Org");
        let person = g.try_label("Person").unwrap();
        let victim = g.nodes_with_label(person)[0];
        g.remove_node(victim).unwrap();
        g.remove_node(extra).unwrap();
        let f = FrozenGraph::freeze(&g);
        f.check_against(&g).unwrap();
        assert_eq!(f.num_nodes(), g.num_nodes());
        assert!(!f.contains_node(victim));
        assert!(!f.contains_node(extra));
        // Dense arrays hold exactly the live elements.
        assert_eq!(f.node_ids().len(), g.num_nodes());
    }

    #[test]
    fn staleness_tracks_version() {
        let mut g = sample();
        let f = FrozenGraph::freeze(&g);
        assert!(!f.is_stale(&g));
        g.add_node_named("Org");
        assert!(f.is_stale(&g));
    }

    #[test]
    fn label_runs_are_sorted_and_contiguous() {
        let g = sample();
        let f = FrozenGraph::freeze(&g);
        let person = f.try_label("Person").unwrap();
        let run = f.nodes_with_label(person);
        assert_eq!(run.len(), 2);
        assert!(run.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(f.count_nodes_with_label(person), 2);
        // Unknown label ids yield empty runs.
        assert!(f.nodes_with_label(LabelId(999)).is_empty());
    }

    #[test]
    fn find_edge_returns_minimal_parallel_edge() {
        let mut g = Graph::new();
        let p = g.label("P");
        let r = g.label("r");
        let a = g.add_node(p);
        let b = g.add_node(p);
        let e1 = g.add_edge(a, b, r).unwrap();
        let e2 = g.add_edge(a, b, r).unwrap();
        assert!(e1 < e2);
        let f = FrozenGraph::freeze(&g);
        assert_eq!(f.find_edge(a, b, r), Some(e1));
        assert_eq!(f.find_edge_any(a, b), Some(e1));
        assert_eq!(f.find_edge(b, a, r), None);
        assert!(f.has_edge_labeled(a, b, r));
    }

    #[test]
    fn labeled_entry_slices_binary_search() {
        let g = sample();
        let f = FrozenGraph::freeze(&g);
        let person = f.try_label("Person").unwrap();
        let lives = f.try_label("livesIn").unwrap();
        let knows = f.try_label("knows").unwrap();
        let a = f.nodes_with_label(person)[0];
        assert_eq!(f.out_entries_labeled(a, lives).len(), 1);
        assert_eq!(f.out_entries_labeled(a, knows).len(), 1);
        assert_eq!(f.out_degree(a), 2);
        let city = f.try_label("City").unwrap();
        let c1 = f.nodes_with_label(city)[0];
        assert_eq!(f.in_entries_labeled(c1, lives).len(), 2);
        assert_eq!(f.in_degree(c1), 2);
    }

    #[test]
    fn attr_column_and_index() {
        let g = sample();
        let f = FrozenGraph::freeze(&g);
        let name = f.try_attr_key("name").unwrap();
        let person = f.try_label("Person").unwrap();
        let ann = f.nodes_with_label(person)[0];
        assert_eq!(f.attr(ann, name), Some(&Value::from("Ann")));
        assert_eq!(f.attrs(ann).len(), 1);
        assert_eq!(f.nodes_with_attr(name, &Value::from("Ann")), &[ann]);
        assert!(f.nodes_with_attr(name, &Value::from("Bob")).is_empty());
        assert_eq!(f.attr(ann, AttrKeyId(999)), None);
    }

    #[test]
    fn signatures_copied_from_live_graph() {
        let g = sample();
        let f = FrozenGraph::freeze(&g);
        let person = f.try_label("Person").unwrap();
        let city = f.try_label("City").unwrap();
        let lives = f.try_label("livesIn").unwrap();
        let a = f.nodes_with_label(person)[0];
        let need = sig_bit(Direction::Out, lives, city);
        assert_eq!(f.signature(a) & need, need);
        assert_eq!(f.signature(a), g.signature(a));
    }

    #[cfg(feature = "parallel")]
    #[test]
    fn par_freeze_identical_to_freeze() {
        let mut g = sample();
        let name = g.attr_key("name");
        let person = g.try_label("Person").unwrap();
        let b = g.nodes_with_label(person)[1];
        g.set_attr(b, name, Value::from("Ann")).unwrap();
        let extra = g.add_node_named("Org");
        g.remove_node(extra).unwrap();
        let serial = FrozenGraph::freeze(&g);
        for threads in [1usize, 2, 8] {
            let pool = rayon::ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .unwrap();
            let par = pool.install(|| FrozenGraph::par_freeze(&g));
            par.check_against(&g).unwrap();
            assert_eq!(par.dense_of, serial.dense_of);
            assert_eq!(par.node_ids, serial.node_ids);
            assert_eq!(par.labels, serial.labels);
            assert_eq!(par.sigs, serial.sigs);
            assert_eq!(par.attr_off, serial.attr_off);
            assert_eq!(par.attrs, serial.attrs);
            assert_eq!(par.out_off, serial.out_off);
            assert_eq!(par.out, serial.out);
            assert_eq!(par.in_off, serial.in_off);
            assert_eq!(par.inc, serial.inc);
            assert_eq!(par.label_off, serial.label_off);
            assert_eq!(par.label_nodes, serial.label_nodes);
            assert_eq!(par.edge_label_counts, serial.edge_label_counts);
            assert_eq!(par.attr_index, serial.attr_index);
        }
    }

    #[test]
    fn empty_graph_freezes() {
        let g = Graph::new();
        let f = FrozenGraph::freeze(&g);
        assert_eq!(f.num_nodes(), 0);
        assert_eq!(f.num_edges(), 0);
        f.check_against(&g).unwrap();
        assert!(!f.contains_node(NodeId(0)));
        assert_eq!(f.find_edge_any(NodeId(0), NodeId(1)), None);
    }
}
