//! Attribute values attached to nodes.
//!
//! Values are a small dynamic type covering the needs of knowledge-graph
//! style property data. Floats are compared and hashed by bit pattern so
//! `Value` can serve as a key in violation dedup tables; `NaN == NaN` under
//! this scheme, which is the desired behaviour for data cleaning (two NaN
//! readings are "the same unknown").

use serde::{Deserialize, Serialize};
use std::fmt;
use std::hash::{Hash, Hasher};

/// A dynamically-typed attribute value.
#[derive(Clone, Debug, Serialize, Deserialize)]
#[serde(untagged)]
pub enum Value {
    /// UTF-8 string.
    Str(String),
    /// 64-bit signed integer.
    Int(i64),
    /// 64-bit float; equality/hash by bit pattern.
    Float(f64),
    /// Boolean.
    Bool(bool),
}

impl Value {
    /// Short type name for diagnostics.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Str(_) => "str",
            Value::Int(_) => "int",
            Value::Float(_) => "float",
            Value::Bool(_) => "bool",
        }
    }

    /// The string payload, if this is a `Str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The integer payload, if this is an `Int`.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// A numeric view: `Int` and `Float` both coerce to `f64`.
    pub fn as_number(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// Total order over values: by type tag first, then payload.
    ///
    /// Used for deterministic tie-breaking in repair selection; it is *not*
    /// a semantic order (an `Int(1)` is not ordered relative to `Float(1.0)`
    /// by value but by tag).
    pub fn total_cmp(&self, other: &Value) -> std::cmp::Ordering {
        use std::cmp::Ordering;
        use Value::*;
        fn tag(v: &Value) -> u8 {
            match v {
                Str(_) => 0,
                Int(_) => 1,
                Float(_) => 2,
                Bool(_) => 3,
            }
        }
        match (self, other) {
            (Str(a), Str(b)) => a.cmp(b),
            (Int(a), Int(b)) => a.cmp(b),
            (Float(a), Float(b)) => a.total_cmp(b),
            (Bool(a), Bool(b)) => a.cmp(b),
            (a, b) => tag(a).cmp(&tag(b)).then(Ordering::Equal),
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        use Value::*;
        match (self, other) {
            (Str(a), Str(b)) => a == b,
            (Int(a), Int(b)) => a == b,
            (Float(a), Float(b)) => a.to_bits() == b.to_bits(),
            (Bool(a), Bool(b)) => a == b,
            _ => false,
        }
    }
}

impl Eq for Value {}

impl Hash for Value {
    fn hash<H: Hasher>(&self, state: &mut H) {
        match self {
            Value::Str(s) => {
                0u8.hash(state);
                s.hash(state);
            }
            Value::Int(i) => {
                1u8.hash(state);
                i.hash(state);
            }
            Value::Float(f) => {
                2u8.hash(state);
                f.to_bits().hash(state);
            }
            Value::Bool(b) => {
                3u8.hash(state);
                b.hash(state);
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Str(s) => write!(f, "{s:?}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Bool(b) => write!(f, "{b}"),
        }
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Str(s.to_owned())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Str(s)
    }
}

impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Int(i)
    }
}

impl From<i32> for Value {
    fn from(i: i32) -> Self {
        Value::Int(i as i64)
    }
}

impl From<f64> for Value {
    fn from(f: f64) -> Self {
        Value::Float(f)
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;

    fn hash_of(v: &Value) -> u64 {
        let mut h = DefaultHasher::new();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn equality_by_type_and_payload() {
        assert_eq!(Value::from("a"), Value::from("a"));
        assert_ne!(Value::from("a"), Value::from("b"));
        assert_ne!(Value::Int(1), Value::Float(1.0));
        assert_eq!(Value::Float(f64::NAN), Value::Float(f64::NAN));
    }

    #[test]
    fn hash_consistent_with_eq() {
        assert_eq!(
            hash_of(&Value::Float(f64::NAN)),
            hash_of(&Value::Float(f64::NAN))
        );
        assert_eq!(hash_of(&Value::from("x")), hash_of(&Value::from("x")));
    }

    #[test]
    fn numeric_coercion() {
        assert_eq!(Value::Int(3).as_number(), Some(3.0));
        assert_eq!(Value::Float(2.5).as_number(), Some(2.5));
        assert_eq!(Value::from("x").as_number(), None);
    }

    #[test]
    fn total_cmp_is_total_on_mixed_types() {
        use std::cmp::Ordering;
        let vals = [
            Value::from("a"),
            Value::Int(0),
            Value::Float(0.0),
            Value::Bool(false),
        ];
        for a in &vals {
            assert_eq!(a.total_cmp(a), Ordering::Equal);
            for b in &vals {
                let ab = a.total_cmp(b);
                let ba = b.total_cmp(a);
                assert_eq!(ab, ba.reverse());
            }
        }
    }

    #[test]
    fn serde_untagged_round_trip() {
        for v in [
            Value::from("s"),
            Value::Int(-4),
            Value::Float(1.5),
            Value::Bool(true),
        ] {
            let s = serde_json::to_string(&v).unwrap();
            let back: Value = serde_json::from_str(&s).unwrap();
            assert_eq!(back, v);
        }
    }

    #[test]
    fn display_formats() {
        assert_eq!(Value::from("a").to_string(), "\"a\"");
        assert_eq!(Value::Int(5).to_string(), "5");
        assert_eq!(Value::Bool(true).to_string(), "true");
    }
}
