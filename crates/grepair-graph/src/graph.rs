//! Mutable directed labelled property-graph storage.
//!
//! Design goals, in order:
//!
//! 1. **Stable ids under mutation** — repairs mutate the graph while
//!    violation queues still hold element ids; ids of live elements never
//!    move. Deleted slots are tombstoned and recycled by later insertions.
//! 2. **O(1)-amortized mutations** — every repair operation (the paper's
//!    seven) maps to a constant number of slot updates plus incident-edge
//!    work where unavoidable (node deletion, merge).
//! 3. **Index support for matching** — a per-label node index (swap-remove
//!    position-tracked, deterministic given the op history) and a 64-bit
//!    neighbor-label signature per node, both maintained incrementally, are
//!    what make the "efficient" repair engine fast.
//!
//! Adjacency is stored as per-node `Vec<EdgeId>` for both directions;
//! removal swap-removes using per-edge back-pointers would add 16 bytes per
//! edge, so instead removal does a linear scan of the endpoint adjacency —
//! O(deg), which profiling on the bench workloads shows is dwarfed by match
//! enumeration.

use crate::dump::SlotDump;
use crate::error::{GraphError, Result};
use crate::ids::{AttrKeyId, Direction, EdgeId, LabelId, NodeId};
use crate::interner::Interner;
use crate::io::{EdgeDoc, GraphDoc, NodeDoc};
use crate::stats::{CardinalityStats, StatsMaintenance};
use crate::value::Value;

/// Read-only view of an edge.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EdgeRef {
    /// Source node.
    pub src: NodeId,
    /// Target node.
    pub dst: NodeId,
    /// Relation label.
    pub label: LabelId,
}

/// Outcome of a node merge, for delta tracking by callers.
#[derive(Clone, Debug, Default)]
pub struct MergeOutcome {
    /// Edges whose endpoint was redirected to the kept node.
    pub rewired: Vec<EdgeId>,
    /// Edges dropped because an identical parallel edge already existed.
    pub dropped: Vec<EdgeId>,
    /// Attribute keys copied from the merged node onto the kept node.
    pub copied_attrs: Vec<AttrKeyId>,
}

#[derive(Clone, Debug)]
struct NodeSlot {
    label: LabelId,
    /// Sorted by key id; graphs in this domain have few attrs per node, so
    /// a sorted vec beats a hash map on both memory and lookup.
    attrs: Vec<(AttrKeyId, Value)>,
    out: Vec<EdgeId>,
    inc: Vec<EdgeId>,
    /// Position of this node inside `label_index[label]`, for O(1) removal.
    label_pos: u32,
    /// Neighbor-label signature (see [`sig_bit`]).
    sig: u64,
    alive: bool,
}

#[derive(Clone, Debug)]
struct EdgeSlot {
    src: NodeId,
    dst: NodeId,
    label: LabelId,
    alive: bool,
}

/// Bit of the neighbor-label signature contributed by one incident edge.
///
/// The signature of a node ORs this bit over all incident edges. A pattern
/// node requiring incident edges `{(dir_i, el_i, nl_i)}` can prune any
/// candidate whose signature lacks one of the corresponding bits —
/// a Bloom-style necessary condition with zero false negatives.
#[inline]
pub fn sig_bit(dir: Direction, edge_label: LabelId, neighbor_label: LabelId) -> u64 {
    // Cheap mix; quality only affects pruning power, not correctness.
    let d = match dir {
        Direction::Out => 0x9e37_79b9_u64,
        Direction::In => 0x85eb_ca6b_u64,
    };
    let x = d
        .wrapping_mul(0x100_0000_01b3)
        .wrapping_add(edge_label.0 as u64)
        .wrapping_mul(0x100_0000_01b3)
        .wrapping_add(neighbor_label.0 as u64);
    1u64 << (x.wrapping_mul(0xff51_afd7_ed55_8ccd) >> 58)
}

/// Mutable directed labelled property graph.
#[derive(Clone, Debug, Default)]
pub struct Graph {
    nodes: Vec<NodeSlot>,
    edges: Vec<EdgeSlot>,
    free_nodes: Vec<NodeId>,
    free_edges: Vec<EdgeId>,
    labels: Interner,
    attr_keys: Interner,
    /// Per label: live nodes carrying it. Swap-remove with back pointers.
    label_index: Vec<Vec<NodeId>>,
    /// Per label: number of live edges carrying it.
    edge_label_counts: Vec<u64>,
    /// Value index: (key, value) → nodes carrying exactly that attribute.
    /// Powers equi-join candidate retrieval in the matcher (redundancy
    /// rules like "same ssn ⇒ same person" would otherwise be O(|V|²)).
    attr_index: rustc_hash::FxHashMap<(AttrKeyId, Value), rustc_hash::FxHashSet<NodeId>>,
    n_nodes: usize,
    n_edges: usize,
    version: u64,
    /// Maintained-statistics mode ([`Graph::maintain_stats`]): a
    /// [`CardinalityStats`] kept exactly current by every mutator (plus
    /// its numeric-distribution support structure), so planners read
    /// fresh statistics without an `O(V + E)` recompute.
    stats: Option<Box<StatsMaintenance>>,
}

impl Graph {
    /// New empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    // ---- maintained statistics -------------------------------------------

    /// Switch incremental statistics maintenance on or off.
    ///
    /// Enabling computes one fresh [`CardinalityStats`] snapshot (a
    /// single `O(V + E)` pass) and from then on every mutation updates
    /// it in place — triple counts, label marginals, attribute buckets,
    /// range summaries and degree totals all move with the write, so
    /// [`Graph::maintained_stats`] is always exactly
    /// [`CardinalityStats::compute`] of the current graph at zero read
    /// cost. Disabling drops the snapshot.
    ///
    /// The sustained overhead is a handful of hash-map updates per
    /// mutation (bounded by the touched element's incident edges for
    /// relabels); the `stats_maintenance` bench pins it below 2x the
    /// raw mutation cost.
    pub fn maintain_stats(&mut self, on: bool) {
        self.stats = if on {
            Some(Box::new(StatsMaintenance::build(self)))
        } else {
            None
        };
    }

    /// The incrementally maintained statistics, when
    /// [`Graph::maintain_stats`] is on. Always stamped with the current
    /// [`Graph::version`].
    pub fn maintained_stats(&self) -> Option<&CardinalityStats> {
        self.stats.as_deref().map(|m| &m.stats)
    }

    /// Stamp the maintained snapshot with the just-bumped version; every
    /// mutator calls this after its delta updates.
    #[inline]
    fn sync_stats_version(&mut self) {
        let v = self.version;
        if let Some(m) = self.stats.as_deref_mut() {
            m.stats.version = v;
        }
    }

    // ---- interners -------------------------------------------------------

    /// Intern a label name.
    pub fn label(&mut self, name: &str) -> LabelId {
        let id = LabelId(self.labels.intern(name));
        self.ensure_label_tables(id);
        id
    }

    /// Look up a label without interning.
    pub fn try_label(&self, name: &str) -> Option<LabelId> {
        self.labels.get(name).map(LabelId)
    }

    /// Resolve a label id to its name.
    pub fn label_name(&self, id: LabelId) -> &str {
        self.labels.resolve(id.0)
    }

    /// Intern an attribute key.
    pub fn attr_key(&mut self, name: &str) -> AttrKeyId {
        AttrKeyId(self.attr_keys.intern(name))
    }

    /// Look up an attribute key without interning.
    pub fn try_attr_key(&self, name: &str) -> Option<AttrKeyId> {
        self.attr_keys.get(name).map(AttrKeyId)
    }

    /// Resolve an attribute key id to its name.
    pub fn attr_key_name(&self, id: AttrKeyId) -> &str {
        self.attr_keys.resolve(id.0)
    }

    /// The label interner (read access).
    pub fn labels(&self) -> &Interner {
        &self.labels
    }

    /// The attribute-key interner (read access).
    pub fn attr_keys(&self) -> &Interner {
        &self.attr_keys
    }

    fn ensure_label_tables(&mut self, id: LabelId) {
        let need = id.index() + 1;
        if self.label_index.len() < need {
            self.label_index.resize_with(need, Vec::new);
            self.edge_label_counts.resize(need, 0);
        }
    }

    // ---- structure: nodes ------------------------------------------------

    /// Insert a node with the given label and no attributes.
    pub fn add_node(&mut self, label: LabelId) -> NodeId {
        self.add_node_with_attrs(label, Vec::new())
    }

    /// Insert a node with the given label name (interning it).
    pub fn add_node_named(&mut self, label: &str) -> NodeId {
        let l = self.label(label);
        self.add_node(l)
    }

    /// Insert a node with attributes (any key order; sorted internally).
    pub fn add_node_with_attrs(
        &mut self,
        label: LabelId,
        mut attrs: Vec<(AttrKeyId, Value)>,
    ) -> NodeId {
        self.ensure_label_tables(label);
        attrs.sort_by_key(|(k, _)| *k);
        attrs.dedup_by_key(|(k, _)| *k);
        let slot = NodeSlot {
            label,
            attrs,
            out: Vec::new(),
            inc: Vec::new(),
            label_pos: 0,
            sig: 0,
            alive: true,
        };
        let id = match self.free_nodes.pop() {
            Some(id) => {
                self.nodes[id.index()] = slot;
                id
            }
            None => {
                let id = NodeId::from_index(self.nodes.len());
                self.nodes.push(slot);
                id
            }
        };
        self.index_node(id, label);
        let attrs: Vec<(AttrKeyId, Value)> = self.nodes[id.index()].attrs.clone();
        for (k, v) in attrs {
            self.index_attr(id, k, v);
        }
        self.n_nodes += 1;
        if let Some(m) = self.stats.as_deref_mut() {
            m.stats.node_delta(label, 1);
        }
        self.version += 1;
        self.sync_stats_version();
        id
    }

    fn index_attr(&mut self, id: NodeId, key: AttrKeyId, value: Value) {
        // Kind/number are extracted up front so the value can move into
        // the index key without a clone, maintained statistics or not.
        let kind = crate::stats::kind_index(&value);
        let num = value.as_number();
        let (new_bucket, inserted) = {
            let bucket = self.attr_index.entry((key, value)).or_default();
            let new_bucket = bucket.is_empty();
            (new_bucket, bucket.insert(id))
        };
        if inserted {
            if let Some(m) = self.stats.as_deref_mut() {
                m.attr_insert(key, kind, num, new_bucket);
            }
        }
    }

    fn unindex_attr(&mut self, id: NodeId, key: AttrKeyId, value: &Value) {
        // Temporary clone of the key tuple; buckets are removed when empty
        // so the index never accumulates tombstones.
        let Some(bucket) = self.attr_index.get_mut(&(key, value.clone())) else {
            return;
        };
        if !bucket.remove(&id) {
            return;
        }
        let emptied = bucket.is_empty();
        if emptied {
            self.attr_index.remove(&(key, value.clone()));
        }
        if let Some(s) = self.stats.as_deref_mut() {
            s.attr_remove(key, value, emptied);
        }
    }

    /// Live nodes whose attribute `key` equals `value` (unordered).
    pub fn nodes_with_attr(&self, key: AttrKeyId, value: &Value) -> Vec<NodeId> {
        self.attr_index
            .get(&(key, value.clone()))
            .map(|s| s.iter().copied().collect())
            .unwrap_or_default()
    }

    /// Count of live nodes whose attribute `key` equals `value`.
    pub fn count_nodes_with_attr(&self, key: AttrKeyId, value: &Value) -> usize {
        self.attr_index
            .get(&(key, value.clone()))
            .map(|s| s.len())
            .unwrap_or(0)
    }

    /// Per-key summary of the attribute value index: `key → (distinct
    /// values, total entries)`. One pass over the index buckets —
    /// `O(distinct (key, value) pairs)`, not `O(|V|)` — this is the raw
    /// input behind [`crate::CardinalityStats`]'s equality-join
    /// selectivity (`entries / distinct ≈ expected bucket size`).
    pub fn attr_bucket_stats(&self) -> rustc_hash::FxHashMap<AttrKeyId, (u64, u64)> {
        let mut out: rustc_hash::FxHashMap<AttrKeyId, (u64, u64)> =
            rustc_hash::FxHashMap::default();
        for ((key, _), bucket) in &self.attr_index {
            let e = out.entry(*key).or_insert((0, 0));
            e.0 += 1;
            e.1 += bucket.len() as u64;
        }
        out
    }

    fn index_node(&mut self, id: NodeId, label: LabelId) {
        let bucket = &mut self.label_index[label.index()];
        self.nodes[id.index()].label_pos = bucket.len() as u32;
        bucket.push(id);
    }

    fn unindex_node(&mut self, id: NodeId, label: LabelId) {
        let pos = self.nodes[id.index()].label_pos as usize;
        let bucket = &mut self.label_index[label.index()];
        bucket.swap_remove(pos);
        if let Some(&moved) = bucket.get(pos) {
            self.nodes[moved.index()].label_pos = pos as u32;
        }
    }

    /// Delete a node and all incident edges; returns the removed edge ids
    /// in ascending id order.
    ///
    /// Incident edges are removed in **sorted edge-id order**, not
    /// adjacency order: adjacency lists are reordered by swap-removes, so
    /// their order is history-dependent, while the freed-slot order must
    /// be a function of slot state alone for log replay over a restored
    /// snapshot ([`Graph::restore_slots`]) to reuse identical ids.
    pub fn remove_node(&mut self, id: NodeId) -> Result<Vec<EdgeId>> {
        if !self.contains_node(id) {
            return Err(GraphError::NodeNotFound(id));
        }
        let incident = self.incident_edges_sorted(id);
        let mut removed = Vec::with_capacity(incident.len());
        for e in incident {
            self.remove_edge(e)?;
            removed.push(e);
        }
        let label = self.nodes[id.index()].label;
        self.unindex_node(id, label);
        let attrs = std::mem::take(&mut self.nodes[id.index()].attrs);
        for (k, v) in &attrs {
            self.unindex_attr(id, *k, v);
        }
        self.nodes[id.index()].alive = false;
        self.free_nodes.push(id);
        self.n_nodes -= 1;
        if let Some(m) = self.stats.as_deref_mut() {
            m.stats.node_delta(label, -1);
        }
        self.version += 1;
        self.sync_stats_version();
        Ok(removed)
    }

    /// Whether `id` refers to a live node.
    #[inline]
    pub fn contains_node(&self, id: NodeId) -> bool {
        self.nodes.get(id.index()).is_some_and(|n| n.alive)
    }

    /// Label of a live node.
    pub fn node_label(&self, id: NodeId) -> Result<LabelId> {
        self.live_node(id).map(|n| n.label)
    }

    /// Replace a node's label; returns the previous label.
    pub fn set_node_label(&mut self, id: NodeId, label: LabelId) -> Result<LabelId> {
        self.ensure_label_tables(label);
        let old = self.node_label(id)?;
        if old == label {
            return Ok(old);
        }
        // Maintained statistics: the node moves between label marginals,
        // and every incident edge's triple/degree attribution moves with
        // it. Old/new labels are substituted explicitly so self-loops
        // (both endpoints relabelled at once) stay exact. The snapshot
        // is taken out of `self` for the duration so the loop can read
        // slot state while mutating it.
        if let Some(mut m) = self.stats.take() {
            for e in self.incident_edges_sorted(id) {
                let es = &self.edges[e.index()];
                let sl_old = if es.src == id { old } else { self.nodes[es.src.index()].label };
                let dl_old = if es.dst == id { old } else { self.nodes[es.dst.index()].label };
                let sl_new = if es.src == id { label } else { sl_old };
                let dl_new = if es.dst == id { label } else { dl_old };
                m.stats.edge_delta(es.label, sl_old, dl_old, -1);
                m.stats.edge_delta(es.label, sl_new, dl_new, 1);
            }
            m.stats.node_relabel(old, label);
            self.stats = Some(m);
        }
        self.unindex_node(id, old);
        self.nodes[id.index()].label = label;
        self.index_node(id, label);
        // The node's own signature doesn't involve its own label, but every
        // neighbor's signature does.
        let neighbors: Vec<NodeId> = self
            .incident_edges(id)
            .map(|e| {
                let s = &self.edges[e.index()];
                if s.src == id {
                    s.dst
                } else {
                    s.src
                }
            })
            .collect();
        for nb in neighbors {
            self.recompute_sig(nb);
        }
        self.version += 1;
        self.sync_stats_version();
        Ok(old)
    }

    /// Incident edge ids, ascending and deduplicated (self-loops once).
    fn incident_edges_sorted(&self, id: NodeId) -> Vec<EdgeId> {
        let mut incident: Vec<EdgeId> = self.nodes[id.index()]
            .out
            .iter()
            .chain(self.nodes[id.index()].inc.iter())
            .copied()
            .collect();
        incident.sort_unstable();
        incident.dedup();
        incident
    }

    #[inline]
    fn live_node(&self, id: NodeId) -> Result<&NodeSlot> {
        match self.nodes.get(id.index()) {
            Some(n) if n.alive => Ok(n),
            _ => Err(GraphError::NodeNotFound(id)),
        }
    }

    #[inline]
    fn live_edge(&self, id: EdgeId) -> Result<&EdgeSlot> {
        match self.edges.get(id.index()) {
            Some(e) if e.alive => Ok(e),
            _ => Err(GraphError::EdgeNotFound(id)),
        }
    }

    // ---- structure: edges ------------------------------------------------

    /// Insert a directed edge. Parallel edges are allowed.
    pub fn add_edge(&mut self, src: NodeId, dst: NodeId, label: LabelId) -> Result<EdgeId> {
        self.ensure_label_tables(label);
        if !self.contains_node(src) {
            return Err(GraphError::NodeNotFound(src));
        }
        if !self.contains_node(dst) {
            return Err(GraphError::NodeNotFound(dst));
        }
        let slot = EdgeSlot {
            src,
            dst,
            label,
            alive: true,
        };
        let id = match self.free_edges.pop() {
            Some(id) => {
                self.edges[id.index()] = slot;
                id
            }
            None => {
                let id = EdgeId::from_index(self.edges.len());
                self.edges.push(slot);
                id
            }
        };
        self.nodes[src.index()].out.push(id);
        self.nodes[dst.index()].inc.push(id);
        let src_label = self.nodes[src.index()].label;
        let dst_label = self.nodes[dst.index()].label;
        self.nodes[src.index()].sig |= sig_bit(Direction::Out, label, dst_label);
        self.nodes[dst.index()].sig |= sig_bit(Direction::In, label, src_label);
        self.edge_label_counts[label.index()] += 1;
        self.n_edges += 1;
        if let Some(m) = self.stats.as_deref_mut() {
            m.stats.edge_delta(label, src_label, dst_label, 1);
        }
        self.version += 1;
        self.sync_stats_version();
        Ok(id)
    }

    /// Insert an edge using label names (interning them).
    pub fn add_edge_named(&mut self, src: NodeId, dst: NodeId, label: &str) -> Result<EdgeId> {
        let l = self.label(label);
        self.add_edge(src, dst, l)
    }

    /// Delete an edge.
    pub fn remove_edge(&mut self, id: EdgeId) -> Result<()> {
        let (src, dst, label) = {
            let e = self.live_edge(id)?;
            (e.src, e.dst, e.label)
        };
        let src_label = self.nodes[src.index()].label;
        let dst_label = self.nodes[dst.index()].label;
        let out = &mut self.nodes[src.index()].out;
        if let Some(pos) = out.iter().position(|&e| e == id) {
            out.swap_remove(pos);
        }
        let inc = &mut self.nodes[dst.index()].inc;
        if let Some(pos) = inc.iter().position(|&e| e == id) {
            inc.swap_remove(pos);
        }
        self.edges[id.index()].alive = false;
        self.free_edges.push(id);
        self.edge_label_counts[label.index()] -= 1;
        self.n_edges -= 1;
        if let Some(m) = self.stats.as_deref_mut() {
            m.stats.edge_delta(label, src_label, dst_label, -1);
        }
        self.recompute_sig(src);
        if dst != src {
            self.recompute_sig(dst);
        }
        self.version += 1;
        self.sync_stats_version();
        Ok(())
    }

    /// Whether `id` refers to a live edge.
    #[inline]
    pub fn contains_edge(&self, id: EdgeId) -> bool {
        self.edges.get(id.index()).is_some_and(|e| e.alive)
    }

    /// Read-only view of a live edge.
    pub fn edge(&self, id: EdgeId) -> Result<EdgeRef> {
        self.live_edge(id).map(|e| EdgeRef {
            src: e.src,
            dst: e.dst,
            label: e.label,
        })
    }

    /// Replace an edge's label; returns the previous label.
    pub fn set_edge_label(&mut self, id: EdgeId, label: LabelId) -> Result<LabelId> {
        self.ensure_label_tables(label);
        let (src, dst, old) = {
            let e = self.live_edge(id)?;
            (e.src, e.dst, e.label)
        };
        if old == label {
            return Ok(old);
        }
        self.edges[id.index()].label = label;
        self.edge_label_counts[old.index()] -= 1;
        self.edge_label_counts[label.index()] += 1;
        if self.stats.is_some() {
            let sl = self.nodes[src.index()].label;
            let dl = self.nodes[dst.index()].label;
            let m = self.stats.as_deref_mut().expect("checked above");
            m.stats.edge_delta(old, sl, dl, -1);
            m.stats.edge_delta(label, sl, dl, 1);
        }
        self.recompute_sig(src);
        if dst != src {
            self.recompute_sig(dst);
        }
        self.version += 1;
        self.sync_stats_version();
        Ok(old)
    }

    fn recompute_sig(&mut self, id: NodeId) {
        if !self.contains_node(id) {
            return;
        }
        let mut sig = 0u64;
        for &e in &self.nodes[id.index()].out {
            let s = &self.edges[e.index()];
            sig |= sig_bit(Direction::Out, s.label, self.nodes[s.dst.index()].label);
        }
        for &e in &self.nodes[id.index()].inc {
            let s = &self.edges[e.index()];
            sig |= sig_bit(Direction::In, s.label, self.nodes[s.src.index()].label);
        }
        self.nodes[id.index()].sig = sig;
    }

    // ---- attributes --------------------------------------------------------

    /// Get an attribute value.
    pub fn attr(&self, node: NodeId, key: AttrKeyId) -> Option<&Value> {
        let n = self.live_node(node).ok()?;
        n.attrs
            .binary_search_by_key(&key, |(k, _)| *k)
            .ok()
            .map(|i| &n.attrs[i].1)
    }

    /// All attributes of a node, sorted by key id.
    pub fn attrs(&self, node: NodeId) -> &[(AttrKeyId, Value)] {
        self.live_node(node).map(|n| n.attrs.as_slice()).unwrap_or(&[])
    }

    /// Set (insert or overwrite) an attribute; returns the previous value.
    pub fn set_attr(&mut self, node: NodeId, key: AttrKeyId, value: Value) -> Result<Option<Value>> {
        self.live_node(node)?;
        self.version += 1;
        let attrs = &mut self.nodes[node.index()].attrs;
        let old = match attrs.binary_search_by_key(&key, |(k, _)| *k) {
            Ok(i) => Some(std::mem::replace(&mut attrs[i].1, value.clone())),
            Err(i) => {
                attrs.insert(i, (key, value.clone()));
                None
            }
        };
        if let Some(old_v) = &old {
            self.unindex_attr(node, key, old_v);
        }
        self.index_attr(node, key, value);
        self.sync_stats_version();
        Ok(old)
    }

    /// Remove an attribute; returns the removed value, if any.
    pub fn remove_attr(&mut self, node: NodeId, key: AttrKeyId) -> Result<Option<Value>> {
        self.live_node(node)?;
        let attrs = &mut self.nodes[node.index()].attrs;
        match attrs.binary_search_by_key(&key, |(k, _)| *k) {
            Ok(i) => {
                self.version += 1;
                let (_, v) = attrs.remove(i);
                self.unindex_attr(node, key, &v);
                self.sync_stats_version();
                Ok(Some(v))
            }
            Err(_) => Ok(None),
        }
    }

    // ---- merge -------------------------------------------------------------

    /// Merge `merged` into `keep`: redirect all of `merged`'s edges to
    /// `keep`, copy attributes `keep` lacks, and delete `merged`.
    ///
    /// With `dedup_parallel`, redirected edges that would duplicate an
    /// existing `(src, dst, label)` triple at `keep` are dropped instead.
    /// Self-loops `merged → merged` become `keep → keep`.
    pub fn merge_nodes(
        &mut self,
        keep: NodeId,
        merged: NodeId,
        dedup_parallel: bool,
    ) -> Result<MergeOutcome> {
        if keep == merged {
            return Err(GraphError::SelfMerge(keep));
        }
        self.live_node(keep)?;
        self.live_node(merged)?;
        let mut outcome = MergeOutcome::default();

        // Sorted-id order for the same replay-determinism reason as
        // [`Graph::remove_node`]: rewired edges allocate fresh slots, so
        // the processing order must not depend on adjacency history.
        let incident = self.incident_edges_sorted(merged);
        for e in incident {
            let s = &self.edges[e.index()];
            let new_src = if s.src == merged { keep } else { s.src };
            let new_dst = if s.dst == merged { keep } else { s.dst };
            let label = s.label;
            let duplicate = dedup_parallel
                && (self.has_edge_labeled(new_src, new_dst, label)
                    // Edges between keep and merged collapse to keep-loops;
                    // treat those as duplicates of nothing unless dedup also
                    // finds an existing loop.
                    );
            self.remove_edge(e)?;
            if duplicate {
                outcome.dropped.push(e);
            } else {
                let ne = self.add_edge(new_src, new_dst, label)?;
                outcome.rewired.push(ne);
            }
        }

        let merged_attrs = self.nodes[merged.index()].attrs.clone();
        for (k, v) in merged_attrs {
            if self.attr(keep, k).is_none() {
                self.set_attr(keep, k, v)?;
                outcome.copied_attrs.push(k);
            }
        }
        self.remove_node(merged)?;
        Ok(outcome)
    }

    // ---- queries -----------------------------------------------------------

    /// Number of live nodes.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.n_nodes
    }

    /// Number of live edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.n_edges
    }

    /// Monotone version counter, bumped on every mutation.
    #[inline]
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Iterate live node ids in id order.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| n.alive)
            .map(|(i, _)| NodeId::from_index(i))
    }

    /// Iterate live edge ids in id order.
    pub fn edges(&self) -> impl Iterator<Item = EdgeId> + '_ {
        self.edges
            .iter()
            .enumerate()
            .filter(|(_, e)| e.alive)
            .map(|(i, _)| EdgeId::from_index(i))
    }

    /// Outgoing edge ids of a node (unspecified order).
    pub fn out_edges(&self, id: NodeId) -> impl Iterator<Item = EdgeId> + '_ {
        self.live_node(id)
            .map(|n| n.out.as_slice())
            .unwrap_or(&[])
            .iter()
            .copied()
    }

    /// Incoming edge ids of a node (unspecified order).
    pub fn in_edges(&self, id: NodeId) -> impl Iterator<Item = EdgeId> + '_ {
        self.live_node(id)
            .map(|n| n.inc.as_slice())
            .unwrap_or(&[])
            .iter()
            .copied()
    }

    /// All incident edges (out then in; self-loops appear twice).
    pub fn incident_edges(&self, id: NodeId) -> impl Iterator<Item = EdgeId> + '_ {
        self.out_edges(id).chain(self.in_edges(id))
    }

    /// Out-degree.
    pub fn out_degree(&self, id: NodeId) -> usize {
        self.live_node(id).map(|n| n.out.len()).unwrap_or(0)
    }

    /// In-degree.
    pub fn in_degree(&self, id: NodeId) -> usize {
        self.live_node(id).map(|n| n.inc.len()).unwrap_or(0)
    }

    /// Total degree (self-loops count twice).
    pub fn degree(&self, id: NodeId) -> usize {
        self.out_degree(id) + self.in_degree(id)
    }

    /// Live nodes carrying `label` (order deterministic per op history).
    pub fn nodes_with_label(&self, label: LabelId) -> &[NodeId] {
        self.label_index
            .get(label.index())
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Count of live nodes with `label`.
    pub fn count_nodes_with_label(&self, label: LabelId) -> usize {
        self.nodes_with_label(label).len()
    }

    /// Count of live edges with `label`.
    pub fn count_edges_with_label(&self, label: LabelId) -> u64 {
        self.edge_label_counts
            .get(label.index())
            .copied()
            .unwrap_or(0)
    }

    /// Whether some live edge `src --label--> dst` exists.
    ///
    /// Short-circuits on the first hit — unlike [`Graph::find_edge`],
    /// which must walk the full adjacency to find the minimal id.
    pub fn has_edge_labeled(&self, src: NodeId, dst: NodeId, label: LabelId) -> bool {
        let Ok(n) = self.live_node(src) else {
            return false;
        };
        n.out.iter().any(|&e| {
            let s = &self.edges[e.index()];
            s.dst == dst && s.label == label
        })
    }

    /// Minimal live edge id `src --label--> dst`, if any.
    ///
    /// Among parallel duplicates the *lowest* edge id wins, independent of
    /// adjacency-list order — the witness convention shared with
    /// [`crate::FrozenGraph`] so matching over a snapshot is byte-identical
    /// to matching over the live graph.
    pub fn find_edge(&self, src: NodeId, dst: NodeId, label: LabelId) -> Option<EdgeId> {
        let n = self.live_node(src).ok()?;
        n.out
            .iter()
            .copied()
            .filter(|&e| {
                let s = &self.edges[e.index()];
                s.dst == dst && s.label == label
            })
            .min()
    }

    /// Minimal live edge id `src --*--> dst` over any label, if any. Same
    /// min-id convention as [`Graph::find_edge`].
    pub fn find_edge_any(&self, src: NodeId, dst: NodeId) -> Option<EdgeId> {
        self.edges_between(src, dst).min()
    }

    /// All live edges `src --*--> dst`.
    pub fn edges_between(&self, src: NodeId, dst: NodeId) -> impl Iterator<Item = EdgeId> + '_ {
        self.out_edges(src)
            .filter(move |&e| self.edges[e.index()].dst == dst)
    }

    /// Neighbor-label signature of a node (see [`sig_bit`]).
    pub fn signature(&self, id: NodeId) -> u64 {
        self.live_node(id).map(|n| n.sig).unwrap_or(0)
    }

    /// Check internal invariants; used by tests and `debug_assert!` hooks.
    ///
    /// Verifies: adjacency symmetry, index membership/positions, live
    /// counts, edge label counts, signature freshness.
    pub fn check_invariants(&self) -> Result<(), String> {
        let mut n_alive = 0usize;
        for (i, n) in self.nodes.iter().enumerate() {
            if !n.alive {
                continue;
            }
            n_alive += 1;
            let id = NodeId::from_index(i);
            for &e in &n.out {
                let s = self
                    .edges
                    .get(e.index())
                    .ok_or_else(|| format!("{id}: dangling out edge {e}"))?;
                if !s.alive {
                    return Err(format!("{id}: dead out edge {e}"));
                }
                if s.src != id {
                    return Err(format!("{id}: out edge {e} has src {}", s.src));
                }
            }
            for &e in &n.inc {
                let s = self
                    .edges
                    .get(e.index())
                    .ok_or_else(|| format!("{id}: dangling in edge {e}"))?;
                if !s.alive {
                    return Err(format!("{id}: dead in edge {e}"));
                }
                if s.dst != id {
                    return Err(format!("{id}: in edge {e} has dst {}", s.dst));
                }
            }
            let bucket = &self.label_index[n.label.index()];
            if bucket.get(n.label_pos as usize) != Some(&id) {
                return Err(format!("{id}: label index position stale"));
            }
            if !n.attrs.windows(2).all(|w| w[0].0 < w[1].0) {
                return Err(format!("{id}: attrs not strictly sorted"));
            }
            let mut sig = 0u64;
            for &e in &n.out {
                let s = &self.edges[e.index()];
                sig |= sig_bit(Direction::Out, s.label, self.nodes[s.dst.index()].label);
            }
            for &e in &n.inc {
                let s = &self.edges[e.index()];
                sig |= sig_bit(Direction::In, s.label, self.nodes[s.src.index()].label);
            }
            if sig != n.sig {
                return Err(format!("{id}: stale signature"));
            }
        }
        if n_alive != self.n_nodes {
            return Err(format!(
                "node count mismatch: counted {n_alive}, stored {}",
                self.n_nodes
            ));
        }
        let mut n_edges = 0usize;
        let mut label_counts = vec![0u64; self.edge_label_counts.len()];
        for (i, e) in self.edges.iter().enumerate() {
            if !e.alive {
                continue;
            }
            n_edges += 1;
            let id = EdgeId::from_index(i);
            label_counts[e.label.index()] += 1;
            let src = &self.nodes[e.src.index()];
            let dst = &self.nodes[e.dst.index()];
            if !src.alive || !dst.alive {
                return Err(format!("{id}: endpoint dead"));
            }
            if !src.out.contains(&id) {
                return Err(format!("{id}: missing from src adjacency"));
            }
            if !dst.inc.contains(&id) {
                return Err(format!("{id}: missing from dst adjacency"));
            }
        }
        if n_edges != self.n_edges {
            return Err(format!(
                "edge count mismatch: counted {n_edges}, stored {}",
                self.n_edges
            ));
        }
        if label_counts != self.edge_label_counts {
            return Err("edge label counts stale".into());
        }
        // Attr index: every live (node, key, value) present; no extras.
        let mut attr_total = 0usize;
        for (i, n) in self.nodes.iter().enumerate() {
            if !n.alive {
                continue;
            }
            let id = NodeId::from_index(i);
            attr_total += n.attrs.len();
            for (k, v) in &n.attrs {
                let in_index = self
                    .attr_index
                    .get(&(*k, v.clone()))
                    .is_some_and(|b| b.contains(&id));
                if !in_index {
                    return Err(format!("{id}: attr {k:?} missing from value index"));
                }
            }
        }
        let index_total: usize = self.attr_index.values().map(|b| b.len()).sum();
        if index_total != attr_total {
            return Err(format!(
                "value index has {index_total} entries, graph has {attr_total} attrs"
            ));
        }
        // Maintained statistics must equal a fresh full recompute — the
        // differential oracle for the write-path deltas.
        if let Some(s) = self.maintained_stats() {
            let fresh = CardinalityStats::compute(self);
            if *s != fresh {
                return Err(format!(
                    "maintained statistics diverged from recompute:\n  maintained: {s:?}\n  computed:   {fresh:?}"
                ));
            }
        }
        Ok(())
    }

    // ---- exact slot dumps (durable snapshots) ------------------------------

    /// Exact slot-level image of this graph — see [`SlotDump`].
    pub fn dump_slots(&self) -> SlotDump {
        let mut doc = GraphDoc::default();
        for (i, n) in self.nodes.iter().enumerate() {
            if !n.alive {
                continue;
            }
            doc.nodes.push(NodeDoc {
                id: i as u32,
                label: self.labels.resolve(n.label.0).to_owned(),
                attrs: n
                    .attrs
                    .iter()
                    .map(|(k, v)| (self.attr_keys.resolve(k.0).to_owned(), v.clone()))
                    .collect(),
            });
        }
        let mut edge_ids = Vec::with_capacity(self.n_edges);
        for (i, e) in self.edges.iter().enumerate() {
            if !e.alive {
                continue;
            }
            edge_ids.push(i as u32);
            doc.edges.push(EdgeDoc {
                src: e.src.0,
                dst: e.dst.0,
                label: self.labels.resolve(e.label.0).to_owned(),
            });
        }
        SlotDump {
            doc,
            edge_ids,
            free_nodes: self.free_nodes.iter().map(|n| n.0).collect(),
            free_edges: self.free_edges.iter().map(|e| e.0).collect(),
            node_slots: self.nodes.len() as u32,
            edge_slots: self.edges.len() as u32,
            version: self.version,
        }
    }

    /// Rebuild a graph from a [`SlotDump`], placing every element at its
    /// recorded slot and restoring the free lists verbatim, so subsequent
    /// mutations allocate exactly the ids the dumped graph would have.
    ///
    /// The dump is fully validated first (every slot accounted for exactly
    /// once, endpoints live, handles in range); inconsistencies yield
    /// [`GraphError::Parse`], never a panic — dumps arrive from disk.
    pub fn restore_slots(dump: &SlotDump) -> Result<Self> {
        let corrupt = |msg: String| GraphError::Parse(format!("slot dump: {msg}"));
        let n_slots = dump.node_slots as usize;
        let e_slots = dump.edge_slots as usize;
        if dump.doc.nodes.len() + dump.free_nodes.len() != n_slots {
            return Err(corrupt(format!(
                "{} live + {} free node slots != {n_slots} total",
                dump.doc.nodes.len(),
                dump.free_nodes.len()
            )));
        }
        if dump.doc.edges.len() != dump.edge_ids.len() {
            return Err(corrupt(format!(
                "{} edges but {} edge ids",
                dump.doc.edges.len(),
                dump.edge_ids.len()
            )));
        }
        if dump.doc.edges.len() + dump.free_edges.len() != e_slots {
            return Err(corrupt(format!(
                "{} live + {} free edge slots != {e_slots} total",
                dump.doc.edges.len(),
                dump.free_edges.len()
            )));
        }

        let mut g = Graph::new();
        // Dead placeholders; every slot is either resurrected below or
        // listed free. The placeholder label id is never read while dead.
        g.nodes = (0..n_slots)
            .map(|_| NodeSlot {
                label: LabelId(0),
                attrs: Vec::new(),
                out: Vec::new(),
                inc: Vec::new(),
                label_pos: 0,
                sig: 0,
                alive: false,
            })
            .collect();
        g.edges = (0..e_slots)
            .map(|_| EdgeSlot {
                src: NodeId(0),
                dst: NodeId(0),
                label: LabelId(0),
                alive: false,
            })
            .collect();

        for nd in &dump.doc.nodes {
            let i = nd.id as usize;
            if i >= n_slots {
                return Err(corrupt(format!("node handle {} out of range", nd.id)));
            }
            if g.nodes[i].alive {
                return Err(corrupt(format!("duplicate node handle {}", nd.id)));
            }
            let label = g.label(&nd.label);
            let mut attrs: Vec<(AttrKeyId, Value)> = nd
                .attrs
                .iter()
                .map(|(k, v)| (g.attr_key(k), v.clone()))
                .collect();
            attrs.sort_by_key(|(k, _)| *k);
            let id = NodeId(nd.id);
            for (k, v) in &attrs {
                g.index_attr(id, *k, v.clone());
            }
            g.nodes[i].label = label;
            g.nodes[i].attrs = attrs;
            g.nodes[i].alive = true;
            g.index_node(id, label);
            g.n_nodes += 1;
        }
        for &f in &dump.free_nodes {
            match g.nodes.get(f as usize) {
                None => return Err(corrupt(format!("free node {f} out of range"))),
                Some(slot) if slot.alive => {
                    return Err(corrupt(format!("free node {f} is live")))
                }
                Some(_) => g.free_nodes.push(NodeId(f)),
            }
        }
        // live + free == total and no double-live/double-free implies every
        // slot is accounted for exactly once — unless the free list itself
        // repeats an id, which the count check alone misses.
        let mut seen = vec![false; n_slots];
        for n in &g.free_nodes {
            if std::mem::replace(&mut seen[n.index()], true) {
                return Err(corrupt(format!("free node {n} listed twice")));
            }
        }

        for (ed, &eid) in dump.doc.edges.iter().zip(&dump.edge_ids) {
            let i = eid as usize;
            if i >= e_slots {
                return Err(corrupt(format!("edge id {eid} out of range")));
            }
            if g.edges[i].alive {
                return Err(corrupt(format!("duplicate edge id {eid}")));
            }
            let (src, dst) = (NodeId(ed.src), NodeId(ed.dst));
            if !g.contains_node(src) || !g.contains_node(dst) {
                return Err(corrupt(format!("edge {eid} endpoint not live")));
            }
            let label = g.label(&ed.label);
            g.edges[i] = EdgeSlot {
                src,
                dst,
                label,
                alive: true,
            };
            g.nodes[src.index()].out.push(EdgeId(eid));
            g.nodes[dst.index()].inc.push(EdgeId(eid));
            g.edge_label_counts[label.index()] += 1;
            g.n_edges += 1;
        }
        for &f in &dump.free_edges {
            match g.edges.get(f as usize) {
                None => return Err(corrupt(format!("free edge {f} out of range"))),
                Some(slot) if slot.alive => {
                    return Err(corrupt(format!("free edge {f} is live")))
                }
                Some(_) => g.free_edges.push(EdgeId(f)),
            }
        }
        let mut seen = vec![false; e_slots];
        for e in &g.free_edges {
            if std::mem::replace(&mut seen[e.index()], true) {
                return Err(corrupt(format!("free edge {e} listed twice")));
            }
        }

        let live: Vec<NodeId> = g.nodes().collect();
        for id in live {
            g.recompute_sig(id);
        }
        g.version = dump.version;
        debug_assert!(g.check_invariants().is_ok());
        Ok(g)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> (Graph, NodeId, NodeId, NodeId) {
        let mut g = Graph::new();
        let person = g.label("Person");
        let city = g.label("City");
        let a = g.add_node(person);
        let b = g.add_node(person);
        let c = g.add_node(city);
        (g, a, b, c)
    }

    #[test]
    fn add_and_query_nodes() {
        let (g, a, b, c) = small();
        assert_eq!(g.num_nodes(), 3);
        assert!(g.contains_node(a));
        let person = g.try_label("Person").unwrap();
        assert_eq!(g.node_label(a).unwrap(), person);
        assert_eq!(g.nodes_with_label(person), &[a, b]);
        let city = g.try_label("City").unwrap();
        assert_eq!(g.nodes_with_label(city), &[c]);
        g.check_invariants().unwrap();
    }

    #[test]
    fn add_and_remove_edges() {
        let (mut g, a, b, c) = small();
        let knows = g.label("knows");
        let lives = g.label("livesIn");
        let e1 = g.add_edge(a, b, knows).unwrap();
        let e2 = g.add_edge(a, c, lives).unwrap();
        assert_eq!(g.num_edges(), 2);
        assert!(g.has_edge_labeled(a, b, knows));
        assert!(!g.has_edge_labeled(b, a, knows));
        assert_eq!(g.out_degree(a), 2);
        assert_eq!(g.in_degree(c), 1);
        assert_eq!(g.count_edges_with_label(knows), 1);
        g.check_invariants().unwrap();

        g.remove_edge(e1).unwrap();
        assert!(!g.contains_edge(e1));
        assert!(g.contains_edge(e2));
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.count_edges_with_label(knows), 0);
        g.check_invariants().unwrap();
    }

    #[test]
    fn remove_node_removes_incident_edges() {
        let (mut g, a, b, c) = small();
        let knows = g.label("knows");
        g.add_edge(a, b, knows).unwrap();
        g.add_edge(b, c, knows).unwrap();
        g.add_edge(c, a, knows).unwrap();
        let removed = g.remove_node(a).unwrap();
        assert_eq!(removed.len(), 2);
        assert_eq!(g.num_nodes(), 2);
        assert_eq!(g.num_edges(), 1);
        assert!(!g.contains_node(a));
        g.check_invariants().unwrap();
    }

    #[test]
    fn self_loop_removed_once() {
        let (mut g, a, _, _) = small();
        let knows = g.label("knows");
        g.add_edge(a, a, knows).unwrap();
        assert_eq!(g.degree(a), 2);
        let removed = g.remove_node(a).unwrap();
        assert_eq!(removed.len(), 1);
        assert_eq!(g.num_edges(), 0);
        g.check_invariants().unwrap();
    }

    #[test]
    fn slot_reuse_after_delete() {
        let (mut g, a, _, _) = small();
        g.remove_node(a).unwrap();
        let person = g.try_label("Person").unwrap();
        let d = g.add_node(person);
        assert_eq!(d, a, "freed slot should be reused");
        assert!(g.contains_node(d));
        g.check_invariants().unwrap();
    }

    #[test]
    fn relabel_node_updates_index_and_sigs() {
        let (mut g, a, b, _) = small();
        let knows = g.label("knows");
        g.add_edge(a, b, knows).unwrap();
        let robot = g.label("Robot");
        let person = g.try_label("Person").unwrap();
        let old = g.set_node_label(b, robot).unwrap();
        assert_eq!(old, person);
        assert_eq!(g.nodes_with_label(robot), &[b]);
        assert!(!g.nodes_with_label(person).contains(&b));
        g.check_invariants().unwrap();
    }

    #[test]
    fn relabel_edge_updates_counts_and_sigs() {
        let (mut g, a, b, _) = small();
        let knows = g.label("knows");
        let hates = g.label("hates");
        let e = g.add_edge(a, b, knows).unwrap();
        g.set_edge_label(e, hates).unwrap();
        assert_eq!(g.count_edges_with_label(knows), 0);
        assert_eq!(g.count_edges_with_label(hates), 1);
        assert!(g.has_edge_labeled(a, b, hates));
        g.check_invariants().unwrap();
    }

    #[test]
    fn attrs_sorted_and_overwritable() {
        let (mut g, a, _, _) = small();
        let name = g.attr_key("name");
        let age = g.attr_key("age");
        assert_eq!(g.set_attr(a, age, Value::Int(30)).unwrap(), None);
        assert_eq!(g.set_attr(a, name, Value::from("Ann")).unwrap(), None);
        assert_eq!(
            g.set_attr(a, age, Value::Int(31)).unwrap(),
            Some(Value::Int(30))
        );
        assert_eq!(g.attr(a, age), Some(&Value::Int(31)));
        assert_eq!(g.attrs(a).len(), 2);
        assert_eq!(g.remove_attr(a, name).unwrap(), Some(Value::from("Ann")));
        assert_eq!(g.remove_attr(a, name).unwrap(), None);
        g.check_invariants().unwrap();
    }

    #[test]
    fn attr_on_dead_node_errors() {
        let (mut g, a, _, _) = small();
        let k = g.attr_key("x");
        g.remove_node(a).unwrap();
        assert!(g.set_attr(a, k, Value::Int(1)).is_err());
        assert_eq!(g.attr(a, k), None);
    }

    #[test]
    fn merge_rewires_edges_and_copies_attrs() {
        let mut g = Graph::new();
        let person = g.label("Person");
        let city = g.label("City");
        let lives = g.label("livesIn");
        let keep = g.add_node(person);
        let dup = g.add_node(person);
        let c1 = g.add_node(city);
        let c2 = g.add_node(city);
        g.add_edge(keep, c1, lives).unwrap();
        g.add_edge(dup, c2, lives).unwrap();
        let name = g.attr_key("name");
        let email = g.attr_key("email");
        g.set_attr(keep, name, Value::from("Ann")).unwrap();
        g.set_attr(dup, name, Value::from("Anne")).unwrap();
        g.set_attr(dup, email, Value::from("a@x.com")).unwrap();

        let out = g.merge_nodes(keep, dup, true).unwrap();
        assert!(!g.contains_node(dup));
        assert_eq!(g.num_nodes(), 3);
        assert!(g.has_edge_labeled(keep, c2, lives));
        // keep's own name wins; email copied.
        assert_eq!(g.attr(keep, name), Some(&Value::from("Ann")));
        assert_eq!(g.attr(keep, email), Some(&Value::from("a@x.com")));
        assert_eq!(out.rewired.len(), 1);
        assert_eq!(out.copied_attrs, vec![email]);
        g.check_invariants().unwrap();
    }

    #[test]
    fn merge_dedups_parallel_edges() {
        let mut g = Graph::new();
        let person = g.label("Person");
        let city = g.label("City");
        let lives = g.label("livesIn");
        let keep = g.add_node(person);
        let dup = g.add_node(person);
        let c = g.add_node(city);
        g.add_edge(keep, c, lives).unwrap();
        g.add_edge(dup, c, lives).unwrap();
        let out = g.merge_nodes(keep, dup, true).unwrap();
        assert_eq!(out.dropped.len(), 1);
        assert_eq!(g.edges_between(keep, c).count(), 1);
        g.check_invariants().unwrap();

        // Without dedup, parallel edges survive.
        let dup2 = g.add_node(person);
        g.add_edge(dup2, c, lives).unwrap();
        let out2 = g.merge_nodes(keep, dup2, false).unwrap();
        assert_eq!(out2.rewired.len(), 1);
        assert_eq!(g.edges_between(keep, c).count(), 2);
        g.check_invariants().unwrap();
    }

    #[test]
    fn merge_collapses_inter_edges_to_loops() {
        let mut g = Graph::new();
        let p = g.label("P");
        let r = g.label("r");
        let keep = g.add_node(p);
        let dup = g.add_node(p);
        g.add_edge(keep, dup, r).unwrap();
        g.merge_nodes(keep, dup, false).unwrap();
        assert!(g.has_edge_labeled(keep, keep, r));
        g.check_invariants().unwrap();
    }

    #[test]
    fn merge_self_is_error() {
        let (mut g, a, _, _) = small();
        assert_eq!(
            g.merge_nodes(a, a, true).unwrap_err(),
            GraphError::SelfMerge(a)
        );
    }

    #[test]
    fn signature_prunes_correctly() {
        let (mut g, a, b, c) = small();
        let knows = g.label("knows");
        let lives = g.label("livesIn");
        g.add_edge(a, b, knows).unwrap();
        g.add_edge(a, c, lives).unwrap();
        let person = g.try_label("Person").unwrap();
        let city = g.try_label("City").unwrap();
        let need_knows = sig_bit(Direction::Out, knows, person);
        let need_lives = sig_bit(Direction::Out, lives, city);
        let sig = g.signature(a);
        assert_eq!(sig & need_knows, need_knows);
        assert_eq!(sig & need_lives, need_lives);
        // b has an incoming knows from a Person.
        let need_in = sig_bit(Direction::In, knows, person);
        assert_eq!(g.signature(b) & need_in, need_in);
    }

    #[test]
    fn version_bumps_on_mutation() {
        let (mut g, a, b, _) = small();
        let v0 = g.version();
        let knows = g.label("knows");
        g.add_edge(a, b, knows).unwrap();
        assert!(g.version() > v0);
    }

    #[test]
    fn attr_value_index_tracks_mutations() {
        let (mut g, a, b, _) = small();
        let ssn = g.attr_key("ssn");
        g.set_attr(a, ssn, Value::Int(7)).unwrap();
        g.set_attr(b, ssn, Value::Int(7)).unwrap();
        let mut hits = g.nodes_with_attr(ssn, &Value::Int(7));
        hits.sort_unstable();
        assert_eq!(hits, vec![a, b]);
        assert_eq!(g.count_nodes_with_attr(ssn, &Value::Int(7)), 2);

        // Overwrite moves the node between buckets.
        g.set_attr(b, ssn, Value::Int(8)).unwrap();
        assert_eq!(g.nodes_with_attr(ssn, &Value::Int(7)), vec![a]);
        assert_eq!(g.nodes_with_attr(ssn, &Value::Int(8)), vec![b]);

        // Removal and node deletion clean up.
        g.remove_attr(b, ssn).unwrap();
        assert!(g.nodes_with_attr(ssn, &Value::Int(8)).is_empty());
        g.remove_node(a).unwrap();
        assert!(g.nodes_with_attr(ssn, &Value::Int(7)).is_empty());
        g.check_invariants().unwrap();
    }

    #[test]
    fn attr_index_survives_merge() {
        let (mut g, a, b, _) = small();
        let k = g.attr_key("email");
        g.set_attr(b, k, Value::from("x@y.z")).unwrap();
        g.merge_nodes(a, b, true).unwrap();
        assert_eq!(g.nodes_with_attr(k, &Value::from("x@y.z")), vec![a]);
        g.check_invariants().unwrap();
    }

    #[test]
    fn find_edge_and_edges_between() {
        let (mut g, a, b, _) = small();
        let knows = g.label("knows");
        let likes = g.label("likes");
        let e1 = g.add_edge(a, b, knows).unwrap();
        let e2 = g.add_edge(a, b, likes).unwrap();
        assert_eq!(g.find_edge(a, b, knows), Some(e1));
        assert_eq!(g.find_edge(a, b, likes), Some(e2));
        assert_eq!(g.find_edge(b, a, knows), None);
        let between: Vec<_> = g.edges_between(a, b).collect();
        assert_eq!(between.len(), 2);
    }
}
