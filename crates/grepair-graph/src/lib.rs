//! # grepair-graph
//!
//! Property-graph substrate for the `grepair` workspace — the storage layer
//! under the Rule-Based Graph Repairing (GRR) engine (Cheng, Chen, Yuan,
//! Wang; ICDE 2018 reconstruction).
//!
//! A [`Graph`] is a directed, labelled multigraph whose nodes carry a typed
//! label plus a small attribute map, and whose edges carry a relation
//! label. The storage is mutation-oriented: every one of the paper's seven
//! repair operations (insert/delete node, insert/delete edge, update node
//! label/attr, update edge label, merge nodes) is a first-class method with
//! stable-id semantics, so repair engines can hold element ids across
//! mutations.
//!
//! ## Quick tour
//!
//! ```
//! use grepair_graph::{Graph, Value};
//!
//! let mut g = Graph::new();
//! let ann = g.add_node_named("Person");
//! let name = g.attr_key("name");
//! g.set_attr(ann, name, Value::from("Ann")).unwrap();
//! let oslo = g.add_node_named("City");
//! g.add_edge_named(ann, oslo, "livesIn").unwrap();
//!
//! assert_eq!(g.num_nodes(), 2);
//! let lives = g.try_label("livesIn").unwrap();
//! assert!(g.has_edge_labeled(ann, oslo, lives));
//! ```
//!
//! ## Module map
//!
//! - [`graph`] — the storage itself, label indexes, neighbor signatures.
//! - [`ids`] — `u32` newtype identifiers.
//! - [`value`] — dynamic attribute values.
//! - [`interner`] — label/attr-key interning.
//! - [`edit_distance`] — graph edit distance (cost table + exact small-graph
//!   solver + lower bound), backing the paper's "best repair" selection.
//! - [`io`] — portable JSON / plain-text documents.
//! - [`dump`] — exact slot-level dumps (tombstones and free lists
//!   included), the document form behind durable-store snapshots.
//! - [`snapshot`] — frozen, compacted CSR snapshots for scan-heavy
//!   matching phases.
//! - [`stats`] — dataset statistics (T1 table).

#![forbid(unsafe_code)]

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod dump;
pub mod edit_distance;
pub mod error;
pub mod graph;
pub mod ids;
pub mod interner;
pub mod io;
pub mod snapshot;
pub mod stats;
mod value;

pub use dump::SlotDump;
pub use edit_distance::{ged_lower_bound, graph_edit_distance, EditCosts};
pub use error::{GraphError, Result};
pub use graph::{sig_bit, EdgeRef, Graph, MergeOutcome};
pub use ids::{AttrKeyId, Direction, EdgeId, LabelId, NodeId};
pub use interner::Interner;
pub use io::{EdgeDoc, GraphDoc, NodeDoc};
pub use snapshot::{CsrEntry, FrozenGraph};
pub use stats::{CardinalityStats, GraphStats};
pub use value::Value;
