//! Summary statistics over a graph, used for the T1 dataset table and for
//! selectivity sanity checks in the experiment harness.

use crate::graph::Graph;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Aggregate statistics of a graph.
#[derive(Clone, Debug, Serialize, Deserialize, PartialEq)]
pub struct GraphStats {
    /// Live node count.
    pub nodes: usize,
    /// Live edge count.
    pub edges: usize,
    /// Distinct node labels in use.
    pub node_labels: usize,
    /// Distinct edge labels in use.
    pub edge_labels: usize,
    /// Mean total degree.
    pub avg_degree: f64,
    /// Maximum total degree.
    pub max_degree: usize,
    /// Degree histogram with power-of-two buckets: `hist[i]` counts nodes
    /// with degree in `[2^i, 2^(i+1))`; `hist[0]` covers degrees 0 and 1.
    pub degree_hist: Vec<usize>,
}

impl GraphStats {
    /// Compute statistics in one pass.
    pub fn compute(g: &Graph) -> Self {
        let mut node_labels = rustc_hash::FxHashSet::default();
        let mut edge_labels = rustc_hash::FxHashSet::default();
        let mut max_degree = 0usize;
        let mut total_degree = 0usize;
        let mut degree_hist: Vec<usize> = Vec::new();
        for n in g.nodes() {
            node_labels.insert(g.node_label(n).unwrap());
            let d = g.degree(n);
            total_degree += d;
            max_degree = max_degree.max(d);
            let bucket = if d <= 1 {
                0
            } else {
                (usize::BITS - d.leading_zeros()) as usize - 1
            };
            if degree_hist.len() <= bucket {
                degree_hist.resize(bucket + 1, 0);
            }
            degree_hist[bucket] += 1;
        }
        for e in g.edges() {
            edge_labels.insert(g.edge(e).unwrap().label);
        }
        let nodes = g.num_nodes();
        GraphStats {
            nodes,
            edges: g.num_edges(),
            node_labels: node_labels.len(),
            edge_labels: edge_labels.len(),
            avg_degree: if nodes == 0 {
                0.0
            } else {
                total_degree as f64 / nodes as f64
            },
            max_degree,
            degree_hist,
        }
    }
}

impl fmt::Display for GraphStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "|V|={} |E|={} node-labels={} edge-labels={} avg-deg={:.2} max-deg={}",
            self.nodes, self.edges, self.node_labels, self.edge_labels, self.avg_degree, self.max_degree
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_graph_stats() {
        let s = GraphStats::compute(&Graph::new());
        assert_eq!(s.nodes, 0);
        assert_eq!(s.edges, 0);
        assert_eq!(s.avg_degree, 0.0);
        assert!(s.degree_hist.is_empty());
    }

    #[test]
    fn small_graph_stats() {
        let mut g = Graph::new();
        let a = g.add_node_named("P");
        let b = g.add_node_named("P");
        let c = g.add_node_named("C");
        g.add_edge_named(a, b, "knows").unwrap();
        g.add_edge_named(a, c, "lives").unwrap();
        let s = GraphStats::compute(&g);
        assert_eq!(s.nodes, 3);
        assert_eq!(s.edges, 2);
        assert_eq!(s.node_labels, 2);
        assert_eq!(s.edge_labels, 2);
        assert_eq!(s.max_degree, 2);
        assert!((s.avg_degree - 4.0 / 3.0).abs() < 1e-9);
        // a has degree 2 → bucket 1; b, c have degree 1 → bucket 0.
        assert_eq!(s.degree_hist, vec![2, 1]);
        assert!(s.to_string().contains("|V|=3"));
    }

    #[test]
    fn histogram_buckets_powers_of_two() {
        let mut g = Graph::new();
        let hub = g.add_node_named("H");
        for _ in 0..5 {
            let n = g.add_node_named("L");
            g.add_edge_named(hub, n, "r").unwrap();
        }
        let s = GraphStats::compute(&g);
        // hub degree 5 → bucket 2 ([4,8)); leaves degree 1 → bucket 0.
        assert_eq!(s.degree_hist[0], 5);
        assert_eq!(s.degree_hist[2], 1);
    }
}
