//! Summary statistics over a graph, used for the T1 dataset table, for
//! selectivity sanity checks in the experiment harness, and — via
//! [`CardinalityStats`] — for the matcher's cost-based join planner.

use crate::graph::Graph;
use crate::ids::{AttrKeyId, Direction, LabelId};
use crate::value::Value;
use rustc_hash::FxHashMap;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// Aggregate statistics of a graph.
#[derive(Clone, Debug, Serialize, Deserialize, PartialEq)]
pub struct GraphStats {
    /// Live node count.
    pub nodes: usize,
    /// Live edge count.
    pub edges: usize,
    /// Distinct node labels in use.
    pub node_labels: usize,
    /// Distinct edge labels in use.
    pub edge_labels: usize,
    /// Mean total degree.
    pub avg_degree: f64,
    /// Maximum total degree.
    pub max_degree: usize,
    /// Degree histogram with power-of-two buckets: `hist[i]` counts nodes
    /// with degree in `[2^i, 2^(i+1))`; `hist[0]` covers degrees 0 and 1.
    pub degree_hist: Vec<usize>,
}

impl GraphStats {
    /// Compute statistics in one pass.
    pub fn compute(g: &Graph) -> Self {
        let mut node_labels = rustc_hash::FxHashSet::default();
        let mut edge_labels = rustc_hash::FxHashSet::default();
        let mut max_degree = 0usize;
        let mut total_degree = 0usize;
        let mut degree_hist: Vec<usize> = Vec::new();
        for n in g.nodes() {
            node_labels.insert(g.node_label(n).unwrap());
            let d = g.degree(n);
            total_degree += d;
            max_degree = max_degree.max(d);
            let bucket = if d <= 1 {
                0
            } else {
                (usize::BITS - d.leading_zeros()) as usize - 1
            };
            if degree_hist.len() <= bucket {
                degree_hist.resize(bucket + 1, 0);
            }
            degree_hist[bucket] += 1;
        }
        for e in g.edges() {
            edge_labels.insert(g.edge(e).unwrap().label);
        }
        let nodes = g.num_nodes();
        GraphStats {
            nodes,
            edges: g.num_edges(),
            node_labels: node_labels.len(),
            edge_labels: edge_labels.len(),
            avg_degree: if nodes == 0 {
                0.0
            } else {
                total_degree as f64 / nodes as f64
            },
            max_degree,
            degree_hist,
        }
    }
}

impl fmt::Display for GraphStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "|V|={} |E|={} node-labels={} edge-labels={} avg-deg={:.2} max-deg={}",
            self.nodes, self.edges, self.node_labels, self.edge_labels, self.avg_degree, self.max_degree
        )
    }
}

/// Order-preserving `u64` encoding of an `f64` (IEEE-754 total order):
/// flip the sign bit for non-negatives, all bits for negatives. Strictly
/// monotone, so a `BTreeMap` keyed on it iterates numeric values in
/// ascending order, and exactly invertible via [`num_order_decode`].
#[inline]
fn num_order_encode(x: f64) -> u64 {
    let bits = x.to_bits();
    if bits >> 63 == 1 {
        !bits
    } else {
        bits | (1 << 63)
    }
}

#[inline]
fn num_order_decode(e: u64) -> f64 {
    f64::from_bits(if e >> 63 == 1 { e & !(1 << 63) } else { !e })
}

/// Tag index into the per-key value-kind counters (`Value::Str` = 0,
/// `Int` = 1, `Float` = 2, `Bool` = 3).
#[inline]
pub(crate) fn kind_index(v: &Value) -> usize {
    match v {
        Value::Str(_) => 0,
        Value::Int(_) => 1,
        Value::Float(_) => 2,
        Value::Bool(_) => 3,
    }
}

/// Per-attr-key summary of one indexed attribute bucket population.
///
/// Deliberately **vocabulary-sized**: only counters and the encoded
/// min/max live here, never a per-value distribution — snapshots are
/// cloned into planners on every refresh, so they must stay cheap even
/// when an attribute is near-unique across millions of nodes. The
/// distribution needed to keep min/max exact under removal lives in
/// [`StatsMaintenance`], which stays on the graph and is never cloned.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
struct AttrStats {
    /// Distinct values in the value index.
    distinct: u64,
    /// Total entries (node × key pairs) in the value index.
    entries: u64,
    /// Entries per value kind, indexed by [`kind_index`].
    kinds: [u64; 4],
    /// Order-encoded ([`num_order_encode`]) min/max over the numeric
    /// entries (`Int`/`Float` coerced to `f64`); `None` without numeric
    /// entries. Stored encoded so `PartialEq` stays exact even for NaN
    /// payloads.
    range: Option<(u64, u64)>,
}

/// Cardinality statistics backing the matcher's cost-based join planner.
///
/// Everything a selectivity estimate needs, stamped with
/// [`Graph::version`] so callers can detect staleness:
///
/// - **triple counts** — live edges per `(edge-label, src-label,
///   dst-label)`, plus the `(edge, src, *)` / `(edge, *, dst)` / `(edge,
///   *, *)` marginals, which turn into extension fan-out estimates
///   (`triples / |src-label|`);
/// - **attribute buckets** — per attr key, distinct values and total
///   entries in the value index; `entries / distinct` estimates the
///   candidate set of an equality join;
/// - **range summaries** — per attr key, value-kind counts and the full
///   numeric value distribution (min/max via its extremes), feeding
///   [`CardinalityStats::range_selectivity`]'s linear-interpolation
///   estimate for `<` / `>=`-style constraints;
/// - **degree summaries** — total out/in degree per node label, the
///   fallback fan-out for pattern edges with no label requirement.
///
/// Two ways to obtain one: [`CardinalityStats::compute`] scans the graph
/// in one `O(V + E)` pass, and [`Graph::maintain_stats`] keeps a copy
/// up to date *on the mutation path* — every `add_node` / `add_edge` /
/// `remove_*` / `set_*` / `merge_nodes` applies an `O(1)`-ish delta (per
/// touched element), so reading fresh statistics is free. The two are
/// exactly equal after any mutation sequence (`compute` is the
/// differential oracle; [`Graph::check_invariants`] asserts it).
///
/// Estimates only steer *plan order*; they are never consulted for match
/// correctness, so stale statistics degrade performance, not results.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct CardinalityStats {
    /// [`Graph::version`] at compute time.
    pub version: u64,
    /// Live node count at compute time.
    pub nodes: u64,
    /// Live edge count at compute time.
    pub edges: u64,
    /// Node label → live node count.
    label_nodes: FxHashMap<u32, u64>,
    /// (edge label, src label, dst label) → live edge count.
    triples: FxHashMap<(u32, u32, u32), u64>,
    /// (edge label, src label) → live edge count (dst marginalized).
    edge_src: FxHashMap<(u32, u32), u64>,
    /// (edge label, dst label) → live edge count (src marginalized).
    edge_dst: FxHashMap<(u32, u32), u64>,
    /// Edge label → live edge count.
    edge_total: FxHashMap<u32, u64>,
    /// Node label → total out-degree of its nodes.
    out_deg: FxHashMap<u32, u64>,
    /// Node label → total in-degree of its nodes.
    in_deg: FxHashMap<u32, u64>,
    /// Attr key → value-index population summary.
    attrs: FxHashMap<u32, AttrStats>,
}

/// Add a signed delta to a counter map, removing the entry when it hits
/// zero — maintained maps stay structurally identical to freshly
/// computed ones (which never hold zero entries), so `==` is the
/// differential check.
fn bump<K: std::hash::Hash + Eq>(map: &mut FxHashMap<K, u64>, key: K, d: i64) {
    use std::collections::hash_map::Entry;
    match map.entry(key) {
        Entry::Occupied(mut e) => {
            let v = *e.get() as i64 + d;
            debug_assert!(v >= 0, "stats counter went negative");
            if v <= 0 {
                e.remove();
            } else {
                *e.get_mut() = v as u64;
            }
        }
        Entry::Vacant(e) => {
            debug_assert!(d >= 0, "decrement of absent stats counter");
            if d > 0 {
                e.insert(d as u64);
            }
        }
    }
}

impl CardinalityStats {
    /// Compute statistics in one pass over live nodes and edges.
    pub fn compute(g: &Graph) -> Self {
        let mut s = CardinalityStats {
            version: g.version(),
            nodes: g.num_nodes() as u64,
            edges: g.num_edges() as u64,
            ..CardinalityStats::default()
        };
        for (k, (distinct, _)) in g.attr_bucket_stats() {
            s.attrs.entry(k.0).or_default().distinct = distinct;
        }
        for n in g.nodes() {
            let l = g.node_label(n).expect("live node has a label");
            *s.label_nodes.entry(l.0).or_insert(0) += 1;
            for (k, v) in g.attrs(n) {
                let a = s.attrs.entry(k.0).or_default();
                a.entries += 1;
                a.kinds[kind_index(v)] += 1;
                if let Some(x) = v.as_number() {
                    let e = num_order_encode(x);
                    a.range = Some(match a.range {
                        None => (e, e),
                        Some((lo, hi)) => (lo.min(e), hi.max(e)),
                    });
                }
            }
        }
        for e in g.edges() {
            let er = g.edge(e).expect("live edge");
            let sl = g.node_label(er.src).expect("live endpoint");
            let dl = g.node_label(er.dst).expect("live endpoint");
            let el = er.label;
            *s.triples.entry((el.0, sl.0, dl.0)).or_insert(0) += 1;
            *s.edge_src.entry((el.0, sl.0)).or_insert(0) += 1;
            *s.edge_dst.entry((el.0, dl.0)).or_insert(0) += 1;
            *s.edge_total.entry(el.0).or_insert(0) += 1;
            *s.out_deg.entry(sl.0).or_insert(0) += 1;
            *s.in_deg.entry(dl.0).or_insert(0) += 1;
        }
        s
    }

    // ---- write-path deltas (driven by `Graph` in maintained mode) ------

    /// A node with `label` was added (`d = 1`) or removed (`d = -1`).
    pub(crate) fn node_delta(&mut self, label: LabelId, d: i64) {
        self.nodes = (self.nodes as i64 + d) as u64;
        bump(&mut self.label_nodes, label.0, d);
    }

    /// A live node moved from label `from` to label `to` (its incident
    /// edges are reported separately via [`CardinalityStats::edge_delta`]).
    pub(crate) fn node_relabel(&mut self, from: LabelId, to: LabelId) {
        bump(&mut self.label_nodes, from.0, -1);
        bump(&mut self.label_nodes, to.0, 1);
    }

    /// An edge `src-label --edge--> dst-label` appeared (`d = 1`) or
    /// disappeared (`d = -1`) — also the building block for relabels
    /// (one `-1` for the old triple, one `+1` for the new).
    pub(crate) fn edge_delta(&mut self, edge: LabelId, src: LabelId, dst: LabelId, d: i64) {
        self.edges = (self.edges as i64 + d) as u64;
        bump(&mut self.triples, (edge.0, src.0, dst.0), d);
        bump(&mut self.edge_src, (edge.0, src.0), d);
        bump(&mut self.edge_dst, (edge.0, dst.0), d);
        bump(&mut self.edge_total, edge.0, d);
        bump(&mut self.out_deg, src.0, d);
        bump(&mut self.in_deg, dst.0, d);
    }

    /// A `(key, value)` entry joined the value index; `kind` is the
    /// value's [`kind_index`] (passed pre-computed so the caller can
    /// move the value into the index without cloning). `new_bucket`
    /// marks the first entry of a previously absent value. Numeric
    /// min/max is *not* updated here — [`StatsMaintenance`] owns the
    /// distribution and pushes fresh extremes via
    /// [`CardinalityStats::set_numeric_range`].
    pub(crate) fn attr_insert(&mut self, key: AttrKeyId, kind: usize, new_bucket: bool) {
        let a = self.attrs.entry(key.0).or_default();
        a.entries += 1;
        a.distinct += new_bucket as u64;
        a.kinds[kind] += 1;
    }

    /// A `(key, value)` entry left the value index. `emptied_bucket`
    /// marks the last entry of its value.
    pub(crate) fn attr_remove(&mut self, key: AttrKeyId, value: &Value, emptied_bucket: bool) {
        let std::collections::hash_map::Entry::Occupied(mut e) = self.attrs.entry(key.0)
        else {
            debug_assert!(false, "attr_remove for untracked key");
            return;
        };
        let a = e.get_mut();
        a.entries -= 1;
        a.distinct -= emptied_bucket as u64;
        a.kinds[kind_index(value)] -= 1;
        if a.entries == 0 {
            e.remove();
        }
    }

    /// Install the current encoded numeric min/max of `key` (pushed by
    /// [`StatsMaintenance`] after every numeric entry change).
    pub(crate) fn set_numeric_range(&mut self, key: AttrKeyId, range: Option<(u64, u64)>) {
        if let Some(a) = self.attrs.get_mut(&key.0) {
            a.range = range;
        } else {
            debug_assert!(range.is_none(), "numeric range for untracked key");
        }
    }

    /// Live nodes carrying `label` (`None` = all nodes).
    pub fn label_count(&self, label: Option<LabelId>) -> u64 {
        match label {
            None => self.nodes,
            Some(l) => self.label_nodes.get(&l.0).copied().unwrap_or(0),
        }
    }

    /// Live edges matching the (possibly partially specified) triple.
    pub fn triple_count(
        &self,
        edge: LabelId,
        src: Option<LabelId>,
        dst: Option<LabelId>,
    ) -> u64 {
        match (src, dst) {
            (Some(s), Some(d)) => self.triples.get(&(edge.0, s.0, d.0)).copied().unwrap_or(0),
            (Some(s), None) => self.edge_src.get(&(edge.0, s.0)).copied().unwrap_or(0),
            (None, Some(d)) => self.edge_dst.get(&(edge.0, d.0)).copied().unwrap_or(0),
            (None, None) => self.edge_total.get(&edge.0).copied().unwrap_or(0),
        }
    }

    /// Expected number of `dir`-oriented neighbors a node with label
    /// `from` contributes along an edge with label `edge` toward a node
    /// with label `to` — the planner's extension fan-out. `None` labels
    /// marginalize; an unlabelled edge falls back to the label's average
    /// degree in that direction.
    pub fn extension_fanout(
        &self,
        edge: Option<LabelId>,
        from: Option<LabelId>,
        to: Option<LabelId>,
        dir: Direction,
    ) -> f64 {
        let denom = self.label_count(from).max(1) as f64;
        let numer = match edge {
            Some(el) => match dir {
                Direction::Out => self.triple_count(el, from, to),
                Direction::In => self.triple_count(el, to, from),
            },
            None => {
                let deg = match (dir, from) {
                    (Direction::Out, Some(l)) => {
                        self.out_deg.get(&l.0).copied().unwrap_or(0)
                    }
                    (Direction::In, Some(l)) => self.in_deg.get(&l.0).copied().unwrap_or(0),
                    (_, None) => self.edges,
                };
                return deg as f64 / denom;
            }
        };
        numer as f64 / denom
    }

    /// Expected size of one equality bucket of attribute `key`
    /// (`total entries / distinct values`); 0 when the key is unindexed.
    pub fn avg_bucket(&self, key: AttrKeyId) -> f64 {
        match self.attrs.get(&key.0) {
            Some(a) if a.distinct > 0 => a.entries as f64 / a.distinct as f64,
            _ => 0.0,
        }
    }

    /// Entries of attribute `key` per value kind, in
    /// `[str, int, float, bool]` order; `None` when the key is unindexed.
    pub fn value_kinds(&self, key: AttrKeyId) -> Option<[u64; 4]> {
        self.attrs.get(&key.0).map(|a| a.kinds)
    }

    /// Observed numeric min/max of attribute `key` (`Int`/`Float`
    /// coerced to `f64`); `None` without numeric entries.
    pub fn numeric_range(&self, key: AttrKeyId) -> Option<(f64, f64)> {
        let (lo, hi) = self.attrs.get(&key.0)?.range?;
        Some((num_order_decode(lo), num_order_decode(hi)))
    }

    /// Estimated fraction of `key`'s indexed entries satisfying a
    /// numeric range predicate against `bound`: `less = true` for
    /// `< / <=`, `false` for `> / >=`. Linear interpolation between the
    /// observed min and max (equi-width assumption), scaled by the
    /// fraction of entries that are numeric at all (non-numeric entries
    /// can never satisfy a numeric comparison). `None` when the key has
    /// no numeric entries — the caller keeps its label-count estimate.
    pub fn range_selectivity(&self, key: AttrKeyId, less: bool, bound: f64) -> Option<f64> {
        let a = self.attrs.get(&key.0)?;
        let (min, max) = self.numeric_range(key)?;
        let numeric: u64 = a.kinds[1] + a.kinds[2];
        if numeric == 0 || a.entries == 0 || !bound.is_finite() {
            return None;
        }
        let below = if max > min {
            ((bound - min) / (max - min)).clamp(0.0, 1.0)
        } else if bound >= min {
            1.0
        } else {
            0.0
        };
        let frac = if less { below } else { 1.0 - below };
        Some(frac * numeric as f64 / a.entries as f64)
    }
}

/// The graph-side machinery behind [`Graph::maintain_stats`]: the
/// maintained [`CardinalityStats`] snapshot plus its support structure —
/// a per-key counted distribution of order-encoded numeric attribute
/// values, which is what makes min/max exact under *removal* (dropping
/// the current minimum just exposes the next map key).
///
/// The distribution is `O(distinct numeric values)` — the same order as
/// the graph's own value index — but it stays here on the graph and is
/// never part of the snapshot planners clone; the snapshot only carries
/// the current extremes.
#[derive(Clone, Debug)]
pub(crate) struct StatsMaintenance {
    /// The maintained snapshot ([`Graph::maintained_stats`] hands out a
    /// borrow of this).
    pub(crate) stats: CardinalityStats,
    /// Attr key → order-encoded numeric value → live entry count.
    numeric: FxHashMap<u32, BTreeMap<u64, u64>>,
}

impl StatsMaintenance {
    /// One-pass build over the current graph (stats + numeric support).
    pub(crate) fn build(g: &Graph) -> Self {
        let mut numeric: FxHashMap<u32, BTreeMap<u64, u64>> = FxHashMap::default();
        for n in g.nodes() {
            for (k, v) in g.attrs(n) {
                if let Some(x) = v.as_number() {
                    *numeric
                        .entry(k.0)
                        .or_default()
                        .entry(num_order_encode(x))
                        .or_insert(0) += 1;
                }
            }
        }
        Self {
            stats: CardinalityStats::compute(g),
            numeric,
        }
    }

    fn extremes(m: &BTreeMap<u64, u64>) -> Option<(u64, u64)> {
        Some((*m.keys().next()?, *m.keys().next_back()?))
    }

    /// A `(key, value)` entry joined the value index; `kind`/`num` are
    /// the value's [`kind_index`] / [`Value::as_number`], pre-computed
    /// so the caller can move the value into the index without cloning.
    pub(crate) fn attr_insert(
        &mut self,
        key: AttrKeyId,
        kind: usize,
        num: Option<f64>,
        new_bucket: bool,
    ) {
        self.stats.attr_insert(key, kind, new_bucket);
        if let Some(x) = num {
            let m = self.numeric.entry(key.0).or_default();
            *m.entry(num_order_encode(x)).or_insert(0) += 1;
            let range = Self::extremes(m);
            self.stats.set_numeric_range(key, range);
        }
    }

    /// A `(key, value)` entry left the value index.
    pub(crate) fn attr_remove(&mut self, key: AttrKeyId, value: &Value, emptied_bucket: bool) {
        self.stats.attr_remove(key, value, emptied_bucket);
        if let Some(x) = value.as_number() {
            let std::collections::hash_map::Entry::Occupied(mut e) =
                self.numeric.entry(key.0)
            else {
                debug_assert!(false, "numeric removal for untracked key");
                return;
            };
            let m = e.get_mut();
            let enc = num_order_encode(x);
            if let Some(c) = m.get_mut(&enc) {
                *c -= 1;
                if *c == 0 {
                    m.remove(&enc);
                }
            }
            let range = Self::extremes(m);
            if range.is_none() {
                e.remove();
            }
            self.stats.set_numeric_range(key, range);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_graph_stats() {
        let s = GraphStats::compute(&Graph::new());
        assert_eq!(s.nodes, 0);
        assert_eq!(s.edges, 0);
        assert_eq!(s.avg_degree, 0.0);
        assert!(s.degree_hist.is_empty());
    }

    #[test]
    fn small_graph_stats() {
        let mut g = Graph::new();
        let a = g.add_node_named("P");
        let b = g.add_node_named("P");
        let c = g.add_node_named("C");
        g.add_edge_named(a, b, "knows").unwrap();
        g.add_edge_named(a, c, "lives").unwrap();
        let s = GraphStats::compute(&g);
        assert_eq!(s.nodes, 3);
        assert_eq!(s.edges, 2);
        assert_eq!(s.node_labels, 2);
        assert_eq!(s.edge_labels, 2);
        assert_eq!(s.max_degree, 2);
        assert!((s.avg_degree - 4.0 / 3.0).abs() < 1e-9);
        // a has degree 2 → bucket 1; b, c have degree 1 → bucket 0.
        assert_eq!(s.degree_hist, vec![2, 1]);
        assert!(s.to_string().contains("|V|=3"));
    }

    #[test]
    fn cardinality_stats_count_triples_degrees_and_buckets() {
        let mut g = Graph::new();
        let p = g.label("P");
        let c = g.label("C");
        let lives = g.label("lives");
        let knows = g.label("knows");
        let a = g.add_node(p);
        let b = g.add_node(p);
        let c1 = g.add_node(c);
        g.add_edge(a, c1, lives).unwrap();
        g.add_edge(b, c1, lives).unwrap();
        g.add_edge(a, b, knows).unwrap();
        let ssn = g.attr_key("ssn");
        g.set_attr(a, ssn, crate::Value::Int(1)).unwrap();
        g.set_attr(b, ssn, crate::Value::Int(1)).unwrap();
        g.set_attr(c1, ssn, crate::Value::Int(2)).unwrap();

        let s = CardinalityStats::compute(&g);
        assert_eq!(s.version, g.version());
        assert_eq!((s.nodes, s.edges), (3, 3));
        assert_eq!(s.label_count(Some(p)), 2);
        assert_eq!(s.label_count(None), 3);
        assert_eq!(s.triple_count(lives, Some(p), Some(c)), 2);
        assert_eq!(s.triple_count(lives, Some(p), None), 2);
        assert_eq!(s.triple_count(lives, None, Some(c)), 2);
        assert_eq!(s.triple_count(lives, None, None), 2);
        assert_eq!(s.triple_count(knows, Some(p), Some(c)), 0);
        // Out fan-out of a P along lives toward C: 2 edges / 2 P nodes.
        assert!((s.extension_fanout(Some(lives), Some(p), Some(c), Direction::Out) - 1.0).abs() < 1e-9);
        // In fan-out of a C along lives from P: 2 edges / 1 C node.
        assert!((s.extension_fanout(Some(lives), Some(c), Some(p), Direction::In) - 2.0).abs() < 1e-9);
        // Unlabelled edge falls back to average degree: P nodes have
        // 3 out-edges total over 2 nodes.
        assert!((s.extension_fanout(None, Some(p), None, Direction::Out) - 1.5).abs() < 1e-9);
        // ssn has 2 distinct values over 3 entries.
        assert!((s.avg_bucket(ssn) - 1.5).abs() < 1e-9);
        assert_eq!(s.avg_bucket(AttrKeyId(99)), 0.0);
    }

    #[test]
    fn attr_bucket_stats_track_index() {
        let mut g = Graph::new();
        let a = g.add_node_named("P");
        let b = g.add_node_named("P");
        let k = g.attr_key("k");
        g.set_attr(a, k, crate::Value::Int(1)).unwrap();
        g.set_attr(b, k, crate::Value::Int(2)).unwrap();
        assert_eq!(g.attr_bucket_stats().get(&k), Some(&(2, 2)));
        g.set_attr(b, k, crate::Value::Int(1)).unwrap();
        assert_eq!(g.attr_bucket_stats().get(&k), Some(&(1, 2)));
        g.remove_node(a).unwrap();
        g.remove_node(b).unwrap();
        assert!(g.attr_bucket_stats().is_empty());
    }

    #[test]
    fn range_stats_interpolate_and_track_kinds() {
        let mut g = Graph::new();
        let age = g.attr_key("age");
        let tag = g.attr_key("tag");
        let mut nodes = Vec::new();
        for i in 0..10 {
            let n = g.add_node_named("P");
            g.set_attr(n, age, crate::Value::Int(i)).unwrap();
            nodes.push(n);
        }
        g.set_attr(nodes[0], tag, crate::Value::from("a")).unwrap();

        let s = CardinalityStats::compute(&g);
        assert_eq!(s.value_kinds(age), Some([0, 10, 0, 0]));
        assert_eq!(s.value_kinds(tag), Some([1, 0, 0, 0]));
        assert_eq!(s.numeric_range(age), Some((0.0, 9.0)));
        assert_eq!(s.numeric_range(tag), None);
        // age < 4.5 → interpolated 50%.
        assert!((s.range_selectivity(age, true, 4.5).unwrap() - 0.5).abs() < 1e-9);
        assert!((s.range_selectivity(age, false, 4.5).unwrap() - 0.5).abs() < 1e-9);
        // Out-of-range bounds clamp.
        assert_eq!(s.range_selectivity(age, true, -1.0), Some(0.0));
        assert_eq!(s.range_selectivity(age, true, 100.0), Some(1.0));
        // Non-numeric key yields no estimate.
        assert_eq!(s.range_selectivity(tag, true, 1.0), None);
        assert_eq!(s.range_selectivity(AttrKeyId(99), true, 1.0), None);

        // Degenerate single-value distribution: all-or-nothing.
        let mut g1 = Graph::new();
        let k = g1.attr_key("k");
        let n = g1.add_node_named("P");
        g1.set_attr(n, k, crate::Value::Float(3.0)).unwrap();
        let s1 = CardinalityStats::compute(&g1);
        assert_eq!(s1.range_selectivity(k, true, 3.5), Some(1.0));
        assert_eq!(s1.range_selectivity(k, true, 2.5), Some(0.0));
    }

    #[test]
    fn maintained_stats_follow_mutations_exactly() {
        let mut g = Graph::new();
        g.maintain_stats(true);
        let p = g.label("P");
        let q = g.label("Q");
        let r = g.label("r");
        let k = g.attr_key("k");
        let differential = |g: &Graph| {
            assert_eq!(
                g.maintained_stats().unwrap(),
                &CardinalityStats::compute(g),
                "maintained stats must equal a fresh recompute"
            );
        };
        let a = g.add_node(p);
        let b = g.add_node(p);
        let c = g.add_node(q);
        differential(&g);
        let e1 = g.add_edge(a, b, r).unwrap();
        g.add_edge(b, c, r).unwrap();
        let loop_edge = g.add_edge(c, c, r).unwrap();
        differential(&g);
        g.set_attr(a, k, crate::Value::Int(1)).unwrap();
        g.set_attr(b, k, crate::Value::Int(1)).unwrap();
        g.set_attr(c, k, crate::Value::from("s")).unwrap();
        differential(&g);
        // Overwrite moves buckets; removal empties them.
        g.set_attr(b, k, crate::Value::Int(2)).unwrap();
        g.remove_attr(a, k).unwrap();
        differential(&g);
        // Relabels move triples, including the self-loop's both ends.
        g.set_node_label(c, p).unwrap();
        differential(&g);
        let s_label = g.label("s");
        g.set_edge_label(e1, s_label).unwrap();
        differential(&g);
        g.remove_edge(loop_edge).unwrap();
        g.remove_node(b).unwrap();
        differential(&g);
        // Tombstone reuse.
        let d = g.add_node(q);
        assert_eq!(d, b, "slot reuse expected");
        differential(&g);
        g.merge_nodes(a, d, true).unwrap();
        differential(&g);
        assert_eq!(g.maintained_stats().unwrap().version, g.version());
        g.check_invariants().unwrap();
        // Switching off drops the snapshot.
        g.maintain_stats(false);
        assert!(g.maintained_stats().is_none());
    }

    #[test]
    fn histogram_buckets_powers_of_two() {
        let mut g = Graph::new();
        let hub = g.add_node_named("H");
        for _ in 0..5 {
            let n = g.add_node_named("L");
            g.add_edge_named(hub, n, "r").unwrap();
        }
        let s = GraphStats::compute(&g);
        // hub degree 5 → bucket 2 ([4,8)); leaves degree 1 → bucket 0.
        assert_eq!(s.degree_hist[0], 5);
        assert_eq!(s.degree_hist[2], 1);
    }
}
