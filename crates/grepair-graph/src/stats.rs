//! Summary statistics over a graph, used for the T1 dataset table, for
//! selectivity sanity checks in the experiment harness, and — via
//! [`CardinalityStats`] — for the matcher's cost-based join planner.

use crate::graph::Graph;
use crate::ids::{AttrKeyId, Direction, LabelId};
use rustc_hash::FxHashMap;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Aggregate statistics of a graph.
#[derive(Clone, Debug, Serialize, Deserialize, PartialEq)]
pub struct GraphStats {
    /// Live node count.
    pub nodes: usize,
    /// Live edge count.
    pub edges: usize,
    /// Distinct node labels in use.
    pub node_labels: usize,
    /// Distinct edge labels in use.
    pub edge_labels: usize,
    /// Mean total degree.
    pub avg_degree: f64,
    /// Maximum total degree.
    pub max_degree: usize,
    /// Degree histogram with power-of-two buckets: `hist[i]` counts nodes
    /// with degree in `[2^i, 2^(i+1))`; `hist[0]` covers degrees 0 and 1.
    pub degree_hist: Vec<usize>,
}

impl GraphStats {
    /// Compute statistics in one pass.
    pub fn compute(g: &Graph) -> Self {
        let mut node_labels = rustc_hash::FxHashSet::default();
        let mut edge_labels = rustc_hash::FxHashSet::default();
        let mut max_degree = 0usize;
        let mut total_degree = 0usize;
        let mut degree_hist: Vec<usize> = Vec::new();
        for n in g.nodes() {
            node_labels.insert(g.node_label(n).unwrap());
            let d = g.degree(n);
            total_degree += d;
            max_degree = max_degree.max(d);
            let bucket = if d <= 1 {
                0
            } else {
                (usize::BITS - d.leading_zeros()) as usize - 1
            };
            if degree_hist.len() <= bucket {
                degree_hist.resize(bucket + 1, 0);
            }
            degree_hist[bucket] += 1;
        }
        for e in g.edges() {
            edge_labels.insert(g.edge(e).unwrap().label);
        }
        let nodes = g.num_nodes();
        GraphStats {
            nodes,
            edges: g.num_edges(),
            node_labels: node_labels.len(),
            edge_labels: edge_labels.len(),
            avg_degree: if nodes == 0 {
                0.0
            } else {
                total_degree as f64 / nodes as f64
            },
            max_degree,
            degree_hist,
        }
    }
}

impl fmt::Display for GraphStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "|V|={} |E|={} node-labels={} edge-labels={} avg-deg={:.2} max-deg={}",
            self.nodes, self.edges, self.node_labels, self.edge_labels, self.avg_degree, self.max_degree
        )
    }
}

/// Cardinality statistics backing the matcher's cost-based join planner.
///
/// Everything a selectivity estimate needs, computed in one pass over the
/// live graph and stamped with [`Graph::version`] so callers can detect
/// staleness:
///
/// - **triple counts** — live edges per `(edge-label, src-label,
///   dst-label)`, plus the `(edge, src, *)` / `(edge, *, dst)` / `(edge,
///   *, *)` marginals, which turn into extension fan-out estimates
///   (`triples / |src-label|`);
/// - **attribute buckets** — per attr key, distinct values and total
///   entries in the value index; `entries / distinct` estimates the
///   candidate set of an equality join;
/// - **degree summaries** — total out/in degree per node label, the
///   fallback fan-out for pattern edges with no label requirement.
///
/// Estimates only steer *plan order*; they are never consulted for match
/// correctness, so stale statistics degrade performance, not results.
#[derive(Clone, Debug, Default)]
pub struct CardinalityStats {
    /// [`Graph::version`] at compute time.
    pub version: u64,
    /// Live node count at compute time.
    pub nodes: u64,
    /// Live edge count at compute time.
    pub edges: u64,
    /// Node label → live node count.
    label_nodes: FxHashMap<u32, u64>,
    /// (edge label, src label, dst label) → live edge count.
    triples: FxHashMap<(u32, u32, u32), u64>,
    /// (edge label, src label) → live edge count (dst marginalized).
    edge_src: FxHashMap<(u32, u32), u64>,
    /// (edge label, dst label) → live edge count (src marginalized).
    edge_dst: FxHashMap<(u32, u32), u64>,
    /// Edge label → live edge count.
    edge_total: FxHashMap<u32, u64>,
    /// Node label → total out-degree of its nodes.
    out_deg: FxHashMap<u32, u64>,
    /// Node label → total in-degree of its nodes.
    in_deg: FxHashMap<u32, u64>,
    /// Attr key → (distinct values, total entries) in the value index.
    attr_buckets: FxHashMap<u32, (u64, u64)>,
}

impl CardinalityStats {
    /// Compute statistics in one pass over live nodes and edges.
    pub fn compute(g: &Graph) -> Self {
        let mut s = CardinalityStats {
            version: g.version(),
            nodes: g.num_nodes() as u64,
            edges: g.num_edges() as u64,
            attr_buckets: g
                .attr_bucket_stats()
                .into_iter()
                .map(|(k, v)| (k.0, v))
                .collect(),
            ..CardinalityStats::default()
        };
        for n in g.nodes() {
            let l = g.node_label(n).expect("live node has a label");
            *s.label_nodes.entry(l.0).or_insert(0) += 1;
        }
        for e in g.edges() {
            let er = g.edge(e).expect("live edge");
            let sl = g.node_label(er.src).expect("live endpoint");
            let dl = g.node_label(er.dst).expect("live endpoint");
            let el = er.label;
            *s.triples.entry((el.0, sl.0, dl.0)).or_insert(0) += 1;
            *s.edge_src.entry((el.0, sl.0)).or_insert(0) += 1;
            *s.edge_dst.entry((el.0, dl.0)).or_insert(0) += 1;
            *s.edge_total.entry(el.0).or_insert(0) += 1;
            *s.out_deg.entry(sl.0).or_insert(0) += 1;
            *s.in_deg.entry(dl.0).or_insert(0) += 1;
        }
        s
    }

    /// Live nodes carrying `label` (`None` = all nodes).
    pub fn label_count(&self, label: Option<LabelId>) -> u64 {
        match label {
            None => self.nodes,
            Some(l) => self.label_nodes.get(&l.0).copied().unwrap_or(0),
        }
    }

    /// Live edges matching the (possibly partially specified) triple.
    pub fn triple_count(
        &self,
        edge: LabelId,
        src: Option<LabelId>,
        dst: Option<LabelId>,
    ) -> u64 {
        match (src, dst) {
            (Some(s), Some(d)) => self.triples.get(&(edge.0, s.0, d.0)).copied().unwrap_or(0),
            (Some(s), None) => self.edge_src.get(&(edge.0, s.0)).copied().unwrap_or(0),
            (None, Some(d)) => self.edge_dst.get(&(edge.0, d.0)).copied().unwrap_or(0),
            (None, None) => self.edge_total.get(&edge.0).copied().unwrap_or(0),
        }
    }

    /// Expected number of `dir`-oriented neighbors a node with label
    /// `from` contributes along an edge with label `edge` toward a node
    /// with label `to` — the planner's extension fan-out. `None` labels
    /// marginalize; an unlabelled edge falls back to the label's average
    /// degree in that direction.
    pub fn extension_fanout(
        &self,
        edge: Option<LabelId>,
        from: Option<LabelId>,
        to: Option<LabelId>,
        dir: Direction,
    ) -> f64 {
        let denom = self.label_count(from).max(1) as f64;
        let numer = match edge {
            Some(el) => match dir {
                Direction::Out => self.triple_count(el, from, to),
                Direction::In => self.triple_count(el, to, from),
            },
            None => {
                let deg = match (dir, from) {
                    (Direction::Out, Some(l)) => {
                        self.out_deg.get(&l.0).copied().unwrap_or(0)
                    }
                    (Direction::In, Some(l)) => self.in_deg.get(&l.0).copied().unwrap_or(0),
                    (_, None) => self.edges,
                };
                return deg as f64 / denom;
            }
        };
        numer as f64 / denom
    }

    /// Expected size of one equality bucket of attribute `key`
    /// (`total entries / distinct values`); 0 when the key is unindexed.
    pub fn avg_bucket(&self, key: AttrKeyId) -> f64 {
        match self.attr_buckets.get(&key.0) {
            Some(&(distinct, entries)) if distinct > 0 => entries as f64 / distinct as f64,
            _ => 0.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_graph_stats() {
        let s = GraphStats::compute(&Graph::new());
        assert_eq!(s.nodes, 0);
        assert_eq!(s.edges, 0);
        assert_eq!(s.avg_degree, 0.0);
        assert!(s.degree_hist.is_empty());
    }

    #[test]
    fn small_graph_stats() {
        let mut g = Graph::new();
        let a = g.add_node_named("P");
        let b = g.add_node_named("P");
        let c = g.add_node_named("C");
        g.add_edge_named(a, b, "knows").unwrap();
        g.add_edge_named(a, c, "lives").unwrap();
        let s = GraphStats::compute(&g);
        assert_eq!(s.nodes, 3);
        assert_eq!(s.edges, 2);
        assert_eq!(s.node_labels, 2);
        assert_eq!(s.edge_labels, 2);
        assert_eq!(s.max_degree, 2);
        assert!((s.avg_degree - 4.0 / 3.0).abs() < 1e-9);
        // a has degree 2 → bucket 1; b, c have degree 1 → bucket 0.
        assert_eq!(s.degree_hist, vec![2, 1]);
        assert!(s.to_string().contains("|V|=3"));
    }

    #[test]
    fn cardinality_stats_count_triples_degrees_and_buckets() {
        let mut g = Graph::new();
        let p = g.label("P");
        let c = g.label("C");
        let lives = g.label("lives");
        let knows = g.label("knows");
        let a = g.add_node(p);
        let b = g.add_node(p);
        let c1 = g.add_node(c);
        g.add_edge(a, c1, lives).unwrap();
        g.add_edge(b, c1, lives).unwrap();
        g.add_edge(a, b, knows).unwrap();
        let ssn = g.attr_key("ssn");
        g.set_attr(a, ssn, crate::Value::Int(1)).unwrap();
        g.set_attr(b, ssn, crate::Value::Int(1)).unwrap();
        g.set_attr(c1, ssn, crate::Value::Int(2)).unwrap();

        let s = CardinalityStats::compute(&g);
        assert_eq!(s.version, g.version());
        assert_eq!((s.nodes, s.edges), (3, 3));
        assert_eq!(s.label_count(Some(p)), 2);
        assert_eq!(s.label_count(None), 3);
        assert_eq!(s.triple_count(lives, Some(p), Some(c)), 2);
        assert_eq!(s.triple_count(lives, Some(p), None), 2);
        assert_eq!(s.triple_count(lives, None, Some(c)), 2);
        assert_eq!(s.triple_count(lives, None, None), 2);
        assert_eq!(s.triple_count(knows, Some(p), Some(c)), 0);
        // Out fan-out of a P along lives toward C: 2 edges / 2 P nodes.
        assert!((s.extension_fanout(Some(lives), Some(p), Some(c), Direction::Out) - 1.0).abs() < 1e-9);
        // In fan-out of a C along lives from P: 2 edges / 1 C node.
        assert!((s.extension_fanout(Some(lives), Some(c), Some(p), Direction::In) - 2.0).abs() < 1e-9);
        // Unlabelled edge falls back to average degree: P nodes have
        // 3 out-edges total over 2 nodes.
        assert!((s.extension_fanout(None, Some(p), None, Direction::Out) - 1.5).abs() < 1e-9);
        // ssn has 2 distinct values over 3 entries.
        assert!((s.avg_bucket(ssn) - 1.5).abs() < 1e-9);
        assert_eq!(s.avg_bucket(AttrKeyId(99)), 0.0);
    }

    #[test]
    fn attr_bucket_stats_track_index() {
        let mut g = Graph::new();
        let a = g.add_node_named("P");
        let b = g.add_node_named("P");
        let k = g.attr_key("k");
        g.set_attr(a, k, crate::Value::Int(1)).unwrap();
        g.set_attr(b, k, crate::Value::Int(2)).unwrap();
        assert_eq!(g.attr_bucket_stats().get(&k), Some(&(2, 2)));
        g.set_attr(b, k, crate::Value::Int(1)).unwrap();
        assert_eq!(g.attr_bucket_stats().get(&k), Some(&(1, 2)));
        g.remove_node(a).unwrap();
        g.remove_node(b).unwrap();
        assert!(g.attr_bucket_stats().is_empty());
    }

    #[test]
    fn histogram_buckets_powers_of_two() {
        let mut g = Graph::new();
        let hub = g.add_node_named("H");
        for _ in 0..5 {
            let n = g.add_node_named("L");
            g.add_edge_named(hub, n, "r").unwrap();
        }
        let s = GraphStats::compute(&g);
        // hub degree 5 → bucket 2 ([4,8)); leaves degree 1 → bucket 0.
        assert_eq!(s.degree_hist[0], 5);
        assert_eq!(s.degree_hist[2], 1);
    }
}
