//! Compact, type-safe identifiers for graph elements.
//!
//! All identifiers are `u32` newtypes: graphs in the target workloads are
//! laptop-scale (≤ tens of millions of elements), and halving the id width
//! relative to `usize` keeps adjacency lists and match frames cache-friendly
//! (see the type-size guidance in the workspace performance guide).

use serde::{Deserialize, Serialize};
use std::fmt;

macro_rules! id_type {
    ($(#[$meta:meta])* $name:ident, $prefix:literal) => {
        $(#[$meta])*
        #[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
        #[serde(transparent)]
        pub struct $name(pub u32);

        impl $name {
            /// Construct from a raw `usize` index.
            ///
            /// # Panics
            /// Panics if `idx` does not fit in `u32`.
            #[inline]
            pub fn from_index(idx: usize) -> Self {
                debug_assert!(idx <= u32::MAX as usize, "id overflow");
                Self(idx as u32)
            }

            /// The raw index, for direct slot addressing.
            #[inline]
            pub fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }
    };
}

id_type!(
    /// Identifier of a node slot within a [`crate::Graph`].
    ///
    /// Stable for the lifetime of the node; slots of deleted nodes may be
    /// reused by later insertions.
    NodeId,
    "n"
);

id_type!(
    /// Identifier of an edge slot within a [`crate::Graph`].
    EdgeId,
    "e"
);

id_type!(
    /// Interned label (node type or edge relation name).
    LabelId,
    "l"
);

id_type!(
    /// Interned attribute key.
    AttrKeyId,
    "k"
);

/// Direction of an edge relative to an anchor node.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Direction {
    /// The anchor node is the source of the edge.
    Out,
    /// The anchor node is the target of the edge.
    In,
}

impl Direction {
    /// The opposite direction.
    #[inline]
    pub fn reverse(self) -> Self {
        match self {
            Direction::Out => Direction::In,
            Direction::In => Direction::Out,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn id_round_trip() {
        let n = NodeId::from_index(42);
        assert_eq!(n.index(), 42);
        assert_eq!(format!("{n}"), "n42");
        assert_eq!(format!("{n:?}"), "n42");
    }

    #[test]
    fn ids_are_ordered_by_index() {
        assert!(NodeId(1) < NodeId(2));
        assert!(EdgeId(0) < EdgeId(10));
    }

    #[test]
    fn direction_reverse_is_involution() {
        assert_eq!(Direction::Out.reverse(), Direction::In);
        assert_eq!(Direction::In.reverse(), Direction::Out);
        assert_eq!(Direction::Out.reverse().reverse(), Direction::Out);
    }

    #[test]
    fn serde_transparent() {
        let n = NodeId(7);
        let s = serde_json::to_string(&n).unwrap();
        assert_eq!(s, "7");
        let back: NodeId = serde_json::from_str(&s).unwrap();
        assert_eq!(back, n);
    }
}
