//! String interner for labels and attribute keys.
//!
//! Graph elements reference labels by [`LabelId`]/[`AttrKeyId`]; all string
//! comparisons on hot paths thus reduce to `u32` equality. The interner is
//! append-only: ids are dense, stable, and never recycled, so they can be
//! used directly as indexes into side tables (label indexes, per-label
//! statistics).

use rustc_hash::FxHashMap;
use serde::{Deserialize, Serialize};

/// An append-only string ↔ dense-id bijection.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct Interner {
    strings: Vec<String>,
    #[serde(skip)]
    lookup: FxHashMap<String, u32>,
}

impl Interner {
    /// New, empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Intern `s`, returning its dense id (existing or fresh).
    pub fn intern(&mut self, s: &str) -> u32 {
        if let Some(&id) = self.lookup.get(s) {
            return id;
        }
        let id = self.strings.len() as u32;
        self.strings.push(s.to_owned());
        self.lookup.insert(s.to_owned(), id);
        id
    }

    /// Look up the id of `s` without interning.
    pub fn get(&self, s: &str) -> Option<u32> {
        self.lookup.get(s).copied()
    }

    /// Resolve an id back to its string.
    ///
    /// # Panics
    /// Panics if `id` was not produced by this interner.
    pub fn resolve(&self, id: u32) -> &str {
        &self.strings[id as usize]
    }

    /// Resolve, returning `None` for unknown ids.
    pub fn try_resolve(&self, id: u32) -> Option<&str> {
        self.strings.get(id as usize).map(String::as_str)
    }

    /// Number of interned strings.
    pub fn len(&self) -> usize {
        self.strings.len()
    }

    /// Whether nothing has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.strings.is_empty()
    }

    /// Iterate `(id, string)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (u32, &str)> {
        self.strings
            .iter()
            .enumerate()
            .map(|(i, s)| (i as u32, s.as_str()))
    }

    /// Rebuild the reverse lookup after deserialization (serde skips it).
    pub fn rebuild_lookup(&mut self) {
        self.lookup = self
            .strings
            .iter()
            .enumerate()
            .map(|(i, s)| (s.clone(), i as u32))
            .collect();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut it = Interner::new();
        let a = it.intern("Person");
        let b = it.intern("City");
        let a2 = it.intern("Person");
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(it.resolve(a), "Person");
        assert_eq!(it.resolve(b), "City");
        assert_eq!(it.len(), 2);
    }

    #[test]
    fn ids_are_dense_and_ordered() {
        let mut it = Interner::new();
        for (i, s) in ["a", "b", "c"].iter().enumerate() {
            assert_eq!(it.intern(s), i as u32);
        }
    }

    #[test]
    fn get_does_not_intern() {
        let mut it = Interner::new();
        assert_eq!(it.get("x"), None);
        let id = it.intern("x");
        assert_eq!(it.get("x"), Some(id));
        assert_eq!(it.len(), 1);
    }

    #[test]
    fn serde_round_trip_rebuilds_lookup() {
        let mut it = Interner::new();
        it.intern("alpha");
        it.intern("beta");
        let json = serde_json::to_string(&it).unwrap();
        let mut back: Interner = serde_json::from_str(&json).unwrap();
        back.rebuild_lookup();
        assert_eq!(back.get("beta"), Some(1));
        assert_eq!(back.intern("alpha"), 0);
        assert_eq!(back.intern("gamma"), 2);
    }

    #[test]
    fn try_resolve_handles_unknown() {
        let it = Interner::new();
        assert_eq!(it.try_resolve(0), None);
    }
}
