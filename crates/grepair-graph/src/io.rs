//! Portable serialization of graphs.
//!
//! [`GraphDoc`] is a self-contained, string-labelled document model: node
//! ids in a doc are arbitrary `u32` handles local to the doc, so docs
//! survive round trips through graphs whose internal slot allocation
//! differs (e.g. after deletions). JSON is the interchange format; a
//! line-oriented plain-text format is provided for quick fixtures.

use crate::error::{GraphError, Result};
use crate::graph::Graph;
use crate::ids::NodeId;
use crate::value::Value;
use rustc_hash::FxHashMap;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A node in document form.
#[derive(Clone, Debug, Serialize, Deserialize, PartialEq)]
pub struct NodeDoc {
    /// Doc-local handle referenced by [`EdgeDoc`].
    pub id: u32,
    /// Node label (type).
    pub label: String,
    /// Attributes; `BTreeMap` for stable output ordering.
    #[serde(default, skip_serializing_if = "BTreeMap::is_empty")]
    pub attrs: BTreeMap<String, Value>,
}

/// An edge in document form.
#[derive(Clone, Debug, Serialize, Deserialize, PartialEq)]
pub struct EdgeDoc {
    /// Doc-local source handle.
    pub src: u32,
    /// Doc-local target handle.
    pub dst: u32,
    /// Relation label.
    pub label: String,
}

/// Self-contained portable graph document.
#[derive(Clone, Debug, Default, Serialize, Deserialize, PartialEq)]
pub struct GraphDoc {
    /// Nodes, in stable id order.
    pub nodes: Vec<NodeDoc>,
    /// Edges.
    pub edges: Vec<EdgeDoc>,
}

impl GraphDoc {
    /// Export a graph. Doc handles are assigned densely in node-id order.
    pub fn from_graph(g: &Graph) -> Self {
        let mut handle: FxHashMap<NodeId, u32> = FxHashMap::default();
        let mut nodes = Vec::with_capacity(g.num_nodes());
        for (i, n) in g.nodes().enumerate() {
            handle.insert(n, i as u32);
            let attrs = g
                .attrs(n)
                .iter()
                .map(|(k, v)| (g.attr_key_name(*k).to_owned(), v.clone()))
                .collect();
            nodes.push(NodeDoc {
                id: i as u32,
                label: g.label_name(g.node_label(n).unwrap()).to_owned(),
                attrs,
            });
        }
        let mut edges: Vec<EdgeDoc> = g
            .edges()
            .map(|e| {
                let er = g.edge(e).unwrap();
                EdgeDoc {
                    src: handle[&er.src],
                    dst: handle[&er.dst],
                    label: g.label_name(er.label).to_owned(),
                }
            })
            .collect();
        edges.sort_by(|a, b| (a.src, a.dst, &a.label).cmp(&(b.src, b.dst, &b.label)));
        GraphDoc { nodes, edges }
    }

    /// Materialise the document as a fresh graph.
    ///
    /// Returns the graph and the doc-handle → [`NodeId`] mapping.
    pub fn into_graph(&self) -> Result<(Graph, FxHashMap<u32, NodeId>)> {
        let mut g = Graph::new();
        let mut map: FxHashMap<u32, NodeId> = FxHashMap::default();
        for nd in &self.nodes {
            if map.contains_key(&nd.id) {
                return Err(GraphError::Parse(format!("duplicate node id {}", nd.id)));
            }
            let label = g.label(&nd.label);
            let attrs = nd
                .attrs
                .iter()
                .map(|(k, v)| (g.attr_key(k), v.clone()))
                .collect();
            let id = g.add_node_with_attrs(label, attrs);
            map.insert(nd.id, id);
        }
        for ed in &self.edges {
            let src = *map
                .get(&ed.src)
                .ok_or_else(|| GraphError::Parse(format!("unknown edge src {}", ed.src)))?;
            let dst = *map
                .get(&ed.dst)
                .ok_or_else(|| GraphError::Parse(format!("unknown edge dst {}", ed.dst)))?;
            let label = g.label(&ed.label);
            g.add_edge(src, dst, label)?;
        }
        Ok((g, map))
    }

    /// Serialize to pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("GraphDoc is always serializable")
    }

    /// Parse from JSON.
    pub fn from_json(s: &str) -> Result<Self> {
        serde_json::from_str(s).map_err(|e| GraphError::Parse(e.to_string()))
    }

    /// Serialize to the plain-text fixture format:
    ///
    /// ```text
    /// node 0 Person name="Ann" age=30
    /// node 1 City
    /// edge 0 livesIn 1
    /// ```
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        for n in &self.nodes {
            out.push_str(&format!("node {} {}", n.id, n.label));
            for (k, v) in &n.attrs {
                out.push_str(&format!(" {k}={}", text_value(v)));
            }
            out.push('\n');
        }
        for e in &self.edges {
            out.push_str(&format!("edge {} {} {}\n", e.src, e.label, e.dst));
        }
        out
    }

    /// Parse the plain-text fixture format (see [`GraphDoc::to_text`]).
    pub fn from_text(s: &str) -> Result<Self> {
        let mut doc = GraphDoc::default();
        for (lineno, raw) in s.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let err = |msg: &str| GraphError::Parse(format!("line {}: {msg}", lineno + 1));
            let tokens = tokenize_line(line)
                .map_err(|msg| GraphError::Parse(format!("line {}: {msg}", lineno + 1)))?;
            let mut parts = tokens.into_iter();
            match parts.next().as_deref() {
                Some("node") => {
                    let id: u32 = parts
                        .next()
                        .and_then(|t| t.parse().ok())
                        .ok_or_else(|| err("expected node id"))?;
                    let label = parts.next().ok_or_else(|| err("expected node label"))?;
                    let mut attrs = BTreeMap::new();
                    for tok in parts {
                        let (k, v) = tok
                            .split_once('=')
                            .ok_or_else(|| err("expected key=value"))?;
                        attrs.insert(k.to_owned(), parse_text_value(v));
                    }
                    doc.nodes.push(NodeDoc {
                        id,
                        label: label.to_owned(),
                        attrs,
                    });
                }
                Some("edge") => {
                    let src: u32 = parts
                        .next()
                        .and_then(|t| t.parse().ok())
                        .ok_or_else(|| err("expected edge src"))?;
                    let label = parts.next().ok_or_else(|| err("expected edge label"))?;
                    let dst: u32 = parts
                        .next()
                        .and_then(|t| t.parse().ok())
                        .ok_or_else(|| err("expected edge dst"))?;
                    doc.edges.push(EdgeDoc {
                        src,
                        dst,
                        label: label.to_owned(),
                    });
                }
                Some(other) => return Err(err(&format!("unknown directive {other:?}"))),
                None => {}
            }
        }
        Ok(doc)
    }
}

/// Split a fixture line into tokens, treating double-quoted segments
/// (with `\"` and `\\` escapes) as part of the containing token — so
/// `name="Ann Lee"` is one token.
fn tokenize_line(line: &str) -> Result<Vec<String>, String> {
    let mut tokens = Vec::new();
    let mut cur = String::new();
    let mut chars = line.chars().peekable();
    let mut in_token = false;
    while let Some(c) = chars.next() {
        match c {
            ' ' | '\t' => {
                if in_token {
                    tokens.push(std::mem::take(&mut cur));
                    in_token = false;
                }
            }
            '"' => {
                in_token = true;
                cur.push('"');
                loop {
                    match chars.next() {
                        Some('"') => {
                            cur.push('"');
                            break;
                        }
                        Some('\\') => match chars.next() {
                            Some('"') => cur.push('"'),
                            Some('\\') => cur.push('\\'),
                            Some('n') => cur.push('\n'),
                            Some('t') => cur.push('\t'),
                            other => return Err(format!("bad escape {other:?}")),
                        },
                        Some(ch) => cur.push(ch),
                        None => return Err("unterminated string".into()),
                    }
                }
            }
            other => {
                in_token = true;
                cur.push(other);
            }
        }
    }
    if in_token {
        tokens.push(cur);
    }
    Ok(tokens)
}

fn text_value(v: &Value) -> String {
    match v {
        Value::Str(s) => format!("{s:?}"),
        Value::Int(i) => i.to_string(),
        Value::Float(f) => format!("{f:?}"),
        Value::Bool(b) => b.to_string(),
    }
}

fn parse_text_value(tok: &str) -> Value {
    if let Some(stripped) = tok.strip_prefix('"').and_then(|t| t.strip_suffix('"')) {
        return Value::Str(stripped.to_owned());
    }
    if tok == "true" {
        return Value::Bool(true);
    }
    if tok == "false" {
        return Value::Bool(false);
    }
    if let Ok(i) = tok.parse::<i64>() {
        return Value::Int(i);
    }
    if let Ok(f) = tok.parse::<f64>() {
        return Value::Float(f);
    }
    Value::Str(tok.to_owned())
}

impl Graph {
    /// Export to a portable document.
    pub fn to_doc(&self) -> GraphDoc {
        GraphDoc::from_graph(self)
    }

    /// Build from a portable document, dropping the handle map.
    pub fn from_doc(doc: &GraphDoc) -> Result<Self> {
        doc.into_graph().map(|(g, _)| g)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Graph {
        let mut g = Graph::new();
        let p = g.label("Person");
        let c = g.label("City");
        let lives = g.label("livesIn");
        let name = g.attr_key("name");
        let a = g.add_node_with_attrs(p, vec![(name, Value::from("Ann"))]);
        let b = g.add_node(c);
        g.add_edge(a, b, lives).unwrap();
        g
    }

    #[test]
    fn json_round_trip() {
        let g = sample();
        let doc = g.to_doc();
        let json = doc.to_json();
        let doc2 = GraphDoc::from_json(&json).unwrap();
        assert_eq!(doc, doc2);
        let g2 = Graph::from_doc(&doc2).unwrap();
        assert_eq!(g2.num_nodes(), g.num_nodes());
        assert_eq!(g2.num_edges(), g.num_edges());
        assert_eq!(g2.to_doc(), doc);
    }

    #[test]
    fn round_trip_after_deletions_renumbers() {
        let mut g = sample();
        let extra = g.add_node_named("Org");
        g.remove_node(extra).unwrap();
        let doc = g.to_doc();
        assert_eq!(doc.nodes.len(), 2);
        let g2 = Graph::from_doc(&doc).unwrap();
        assert_eq!(g2.num_nodes(), 2);
        assert_eq!(g2.to_doc(), doc);
    }

    #[test]
    fn text_round_trip() {
        let g = sample();
        let doc = g.to_doc();
        let text = doc.to_text();
        let doc2 = GraphDoc::from_text(&text).unwrap();
        assert_eq!(doc, doc2);
    }

    #[test]
    fn text_parses_comments_and_types() {
        let text = "# fixture\nnode 0 P x=1 y=2.5 z=true w=\"hi\"\nnode 1 Q\nedge 0 r 1\n";
        let doc = GraphDoc::from_text(text).unwrap();
        assert_eq!(doc.nodes.len(), 2);
        assert_eq!(doc.edges.len(), 1);
        let attrs = &doc.nodes[0].attrs;
        assert_eq!(attrs["x"], Value::Int(1));
        assert_eq!(attrs["y"], Value::Float(2.5));
        assert_eq!(attrs["z"], Value::Bool(true));
        assert_eq!(attrs["w"], Value::from("hi"));
    }

    #[test]
    fn text_round_trip_with_spaces_and_escapes() {
        let mut g = Graph::new();
        let n = g.add_node_named("Person");
        let k = g.attr_key("name");
        g.set_attr(n, k, Value::from("Ann \"The Graph\" Lee")).unwrap();
        let k2 = g.attr_key("bio");
        g.set_attr(n, k2, Value::from("line1\nline2")).unwrap();
        let doc = g.to_doc();
        let text = doc.to_text();
        let doc2 = GraphDoc::from_text(&text).unwrap();
        assert_eq!(doc2, doc, "{text}");
    }

    #[test]
    fn parse_errors_are_reported_with_lines() {
        let bad = "node 0 P\nedge 0 r 9\n";
        let doc = GraphDoc::from_text(bad).unwrap();
        let err = doc.into_graph().unwrap_err();
        assert!(err.to_string().contains("unknown edge dst"));

        let bad2 = "frob 1 2\n";
        assert!(GraphDoc::from_text(bad2).is_err());
    }

    #[test]
    fn duplicate_node_ids_rejected() {
        let doc = GraphDoc {
            nodes: vec![
                NodeDoc {
                    id: 0,
                    label: "P".into(),
                    attrs: BTreeMap::new(),
                },
                NodeDoc {
                    id: 0,
                    label: "Q".into(),
                    attrs: BTreeMap::new(),
                },
            ],
            edges: vec![],
        };
        assert!(doc.into_graph().is_err());
    }
}
