//! Portable serialization of graphs.
//!
//! [`GraphDoc`] is a self-contained, string-labelled document model: node
//! ids in a doc are arbitrary `u32` handles local to the doc, so docs
//! survive round trips through graphs whose internal slot allocation
//! differs (e.g. after deletions). JSON is the interchange format; a
//! line-oriented plain-text format is provided for quick fixtures.

use crate::error::{GraphError, Result};
use crate::graph::Graph;
use crate::ids::NodeId;
use crate::value::Value;
use rustc_hash::FxHashMap;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A node in document form.
#[derive(Clone, Debug, Serialize, Deserialize, PartialEq)]
pub struct NodeDoc {
    /// Doc-local handle referenced by [`EdgeDoc`].
    pub id: u32,
    /// Node label (type).
    pub label: String,
    /// Attributes; `BTreeMap` for stable output ordering.
    #[serde(default, skip_serializing_if = "BTreeMap::is_empty")]
    pub attrs: BTreeMap<String, Value>,
}

/// An edge in document form.
#[derive(Clone, Debug, Serialize, Deserialize, PartialEq)]
pub struct EdgeDoc {
    /// Doc-local source handle.
    pub src: u32,
    /// Doc-local target handle.
    pub dst: u32,
    /// Relation label.
    pub label: String,
}

/// Self-contained portable graph document.
#[derive(Clone, Debug, Default, Serialize, Deserialize, PartialEq)]
pub struct GraphDoc {
    /// Nodes, in stable id order.
    pub nodes: Vec<NodeDoc>,
    /// Edges.
    pub edges: Vec<EdgeDoc>,
}

impl GraphDoc {
    /// Export a graph. Doc handles are assigned densely in node-id order.
    pub fn from_graph(g: &Graph) -> Self {
        let mut handle: FxHashMap<NodeId, u32> = FxHashMap::default();
        let mut nodes = Vec::with_capacity(g.num_nodes());
        for (i, n) in g.nodes().enumerate() {
            handle.insert(n, i as u32);
            let attrs = g
                .attrs(n)
                .iter()
                .map(|(k, v)| (g.attr_key_name(*k).to_owned(), v.clone()))
                .collect();
            nodes.push(NodeDoc {
                id: i as u32,
                label: g.label_name(g.node_label(n).unwrap()).to_owned(),
                attrs,
            });
        }
        let mut edges: Vec<EdgeDoc> = g
            .edges()
            .map(|e| {
                let er = g.edge(e).unwrap();
                EdgeDoc {
                    src: handle[&er.src],
                    dst: handle[&er.dst],
                    label: g.label_name(er.label).to_owned(),
                }
            })
            .collect();
        edges.sort_by(|a, b| (a.src, a.dst, &a.label).cmp(&(b.src, b.dst, &b.label)));
        GraphDoc { nodes, edges }
    }

    /// Materialise the document as a fresh graph.
    ///
    /// Returns the graph and the doc-handle → [`NodeId`] mapping.
    pub fn into_graph(&self) -> Result<(Graph, FxHashMap<u32, NodeId>)> {
        let mut g = Graph::new();
        let mut map: FxHashMap<u32, NodeId> = FxHashMap::default();
        for nd in &self.nodes {
            if map.contains_key(&nd.id) {
                return Err(GraphError::Parse(format!("duplicate node id {}", nd.id)));
            }
            let label = g.label(&nd.label);
            let attrs = nd
                .attrs
                .iter()
                .map(|(k, v)| (g.attr_key(k), v.clone()))
                .collect();
            let id = g.add_node_with_attrs(label, attrs);
            map.insert(nd.id, id);
        }
        for ed in &self.edges {
            let src = *map
                .get(&ed.src)
                .ok_or_else(|| GraphError::Parse(format!("unknown edge src {}", ed.src)))?;
            let dst = *map
                .get(&ed.dst)
                .ok_or_else(|| GraphError::Parse(format!("unknown edge dst {}", ed.dst)))?;
            let label = g.label(&ed.label);
            g.add_edge(src, dst, label)?;
        }
        Ok((g, map))
    }

    /// Serialize to pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("GraphDoc is always serializable")
    }

    /// Parse from JSON.
    pub fn from_json(s: &str) -> Result<Self> {
        serde_json::from_str(s).map_err(|e| GraphError::Parse(e.to_string()))
    }

    /// Serialize to the plain-text fixture format:
    ///
    /// ```text
    /// node 0 Person name="Ann" age=30
    /// node 1 City
    /// edge 0 livesIn 1
    /// ```
    ///
    /// Labels and attribute keys containing whitespace, quotes, `=`, `#`
    /// or control characters are double-quoted with the same escape set
    /// as string values (`\"`, `\\`, `\n`, `\t`, `\r`, `\u{…}` for other
    /// control characters), so every document round-trips through
    /// [`GraphDoc::from_text`] losslessly.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        for n in &self.nodes {
            out.push_str(&format!("node {} {}", n.id, fmt_token(&n.label)));
            for (k, v) in &n.attrs {
                out.push_str(&format!(" {}={}", fmt_token(k), text_value(v)));
            }
            out.push('\n');
        }
        for e in &self.edges {
            out.push_str(&format!(
                "edge {} {} {}\n",
                e.src,
                fmt_token(&e.label),
                e.dst
            ));
        }
        out
    }

    /// Parse the plain-text fixture format (see [`GraphDoc::to_text`]).
    ///
    /// Malformed lines — unterminated strings, bad escapes, missing
    /// `key=value` structure — are rejected with a line-numbered
    /// [`GraphError::Parse`]; nothing mis-parses silently.
    pub fn from_text(s: &str) -> Result<Self> {
        let mut doc = GraphDoc::default();
        for (lineno, raw) in s.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let err = |msg: String| GraphError::Parse(format!("line {}: {msg}", lineno + 1));
            let tokens = tokenize_line(line).map_err(&err)?;
            let mut toks = tokens.into_iter();
            let directive = toks
                .next()
                .and_then(|t| t.as_plain().map(str::to_owned))
                .unwrap_or_default();
            match directive.as_str() {
                "node" => {
                    let id: u32 = toks
                        .next()
                        .and_then(|t| t.as_plain().and_then(|p| p.parse().ok()))
                        .ok_or_else(|| err("expected node id".into()))?;
                    let label = toks
                        .next()
                        .and_then(|t| t.into_string())
                        .ok_or_else(|| err("expected node label".into()))?;
                    let mut attrs = BTreeMap::new();
                    for tok in toks {
                        let (k, v) = tok.into_key_value().map_err(&err)?;
                        attrs.insert(k, v);
                    }
                    doc.nodes.push(NodeDoc { id, label, attrs });
                }
                "edge" => {
                    let src: u32 = toks
                        .next()
                        .and_then(|t| t.as_plain().and_then(|p| p.parse().ok()))
                        .ok_or_else(|| err("expected edge src".into()))?;
                    let label = toks
                        .next()
                        .and_then(|t| t.into_string())
                        .ok_or_else(|| err("expected edge label".into()))?;
                    let dst: u32 = toks
                        .next()
                        .and_then(|t| t.as_plain().and_then(|p| p.parse().ok()))
                        .ok_or_else(|| err("expected edge dst".into()))?;
                    doc.edges.push(EdgeDoc { src, dst, label });
                }
                other => return Err(err(format!("unknown directive {other:?}"))),
            }
        }
        Ok(doc)
    }
}

/// One segment of a fixture token: literal text, or a double-quoted
/// (already unescaped) string. `name="Ann Lee"` is one token of two
/// parts: `Lit("name=")` + `Quoted("Ann Lee")`. Keeping the quoting
/// structure (instead of flattening to a string) is what lets the parser
/// tell a quoted key or value apart from embedded quote characters.
#[derive(Clone, Debug, PartialEq)]
enum Part {
    Lit(String),
    Quoted(String),
}

/// A whitespace-delimited fixture token as a part sequence.
#[derive(Clone, Debug, PartialEq)]
struct Token(Vec<Part>);

impl Token {
    /// The token as unquoted literal text, if that is all it is.
    fn as_plain(&self) -> Option<&str> {
        match self.0.as_slice() {
            [Part::Lit(s)] => Some(s),
            _ => None,
        }
    }

    /// The token as a single string (either one literal or one quoted
    /// segment) — the shape labels must have.
    fn into_string(self) -> Option<String> {
        match self.0.into_iter().collect::<Vec<_>>().as_mut_slice() {
            [Part::Lit(s)] | [Part::Quoted(s)] => Some(std::mem::take(s)),
            _ => None,
        }
    }

    /// Split an attribute token into key and typed value. Accepted
    /// shapes: `key=value`, `key="…"`, `"…"=value`, `"…"="…"`; anything
    /// else is an error.
    fn into_key_value(self) -> Result<(String, Value), String> {
        let mut parts = self.0.into_iter();
        let (key, rest) = match parts.next() {
            Some(Part::Lit(lit)) => match lit.split_once('=') {
                Some((k, v)) => (k.to_owned(), v.to_owned()),
                None => return Err(format!("expected key=value, got {lit:?}")),
            },
            Some(Part::Quoted(k)) => match parts.next() {
                Some(Part::Lit(lit)) if lit.starts_with('=') => (k, lit[1..].to_owned()),
                _ => return Err(format!("expected '=' after quoted key {k:?}")),
            },
            None => return Err("empty attribute token".into()),
        };
        if key.is_empty() {
            return Err("empty attribute key".into());
        }
        let value = match (rest.is_empty(), parts.next()) {
            // key=literal — typed parse.
            (false, None) => parse_text_value(&rest),
            // key="…" — exactly one quoted segment, always a string.
            (true, Some(Part::Quoted(s))) => {
                if parts.next().is_some() {
                    return Err(format!("trailing garbage after value of {key:?}"));
                }
                Value::Str(s)
            }
            _ => {
                return Err(format!(
                    "malformed value for {key:?}: expected a literal or one quoted string"
                ))
            }
        };
        Ok((key, value))
    }
}

/// Split a fixture line into [`Token`]s, unescaping double-quoted
/// segments. Escapes: `\"`, `\\`, `\n`, `\t`, `\r`, `\0`, `\u{HEX}`.
fn tokenize_line(line: &str) -> Result<Vec<Token>, String> {
    let mut tokens = Vec::new();
    let mut parts: Vec<Part> = Vec::new();
    let mut lit = String::new();
    let mut chars = line.chars();
    let flush_lit = |lit: &mut String, parts: &mut Vec<Part>| {
        if !lit.is_empty() {
            parts.push(Part::Lit(std::mem::take(lit)));
        }
    };
    while let Some(c) = chars.next() {
        match c {
            ' ' | '\t' => {
                flush_lit(&mut lit, &mut parts);
                if !parts.is_empty() {
                    tokens.push(Token(std::mem::take(&mut parts)));
                }
            }
            '"' => {
                flush_lit(&mut lit, &mut parts);
                let mut q = String::new();
                loop {
                    match chars.next() {
                        Some('"') => break,
                        Some('\\') => q.push(unescape_char(&mut chars)?),
                        Some(ch) => q.push(ch),
                        None => return Err("unterminated string".into()),
                    }
                }
                parts.push(Part::Quoted(q));
            }
            other => lit.push(other),
        }
    }
    flush_lit(&mut lit, &mut parts);
    if !parts.is_empty() {
        tokens.push(Token(parts));
    }
    Ok(tokens)
}

fn unescape_char(chars: &mut std::str::Chars<'_>) -> Result<char, String> {
    match chars.next() {
        Some('"') => Ok('"'),
        Some('\\') => Ok('\\'),
        Some('n') => Ok('\n'),
        Some('t') => Ok('\t'),
        Some('r') => Ok('\r'),
        Some('0') => Ok('\0'),
        Some('u') => {
            if chars.next() != Some('{') {
                return Err("bad \\u escape: expected '{'".into());
            }
            let mut hex = String::new();
            loop {
                match chars.next() {
                    Some('}') => break,
                    Some(h) if h.is_ascii_hexdigit() && hex.len() < 6 => hex.push(h),
                    other => return Err(format!("bad \\u escape near {other:?}")),
                }
            }
            u32::from_str_radix(&hex, 16)
                .ok()
                .and_then(char::from_u32)
                .ok_or_else(|| format!("bad \\u escape value {hex:?}"))
        }
        other => Err(format!("bad escape {other:?}")),
    }
}

/// Quote and escape a string for the fixture format.
fn quote_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            '\0' => out.push_str("\\0"),
            c if c.is_control() => out.push_str(&format!("\\u{{{:x}}}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Render a label or attribute key: bare when unambiguous, quoted when it
/// contains anything the tokenizer or `key=value` split would mangle.
fn fmt_token(s: &str) -> String {
    let needs_quoting = s.is_empty()
        || s.starts_with('#')
        || s.chars()
            .any(|c| c.is_whitespace() || c.is_control() || matches!(c, '"' | '\\' | '='));
    if needs_quoting {
        quote_string(s)
    } else {
        s.to_owned()
    }
}

fn text_value(v: &Value) -> String {
    match v {
        Value::Str(s) => quote_string(s),
        Value::Int(i) => i.to_string(),
        Value::Float(f) => format!("{f:?}"),
        Value::Bool(b) => b.to_string(),
    }
}

fn parse_text_value(tok: &str) -> Value {
    if tok == "true" {
        return Value::Bool(true);
    }
    if tok == "false" {
        return Value::Bool(false);
    }
    if let Ok(i) = tok.parse::<i64>() {
        return Value::Int(i);
    }
    if let Ok(f) = tok.parse::<f64>() {
        return Value::Float(f);
    }
    Value::Str(tok.to_owned())
}

impl Graph {
    /// Export to a portable document.
    pub fn to_doc(&self) -> GraphDoc {
        GraphDoc::from_graph(self)
    }

    /// Build from a portable document, dropping the handle map.
    pub fn from_doc(doc: &GraphDoc) -> Result<Self> {
        doc.into_graph().map(|(g, _)| g)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Graph {
        let mut g = Graph::new();
        let p = g.label("Person");
        let c = g.label("City");
        let lives = g.label("livesIn");
        let name = g.attr_key("name");
        let a = g.add_node_with_attrs(p, vec![(name, Value::from("Ann"))]);
        let b = g.add_node(c);
        g.add_edge(a, b, lives).unwrap();
        g
    }

    #[test]
    fn json_round_trip() {
        let g = sample();
        let doc = g.to_doc();
        let json = doc.to_json();
        let doc2 = GraphDoc::from_json(&json).unwrap();
        assert_eq!(doc, doc2);
        let g2 = Graph::from_doc(&doc2).unwrap();
        assert_eq!(g2.num_nodes(), g.num_nodes());
        assert_eq!(g2.num_edges(), g.num_edges());
        assert_eq!(g2.to_doc(), doc);
    }

    #[test]
    fn round_trip_after_deletions_renumbers() {
        let mut g = sample();
        let extra = g.add_node_named("Org");
        g.remove_node(extra).unwrap();
        let doc = g.to_doc();
        assert_eq!(doc.nodes.len(), 2);
        let g2 = Graph::from_doc(&doc).unwrap();
        assert_eq!(g2.num_nodes(), 2);
        assert_eq!(g2.to_doc(), doc);
    }

    #[test]
    fn text_round_trip() {
        let g = sample();
        let doc = g.to_doc();
        let text = doc.to_text();
        let doc2 = GraphDoc::from_text(&text).unwrap();
        assert_eq!(doc, doc2);
    }

    #[test]
    fn text_parses_comments_and_types() {
        let text = "# fixture\nnode 0 P x=1 y=2.5 z=true w=\"hi\"\nnode 1 Q\nedge 0 r 1\n";
        let doc = GraphDoc::from_text(text).unwrap();
        assert_eq!(doc.nodes.len(), 2);
        assert_eq!(doc.edges.len(), 1);
        let attrs = &doc.nodes[0].attrs;
        assert_eq!(attrs["x"], Value::Int(1));
        assert_eq!(attrs["y"], Value::Float(2.5));
        assert_eq!(attrs["z"], Value::Bool(true));
        assert_eq!(attrs["w"], Value::from("hi"));
    }

    #[test]
    fn text_round_trip_with_spaces_and_escapes() {
        let mut g = Graph::new();
        let n = g.add_node_named("Person");
        let k = g.attr_key("name");
        g.set_attr(n, k, Value::from("Ann \"The Graph\" Lee")).unwrap();
        let k2 = g.attr_key("bio");
        g.set_attr(n, k2, Value::from("line1\nline2")).unwrap();
        let doc = g.to_doc();
        let text = doc.to_text();
        let doc2 = GraphDoc::from_text(&text).unwrap();
        assert_eq!(doc2, doc, "{text}");
    }

    #[test]
    fn labels_and_keys_with_whitespace_round_trip() {
        let mut g = Graph::new();
        let n = g.add_node_named("VIP Person");
        let m = g.add_node_named("City\nState");
        let k = g.attr_key("full name");
        g.set_attr(n, k, Value::from("Ann Lee")).unwrap();
        let k2 = g.attr_key("a=b");
        g.set_attr(n, k2, Value::Int(7)).unwrap();
        g.add_edge_named(n, m, "lives in").unwrap();
        let doc = g.to_doc();
        let text = doc.to_text();
        let doc2 = GraphDoc::from_text(&text).unwrap();
        assert_eq!(doc2, doc, "{text}");
    }

    #[test]
    fn control_chars_and_unicode_escapes_round_trip() {
        let mut g = Graph::new();
        let n = g.add_node_named("P");
        let k = g.attr_key("bio");
        g.set_attr(n, k, Value::from("tab\t cr\r nul\0 bell\u{7} text"))
            .unwrap();
        let doc = g.to_doc();
        let text = doc.to_text();
        let doc2 = GraphDoc::from_text(&text).unwrap();
        assert_eq!(doc2, doc, "{text}");
    }

    #[test]
    fn quoted_label_parses_back() {
        let text = "node 0 \"My Label\" \"weird key\"=\"a b\"\nnode 1 Q\nedge 0 \"rel x\" 1\n";
        let doc = GraphDoc::from_text(text).unwrap();
        assert_eq!(doc.nodes[0].label, "My Label");
        assert_eq!(doc.nodes[0].attrs["weird key"], Value::from("a b"));
        assert_eq!(doc.edges[0].label, "rel x");
    }

    #[test]
    fn malformed_text_is_rejected_not_misparsed() {
        // A label with a space that is NOT quoted: the trailing word is
        // not a key=value pair, so the line errors instead of silently
        // dropping or merging tokens.
        let e = GraphDoc::from_text("node 0 My Label\n").unwrap_err();
        assert!(e.to_string().contains("key=value"), "{e}");
        // Unterminated string.
        let e = GraphDoc::from_text("node 0 P x=\"oops\n").unwrap_err();
        assert!(e.to_string().contains("unterminated"), "{e}");
        // Bad escape.
        let e = GraphDoc::from_text("node 0 P x=\"\\q\"\n").unwrap_err();
        assert!(e.to_string().contains("bad escape"), "{e}");
        // Garbage after a quoted value.
        let e = GraphDoc::from_text("node 0 P x=\"a\"b\n").unwrap_err();
        assert!(e.to_string().contains("x"), "{e}");
        // Empty key.
        let e = GraphDoc::from_text("node 0 P =1\n").unwrap_err();
        assert!(e.to_string().contains("key"), "{e}");
        // Quoted key without '='.
        let e = GraphDoc::from_text("node 0 P \"k\" 1\n").unwrap_err();
        assert!(e.to_string().contains("'='"), "{e}");
    }

    #[test]
    fn parse_errors_are_reported_with_lines() {
        let bad = "node 0 P\nedge 0 r 9\n";
        let doc = GraphDoc::from_text(bad).unwrap();
        let err = doc.into_graph().unwrap_err();
        assert!(err.to_string().contains("unknown edge dst"));

        let bad2 = "frob 1 2\n";
        assert!(GraphDoc::from_text(bad2).is_err());
    }

    #[test]
    fn duplicate_node_ids_rejected() {
        let doc = GraphDoc {
            nodes: vec![
                NodeDoc {
                    id: 0,
                    label: "P".into(),
                    attrs: BTreeMap::new(),
                },
                NodeDoc {
                    id: 0,
                    label: "Q".into(),
                    attrs: BTreeMap::new(),
                },
            ],
            edges: vec![],
        };
        assert!(doc.into_graph().is_err());
    }
}
