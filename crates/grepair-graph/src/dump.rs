//! Exact slot-level dumps of a [`Graph`], for durable snapshots.
//!
//! [`crate::GraphDoc`] deliberately renumbers: doc handles are dense and
//! tombstoned slots disappear, which is right for interchange but wrong
//! for a durable store whose write-ahead log references *concrete*
//! [`NodeId`]/[`EdgeId`] slots. A [`SlotDump`] is the GraphDoc-derived
//! superset that closes the gap:
//!
//! - the embedded [`GraphDoc`] uses **raw slot ids as handles** (so holes
//!   are allowed) and lists edges in **edge-id order**, with
//!   [`SlotDump::edge_ids`] carrying each edge's slot id;
//! - the free lists are recorded **verbatim, in stack order** — slot
//!   reuse pops the same ids in the same order after a restore as it
//!   would have in the dumped graph, which is what makes
//!   snapshot-then-replay-log recovery byte-exact;
//! - total slot counts pin the tombstone population.
//!
//! Interner numbering is intentionally *not* dumped: labels and keys
//! travel as strings and re-intern on restore. Numeric label ids are
//! process-local derived state (they only feed index layout and
//! signature mixing, never slot allocation), so two processes may
//! legally disagree on them while agreeing on every slot.
//!
//! [`Graph::dump_slots`] and [`Graph::restore_slots`] live in
//! [`crate::graph`] (they need private slot access); this module owns the
//! document type and its validation-focused tests.

use crate::io::GraphDoc;
use serde::{Deserialize, Serialize};

/// Exact, portable image of a [`Graph`]'s slot state.
///
/// Equality of two dumps implies the graphs are indistinguishable to any
/// caller holding element ids — same live elements, same labels and
/// attributes (by name), same tombstones, and the same future slot-reuse
/// order. The mutation version counter is carried so staleness tracking
/// (e.g. [`crate::FrozenGraph`]) survives a restore.
///
/// [`Graph`]: crate::Graph
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct SlotDump {
    /// Nodes (handles = raw slot ids, ascending) and edges (edge-id
    /// order, endpoints = raw slot ids).
    pub doc: GraphDoc,
    /// Slot id of `doc.edges[i]`, ascending.
    pub edge_ids: Vec<u32>,
    /// Node free list, verbatim stack order (last entry pops first).
    pub free_nodes: Vec<u32>,
    /// Edge free list, verbatim stack order.
    pub free_edges: Vec<u32>,
    /// Total node slots, live + tombstoned.
    pub node_slots: u32,
    /// Total edge slots, live + tombstoned.
    pub edge_slots: u32,
    /// Mutation version counter at dump time.
    pub version: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Graph;
    use crate::value::Value;

    fn churned_graph() -> Graph {
        let mut g = Graph::new();
        let p = g.label("Person");
        let c = g.label("City");
        let lives = g.label("livesIn");
        let knows = g.label("knows");
        let name = g.attr_key("name");
        let nodes: Vec<_> = (0..8).map(|_| g.add_node(p)).collect();
        let city = g.add_node(c);
        for (i, &n) in nodes.iter().enumerate() {
            g.add_edge(n, city, lives).unwrap();
            g.set_attr(n, name, Value::from(format!("p{i}"))).unwrap();
            if i > 0 {
                g.add_edge(nodes[i - 1], n, knows).unwrap();
            }
        }
        // Leave tombstones in both slabs, in a non-trivial order.
        g.remove_node(nodes[3]).unwrap();
        g.remove_node(nodes[6]).unwrap();
        let e = g.find_edge(nodes[0], city, lives).unwrap();
        g.remove_edge(e).unwrap();
        g
    }

    #[test]
    fn dump_restore_round_trip_is_exact() {
        let g = churned_graph();
        let dump = g.dump_slots();
        let restored = Graph::restore_slots(&dump).unwrap();
        restored.check_invariants().unwrap();
        assert_eq!(restored.dump_slots(), dump);
        assert_eq!(restored.num_nodes(), g.num_nodes());
        assert_eq!(restored.num_edges(), g.num_edges());
        assert_eq!(restored.to_doc(), g.to_doc());
        assert_eq!(restored.version(), g.version());
    }

    #[test]
    fn restore_preserves_slot_reuse_order() {
        let mut g = churned_graph();
        let dump = g.dump_slots();
        let mut restored = Graph::restore_slots(&dump).unwrap();
        // Future allocations must pop the same tombstones in the same
        // order on both sides.
        for _ in 0..3 {
            let a = g.add_node_named("Fresh");
            let b = restored.add_node_named("Fresh");
            assert_eq!(a, b, "node slot reuse must match");
        }
        let ga = g.nodes().next().unwrap();
        let gb = g.nodes().nth(1).unwrap();
        for _ in 0..2 {
            let ea = g.add_edge_named(ga, gb, "rel").unwrap();
            let eb = restored.add_edge_named(ga, gb, "rel").unwrap();
            assert_eq!(ea, eb, "edge slot reuse must match");
        }
        restored.check_invariants().unwrap();
    }

    #[test]
    fn empty_graph_round_trips() {
        let g = Graph::new();
        let dump = g.dump_slots();
        assert_eq!(dump.node_slots, 0);
        let restored = Graph::restore_slots(&dump).unwrap();
        assert_eq!(restored.num_nodes(), 0);
        assert_eq!(restored.dump_slots(), dump);
    }

    #[test]
    fn restore_rejects_inconsistent_dumps() {
        let g = churned_graph();
        // A slot that is neither live nor free.
        let mut d = g.dump_slots();
        d.free_nodes.pop();
        assert!(Graph::restore_slots(&d).is_err());
        // A slot that is both live and free.
        let mut d = g.dump_slots();
        let live = d.doc.nodes[0].id;
        *d.free_nodes.last_mut().unwrap() = live;
        assert!(Graph::restore_slots(&d).is_err());
        // Handle out of range.
        let mut d = g.dump_slots();
        d.doc.nodes[0].id = d.node_slots;
        assert!(Graph::restore_slots(&d).is_err());
        // Edge referencing a dead endpoint.
        let mut d = g.dump_slots();
        let dead = d.free_nodes[0];
        d.doc.edges[0].src = dead;
        assert!(Graph::restore_slots(&d).is_err());
        // Edge id / edge count mismatch.
        let mut d = g.dump_slots();
        d.edge_ids.pop();
        assert!(Graph::restore_slots(&d).is_err());
        // Duplicate edge slot.
        let mut d = g.dump_slots();
        d.edge_ids[1] = d.edge_ids[0];
        assert!(Graph::restore_slots(&d).is_err());
    }

    #[test]
    fn serde_round_trip() {
        let dump = churned_graph().dump_slots();
        let json = serde_json::to_string(&dump).unwrap();
        let back: SlotDump = serde_json::from_str(&json).unwrap();
        assert_eq!(back, dump);
    }
}
