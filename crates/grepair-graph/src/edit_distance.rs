//! Graph edit distance (GED).
//!
//! The paper selects "best" repairs by graph-edit-distance cost. Two pieces
//! live here:
//!
//! - [`EditCosts`] — the operation cost table shared with the repair cost
//!   model in `grepair-core`.
//! - [`graph_edit_distance`] — exact GED between *small* graphs via
//!   branch-and-bound over injective node mappings. Exact GED is NP-hard;
//!   the exact solver is bounded (`node_limit`) and used for (a) validating
//!   the repair cost model in tests and (b) the F7 cost-quality experiment
//!   which compares small repaired neighbourhoods. [`ged_lower_bound`] is a
//!   cheap label-multiset bound usable at any scale.

use crate::graph::Graph;
use crate::ids::NodeId;
use rustc_hash::FxHashMap;
use serde::{Deserialize, Serialize};

/// Cost table for edit operations.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct EditCosts {
    /// Inserting a node.
    pub node_insert: f64,
    /// Deleting a node (incident-edge deletions are charged separately).
    pub node_delete: f64,
    /// Relabelling a node.
    pub node_relabel: f64,
    /// Inserting an edge.
    pub edge_insert: f64,
    /// Deleting an edge.
    pub edge_delete: f64,
    /// Relabelling an edge.
    pub edge_relabel: f64,
    /// Setting/removing/changing one attribute value.
    pub attr_change: f64,
}

impl Default for EditCosts {
    fn default() -> Self {
        Self {
            node_insert: 1.0,
            node_delete: 1.0,
            node_relabel: 1.0,
            edge_insert: 1.0,
            edge_delete: 1.0,
            edge_relabel: 1.0,
            attr_change: 0.5,
        }
    }
}

impl EditCosts {
    /// Uniform unit costs (attrs too); handy for tests.
    pub fn unit() -> Self {
        Self {
            attr_change: 1.0,
            ..Self::default()
        }
    }
}

/// Lower bound on GED from label multiset differences.
///
/// Counts, per label, the surplus of nodes/edges on either side; each
/// surplus element needs at least one insert or delete (or a relabel,
/// counted at the cheaper rate). Sound for any mapping, O(|V|+|E|).
pub fn ged_lower_bound(a: &Graph, b: &Graph, costs: &EditCosts) -> f64 {
    fn label_counts(g: &Graph, nodes: bool) -> FxHashMap<String, i64> {
        let mut m: FxHashMap<String, i64> = FxHashMap::default();
        if nodes {
            for n in g.nodes() {
                let l = g.label_name(g.node_label(n).unwrap()).to_owned();
                *m.entry(l).or_default() += 1;
            }
        } else {
            for e in g.edges() {
                let er = g.edge(e).unwrap();
                let l = g.label_name(er.label).to_owned();
                *m.entry(l).or_default() += 1;
            }
        }
        m
    }
    fn multiset_gap(a: &FxHashMap<String, i64>, b: &FxHashMap<String, i64>) -> (i64, i64) {
        // (surplus in a, surplus in b) per-label, summed.
        let mut sa = 0;
        let mut sb = 0;
        for (k, &ca) in a {
            let cb = b.get(k).copied().unwrap_or(0);
            if ca > cb {
                sa += ca - cb;
            }
        }
        for (k, &cb) in b {
            let ca = a.get(k).copied().unwrap_or(0);
            if cb > ca {
                sb += cb - ca;
            }
        }
        (sa, sb)
    }

    let (na, nb) = multiset_gap(&label_counts(a, true), &label_counts(b, true));
    let (ea, eb) = multiset_gap(&label_counts(a, false), &label_counts(b, false));
    // Matched-up surplus pairs could be relabels (cheaper of the options);
    // the remainder must be inserts/deletes.
    let node_pairs = na.min(nb);
    let node_rest_a = na - node_pairs;
    let node_rest_b = nb - node_pairs;
    let edge_pairs = ea.min(eb);
    let edge_rest_a = ea - edge_pairs;
    let edge_rest_b = eb - edge_pairs;
    node_pairs as f64 * costs.node_relabel.min(costs.node_insert + costs.node_delete)
        + node_rest_a as f64 * costs.node_delete
        + node_rest_b as f64 * costs.node_insert
        + edge_pairs as f64 * costs.edge_relabel.min(costs.edge_insert + costs.edge_delete)
        + edge_rest_a as f64 * costs.edge_delete
        + edge_rest_b as f64 * costs.edge_insert
}

/// Exact graph edit distance via branch-and-bound.
///
/// Returns `None` if either graph exceeds `node_limit` live nodes
/// (exact GED is exponential; callers should fall back to
/// [`ged_lower_bound`] or the repair-op cost model).
pub fn graph_edit_distance(
    a: &Graph,
    b: &Graph,
    costs: &EditCosts,
    node_limit: usize,
) -> Option<f64> {
    if a.num_nodes() > node_limit || b.num_nodes() > node_limit {
        return None;
    }
    let a_nodes: Vec<NodeId> = a.nodes().collect();
    let b_nodes: Vec<NodeId> = b.nodes().collect();
    let mut solver = Solver {
        a,
        b,
        costs,
        a_nodes: &a_nodes,
        b_nodes: &b_nodes,
        best: f64::INFINITY,
        mapping: vec![None; a_nodes.len()],
        b_used: vec![false; b_nodes.len()],
    };
    solver.search(0, 0.0);
    Some(solver.best)
}

struct Solver<'g> {
    a: &'g Graph,
    b: &'g Graph,
    costs: &'g EditCosts,
    a_nodes: &'g [NodeId],
    b_nodes: &'g [NodeId],
    best: f64,
    /// mapping[i] = Some(j): a_nodes[i] ↦ b_nodes[j]; None: deleted.
    mapping: Vec<Option<usize>>,
    b_used: Vec<bool>,
}

impl Solver<'_> {
    fn node_sub_cost(&self, ai: usize, bj: usize) -> f64 {
        let an = self.a_nodes[ai];
        let bn = self.b_nodes[bj];
        let mut c = 0.0;
        let al = self.a.label_name(self.a.node_label(an).unwrap());
        let bl = self.b.label_name(self.b.node_label(bn).unwrap());
        if al != bl {
            c += self.costs.node_relabel;
        }
        // Attribute symmetric difference by (key-name, value).
        let a_attrs: FxHashMap<&str, &crate::value::Value> = self
            .a
            .attrs(an)
            .iter()
            .map(|(k, v)| (self.a.attr_key_name(*k), v))
            .collect();
        let b_attrs: FxHashMap<&str, &crate::value::Value> = self
            .b
            .attrs(bn)
            .iter()
            .map(|(k, v)| (self.b.attr_key_name(*k), v))
            .collect();
        for (k, v) in &a_attrs {
            if b_attrs.get(k) != Some(v) {
                c += self.costs.attr_change;
            }
        }
        for k in b_attrs.keys() {
            if !a_attrs.contains_key(k) {
                c += self.costs.attr_change;
            }
        }
        c
    }

    /// Edge cost of the *complete* mapping.
    fn edge_cost(&self) -> f64 {
        let mut c = 0.0;
        // Consume b edges greedily per (mapped src, mapped dst, label name).
        let mut b_remaining: FxHashMap<(usize, usize, String), i64> = FxHashMap::default();
        let b_pos: FxHashMap<NodeId, usize> = self
            .b_nodes
            .iter()
            .enumerate()
            .map(|(j, &n)| (n, j))
            .collect();
        let mut b_total = 0i64;
        for e in self.b.edges() {
            let er = self.b.edge(e).unwrap();
            let key = (
                b_pos[&er.src],
                b_pos[&er.dst],
                self.b.label_name(er.label).to_owned(),
            );
            *b_remaining.entry(key).or_default() += 1;
            b_total += 1;
        }
        // Pending relabel candidates: a-edges whose endpoints map but whose
        // label has no exact b counterpart get a second chance as relabels.
        let mut relabel_pending: Vec<(usize, usize)> = Vec::new();
        let a_pos: FxHashMap<NodeId, usize> = self
            .a_nodes
            .iter()
            .enumerate()
            .map(|(i, &n)| (n, i))
            .collect();
        for e in self.a.edges() {
            let er = self.a.edge(e).unwrap();
            let (si, di) = (a_pos[&er.src], a_pos[&er.dst]);
            match (self.mapping[si], self.mapping[di]) {
                (Some(sj), Some(dj)) => {
                    let key = (sj, dj, self.a.label_name(er.label).to_owned());
                    match b_remaining.get_mut(&key) {
                        Some(n) if *n > 0 => {
                            *n -= 1;
                            b_total -= 1;
                        }
                        _ => relabel_pending.push((sj, dj)),
                    }
                }
                _ => c += self.costs.edge_delete,
            }
        }
        for (sj, dj) in relabel_pending {
            // Any leftover b edge between the same endpoints = relabel.
            let found = b_remaining
                .iter_mut()
                .find(|((s, d, _), n)| *s == sj && *d == dj && **n > 0);
            match found {
                Some((_, n)) => {
                    *n -= 1;
                    b_total -= 1;
                    c += self.costs.edge_relabel;
                }
                None => c += self.costs.edge_delete,
            }
        }
        c + b_total as f64 * self.costs.edge_insert
    }

    fn search(&mut self, i: usize, acc: f64) {
        if acc >= self.best {
            return;
        }
        if i == self.a_nodes.len() {
            let unmapped_b = self.b_used.iter().filter(|u| !**u).count();
            let total = acc + unmapped_b as f64 * self.costs.node_insert + self.edge_cost();
            if total < self.best {
                self.best = total;
            }
            return;
        }
        for j in 0..self.b_nodes.len() {
            if self.b_used[j] {
                continue;
            }
            let c = self.node_sub_cost(i, j);
            self.b_used[j] = true;
            self.mapping[i] = Some(j);
            self.search(i + 1, acc + c);
            self.mapping[i] = None;
            self.b_used[j] = false;
        }
        // Delete a_nodes[i].
        self.search(i + 1, acc + self.costs.node_delete);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn g_with(nodes: &[&str], edges: &[(usize, usize, &str)]) -> Graph {
        let mut g = Graph::new();
        let ids: Vec<NodeId> = nodes.iter().map(|l| g.add_node_named(l)).collect();
        for &(s, d, l) in edges {
            g.add_edge_named(ids[s], ids[d], l).unwrap();
        }
        g
    }

    #[test]
    fn identical_graphs_have_zero_distance() {
        let a = g_with(&["P", "P", "C"], &[(0, 1, "knows"), (0, 2, "lives")]);
        let b = g_with(&["P", "P", "C"], &[(0, 1, "knows"), (0, 2, "lives")]);
        let d = graph_edit_distance(&a, &b, &EditCosts::unit(), 8).unwrap();
        assert_eq!(d, 0.0);
    }

    #[test]
    fn distance_is_symmetric_with_unit_costs() {
        let a = g_with(&["P", "C"], &[(0, 1, "lives")]);
        let b = g_with(&["P", "P", "C"], &[(0, 2, "lives"), (1, 2, "lives")]);
        let costs = EditCosts::unit();
        let d1 = graph_edit_distance(&a, &b, &costs, 8).unwrap();
        let d2 = graph_edit_distance(&b, &a, &costs, 8).unwrap();
        assert_eq!(d1, d2);
        // One node + one edge differ.
        assert_eq!(d1, 2.0);
    }

    #[test]
    fn relabel_cheaper_than_delete_insert() {
        let a = g_with(&["P"], &[]);
        let b = g_with(&["Q"], &[]);
        let d = graph_edit_distance(&a, &b, &EditCosts::unit(), 8).unwrap();
        assert_eq!(d, 1.0, "single relabel beats delete+insert");
    }

    #[test]
    fn edge_relabel_detected() {
        let a = g_with(&["P", "P"], &[(0, 1, "knows")]);
        let b = g_with(&["P", "P"], &[(0, 1, "hates")]);
        let d = graph_edit_distance(&a, &b, &EditCosts::unit(), 8).unwrap();
        assert_eq!(d, 1.0);
    }

    #[test]
    fn attribute_differences_counted() {
        let mut a = g_with(&["P"], &[]);
        let mut b = g_with(&["P"], &[]);
        let n_a = a.nodes().next().unwrap();
        let n_b = b.nodes().next().unwrap();
        let k = a.attr_key("age");
        a.set_attr(n_a, k, crate::value::Value::Int(30)).unwrap();
        let k2 = b.attr_key("age");
        b.set_attr(n_b, k2, crate::value::Value::Int(31)).unwrap();
        let d = graph_edit_distance(&a, &b, &EditCosts::unit(), 8).unwrap();
        assert_eq!(d, 1.0, "one attr value change");
    }

    #[test]
    fn lower_bound_is_sound() {
        let a = g_with(&["P", "P", "C"], &[(0, 1, "knows")]);
        let b = g_with(&["P", "C"], &[(0, 1, "lives")]);
        let costs = EditCosts::unit();
        let lb = ged_lower_bound(&a, &b, &costs);
        let exact = graph_edit_distance(&a, &b, &costs, 8).unwrap();
        assert!(lb <= exact + 1e-9, "lb {lb} must not exceed exact {exact}");
        assert!(lb > 0.0);
    }

    #[test]
    fn node_limit_respected() {
        let mut a = Graph::new();
        for _ in 0..12 {
            a.add_node_named("P");
        }
        let b = Graph::new();
        assert!(graph_edit_distance(&a, &b, &EditCosts::unit(), 8).is_none());
    }

    #[test]
    fn empty_vs_graph_counts_inserts() {
        let a = Graph::new();
        let b = g_with(&["P", "C"], &[(0, 1, "lives")]);
        let d = graph_edit_distance(&a, &b, &EditCosts::unit(), 8).unwrap();
        assert_eq!(d, 3.0);
    }
}
