//! Property tests: the optimized matcher agrees with the brute-force
//! oracle on random graphs and patterns, under every configuration.

use grepair_graph::{FrozenGraph, Graph, NodeId, Value};
use grepair_match::{oracle, Match, MatchConfig, Matcher, Pattern, Planner, TouchSet};
use proptest::prelude::*;

const NODE_LABELS: [&str; 3] = ["P", "Q", "R"];
const EDGE_LABELS: [&str; 3] = ["a", "b", "c"];
const KEYS: [&str; 2] = ["k0", "k1"];

#[derive(Clone, Debug)]
struct RandGraph {
    labels: Vec<u8>,
    edges: Vec<(u8, u8, u8)>,
    attrs: Vec<(u8, u8, i64)>,
}

fn graph_strategy() -> impl Strategy<Value = RandGraph> {
    (
        prop::collection::vec(any::<u8>(), 1..7),
        prop::collection::vec((any::<u8>(), any::<u8>(), any::<u8>()), 0..10),
        prop::collection::vec((any::<u8>(), any::<u8>(), 0i64..4), 0..6),
    )
        .prop_map(|(labels, edges, attrs)| RandGraph {
            labels,
            edges,
            attrs,
        })
}

fn build_graph(rg: &RandGraph) -> Graph {
    let mut g = Graph::new();
    let nodes: Vec<NodeId> = rg
        .labels
        .iter()
        .map(|l| g.add_node_named(NODE_LABELS[*l as usize % NODE_LABELS.len()]))
        .collect();
    for (s, d, l) in &rg.edges {
        let s = nodes[*s as usize % nodes.len()];
        let d = nodes[*d as usize % nodes.len()];
        g.add_edge_named(s, d, EDGE_LABELS[*l as usize % EDGE_LABELS.len()])
            .unwrap();
    }
    for (n, k, v) in &rg.attrs {
        let n = nodes[*n as usize % nodes.len()];
        let k = g.attr_key(KEYS[*k as usize % KEYS.len()]);
        g.set_attr(n, k, Value::Int(*v)).unwrap();
    }
    g
}

#[derive(Clone, Debug)]
struct RandPattern {
    labels: Vec<Option<u8>>,
    edges: Vec<(u8, u8, Option<u8>)>,
    neg_edges: Vec<(u8, u8, Option<u8>)>,
    eq_constraint: Option<(u8, u8, u8, u8)>,
    no_out: Option<(u8, Option<u8>)>,
}

fn pattern_strategy() -> impl Strategy<Value = RandPattern> {
    (
        prop::collection::vec(prop::option::of(any::<u8>()), 1..4),
        prop::collection::vec((any::<u8>(), any::<u8>(), prop::option::of(any::<u8>())), 0..4),
        prop::collection::vec((any::<u8>(), any::<u8>(), prop::option::of(any::<u8>())), 0..2),
        prop::option::of((any::<u8>(), any::<u8>(), any::<u8>(), any::<u8>())),
        prop::option::of((any::<u8>(), prop::option::of(any::<u8>()))),
    )
        .prop_map(|(labels, edges, neg_edges, eq_constraint, no_out)| RandPattern {
            labels,
            edges,
            neg_edges,
            eq_constraint,
            no_out,
        })
}

fn build_pattern(rp: &RandPattern) -> Pattern {
    let mut b = Pattern::builder();
    let n = rp.labels.len();
    let vars: Vec<_> = rp
        .labels
        .iter()
        .enumerate()
        .map(|(i, l)| {
            b.node(
                &format!("v{i}"),
                l.map(|l| NODE_LABELS[l as usize % NODE_LABELS.len()]),
            )
        })
        .collect();
    for (s, d, l) in &rp.edges {
        let s = vars[*s as usize % n];
        let d = vars[*d as usize % n];
        match l {
            Some(l) => b.edge(s, d, EDGE_LABELS[*l as usize % EDGE_LABELS.len()]),
            None => b.edge_any(s, d),
        };
    }
    for (s, d, l) in &rp.neg_edges {
        let s = vars[*s as usize % n];
        let d = vars[*d as usize % n];
        match l {
            Some(l) => b.neg_edge(s, d, EDGE_LABELS[*l as usize % EDGE_LABELS.len()]),
            None => b.neg_edge_any(s, d),
        };
    }
    if let Some((a, ka, bb, kb)) = &rp.eq_constraint {
        b.attr_eq_var(
            vars[*a as usize % n],
            KEYS[*ka as usize % KEYS.len()],
            vars[*bb as usize % n],
            KEYS[*kb as usize % KEYS.len()],
        );
    }
    if let Some((v, l)) = &rp.no_out {
        b.no_out_edge(
            vars[*v as usize % n],
            l.map(|l| EDGE_LABELS[l as usize % EDGE_LABELS.len()]),
        );
    }
    b.build().unwrap()
}

fn node_sets(ms: &[Match]) -> Vec<Vec<NodeId>> {
    let mut v: Vec<Vec<NodeId>> = ms.iter().map(|m| m.nodes.clone()).collect();
    v.sort();
    v.dedup();
    v
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// The optimized matcher finds exactly the oracle's match set.
    #[test]
    fn matcher_agrees_with_oracle(rg in graph_strategy(), rp in pattern_strategy()) {
        let g = build_graph(&rg);
        let p = build_pattern(&rp);
        let expected = node_sets(&oracle::brute_force_matches(&g, &p));
        let got = node_sets(&Matcher::new(&g).find_all(&p));
        prop_assert_eq!(got, expected);
    }

    /// Every ablated configuration still finds the oracle's match set.
    #[test]
    fn all_configs_agree_with_oracle(rg in graph_strategy(), rp in pattern_strategy()) {
        let g = build_graph(&rg);
        let p = build_pattern(&rp);
        let expected = node_sets(&oracle::brute_force_matches(&g, &p));
        let full = MatchConfig::default();
        for cfg in [
            MatchConfig::naive(),
            MatchConfig { use_label_index: false, ..full },
            MatchConfig { use_signature: false, ..full },
            MatchConfig { use_degree_filter: false, ..full },
            MatchConfig { use_attr_index: false, ..full },
            MatchConfig { connected_order: false, ..full },
        ] {
            let got = node_sets(&Matcher::with_config(&g, cfg).find_all(&p));
            prop_assert_eq!(got, expected.clone(), "config {:?}", cfg);
        }
    }

    /// `find_touching` over the full node set equals `find_all`, with no
    /// duplicates; over a subset it returns exactly the matches whose
    /// image intersects the subset.
    #[test]
    fn find_touching_is_exact(rg in graph_strategy(), rp in pattern_strategy(), mask in any::<u64>()) {
        let g = build_graph(&rg);
        let p = build_pattern(&rp);
        let m = Matcher::new(&g);
        let all = m.find_all(&p);

        let full: TouchSet = g.nodes().collect();
        let touching_all = m.find_touching(&p, &full);
        prop_assert_eq!(touching_all.len(), all.len(), "dedup violated");
        prop_assert_eq!(node_sets(&touching_all), node_sets(&all));

        let subset: TouchSet = g
            .nodes()
            .enumerate()
            .filter(|(i, _)| mask & (1 << (i % 64)) != 0)
            .map(|(_, n)| n)
            .collect();
        let touching = m.find_touching(&p, &subset);
        let expected: Vec<_> = all
            .iter()
            .filter(|m| m.nodes.iter().any(|n| subset.contains(n)))
            .cloned()
            .collect();
        prop_assert_eq!(node_sets(&touching), node_sets(&expected));
        prop_assert_eq!(touching.len(), expected.len());
    }

    /// The parallel batch path returns exactly the sequential match set
    /// — same matches, same order — and therefore also agrees with the
    /// brute-force oracle.
    #[cfg(feature = "parallel")]
    #[test]
    fn par_find_all_agrees_with_find_all_and_oracle(rg in graph_strategy(), rp in pattern_strategy()) {
        let g = build_graph(&rg);
        let p = build_pattern(&rp);
        let m = Matcher::new(&g);
        let seq = m.find_all(&p);
        let par = m.par_find_all(&p);
        prop_assert_eq!(&par, &seq, "parallel and sequential match sets differ");
        let expected = node_sets(&oracle::brute_force_matches(&g, &p));
        prop_assert_eq!(node_sets(&par), expected);
    }

    /// Matching over a frozen CSR snapshot returns exactly the live
    /// matcher's match sequence — same assignments, same witness edges,
    /// same order — under every configuration, and therefore also agrees
    /// with the brute-force oracle. Exercises the tombstone-compaction
    /// path by deleting some nodes before freezing.
    #[test]
    fn frozen_matcher_equals_live_matcher(
        rg in graph_strategy(),
        rp in pattern_strategy(),
        kill_mask in any::<u8>(),
    ) {
        let mut g = build_graph(&rg);
        // Punch tombstones so the snapshot must compact.
        let victims: Vec<NodeId> = g
            .nodes()
            .enumerate()
            .filter(|(i, _)| kill_mask & (1 << (i % 8)) != 0 && i % 3 == 0)
            .map(|(_, n)| n)
            .collect();
        for v in victims {
            g.remove_node(v).unwrap();
        }
        let p = build_pattern(&rp);
        let frozen = FrozenGraph::freeze(&g);
        frozen.check_against(&g).unwrap();

        let full = MatchConfig::default();
        for cfg in [
            full,
            MatchConfig::naive(),
            MatchConfig { use_label_index: false, ..full },
            MatchConfig { connected_order: false, ..full },
        ] {
            let live = Matcher::with_config(&g, cfg).find_all(&p);
            let cold = Matcher::with_config(&frozen, cfg).find_all(&p);
            prop_assert_eq!(&live, &cold, "config {:?}", cfg);
        }
        let expected = node_sets(&oracle::brute_force_matches(&g, &p));
        prop_assert_eq!(node_sets(&Matcher::new(&frozen).find_all(&p)), expected);
    }

    /// The parallel batch path over a frozen snapshot also returns the
    /// exact sequential match sequence.
    #[cfg(feature = "parallel")]
    #[test]
    fn frozen_par_find_all_equals_live_sequential(rg in graph_strategy(), rp in pattern_strategy()) {
        let g = build_graph(&rg);
        let p = build_pattern(&rp);
        let frozen = FrozenGraph::freeze(&g);
        let live_seq = Matcher::new(&g).find_all(&p);
        let frozen_par = Matcher::new(&frozen).par_find_all(&p);
        prop_assert_eq!(&frozen_par, &live_seq);
    }

    /// Morsel-driven parallel matching is byte-identical to the serial
    /// matcher across thread counts {1, 2, 8}, on live, frozen, and
    /// tombstoned graphs — both the single-pattern entry and the
    /// multi-pattern sweep (which schedules all patterns' morsels on
    /// one shared queue).
    #[cfg(feature = "parallel")]
    #[test]
    fn morsel_parallel_byte_identical_across_thread_counts(
        rg in graph_strategy(),
        rp in pattern_strategy(),
        rp2 in pattern_strategy(),
        kill_mask in any::<u8>(),
    ) {
        let mut g = build_graph(&rg);
        // Punch tombstones so the live graph has dead slots.
        let victims: Vec<NodeId> = g
            .nodes()
            .enumerate()
            .filter(|(i, _)| kill_mask & (1 << (i % 8)) != 0 && i % 3 == 0)
            .map(|(_, n)| n)
            .collect();
        for v in victims {
            g.remove_node(v).unwrap();
        }
        let p = build_pattern(&rp);
        let p2 = build_pattern(&rp2);
        let m = Matcher::new(&g);
        let seq = m.find_all(&p);
        let seq2 = m.find_all(&p2);
        let frozen = FrozenGraph::freeze(&g);
        let fm = Matcher::new(&frozen);
        for threads in [1usize, 2, 8] {
            let pool = rayon::ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .unwrap();
            let (par, many, fpar) = pool.install(|| {
                (
                    m.par_find_all(&p),
                    m.par_find_all_many(&[&p, &p2]),
                    fm.par_find_all(&p),
                )
            });
            prop_assert_eq!(&par, &seq, "live single-pattern, {} threads", threads);
            prop_assert_eq!(&many[0], &seq, "sweep slot 0, {} threads", threads);
            prop_assert_eq!(&many[1], &seq2, "sweep slot 1, {} threads", threads);
            prop_assert_eq!(&fpar, &seq, "frozen, {} threads", threads);
        }
    }

    /// Statistics-driven (cost-based) plans enumerate exactly the match
    /// set of the declaration-order naive plan — the F5 ablation
    /// extended to the planner: join order is a pure performance choice.
    /// Also pins the count-only emission path and plan-cache stability
    /// (repeated runs return byte-identical sequences).
    #[test]
    fn cost_based_plans_agree_with_declaration_order(rg in graph_strategy(), rp in pattern_strategy()) {
        let g = build_graph(&rg);
        let p = build_pattern(&rp);
        let naive = node_sets(&Matcher::with_config(&g, MatchConfig::naive()).find_all(&p));

        let planner = Planner::new();
        planner.refresh_stats(&g);
        let cost = Matcher::with_planner(&g, MatchConfig::default(), &planner);
        let first = cost.find_all(&p);
        prop_assert_eq!(node_sets(&first), naive);
        prop_assert_eq!(cost.count(&p), first.len());
        prop_assert_eq!(cost.exists(&p), !first.is_empty());
        prop_assert_eq!(&cost.find_all(&p), &first, "cached plan must replay identically");

        // Frozen view under the same planner: identical sequence too.
        let frozen = FrozenGraph::freeze(&g);
        let frozen_cost = Matcher::with_planner(&frozen, MatchConfig::default(), &planner);
        prop_assert_eq!(&frozen_cost.find_all(&p), &first);
    }

    /// `find_touching` through the planner's per-anchor plan cache
    /// returns exactly the planner-less matcher's result.
    #[test]
    fn planner_find_touching_matches_plain(
        rg in graph_strategy(),
        rp in pattern_strategy(),
        mask in any::<u64>(),
    ) {
        let g = build_graph(&rg);
        let p = build_pattern(&rp);
        let subset: TouchSet = g
            .nodes()
            .enumerate()
            .filter(|(i, _)| mask & (1 << (i % 64)) != 0)
            .map(|(_, n)| n)
            .collect();
        let plain = Matcher::new(&g).find_touching(&p, &subset);
        let planner = Planner::new();
        planner.refresh_stats(&g);
        let cached = Matcher::with_planner(&g, MatchConfig::default(), &planner);
        // Twice: the second call is served from the per-anchor cache.
        prop_assert_eq!(node_sets(&cached.find_touching(&p, &subset)), node_sets(&plain));
        prop_assert_eq!(node_sets(&cached.find_touching(&p, &subset)), node_sets(&plain));
    }

    /// Stats invalidation: mutate → version bump → refreshed statistics →
    /// plans recompiled against fresh estimates, still oracle-exact.
    #[test]
    fn stats_refresh_after_mutation_stays_exact(
        rg in graph_strategy(),
        rp in pattern_strategy(),
        kill_mask in any::<u8>(),
    ) {
        let mut g = build_graph(&rg);
        let p = build_pattern(&rp);
        let planner = Planner::new();
        planner.refresh_stats(&g);
        let v0 = planner.stats().unwrap().version;
        let compiles_before = {
            let m = Matcher::with_planner(&g, MatchConfig::default(), &planner);
            m.find_all(&p);
            planner.compile_count()
        };

        // Mutate: delete some nodes (version bumps on each mutation).
        let victims: Vec<NodeId> = g
            .nodes()
            .enumerate()
            .filter(|(i, _)| kill_mask & (1 << (i % 8)) != 0 && i % 2 == 0)
            .map(|(_, n)| n)
            .collect();
        let mutated = !victims.is_empty();
        for v in victims {
            g.remove_node(v).unwrap();
        }
        if mutated {
            prop_assert!(planner.refresh_stats(&g), "version bump must force recompute");
            prop_assert!(planner.stats().unwrap().version > v0);
        }
        let m = Matcher::with_planner(&g, MatchConfig::default(), &planner);
        let got = node_sets(&m.find_all(&p));
        let expected = node_sets(&oracle::brute_force_matches(&g, &p));
        prop_assert_eq!(got, expected);
        if mutated {
            prop_assert!(
                planner.compile_count() > compiles_before,
                "fresh statistics epoch must compile a fresh plan"
            );
        }
    }

    /// Adaptive re-planning never changes results: with deliberately
    /// stale statistics (snapshot taken before a second graph's worth of
    /// nodes/edges lands) and a hair-trigger blow-up factor, the
    /// adaptive matcher — re-plan or not — enumerates exactly the oracle
    /// match set, and a re-planned `count` agrees with `find_all`.
    #[test]
    fn adaptive_replan_preserves_match_sets(
        rg in graph_strategy(),
        extra in graph_strategy(),
        rp in pattern_strategy(),
    ) {
        let mut g = build_graph(&rg);
        let planner = Planner::new();
        planner.refresh_stats(&g);
        // Stale-ify: append the second random graph's population without
        // telling the planner.
        let base: Vec<NodeId> = g.nodes().collect();
        let fresh: Vec<NodeId> = extra
            .labels
            .iter()
            .map(|l| g.add_node_named(NODE_LABELS[*l as usize % NODE_LABELS.len()]))
            .collect();
        let all: Vec<NodeId> = base.iter().chain(fresh.iter()).copied().collect();
        for (s, d, l) in &extra.edges {
            let s = all[*s as usize % all.len()];
            let d = all[*d as usize % all.len()];
            g.add_edge_named(s, d, EDGE_LABELS[*l as usize % EDGE_LABELS.len()]).unwrap();
        }
        let p = build_pattern(&rp);
        let cfg = MatchConfig { adaptive_factor: 1.5, ..MatchConfig::default() };
        let m = Matcher::with_planner(&g, cfg, &planner);
        let got = node_sets(&m.find_all(&p));
        let expected = node_sets(&oracle::brute_force_matches(&g, &p));
        prop_assert_eq!(got, expected);
        prop_assert_eq!(m.count(&p), expected.len());
        prop_assert!(m.exists(&p) != expected.is_empty());
    }

    /// Planner statistics adopted from a maintained graph are
    /// indistinguishable from recomputed ones: identical match sets,
    /// and the adoption is flagged as such.
    #[test]
    fn maintained_stats_adoption_matches_oracle(
        rg in graph_strategy(),
        rp in pattern_strategy(),
    ) {
        let mut g = build_graph(&rg);
        g.maintain_stats(true);
        let planner = Planner::new();
        prop_assert!(planner.refresh_stats(&g));
        prop_assert_eq!(planner.stats_source(), Some(grepair_match::StatsSource::Maintained));
        prop_assert_eq!(planner.stats().unwrap().version, g.version());
        let p = build_pattern(&rp);
        let m = Matcher::with_planner(&g, MatchConfig::default(), &planner);
        let got = node_sets(&m.find_all(&p));
        let expected = node_sets(&oracle::brute_force_matches(&g, &p));
        prop_assert_eq!(got, expected);
    }

    /// Witness edges are always live, correctly labelled, and connect the
    /// matched endpoints.
    #[test]
    fn witnesses_are_valid(rg in graph_strategy(), rp in pattern_strategy()) {
        let g = build_graph(&rg);
        let p = build_pattern(&rp);
        for m in Matcher::new(&g).find_all(&p) {
            for (i, pe) in p.edges.iter().enumerate() {
                let er = g.edge(m.edges[i]).unwrap();
                prop_assert_eq!(er.src, m.nodes[pe.src.index()]);
                prop_assert_eq!(er.dst, m.nodes[pe.dst.index()]);
                if let Some(want) = &pe.label {
                    prop_assert_eq!(g.label_name(er.label), want.as_str());
                }
            }
        }
    }
}
