//! The statistics-driven planning subsystem behind the matcher.
//!
//! A [`Planner`] bundles three things the per-call [`crate::Matcher`]
//! cannot own itself (it borrows a graph and dies with the borrow):
//!
//! - a **statistics slot** — an [`CardinalityStats`] snapshot computed
//!   from the live graph, refreshed explicitly by the caller. The
//!   matcher's cost model reads it to order joins by estimated extension
//!   fan-out instead of raw node-label counts.
//! - a **plan cache** — compiled patterns keyed by (pattern fingerprint,
//!   anchor variable, label/attr-key vocabulary sizes, statistics epoch,
//!   matcher configuration). Interners are append-only, so equal
//!   vocabulary sizes guarantee the cached label resolutions are still
//!   valid; the statistics epoch only bumps when statistics are
//!   recomputed, so plans survive graph mutations between refreshes
//!   (stale statistics degrade plan quality, never correctness).
//! - a **search-state pool** — backtracking buffers reused across calls,
//!   so a fixpoint loop issuing thousands of small `find_touching`
//!   queries stops paying per-call allocations.
//!
//! The planner is `Sync`: full scans fan out over rayon workers and every
//! worker shares the same cache and pool behind short-lived locks.
//!
//! # One graph lineage per planner
//!
//! A planner must only ever serve matchers over **one graph's lineage**
//! — the graph itself across mutations, and [`FrozenGraph`] snapshots
//! taken from it. The cache-validity argument (append-only interners ⇒
//! equal vocabulary sizes prove cached label resolutions still hold)
//! only works within a lineage; two *unrelated* graphs can intern the
//! same names in different orders while agreeing on vocabulary sizes,
//! and a plan cached against one would silently resolve the wrong
//! `LabelId`s on the other. Use a fresh planner per graph — they are
//! cheap to create (the engine builds one per repair run).
//!
//! [`FrozenGraph`]: grepair_graph::FrozenGraph
//!
//! ```
//! use grepair_graph::Graph;
//! use grepair_match::{MatchConfig, Matcher, Pattern, Planner};
//!
//! let mut g = Graph::new();
//! let ann = g.add_node_named("Person");
//! let oslo = g.add_node_named("City");
//! g.add_edge_named(ann, oslo, "livesIn").unwrap();
//!
//! let planner = Planner::new();
//! planner.refresh_stats(&g);
//!
//! let mut b = Pattern::builder();
//! let x = b.node("x", Some("Person"));
//! let c = b.node("c", Some("City"));
//! b.edge(x, c, "livesIn");
//! let pattern = b.build().unwrap();
//!
//! let m = Matcher::with_planner(&g, MatchConfig::default(), &planner);
//! assert_eq!(m.find_all(&pattern).len(), 1);
//! m.find_all(&pattern); // second call: served from the plan cache
//! assert_eq!(planner.compile_count(), 1);
//! assert_eq!(planner.cache_hit_count(), 1);
//! ```

use crate::matcher::{Compiled, Matcher, SearchState, TouchSet};
use crate::pattern::Pattern;
use crate::view::GraphView;
use grepair_graph::{CardinalityStats, Graph};
use grepair_obs as obs;
use rustc_hash::FxHashMap;
use std::sync::{Arc, Mutex};

/// Cache key of one compiled plan. See the module docs for why each
/// component is sufficient for validity.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
struct PlanKey {
    /// Structural pattern fingerprint ([`Pattern::fingerprint`]).
    fingerprint: u64,
    /// Anchor variable (`usize::MAX` = unanchored full scan).
    anchor: usize,
    /// Label vocabulary size at compile time.
    labels: usize,
    /// Attribute-key vocabulary size at compile time.
    attr_keys: usize,
    /// Statistics epoch the plan order was derived from.
    stats_epoch: u64,
    /// Matcher configuration bits.
    cfg: u8,
}

/// Soft bound on cached plans; hit only by degenerate workloads (the cap
/// clears the map rather than evicting, keeping the common path lock-free
/// of bookkeeping).
const MAX_CACHED_PLANS: usize = 4096;

/// Retained pooled search states.
const MAX_POOLED_STATES: usize = 64;

/// Relative node/edge-count drift beyond which
/// [`Planner::refresh_if_drifted`] considers statistics stale.
const DRIFT_RATIO: f64 = 0.1;

/// How the planner's current statistics snapshot was obtained — surfaced
/// by `explain` so plan regressions are diagnosable from the terminal.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StatsSource {
    /// Adopted from [`Graph::maintained_stats`] — the graph kept them
    /// current on its write path, so the refresh cost only the clone of
    /// the (label/triple/attr-key–sized, not graph-sized) counter maps.
    Maintained,
    /// Recomputed by a full `O(V + E)` pass over the graph.
    Computed,
}

impl std::fmt::Display for StatsSource {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            StatsSource::Maintained => "maintained",
            StatsSource::Computed => "recomputed",
        })
    }
}

#[derive(Default)]
struct StatsSlot {
    stats: Option<Arc<CardinalityStats>>,
    /// Bumped on every *refresh*; part of every plan-cache key.
    /// [`Planner::patch_stats`] deliberately installs a snapshot
    /// without bumping it, so stats installs and epoch bumps are not
    /// 1:1 — the epoch tracks cache retirements, not snapshot changes.
    epoch: u64,
    source: Option<StatsSource>,
}

/// Obtain a statistics snapshot for `g`: adopt the write-path–maintained
/// one when present, recompute otherwise — the one acquisition policy
/// shared by refreshes and adaptive patches.
fn snapshot_from(g: &Graph) -> (CardinalityStats, StatsSource) {
    match g.maintained_stats() {
        Some(ms) => (ms.clone(), StatsSource::Maintained),
        None => (CardinalityStats::compute(g), StatsSource::Computed),
    }
}

/// Relative node/edge-count drift of `g` against a statistics snapshot
/// (the larger of the two ratios) — the one definition shared by the
/// [`Planner::refresh_if_drifted`] gate and the [`Planner::drift`]
/// diagnostic.
fn drift_ratio(s: &CardinalityStats, g: &Graph) -> f64 {
    let d = |old: u64, new: u64| (new as f64 - old as f64).abs() / (old.max(1) as f64);
    d(s.nodes, g.num_nodes() as u64).max(d(s.edges, g.num_edges() as u64))
}

/// Shared planning context: cardinality statistics, a compiled-plan
/// cache, and a search-state pool. See the module docs.
pub struct Planner {
    cache: Mutex<FxHashMap<PlanKey, Option<Arc<Compiled>>>>,
    stats: Mutex<StatsSlot>,
    /// Per-planner children of the global `planner.*` registry counters:
    /// reading one gives this planner's own count (the per-run delta
    /// semantics `RepairReport` depends on) while every increment also
    /// propagates into the process-wide metrics registry.
    compiles: obs::Counter,
    hits: obs::Counter,
    replans: obs::Counter,
    /// Latency of cache-miss compiles (recorded only while telemetry is
    /// enabled).
    compile_ns: Arc<obs::Histogram>,
    pool: Mutex<Vec<SearchState>>,
}

impl Default for Planner {
    fn default() -> Self {
        Planner {
            cache: Mutex::default(),
            stats: Mutex::default(),
            compiles: obs::counter("planner.pattern_compiles").child(),
            hits: obs::counter("planner.plan_cache_hits").child(),
            replans: obs::counter("planner.plan_replans").child(),
            compile_ns: obs::histogram("plan.compile_ns"),
            pool: Mutex::default(),
        }
    }
}

impl Planner {
    /// Empty planner: no statistics yet (matchers fall back to the
    /// greedy candidate-count order), empty cache and pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Bring statistics up to `g`'s current version unless the snapshot
    /// already matches `g.version()`. Returns whether a refresh happened.
    /// A refresh bumps the statistics epoch, retiring every cached plan
    /// (their join orders were derived from the old estimates).
    ///
    /// For graphs in [`Graph::maintain_stats`] mode the refresh *adopts*
    /// the write-path–maintained snapshot — a clone of counter maps
    /// sized by the label/triple/attr-key vocabularies, not by the
    /// graph — retiring the full `O(V + E)` recompute from the hot
    /// path. Unmaintained graphs still pay the one-pass compute.
    pub fn refresh_stats(&self, g: &Graph) -> bool {
        {
            let slot = self.stats.lock().unwrap();
            if let Some(s) = &slot.stats {
                if s.version == g.version() {
                    return false;
                }
            }
        }
        self.install_from(g);
        true
    }

    /// Like [`Planner::refresh_stats`], but tolerant of small drift:
    /// only refreshes when no snapshot exists yet or the live node/edge
    /// counts moved more than 10% from the snapshot. The fixpoint
    /// engines call this between rounds — retiring every cached plan per
    /// mutation would defeat the cache, while estimates a few percent
    /// stale still pick the same join orders. (For maintained graphs the
    /// tolerance is purely a cache-retention policy; the refresh itself
    /// is already cheap.)
    pub fn refresh_if_drifted(&self, g: &Graph) -> bool {
        {
            let slot = self.stats.lock().unwrap();
            if let Some(s) = &slot.stats {
                if s.version == g.version() {
                    return false;
                }
                if drift_ratio(s, g) <= DRIFT_RATIO {
                    return false;
                }
            }
        }
        self.install_from(g);
        true
    }

    fn install_from(&self, g: &Graph) {
        let (stats, source) = snapshot_from(g);
        self.install_stats(stats, source);
    }

    /// Update the statistics snapshot to `g`'s current truth **without**
    /// bumping the epoch or touching the plan cache — the adaptive
    /// re-plan path. An epoch bump would retire every cached plan, but
    /// by the cache-validity design stale statistics only ever affect
    /// plan *order*: the other patterns' warm plans are still correct
    /// and keeping them is the whole point of always-warm planning. The
    /// one blown pattern's cache entry is replaced separately via
    /// [`Planner::store_plan`]; the next epoch bump (a drift refresh)
    /// re-derives everything from one consistent snapshot again.
    ///
    /// Returns whether the snapshot actually changed.
    pub(crate) fn patch_stats(&self, g: &Graph) -> bool {
        {
            let slot = self.stats.lock().unwrap();
            if let Some(s) = &slot.stats {
                if s.version == g.version() {
                    return false;
                }
            }
        }
        let (stats, source) = snapshot_from(g);
        let mut slot = self.stats.lock().unwrap();
        slot.stats = Some(Arc::new(stats));
        slot.source = Some(source);
        true
    }

    /// The cache key for `(pattern, anchor)` under `m`'s view and
    /// configuration — the one construction shared by lookup
    /// ([`Planner::compiled`]) and replacement ([`Planner::store_plan`]).
    fn plan_key<G: GraphView + ?Sized>(
        &self,
        m: &Matcher<'_, G>,
        pattern: &Pattern,
        anchor: Option<usize>,
    ) -> PlanKey {
        PlanKey {
            fingerprint: pattern.fingerprint(),
            anchor: anchor.unwrap_or(usize::MAX),
            labels: m.graph().num_labels(),
            attr_keys: m.graph().num_attr_keys(),
            stats_epoch: self.stats.lock().unwrap().epoch,
            cfg: m.config_bits(),
        }
    }

    /// Replace the cached plan for `(pattern, anchor)` under `m`'s view
    /// and configuration — the adaptive re-plan installs its corrected
    /// plan here so subsequent calls use it directly instead of
    /// re-tripping the monitor on the old one.
    pub(crate) fn store_plan<G: GraphView + ?Sized>(
        &self,
        m: &Matcher<'_, G>,
        pattern: &Pattern,
        anchor: Option<usize>,
        comp: Arc<Compiled>,
    ) {
        let key = self.plan_key(m, pattern, anchor);
        self.cache.lock().unwrap().insert(key, Some(comp));
    }

    fn install_stats(&self, stats: CardinalityStats, source: StatsSource) {
        let mut slot = self.stats.lock().unwrap();
        slot.stats = Some(Arc::new(stats));
        slot.epoch += 1;
        slot.source = Some(source);
        drop(slot);
        // Old-epoch plans can never be hit again; drop them eagerly.
        self.cache.lock().unwrap().clear();
    }

    /// The current statistics snapshot, if any.
    pub fn stats(&self) -> Option<Arc<CardinalityStats>> {
        self.stats.lock().unwrap().stats.clone()
    }

    /// The current statistics epoch (0 = never refreshed). Every refresh
    /// bumps it; plans are cached per epoch.
    pub fn stats_epoch(&self) -> u64 {
        self.stats.lock().unwrap().epoch
    }

    /// How the current statistics snapshot was obtained.
    pub fn stats_source(&self) -> Option<StatsSource> {
        self.stats.lock().unwrap().source
    }

    /// Relative node/edge-count drift of `g` against the current
    /// snapshot; `None` without a snapshot. This is the same measure
    /// [`Planner::refresh_if_drifted`] gates on (tolerance 10%).
    pub fn drift(&self, g: &Graph) -> Option<f64> {
        let slot = self.stats.lock().unwrap();
        slot.stats.as_ref().map(|s| drift_ratio(s, g))
    }

    /// Patterns actually compiled through this planner.
    pub fn compile_count(&self) -> u64 {
        self.compiles.get()
    }

    /// Compiles avoided by the plan cache.
    pub fn cache_hit_count(&self) -> u64 {
        self.hits.get()
    }

    /// Adaptive re-plans triggered through this planner (a matcher
    /// observed a frontier blowing past its estimate, aborted, and
    /// re-planned with patched statistics).
    pub fn replan_count(&self) -> u64 {
        self.replans.get()
    }

    pub(crate) fn note_replan(&self) {
        self.replans.inc();
    }

    /// Count a compile that happened outside [`Planner::compiled`] (the
    /// adaptive re-plan path) so [`Planner::compile_count`] reflects all
    /// real compilation work.
    pub(crate) fn note_compile(&self) {
        self.compiles.inc();
    }

    /// Cached-or-fresh compile of `pattern` for `m`'s view and
    /// configuration. `None` is cached too — a pattern unmatchable under
    /// the current vocabulary stays unmatchable until the vocabulary
    /// grows, which changes the key.
    pub(crate) fn compiled<G: GraphView + ?Sized>(
        &self,
        m: &Matcher<'_, G>,
        pattern: &Pattern,
        anchor: Option<usize>,
        touched: &TouchSet,
    ) -> Option<Arc<Compiled>> {
        let key = self.plan_key(m, pattern, anchor);
        if let Some(found) = self.cache.lock().unwrap().get(&key) {
            self.hits.inc();
            return found.clone();
        }
        self.compiles.inc();
        let _span = obs::span("plan.compile", "plan");
        let started = obs::timer();
        let comp = m.compile(pattern, anchor, touched).map(Arc::new);
        obs::record_since(&self.compile_ns, started);
        let mut cache = self.cache.lock().unwrap();
        if cache.len() >= MAX_CACHED_PLANS {
            cache.clear();
        }
        cache.insert(key, comp.clone());
        comp
    }

    pub(crate) fn pool_pop(&self) -> Option<SearchState> {
        self.pool.lock().unwrap().pop()
    }

    pub(crate) fn pool_push(&self, st: SearchState) {
        let mut pool = self.pool.lock().unwrap();
        if pool.len() < MAX_POOLED_STATES {
            pool.push(st);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matcher::{MatchConfig, Matcher, PlanAccess};

    fn lives_pattern() -> Pattern {
        let mut b = Pattern::builder();
        let x = b.node("x", Some("Person"));
        let c = b.node("c", Some("City"));
        b.edge(x, c, "livesIn");
        b.build().unwrap()
    }

    fn sample() -> Graph {
        let mut g = Graph::new();
        let a = g.add_node_named("Person");
        let b = g.add_node_named("Person");
        let c = g.add_node_named("City");
        g.add_edge_named(a, c, "livesIn").unwrap();
        g.add_edge_named(b, c, "livesIn").unwrap();
        g
    }

    #[test]
    fn plans_are_cached_and_counted() {
        let g = sample();
        let planner = Planner::new();
        planner.refresh_stats(&g);
        let m = Matcher::with_planner(&g, MatchConfig::default(), &planner);
        let p = lives_pattern();
        assert_eq!(m.find_all(&p).len(), 2);
        assert_eq!(m.find_all(&p).len(), 2);
        assert_eq!(m.count(&p), 2);
        assert_eq!(planner.compile_count(), 1);
        assert_eq!(planner.cache_hit_count(), 2);
    }

    #[test]
    fn unmatchable_compiles_are_cached_until_vocabulary_grows() {
        let mut g = Graph::new();
        g.add_node_named("City");
        let planner = Planner::new();
        planner.refresh_stats(&g);
        let p = lives_pattern(); // "Person" not interned yet
        {
            let m = Matcher::with_planner(&g, MatchConfig::default(), &planner);
            assert!(m.find_all(&p).is_empty());
            assert!(m.find_all(&p).is_empty());
        }
        assert_eq!(planner.compile_count(), 1);
        assert_eq!(planner.cache_hit_count(), 1);

        // Interning the missing vocabulary changes the key: the stale
        // "unmatchable" verdict cannot be served again.
        let a = g.add_node_named("Person");
        let c = g.nodes().next().unwrap();
        g.add_edge_named(a, c, "livesIn").unwrap();
        let m = Matcher::with_planner(&g, MatchConfig::default(), &planner);
        assert_eq!(m.find_all(&p).len(), 1);
        assert_eq!(planner.compile_count(), 2);
    }

    #[test]
    fn stats_refresh_bumps_epoch_and_retires_plans() {
        let mut g = sample();
        let planner = Planner::new();
        planner.refresh_stats(&g);
        let v0 = planner.stats().unwrap().version;
        let p = lives_pattern();
        {
            let m = Matcher::with_planner(&g, MatchConfig::default(), &planner);
            assert_eq!(m.find_all(&p).len(), 2);
        }
        assert_eq!(planner.compile_count(), 1);

        // Same version: refresh is a no-op.
        assert!(!planner.refresh_stats(&g));

        // Mutate → version bump → forced refresh recomputes and retires
        // the cached plan (fresh compile on next use).
        let d = g.add_node_named("Person");
        let c = g.nodes().nth(2).unwrap();
        g.add_edge_named(d, c, "livesIn").unwrap();
        assert!(planner.refresh_stats(&g));
        let s = planner.stats().unwrap();
        assert!(s.version > v0);
        assert_eq!(s.nodes, 4);
        let m = Matcher::with_planner(&g, MatchConfig::default(), &planner);
        assert_eq!(m.find_all(&p).len(), 3);
        assert_eq!(planner.compile_count(), 2, "old-epoch plan must not be reused");
    }

    #[test]
    fn drift_refresh_tolerates_small_changes() {
        let mut g = Graph::new();
        for _ in 0..100 {
            g.add_node_named("P");
        }
        let planner = Planner::new();
        assert!(planner.refresh_if_drifted(&g), "first refresh always computes");
        // A couple of mutations: within tolerance, keep the snapshot.
        g.add_node_named("P");
        assert!(!planner.refresh_if_drifted(&g));
        // Large drift: recompute.
        for _ in 0..50 {
            g.add_node_named("P");
        }
        assert!(planner.refresh_if_drifted(&g));
        assert_eq!(planner.stats().unwrap().nodes, 151);
    }

    #[test]
    fn cost_plan_orders_by_fanout_and_explains() {
        // `rare` edges are 100x scarcer than `follows`; the cost model
        // must root the join at a variable whose extension kills the
        // frontier, while the greedy order starts at declaration order
        // (all labels have identical counts).
        let mut g = Graph::new();
        let p = g.label("P");
        let follows = g.label("follows");
        let rare = g.label("rare");
        let nodes: Vec<_> = (0..60).map(|_| g.add_node(p)).collect();
        for i in 0..60 {
            for j in 1..=5 {
                g.add_edge(nodes[i], nodes[(i + j) % 60], follows).unwrap();
            }
        }
        g.add_edge(nodes[0], nodes[1], rare).unwrap();

        let mut b = Pattern::builder();
        let a = b.node("a", Some("P"));
        let bb = b.node("b", Some("P"));
        let c = b.node("c", Some("P"));
        b.edge(a, bb, "follows");
        b.edge(bb, c, "rare");
        let pat = b.build().unwrap();

        let planner = Planner::new();
        planner.refresh_stats(&g);
        let m = Matcher::with_planner(&g, MatchConfig::default(), &planner);
        let ex = m.explain(&pat);
        assert!(ex.satisfiable);
        assert_eq!(ex.stats_version, Some(g.version()));
        assert_eq!(ex.steps.len(), 3);
        // Root at b or c (the rare edge's endpoints), never at a.
        assert_ne!(ex.steps[0].var, "a");
        assert_eq!(ex.steps[1].access, PlanAccess::Extension);
        assert!(ex.estimated_cost > 0.0);

        // And the plan still finds exactly the greedy matcher's results.
        let plain = Matcher::new(&g).find_all(&pat);
        let cost = m.find_all(&pat);
        let key = |ms: &[crate::Match]| {
            let mut v: Vec<_> = ms.iter().map(|m| m.nodes.clone()).collect();
            v.sort();
            v
        };
        assert_eq!(key(&cost), key(&plain));
        assert_eq!(cost.len(), 5, "a --follows--> b --rare--> c");
    }

    #[test]
    fn explain_reports_unsatisfiable_patterns() {
        let g = sample();
        let planner = Planner::new();
        let mut b = Pattern::builder();
        b.node("x", Some("Ghost"));
        let p = b.build().unwrap();
        let m = Matcher::with_planner(&g, MatchConfig::default(), &planner);
        let ex = m.explain(&p);
        assert!(!ex.satisfiable);
        assert!(ex.steps.is_empty());
        assert_eq!(ex.stats_version, None);
    }
}
