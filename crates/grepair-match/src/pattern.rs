//! The pattern language of Graph Repairing Rules.
//!
//! A [`Pattern`] is a small graph template: *pattern nodes* are variables
//! with an optional label requirement, *pattern edges* must be present in
//! any match (positive edges) or absent (negative edges), and
//! [`Constraint`]s restrict attribute values — including cross-variable
//! comparisons, which is how conflict and redundancy rules express
//! "two nodes claiming the same identity" or "contradicting values".
//!
//! Patterns are **graph-independent**: labels and attribute keys are plain
//! strings, resolved against a concrete [`grepair_graph::Graph`]'s interners
//! at match time. Matches are *injective* (subgraph isomorphism), so two
//! distinct variables always bind distinct nodes — exactly the semantics
//! redundancy rules need.

use grepair_graph::Value;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A pattern variable: index of a pattern node.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct Var(pub u8);

impl Var {
    /// Raw index into the pattern's node list.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "${}", self.0)
    }
}

/// A pattern node: a variable with an optional label requirement.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct PatternNode {
    /// Human-readable variable name (used by the rule DSL and diagnostics).
    pub name: String,
    /// Required node label; `None` matches any label.
    pub label: Option<String>,
}

/// A pattern edge between two variables.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct PatternEdge {
    /// Source variable.
    pub src: Var,
    /// Target variable.
    pub dst: Var,
    /// Required edge label; `None` matches any label. Negative edges with
    /// `None` forbid *any* edge `src → dst`.
    pub label: Option<String>,
}

/// Comparison operator for attribute constraints.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum CmpOp {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Less than (numeric or lexicographic).
    Lt,
    /// Less or equal.
    Le,
    /// Greater than.
    Gt,
    /// Greater or equal.
    Ge,
}

impl CmpOp {
    /// Evaluate the operator on two values.
    ///
    /// `Eq`/`Ne` use [`Value`] equality (type-sensitive). Ordering
    /// operators compare numbers numerically (with int/float coercion) and
    /// strings lexicographically; mixed or unordered types yield `false`
    /// for `Lt/Le/Gt/Ge` — a constraint on incomparable data does not hold.
    pub fn eval(self, a: &Value, b: &Value) -> bool {
        use std::cmp::Ordering::*;
        match self {
            CmpOp::Eq => a == b,
            CmpOp::Ne => a != b,
            _ => {
                let ord = match (a.as_number(), b.as_number()) {
                    (Some(x), Some(y)) => x.partial_cmp(&y),
                    _ => match (a.as_str(), b.as_str()) {
                        (Some(x), Some(y)) => Some(x.cmp(y)),
                        _ => None,
                    },
                };
                matches!(
                    (self, ord),
                    (CmpOp::Lt, Some(Less))
                        | (CmpOp::Le, Some(Less | Equal))
                        | (CmpOp::Gt, Some(Greater))
                        | (CmpOp::Ge, Some(Greater | Equal))
                )
            }
        }
    }

    /// Parser-facing symbol.
    pub fn symbol(self) -> &'static str {
        match self {
            CmpOp::Eq => "==",
            CmpOp::Ne => "!=",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        }
    }
}

/// Right-hand side of an attribute comparison.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum Rhs {
    /// A constant value.
    Const(Value),
    /// Another variable's attribute.
    Attr(Var, String),
}

/// An attribute constraint over pattern variables.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum Constraint {
    /// The variable must carry the attribute key (any value).
    HasAttr(Var, String),
    /// The variable must *not* carry the attribute key — the incompleteness
    /// trigger.
    MissingAttr(Var, String),
    /// `var.key OP rhs`. If `var.key` is absent the constraint is `false`
    /// (absent values satisfy nothing; use [`Constraint::MissingAttr`] to
    /// target absence).
    Cmp {
        /// Left-hand variable.
        var: Var,
        /// Left-hand attribute key.
        key: String,
        /// Operator.
        op: CmpOp,
        /// Right-hand side.
        rhs: Rhs,
    },
    /// The variable has *no outgoing edge at all* with the given label
    /// (`None` = any label). This is the universally-quantified negation
    /// behind incompleteness triggers like "city with no country edge" —
    /// distinct from a negative [`PatternEdge`], which only forbids an edge
    /// between two *matched* endpoints.
    NoOutEdge(Var, Option<String>),
    /// The variable has no incoming edge with the given label.
    NoInEdge(Var, Option<String>),
}

impl Constraint {
    /// Variables mentioned by this constraint.
    pub fn vars(&self) -> Vec<Var> {
        match self {
            Constraint::HasAttr(v, _)
            | Constraint::MissingAttr(v, _)
            | Constraint::NoOutEdge(v, _)
            | Constraint::NoInEdge(v, _) => vec![*v],
            Constraint::Cmp { var, rhs, .. } => match rhs {
                Rhs::Const(_) => vec![*var],
                Rhs::Attr(o, _) => vec![*var, *o],
            },
        }
    }

    /// Attribute keys mentioned by this constraint.
    pub fn keys(&self) -> Vec<&str> {
        match self {
            Constraint::HasAttr(_, k) | Constraint::MissingAttr(_, k) => vec![k],
            Constraint::Cmp { key, rhs, .. } => match rhs {
                Rhs::Const(_) => vec![key],
                Rhs::Attr(_, k2) => vec![key, k2],
            },
            Constraint::NoOutEdge(..) | Constraint::NoInEdge(..) => vec![],
        }
    }
}

/// A complete pattern: the matching half of a GRR.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
#[derive(Default)]
pub struct Pattern {
    /// Pattern nodes; `Var(i)` indexes this list.
    pub nodes: Vec<PatternNode>,
    /// Positive edges (must exist in a match).
    pub edges: Vec<PatternEdge>,
    /// Negative edges (must be absent in a match).
    pub neg_edges: Vec<PatternEdge>,
    /// Attribute constraints (conjunction).
    pub constraints: Vec<Constraint>,
}

impl Pattern {
    /// Start building a pattern.
    pub fn builder() -> PatternBuilder {
        PatternBuilder::default()
    }

    /// Number of pattern nodes.
    pub fn num_vars(&self) -> usize {
        self.nodes.len()
    }

    /// Look up a variable by name.
    pub fn var(&self, name: &str) -> Option<Var> {
        self.nodes
            .iter()
            .position(|n| n.name == name)
            .map(|i| Var(i as u8))
    }

    /// Name of a variable.
    pub fn var_name(&self, v: Var) -> &str {
        &self.nodes[v.index()].name
    }

    /// Structural fingerprint: a 64-bit hash over every match-relevant
    /// field (labels, edges, negative edges, constraints — variable
    /// *names* excluded, they don't affect matching). Plan caches use it
    /// as the pattern component of their key, so patterns that match
    /// identically share cached plans even across distinct allocations.
    pub fn fingerprint(&self) -> u64 {
        use std::hash::{Hash, Hasher};
        let mut h = rustc_hash::FxHasher::default();
        let hash_opt = |h: &mut rustc_hash::FxHasher, s: &Option<String>| match s {
            None => 0u8.hash(h),
            Some(s) => {
                1u8.hash(h);
                s.hash(h);
            }
        };
        self.nodes.len().hash(&mut h);
        for n in &self.nodes {
            hash_opt(&mut h, &n.label);
        }
        for (tag, edges) in [(1u8, &self.edges), (2u8, &self.neg_edges)] {
            tag.hash(&mut h);
            edges.len().hash(&mut h);
            for e in edges {
                e.src.hash(&mut h);
                e.dst.hash(&mut h);
                hash_opt(&mut h, &e.label);
            }
        }
        self.constraints.len().hash(&mut h);
        for c in &self.constraints {
            match c {
                Constraint::HasAttr(v, k) => {
                    (3u8, v, k).hash(&mut h);
                }
                Constraint::MissingAttr(v, k) => {
                    (4u8, v, k).hash(&mut h);
                }
                Constraint::Cmp { var, key, op, rhs } => {
                    (5u8, var, key, *op as u8).hash(&mut h);
                    match rhs {
                        Rhs::Const(v) => {
                            6u8.hash(&mut h);
                            v.hash(&mut h);
                        }
                        Rhs::Attr(o, k2) => {
                            (7u8, o, k2).hash(&mut h);
                        }
                    }
                }
                Constraint::NoOutEdge(v, l) => {
                    (8u8, v).hash(&mut h);
                    hash_opt(&mut h, l);
                }
                Constraint::NoInEdge(v, l) => {
                    (9u8, v).hash(&mut h);
                    hash_opt(&mut h, l);
                }
            }
        }
        h.finish()
    }

    /// Whether the positive part (nodes + positive edges) is connected.
    ///
    /// Disconnected patterns are legal but match as a cartesian product of
    /// their components — the matcher warns via plan metadata and the rule
    /// validator flags them.
    pub fn is_connected(&self) -> bool {
        let n = self.nodes.len();
        if n <= 1 {
            return true;
        }
        let mut adj = vec![Vec::new(); n];
        for e in &self.edges {
            adj[e.src.index()].push(e.dst.index());
            adj[e.dst.index()].push(e.src.index());
        }
        let mut seen = vec![false; n];
        let mut stack = vec![0usize];
        seen[0] = true;
        let mut count = 1;
        while let Some(u) = stack.pop() {
            for &v in &adj[u] {
                if !seen[v] {
                    seen[v] = true;
                    count += 1;
                    stack.push(v);
                }
            }
        }
        count == n
    }

    /// Validate internal consistency (variable ranges).
    pub fn validate(&self) -> Result<(), String> {
        if self.nodes.is_empty() {
            return Err("pattern has no nodes".into());
        }
        if self.nodes.len() > 64 {
            return Err("pattern exceeds 64 variables".into());
        }
        let in_range = |v: Var| v.index() < self.nodes.len();
        for e in self.edges.iter().chain(&self.neg_edges) {
            if !in_range(e.src) || !in_range(e.dst) {
                return Err(format!("edge {:?}→{:?} references unknown var", e.src, e.dst));
            }
        }
        for c in &self.constraints {
            for v in c.vars() {
                if !in_range(v) {
                    return Err(format!("constraint references unknown var {v:?}"));
                }
            }
        }
        let mut names = std::collections::HashSet::new();
        for n in &self.nodes {
            if !names.insert(&n.name) {
                return Err(format!("duplicate variable name {:?}", n.name));
            }
        }
        Ok(())
    }
}

impl fmt::Display for Pattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let fmt_var = |v: Var| -> String {
            let n = &self.nodes[v.index()];
            match &n.label {
                Some(l) => format!("{}:{}", n.name, l),
                None => n.name.clone(),
            }
        };
        let mut first = true;
        let mut sep = |f: &mut fmt::Formatter<'_>| -> fmt::Result {
            if !first {
                write!(f, ", ")?;
            }
            first = false;
            Ok(())
        };
        for e in &self.edges {
            sep(f)?;
            write!(
                f,
                "({})-[{}]->({})",
                fmt_var(e.src),
                e.label.as_deref().unwrap_or("*"),
                fmt_var(e.dst)
            )?;
        }
        for e in &self.neg_edges {
            sep(f)?;
            write!(
                f,
                "!({})-[{}]->({})",
                fmt_var(e.src),
                e.label.as_deref().unwrap_or("*"),
                fmt_var(e.dst)
            )?;
        }
        for i in 0..self.nodes.len() {
            let v = Var(i as u8);
            let used = self
                .edges
                .iter()
                .chain(&self.neg_edges)
                .any(|e| e.src == v || e.dst == v);
            if !used {
                sep(f)?;
                write!(f, "({})", fmt_var(v))?;
            }
        }
        for c in &self.constraints {
            sep(f)?;
            match c {
                Constraint::HasAttr(v, k) => write!(f, "has({}.{k})", self.var_name(*v))?,
                Constraint::MissingAttr(v, k) => write!(f, "missing({}.{k})", self.var_name(*v))?,
                Constraint::Cmp { var, key, op, rhs } => {
                    write!(f, "{}.{key} {} ", self.var_name(*var), op.symbol())?;
                    match rhs {
                        Rhs::Const(v) => write!(f, "{v}")?,
                        Rhs::Attr(o, k2) => write!(f, "{}.{k2}", self.var_name(*o))?,
                    }
                }
                Constraint::NoOutEdge(v, l) => write!(
                    f,
                    "!({})-[{}]->(*)",
                    self.var_name(*v),
                    l.as_deref().unwrap_or("*")
                )?,
                Constraint::NoInEdge(v, l) => write!(
                    f,
                    "!(*)-[{}]->({})",
                    l.as_deref().unwrap_or("*"),
                    self.var_name(*v)
                )?,
            }
        }
        Ok(())
    }
}

/// Fluent builder for [`Pattern`].
#[derive(Clone, Debug, Default)]
pub struct PatternBuilder {
    pattern: Pattern,
}


impl PatternBuilder {
    /// Add a node with an optional label requirement; returns its variable.
    pub fn node(&mut self, name: &str, label: Option<&str>) -> Var {
        let v = Var(self.pattern.nodes.len() as u8);
        self.pattern.nodes.push(PatternNode {
            name: name.to_owned(),
            label: label.map(str::to_owned),
        });
        v
    }

    /// Add a positive edge.
    pub fn edge(&mut self, src: Var, dst: Var, label: &str) -> &mut Self {
        self.pattern.edges.push(PatternEdge {
            src,
            dst,
            label: Some(label.to_owned()),
        });
        self
    }

    /// Add a positive edge matching any label.
    pub fn edge_any(&mut self, src: Var, dst: Var) -> &mut Self {
        self.pattern.edges.push(PatternEdge {
            src,
            dst,
            label: None,
        });
        self
    }

    /// Add a negative edge (must be absent).
    pub fn neg_edge(&mut self, src: Var, dst: Var, label: &str) -> &mut Self {
        self.pattern.neg_edges.push(PatternEdge {
            src,
            dst,
            label: Some(label.to_owned()),
        });
        self
    }

    /// Add a negative edge forbidding any `src → dst` edge.
    pub fn neg_edge_any(&mut self, src: Var, dst: Var) -> &mut Self {
        self.pattern.neg_edges.push(PatternEdge {
            src,
            dst,
            label: None,
        });
        self
    }

    /// Add an arbitrary constraint.
    pub fn constraint(&mut self, c: Constraint) -> &mut Self {
        self.pattern.constraints.push(c);
        self
    }

    /// Require `var.key == value`.
    pub fn attr_eq(&mut self, var: Var, key: &str, value: impl Into<Value>) -> &mut Self {
        self.constraint(Constraint::Cmp {
            var,
            key: key.to_owned(),
            op: CmpOp::Eq,
            rhs: Rhs::Const(value.into()),
        })
    }

    /// Require `var.key op value` for an arbitrary comparison operator
    /// (`<` / `>=`-style constraints additionally pick up range
    /// selectivity from the planner's statistics).
    pub fn attr_cmp(
        &mut self,
        var: Var,
        key: &str,
        op: CmpOp,
        value: impl Into<Value>,
    ) -> &mut Self {
        self.constraint(Constraint::Cmp {
            var,
            key: key.to_owned(),
            op,
            rhs: Rhs::Const(value.into()),
        })
    }

    /// Require `a.key == b.key2`.
    pub fn attr_eq_var(&mut self, a: Var, key: &str, b: Var, key2: &str) -> &mut Self {
        self.constraint(Constraint::Cmp {
            var: a,
            key: key.to_owned(),
            op: CmpOp::Eq,
            rhs: Rhs::Attr(b, key2.to_owned()),
        })
    }

    /// Require `a.key != b.key2`.
    pub fn attr_ne_var(&mut self, a: Var, key: &str, b: Var, key2: &str) -> &mut Self {
        self.constraint(Constraint::Cmp {
            var: a,
            key: key.to_owned(),
            op: CmpOp::Ne,
            rhs: Rhs::Attr(b, key2.to_owned()),
        })
    }

    /// Require the attribute to be present.
    pub fn has_attr(&mut self, var: Var, key: &str) -> &mut Self {
        self.constraint(Constraint::HasAttr(var, key.to_owned()))
    }

    /// Require the attribute to be absent.
    pub fn missing_attr(&mut self, var: Var, key: &str) -> &mut Self {
        self.constraint(Constraint::MissingAttr(var, key.to_owned()))
    }

    /// Require the node to have no outgoing edge with the given label
    /// (`None` = no outgoing edge at all).
    pub fn no_out_edge(&mut self, var: Var, label: Option<&str>) -> &mut Self {
        self.constraint(Constraint::NoOutEdge(var, label.map(str::to_owned)))
    }

    /// Require the node to have no incoming edge with the given label.
    pub fn no_in_edge(&mut self, var: Var, label: Option<&str>) -> &mut Self {
        self.constraint(Constraint::NoInEdge(var, label.map(str::to_owned)))
    }

    /// Finish, validating the pattern.
    pub fn build(self) -> Result<Pattern, String> {
        self.pattern.validate()?;
        Ok(self.pattern)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lives_pattern() -> Pattern {
        let mut b = Pattern::builder();
        let x = b.node("x", Some("Person"));
        let c = b.node("c", Some("City"));
        b.edge(x, c, "livesIn");
        b.build().unwrap()
    }

    #[test]
    fn builder_produces_valid_pattern() {
        let p = lives_pattern();
        assert_eq!(p.num_vars(), 2);
        assert_eq!(p.var("x"), Some(Var(0)));
        assert_eq!(p.var("c"), Some(Var(1)));
        assert_eq!(p.var("zzz"), None);
        assert!(p.is_connected());
    }

    #[test]
    fn validation_catches_bad_vars() {
        let p = Pattern {
            nodes: vec![PatternNode {
                name: "x".into(),
                label: None,
            }],
            edges: vec![PatternEdge {
                src: Var(0),
                dst: Var(5),
                label: None,
            }],
            neg_edges: vec![],
            constraints: vec![],
        };
        assert!(p.validate().is_err());
    }

    #[test]
    fn validation_catches_duplicate_names() {
        let mut b = Pattern::builder();
        b.node("x", None);
        b.node("x", None);
        assert!(b.build().is_err());
    }

    #[test]
    fn validation_rejects_empty() {
        assert!(Pattern::default().validate().is_err());
    }

    #[test]
    fn connectivity_detection() {
        let mut b = Pattern::builder();
        let x = b.node("x", None);
        let y = b.node("y", None);
        b.node("z", None); // isolated
        b.edge(x, y, "r");
        let p = b.build().unwrap();
        assert!(!p.is_connected());
    }

    #[test]
    fn cmp_op_semantics() {
        assert!(CmpOp::Eq.eval(&Value::Int(1), &Value::Int(1)));
        assert!(CmpOp::Ne.eval(&Value::Int(1), &Value::Int(2)));
        assert!(CmpOp::Lt.eval(&Value::Int(1), &Value::Float(1.5)));
        assert!(CmpOp::Ge.eval(&Value::Float(2.0), &Value::Int(2)));
        assert!(CmpOp::Lt.eval(&Value::from("a"), &Value::from("b")));
        // Incomparable types never satisfy ordering ops.
        assert!(!CmpOp::Lt.eval(&Value::from("a"), &Value::Int(1)));
        assert!(!CmpOp::Ge.eval(&Value::Bool(true), &Value::Int(1)));
        // But Ne is type-sensitive equality.
        assert!(CmpOp::Ne.eval(&Value::from("1"), &Value::Int(1)));
    }

    #[test]
    fn constraint_vars_and_keys() {
        let c = Constraint::Cmp {
            var: Var(0),
            key: "name".into(),
            op: CmpOp::Eq,
            rhs: Rhs::Attr(Var(1), "alias".into()),
        };
        assert_eq!(c.vars(), vec![Var(0), Var(1)]);
        assert_eq!(c.keys(), vec!["name", "alias"]);
    }

    #[test]
    fn display_is_readable() {
        let mut b = Pattern::builder();
        let x = b.node("x", Some("Person"));
        let k = b.node("k", Some("Country"));
        b.neg_edge(x, k, "citizenOf");
        b.missing_attr(x, "ssn");
        let p = b.build().unwrap();
        let s = p.to_string();
        assert!(s.contains("!(x:Person)-[citizenOf]->(k:Country)"), "{s}");
        assert!(s.contains("missing(x.ssn)"), "{s}");
    }

    #[test]
    fn serde_round_trip() {
        let p = lives_pattern();
        let json = serde_json::to_string(&p).unwrap();
        let back: Pattern = serde_json::from_str(&json).unwrap();
        assert_eq!(back, p);
    }
}
