//! Read-only graph abstraction the matcher runs over.
//!
//! [`GraphView`] is the exact query surface the [`crate::Matcher`] needs —
//! vocabulary lookups, node/label/attribute access, adjacency enumeration
//! and edge-existence checks. Two implementations exist:
//!
//! - the mutable [`Graph`], for incremental delta re-matching where the
//!   graph changes between queries;
//! - the compacted [`FrozenGraph`] CSR snapshot, for full scans where a
//!   one-pass freeze buys contiguous, binary-searchable adjacency.
//!
//! The contract is engineered so both implementations produce
//! **byte-identical match output**:
//!
//! - candidate-returning methods may return ids in any order (the matcher
//!   sorts), but must return the same *sets*;
//! - [`GraphView::find_edge`] must return the **minimal** matching edge id
//!   among parallel duplicates — the shared witness convention.

use grepair_graph::{AttrKeyId, Direction, EdgeId, FrozenGraph, Graph, LabelId, NodeId, Value};

/// Read-only queries the matcher issues against a graph or snapshot.
///
/// See the module docs for the inter-implementation contract.
pub trait GraphView {
    /// Look up a label by name, without interning.
    fn try_label(&self, name: &str) -> Option<LabelId>;
    /// Look up an attribute key by name, without interning.
    fn try_attr_key(&self, name: &str) -> Option<AttrKeyId>;
    /// Size of the label vocabulary. Interners are append-only, so equal
    /// sizes mean identical vocabularies — what plan caches key on.
    fn num_labels(&self) -> usize;
    /// Size of the attribute-key vocabulary.
    fn num_attr_keys(&self) -> usize;
    /// Number of live nodes.
    fn num_nodes(&self) -> usize;
    /// All live node ids, ascending.
    fn node_ids(&self) -> Vec<NodeId>;
    /// Whether `id` refers to a live node.
    fn contains_node(&self, id: NodeId) -> bool;
    /// Label of a live node.
    fn label_of(&self, id: NodeId) -> Option<LabelId>;
    /// Out-degree (0 for unknown nodes).
    fn out_degree(&self, id: NodeId) -> usize;
    /// In-degree (0 for unknown nodes).
    fn in_degree(&self, id: NodeId) -> usize;
    /// Neighbor-label signature (0 for unknown nodes).
    fn signature(&self, id: NodeId) -> u64;
    /// Attribute value of a node.
    fn attr(&self, id: NodeId, key: AttrKeyId) -> Option<&Value>;
    /// Live nodes carrying `label`, in unspecified order.
    fn nodes_with_label(&self, label: LabelId) -> &[NodeId];
    /// Count of live nodes with `label`.
    fn count_nodes_with_label(&self, label: LabelId) -> usize;
    /// Live nodes whose attribute `key` equals `value`, unspecified order.
    fn nodes_with_attr(&self, key: AttrKeyId, value: &Value) -> Vec<NodeId>;
    /// Neighbors reached over `dir`-oriented incident edges, optionally
    /// restricted to one edge label. May contain duplicates (parallel
    /// edges); unspecified order.
    fn neighbors(&self, id: NodeId, dir: Direction, label: Option<LabelId>) -> Vec<NodeId>;
    /// Minimal edge id `src → dst` with the given label (`None` = any
    /// label), if one exists.
    fn find_edge(&self, src: NodeId, dst: NodeId, label: Option<LabelId>) -> Option<EdgeId>;
    /// Whether any edge `src → dst` with the given label (`None` = any)
    /// exists.
    fn has_edge(&self, src: NodeId, dst: NodeId, label: Option<LabelId>) -> bool {
        self.find_edge(src, dst, label).is_some()
    }
    /// Whether `id` has any `dir`-oriented incident edge with the given
    /// label (`None` = any label at all).
    fn has_adjacent_edge(&self, id: NodeId, dir: Direction, label: Option<LabelId>) -> bool;
    /// Downcast to the live mutable [`Graph`] when this view is one —
    /// the matcher uses it to refresh planner statistics after an
    /// adaptive re-plan detected a misestimate. Snapshots return `None`
    /// (their statistics cannot be brought closer to the live truth).
    fn live_graph(&self) -> Option<&Graph> {
        None
    }
}

impl GraphView for Graph {
    fn try_label(&self, name: &str) -> Option<LabelId> {
        Graph::try_label(self, name)
    }

    fn try_attr_key(&self, name: &str) -> Option<AttrKeyId> {
        Graph::try_attr_key(self, name)
    }

    fn num_labels(&self) -> usize {
        self.labels().len()
    }

    fn num_attr_keys(&self) -> usize {
        self.attr_keys().len()
    }

    fn num_nodes(&self) -> usize {
        Graph::num_nodes(self)
    }

    fn node_ids(&self) -> Vec<NodeId> {
        self.nodes().collect()
    }

    fn contains_node(&self, id: NodeId) -> bool {
        Graph::contains_node(self, id)
    }

    fn label_of(&self, id: NodeId) -> Option<LabelId> {
        self.node_label(id).ok()
    }

    fn out_degree(&self, id: NodeId) -> usize {
        Graph::out_degree(self, id)
    }

    fn in_degree(&self, id: NodeId) -> usize {
        Graph::in_degree(self, id)
    }

    fn signature(&self, id: NodeId) -> u64 {
        Graph::signature(self, id)
    }

    fn attr(&self, id: NodeId, key: AttrKeyId) -> Option<&Value> {
        Graph::attr(self, id, key)
    }

    fn nodes_with_label(&self, label: LabelId) -> &[NodeId] {
        Graph::nodes_with_label(self, label)
    }

    fn count_nodes_with_label(&self, label: LabelId) -> usize {
        Graph::count_nodes_with_label(self, label)
    }

    fn nodes_with_attr(&self, key: AttrKeyId, value: &Value) -> Vec<NodeId> {
        Graph::nodes_with_attr(self, key, value)
    }

    fn neighbors(&self, id: NodeId, dir: Direction, label: Option<LabelId>) -> Vec<NodeId> {
        // Hot path: one output allocation, no intermediate edge-id Vec.
        fn gather(
            g: &Graph,
            edges: impl Iterator<Item = EdgeId>,
            dir: Direction,
            label: Option<LabelId>,
        ) -> Vec<NodeId> {
            edges
                .filter_map(|e| {
                    let er = g.edge(e).ok()?;
                    if let Some(l) = label {
                        if er.label != l {
                            return None;
                        }
                    }
                    Some(match dir {
                        Direction::Out => er.dst,
                        Direction::In => er.src,
                    })
                })
                .collect()
        }
        match dir {
            Direction::Out => gather(self, self.out_edges(id), dir, label),
            Direction::In => gather(self, self.in_edges(id), dir, label),
        }
    }

    fn find_edge(&self, src: NodeId, dst: NodeId, label: Option<LabelId>) -> Option<EdgeId> {
        match label {
            Some(l) => Graph::find_edge(self, src, dst, l),
            None => self.find_edge_any(src, dst),
        }
    }

    fn has_edge(&self, src: NodeId, dst: NodeId, label: Option<LabelId>) -> bool {
        match label {
            Some(l) => self.has_edge_labeled(src, dst, l),
            None => self.edges_between(src, dst).next().is_some(),
        }
    }

    fn has_adjacent_edge(&self, id: NodeId, dir: Direction, label: Option<LabelId>) -> bool {
        // Monomorphized per call site: `out_edges` and `in_edges` return
        // distinct opaque iterator types, and this sits in the matcher's
        // innermost constraint loop — no boxing.
        fn check(g: &Graph, mut edges: impl Iterator<Item = EdgeId>, label: Option<LabelId>) -> bool {
            match label {
                None => edges.next().is_some(),
                Some(l) => edges.any(|e| g.edge(e).map(|er| er.label == l).unwrap_or(false)),
            }
        }
        match dir {
            Direction::Out => check(self, self.out_edges(id), label),
            Direction::In => check(self, self.in_edges(id), label),
        }
    }

    fn live_graph(&self) -> Option<&Graph> {
        Some(self)
    }
}

impl GraphView for FrozenGraph {
    fn try_label(&self, name: &str) -> Option<LabelId> {
        FrozenGraph::try_label(self, name)
    }

    fn try_attr_key(&self, name: &str) -> Option<AttrKeyId> {
        FrozenGraph::try_attr_key(self, name)
    }

    fn num_labels(&self) -> usize {
        FrozenGraph::num_labels(self)
    }

    fn num_attr_keys(&self) -> usize {
        FrozenGraph::num_attr_keys(self)
    }

    fn num_nodes(&self) -> usize {
        FrozenGraph::num_nodes(self)
    }

    fn node_ids(&self) -> Vec<NodeId> {
        FrozenGraph::node_ids(self).to_vec()
    }

    fn contains_node(&self, id: NodeId) -> bool {
        FrozenGraph::contains_node(self, id)
    }

    fn label_of(&self, id: NodeId) -> Option<LabelId> {
        self.node_label(id)
    }

    fn out_degree(&self, id: NodeId) -> usize {
        FrozenGraph::out_degree(self, id)
    }

    fn in_degree(&self, id: NodeId) -> usize {
        FrozenGraph::in_degree(self, id)
    }

    fn signature(&self, id: NodeId) -> u64 {
        FrozenGraph::signature(self, id)
    }

    fn attr(&self, id: NodeId, key: AttrKeyId) -> Option<&Value> {
        FrozenGraph::attr(self, id, key)
    }

    fn nodes_with_label(&self, label: LabelId) -> &[NodeId] {
        FrozenGraph::nodes_with_label(self, label)
    }

    fn count_nodes_with_label(&self, label: LabelId) -> usize {
        FrozenGraph::count_nodes_with_label(self, label)
    }

    fn nodes_with_attr(&self, key: AttrKeyId, value: &Value) -> Vec<NodeId> {
        FrozenGraph::nodes_with_attr(self, key, value).to_vec()
    }

    fn neighbors(&self, id: NodeId, dir: Direction, label: Option<LabelId>) -> Vec<NodeId> {
        let run = match (dir, label) {
            (Direction::Out, Some(l)) => self.out_entries_labeled(id, l),
            (Direction::Out, None) => self.out_entries(id),
            (Direction::In, Some(l)) => self.in_entries_labeled(id, l),
            (Direction::In, None) => self.in_entries(id),
        };
        run.iter().map(|e| e.neighbor).collect()
    }

    fn find_edge(&self, src: NodeId, dst: NodeId, label: Option<LabelId>) -> Option<EdgeId> {
        match label {
            Some(l) => FrozenGraph::find_edge(self, src, dst, l),
            None => self.find_edge_any(src, dst),
        }
    }

    fn has_adjacent_edge(&self, id: NodeId, dir: Direction, label: Option<LabelId>) -> bool {
        match (dir, label) {
            (Direction::Out, Some(l)) => !self.out_entries_labeled(id, l).is_empty(),
            (Direction::Out, None) => FrozenGraph::out_degree(self, id) > 0,
            (Direction::In, Some(l)) => !self.in_entries_labeled(id, l).is_empty(),
            (Direction::In, None) => FrozenGraph::in_degree(self, id) > 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Graph {
        let mut g = Graph::new();
        let p = g.label("P");
        let q = g.label("Q");
        let r = g.label("r");
        let s = g.label("s");
        let a = g.add_node(p);
        let b = g.add_node(p);
        let c = g.add_node(q);
        g.add_edge(a, b, r).unwrap();
        g.add_edge(a, b, r).unwrap(); // parallel
        g.add_edge(a, c, s).unwrap();
        g.add_edge(c, a, r).unwrap();
        g
    }

    /// Both implementations must answer every query identically (after
    /// order normalization where the contract leaves order open).
    #[test]
    fn live_and_frozen_views_agree() {
        let g = sample();
        let f = FrozenGraph::freeze(&g);
        let live: &dyn Fn(&dyn GraphView) -> Vec<String> = &|v| {
            let mut out = Vec::new();
            out.push(format!("{}", v.num_nodes()));
            let mut ids = v.node_ids();
            ids.sort_unstable();
            out.push(format!("{ids:?}"));
            for id in ids {
                out.push(format!(
                    "{:?} {:?} {} {} {:016x}",
                    v.label_of(id),
                    v.contains_node(id),
                    v.out_degree(id),
                    v.in_degree(id),
                    v.signature(id)
                ));
                for dir in [Direction::Out, Direction::In] {
                    for label in [None, v.try_label("r"), v.try_label("s")] {
                        let mut nb = v.neighbors(id, dir, label);
                        nb.sort_unstable();
                        out.push(format!("{nb:?} {}", v.has_adjacent_edge(id, dir, label)));
                    }
                }
            }
            out
        };
        assert_eq!(live(&g), live(&f));

        let r = GraphView::try_label(&g, "r");
        let a = g.nodes().next().unwrap();
        let b = g.nodes().nth(1).unwrap();
        assert_eq!(
            GraphView::find_edge(&g, a, b, r),
            GraphView::find_edge(&f, a, b, r)
        );
        assert_eq!(
            GraphView::find_edge(&g, a, b, None),
            GraphView::find_edge(&f, a, b, None)
        );
        assert_eq!(
            GraphView::has_edge(&g, b, a, r),
            GraphView::has_edge(&f, b, a, r)
        );
    }
}
