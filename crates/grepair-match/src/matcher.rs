//! Subgraph-isomorphism matching of [`Pattern`]s over a [`Graph`].
//!
//! The matcher is a VF2-style backtracking search with the optimizations
//! that carry the paper's "efficient" claim, each independently switchable
//! via [`MatchConfig`] for the F5 ablation:
//!
//! - **label-index candidates** — initial candidates come from the graph's
//!   per-label node index instead of a full node scan;
//! - **connected join order** — pattern variables are ordered by estimated
//!   candidate count, preferring variables adjacent to the matched prefix,
//!   so extension candidates come from adjacency lists;
//! - **degree filter** — a candidate needs at least the pattern node's
//!   positive in/out degree;
//! - **signature filter** — the 64-bit neighbor-label signature
//!   ([`grepair_graph::sig_bit`]) must cover the pattern node's required
//!   bits (a Bloom-style necessary condition).
//!
//! Negative edges and attribute constraints are verified as early as their
//! variables are bound. Matches are injective. [`Matcher::find_touching`]
//! is the delta-driven entry point used by the incremental repair engine:
//! it enumerates exactly the matches whose image intersects a given node
//! set, without duplicates.

use crate::pattern::{CmpOp, Constraint, Pattern, Rhs, Var};
use crate::plan::Planner;
use crate::view::GraphView;
use grepair_obs as obs;
use grepair_graph::{
    sig_bit, AttrKeyId, CardinalityStats, Direction, EdgeId, Graph, LabelId, NodeId, Value,
};
use rustc_hash::{FxHashMap, FxHashSet};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::Arc;

/// Root candidates per morsel in the parallel sweep
/// ([`Matcher::par_find_all_many`]): small enough that one skewed
/// subtree pins only a sliver of the work, large enough that the
/// shared-cursor claim is amortized over real search effort.
#[cfg(feature = "parallel")]
pub const MORSEL_ROOTS: usize = 128;

/// Matcher feature toggles (all on by default; `naive()` turns all off).
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct MatchConfig {
    /// Use the per-label node index for initial candidates.
    pub use_label_index: bool,
    /// Use neighbor-label signatures for candidate pruning.
    pub use_signature: bool,
    /// Use in/out degree lower bounds for candidate pruning.
    pub use_degree_filter: bool,
    /// Order the join by selectivity and connectivity (off = declaration
    /// order, candidates by scan).
    pub connected_order: bool,
    /// Use the graph's (key, value) index to anchor equality joins
    /// (`x.k == y.k2` with one side bound) — turns pairwise dedup patterns
    /// from O(|V|²) into O(|V|·bucket).
    pub use_attr_index: bool,
    /// Adaptive re-planning: when a statistics-based plan's observed
    /// frontier exceeds its estimate by [`MatchConfig::adaptive_factor`]
    /// *before any match has been emitted*, abort the enumeration, patch
    /// the planner's statistics with the graph's current cardinalities,
    /// and re-plan once. Requires an attached [`Planner`] with
    /// statistics; anchored (`find_touching`) and parallel searches
    /// never adapt. Bounded to one re-plan per call, so worst-case work
    /// stays within 2x of the non-adaptive search.
    pub adaptive_replan: bool,
    /// Observed-over-estimated frontier blow-up factor that triggers an
    /// adaptive re-plan.
    pub adaptive_factor: f64,
}

impl Default for MatchConfig {
    fn default() -> Self {
        Self {
            use_label_index: true,
            use_signature: true,
            use_degree_filter: true,
            connected_order: true,
            use_attr_index: true,
            adaptive_replan: true,
            adaptive_factor: 64.0,
        }
    }
}

impl MatchConfig {
    /// All optimizations disabled — the naive baseline engine.
    pub fn naive() -> Self {
        Self {
            use_label_index: false,
            use_signature: false,
            use_degree_filter: false,
            connected_order: false,
            use_attr_index: false,
            adaptive_replan: false,
            adaptive_factor: 64.0,
        }
    }
}

/// One match: an injective assignment of pattern variables to nodes.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct Match {
    /// Matched node per pattern variable (indexed by `Var::index()`).
    pub nodes: Vec<NodeId>,
    /// Witness edge per positive pattern edge (first found).
    pub edges: Vec<EdgeId>,
}

/// Node-set of elements touched by recent mutations; anchors incremental
/// re-matching.
pub type TouchSet = FxHashSet<NodeId>;

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum LabelReq {
    Any,
    /// Required label is not interned in this graph: unmatchable.
    Unsatisfiable,
    Is(LabelId),
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum KeyReq {
    /// Key not interned in this graph: attribute is absent everywhere.
    Unknown,
    Is(AttrKeyId),
}

#[derive(Clone, Debug)]
enum CRhs {
    Const(Value),
    Attr(usize, KeyReq),
}

#[derive(Clone, Debug)]
enum CC {
    HasAttr(usize, KeyReq),
    MissingAttr(usize, KeyReq),
    Cmp {
        var: usize,
        key: KeyReq,
        op: CmpOp,
        rhs: CRhs,
    },
    /// `Some(None)` would be meaningless; label resolved or constraint is
    /// trivially true (dropped at compile).
    NoOutEdge(usize, Option<LabelId>),
    NoInEdge(usize, Option<LabelId>),
}

impl CC {
    fn vars(&self) -> Vec<usize> {
        match self {
            CC::HasAttr(v, _)
            | CC::MissingAttr(v, _)
            | CC::NoOutEdge(v, _)
            | CC::NoInEdge(v, _) => vec![*v],
            CC::Cmp { var, rhs, .. } => match rhs {
                CRhs::Const(_) => vec![*var],
                CRhs::Attr(o, _) => vec![*var, *o],
            },
        }
    }
}

#[derive(Clone, Copy, Debug)]
struct CEdge {
    src: usize,
    dst: usize,
    label: LabelReq,
}

/// How one plan step obtains its candidate nodes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PlanAccess {
    /// Candidates restricted to the incremental touch set.
    Anchor,
    /// Initial candidates from the per-label node index.
    LabelIndex,
    /// Initial candidates from a full node scan.
    Scan,
    /// Candidates extended along a positive edge from a bound neighbor's
    /// adjacency list.
    Extension,
    /// Candidates retrieved from the (key, value) index via an equality
    /// join against a bound variable.
    AttrJoin,
}

impl fmt::Display for PlanAccess {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            PlanAccess::Anchor => "anchor",
            PlanAccess::LabelIndex => "label-index",
            PlanAccess::Scan => "scan",
            PlanAccess::Extension => "extend",
            PlanAccess::AttrJoin => "attr-join",
        })
    }
}

/// One step of a compiled plan, for `explain`-style introspection. The
/// access path recorded here is the *planner's expectation*; the search
/// still chooses the cheapest available access dynamically per binding.
#[derive(Clone, Debug)]
pub struct PlanStep {
    /// Pattern variable bound at this step.
    pub var: usize,
    /// Expected candidate access path.
    pub access: PlanAccess,
    /// Estimated candidates (first step) or per-partial-match fan-out
    /// multiplier (later steps, statistics-based plans). Without
    /// statistics, later steps carry candidate-count upper bounds.
    pub estimate: f64,
    /// Like `estimate`, but for candidates *generated* before
    /// accept-filtering: range-constraint selectivity and the root's
    /// lookahead discount are excluded (those prune after generation).
    /// This is the adaptive monitor's per-step yardstick — comparing
    /// observed raw candidates against a post-filter estimate would
    /// flag every selective predicate as a blow-up.
    pub raw_estimate: f64,
}

/// One rendered step of [`Matcher::explain`] output.
#[derive(Clone, Debug)]
pub struct ExplainStep {
    /// Pattern variable name.
    pub var: String,
    /// Required node label, if any.
    pub label: Option<String>,
    /// Expected candidate access path.
    pub access: PlanAccess,
    /// Estimated candidates (first step) / fan-out multiplier (later
    /// steps, statistics-based plans).
    pub estimate: f64,
}

/// The plan a [`Matcher`] would run for a pattern — see
/// [`Matcher::explain`].
#[derive(Clone, Debug)]
pub struct PlanExplanation {
    /// `false` when the pattern cannot match this graph at all (e.g. a
    /// required label is not in the vocabulary); `steps` is then empty.
    pub satisfiable: bool,
    /// Plan steps in execution order.
    pub steps: Vec<ExplainStep>,
    /// Accumulated cost estimate: expected number of accept-loop
    /// executions (sum of running partial-match counts). Only meaningful
    /// relative to other plans, and only sharp when statistics back it.
    pub estimated_cost: f64,
    /// Version of the [`CardinalityStats`] snapshot the estimates came
    /// from; `None` when no statistics were available (upper-bound
    /// estimates).
    pub stats_version: Option<u64>,
}

/// A pattern compiled against a specific graph's interners + an execution
/// plan. Rebuilt whenever the graph's label vocabulary could have changed
/// (cheap: proportional to pattern size); the [`Planner`]'s plan cache
/// avoids even that for repeated matching over a stable vocabulary.
pub(crate) struct Compiled {
    labels: Vec<LabelReq>,
    edges: Vec<CEdge>,
    neg_edges: Vec<CEdge>,
    constraints: Vec<CC>,
    /// Variable order of the search.
    plan: Vec<usize>,
    /// plan position of each var.
    pos: Vec<usize>,
    /// Required signature bits per var (from positive incident edges with
    /// fully known labels).
    req_sig: Vec<u64>,
    min_out: Vec<usize>,
    min_in: Vec<usize>,
    /// For each plan step: positive pattern-edge indices whose second
    /// endpoint is bound at this step.
    edge_checks: Vec<Vec<usize>>,
    /// For each plan step: negative pattern-edge indices ready at this step.
    neg_checks: Vec<Vec<usize>>,
    /// For each plan step: constraint indices ready at this step.
    con_checks: Vec<Vec<usize>>,
    /// Vars that must bind inside the touch set (incremental mode).
    anchor_var: Option<usize>,
    /// Vars that must bind OUTSIDE the touch set (dedup in incremental
    /// mode): all vars with index < anchor var.
    forbid_touched: Vec<bool>,
    /// Per-step planner expectations (indexed like `plan`), for `explain`.
    steps: Vec<PlanStep>,
    /// Cumulative estimated *accepted* frontier per plan position
    /// (running product of the step estimates) — feeds the re-plan's
    /// observed-multiplier computation.
    est_rows: Vec<f64>,
    /// Expected candidates *generated* per plan position (accepted rows
    /// entering the step × the step's raw generation estimate) — what
    /// the adaptive monitor compares observed candidate totals against.
    est_gen: Vec<f64>,
    /// Whether this plan may adaptively re-plan: the join order came
    /// from cardinality statistics (so the estimates are meaningful) and
    /// the search is a full scan, not anchored. Cleared on re-planned
    /// compilations; parallel executions additionally never arm the
    /// monitor at run time.
    adaptive_capable: bool,
}

/// Minimum observed frontier (candidates generated at one plan
/// position) before the adaptive monitor may trip, on top of the
/// relative [`MatchConfig::adaptive_factor`]. The estimates price
/// *accepted* rows while the monitor counts *generated* candidates, so
/// on small scans the ratio alone is noisy — a re-plan only ever pays
/// for itself when the blow-up is large in absolute terms too.
const ADAPTIVE_MIN_FRONTIER: f64 = 1024.0;

/// What an adaptively aborted run observed, for the re-plan.
struct ReplanInfo {
    /// Plan position whose frontier blew past its estimate.
    depth: usize,
    /// Candidates generated per plan position up to the abort.
    gen: Vec<u64>,
}

/// Pattern matcher over a single [`GraphView`] — the live [`Graph`] by
/// default, or a [`grepair_graph::FrozenGraph`] CSR snapshot for
/// scan-heavy phases. Both views yield byte-identical match output (see
/// [`crate::view`]).
pub struct Matcher<'g, G: GraphView + ?Sized = Graph> {
    g: &'g G,
    cfg: MatchConfig,
    planner: Option<&'g Planner>,
    budget: Option<obs::Budget>,
}

/// Candidate batches between full [`obs::Budget::checkpoint`]
/// evaluations. The per-batch poll is a single relaxed load
/// ([`obs::Budget::is_tripped`]); every `BUDGET_POLL_PERIOD`th batch
/// additionally flushes the locally accumulated frontier charge and
/// reads the deadline clock — the same two-tier cost split the tracing
/// layer uses.
const BUDGET_POLL_PERIOD: u32 = 64;

/// Locally accumulated frontier rows that force a flush/checkpoint even
/// before the batch-count period elapses, so one huge candidate batch
/// cannot defer cap enforcement indefinitely. Match/frontier caps are
/// therefore enforced with a granularity of roughly this many rows.
const FRONTIER_FLUSH_ROWS: u64 = 1024;

impl<'g, G: GraphView + ?Sized> Matcher<'g, G> {
    /// Matcher with default (fully optimized) configuration.
    pub fn new(g: &'g G) -> Self {
        Self {
            g,
            cfg: MatchConfig::default(),
            planner: None,
            budget: None,
        }
    }

    /// Matcher with explicit configuration.
    pub fn with_config(g: &'g G, cfg: MatchConfig) -> Self {
        Self {
            g,
            cfg,
            planner: None,
            budget: None,
        }
    }

    /// Matcher backed by a [`Planner`]: join orders come from the
    /// planner's cardinality statistics (when refreshed), compiled plans
    /// are cached across calls, and search-state allocations are pooled.
    /// Matching *results* are identical with or without a planner — only
    /// plan order and cost change.
    ///
    /// The planner must be dedicated to this graph's lineage (the graph
    /// across mutations, plus snapshots frozen from it) — never shared
    /// between unrelated graphs; see [`crate::plan`].
    pub fn with_planner(g: &'g G, cfg: MatchConfig, planner: &'g Planner) -> Self {
        Self {
            g,
            cfg,
            planner: Some(planner),
            budget: None,
        }
    }

    /// Attach a runtime [`obs::Budget`]: enumeration loops poll it once
    /// per candidate batch (amortized per the two-tier cost model) and
    /// stop early when it trips. A tripped scan returns a *partial*
    /// match set — callers that need all-or-nothing semantics must
    /// check [`obs::Budget::is_tripped`] afterwards and discard, which
    /// is exactly what the repair engine's round-atomicity does.
    #[must_use]
    pub fn with_budget(mut self, budget: &obs::Budget) -> Self {
        self.budget = Some(budget.clone());
        self
    }

    /// Amortized guardrail poll, called once per candidate batch.
    /// Returns true when the search should stop. Flushes the state's
    /// locally accumulated frontier charge on full-checkpoint ticks so
    /// the hot path never touches the shared counters.
    #[inline]
    fn poll_budget(&self, st: &mut SearchState) -> bool {
        let Some(b) = &self.budget else {
            return false;
        };
        st.budget_tick = st.budget_tick.wrapping_add(1);
        if st.budget_tick.is_multiple_of(BUDGET_POLL_PERIOD)
            || st.frontier_acc >= FRONTIER_FLUSH_ROWS
        {
            if st.frontier_acc > 0 {
                b.charge_matches(std::mem::take(&mut st.frontier_acc));
            }
            b.checkpoint().is_some()
        } else {
            b.is_tripped()
        }
    }

    /// The underlying graph view.
    pub fn graph(&self) -> &'g G {
        self.g
    }

    /// The matcher configuration packed into a cache-key byte.
    pub(crate) fn config_bits(&self) -> u8 {
        (self.cfg.use_label_index as u8)
            | (self.cfg.use_signature as u8) << 1
            | (self.cfg.use_degree_filter as u8) << 2
            | (self.cfg.connected_order as u8) << 3
            | (self.cfg.use_attr_index as u8) << 4
    }

    /// Compile via the planner's cache when one is attached.
    fn compiled(
        &self,
        pattern: &Pattern,
        anchor: Option<usize>,
        touched: &TouchSet,
    ) -> Option<Arc<Compiled>> {
        match self.planner {
            Some(p) => p.compiled(self, pattern, anchor, touched),
            None => self.compile(pattern, anchor, touched).map(Arc::new),
        }
    }

    fn acquire_state(&self, n_vars: usize, n_edges: usize) -> SearchState {
        let mut st = self
            .planner
            .and_then(|p| p.pool_pop())
            .unwrap_or_default();
        st.reset(n_vars, n_edges);
        st
    }

    fn release_state(&self, st: SearchState) {
        if let Some(p) = self.planner {
            p.pool_push(st);
        }
    }

    /// All matches of `pattern`.
    pub fn find_all(&self, pattern: &Pattern) -> Vec<Match> {
        let _span = obs::span("match.find_all", "match");
        let started = obs::timer();
        let mut out = Vec::new();
        self.for_each_state(pattern, &mut |st| {
            out.push(st.to_match());
            true
        });
        obs::record_since_named("match.find_all_ns", started);
        obs::counter("match.matches_found").add(out.len() as u64);
        out
    }

    /// All matches of `pattern`, enumerated in parallel.
    ///
    /// Delegates to [`Matcher::par_find_all_many`] with a single
    /// pattern: the root-candidate set is cut into fixed-size morsels
    /// claimed from a shared atomic cursor, so skewed subtree sizes
    /// balance across workers. Returns exactly [`Matcher::find_all`]'s
    /// match set in the same order.
    #[cfg(feature = "parallel")]
    pub fn par_find_all(&self, pattern: &Pattern) -> Vec<Match>
    where
        G: Sync,
    {
        self.par_find_all_many(&[pattern])
            .pop()
            .unwrap_or_default()
    }

    /// All matches of every pattern in `patterns`, enumerated by one
    /// morsel-driven parallel sweep.
    ///
    /// Scheduling is morsel-driven (after Leis et al.'s HyPer
    /// scheduler): each pattern's depth-0 root-candidate list is cut
    /// into fixed-size morsels of [`MORSEL_ROOTS`] roots, and all
    /// patterns' morsels feed a single shared atomic work queue.
    /// Workers steal the next unclaimed morsel regardless of which
    /// pattern it belongs to, so a sweep balances *across* patterns
    /// (one expensive rule does not serialize behind the others) *and
    /// within* a pattern (a skewed subtree only pins one morsel, not a
    /// fixed per-thread range). Each worker keeps one pooled
    /// [`SearchState`] for its whole run, re-shaping it only when it
    /// picks up a morsel for a different pattern.
    ///
    /// Output is deterministic: every morsel writes to its own indexed
    /// slot and slots are merged in morsel order, which is exactly the
    /// per-pattern sequential DFS emission order — element `i` equals
    /// `self.find_all(patterns[i])`, byte for byte.
    #[cfg(feature = "parallel")]
    pub fn par_find_all_many(&self, patterns: &[&Pattern]) -> Vec<Vec<Match>>
    where
        G: Sync,
    {
        use rayon::prelude::*;
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::sync::Mutex;

        /// Per-pattern prep: either finished serially (no compile, or a
        /// zero-variable plan) or staged for the morsel sweep.
        enum Prep {
            Done(Vec<Match>),
            Scan { comp: Arc<Compiled>, roots: Vec<NodeId> },
        }

        let empty = TouchSet::default();
        let preps: Vec<Prep> = patterns
            .iter()
            .map(|pattern| {
                debug_assert!(pattern.validate().is_ok());
                let Some(comp) = self.compiled(pattern, None, &empty) else {
                    return Prep::Done(Vec::new());
                };
                if comp.plan.is_empty() {
                    return Prep::Done(self.find_all(pattern));
                }
                let probe = self.acquire_state(comp.plan.len(), comp.edges.len());
                let roots = self.candidates(&comp, &probe, 0, &empty);
                self.release_state(probe);
                Prep::Scan { comp, roots }
            })
            .collect();

        let workers = rayon::current_num_threads();
        if workers <= 1 {
            return preps
                .into_iter()
                .zip(patterns)
                .map(|(prep, pattern)| match prep {
                    Prep::Done(out) => out,
                    Prep::Scan { .. } => self.find_all(pattern),
                })
                .collect();
        }

        // The shared work list: (pattern, root range) descriptors in
        // per-pattern root order, claimed via one atomic cursor.
        struct Morsel {
            pattern: usize,
            lo: usize,
            hi: usize,
        }
        let mut morsels: Vec<Morsel> = Vec::new();
        for (pattern, prep) in preps.iter().enumerate() {
            if let Prep::Scan { roots, .. } = prep {
                let mut lo = 0;
                while lo < roots.len() {
                    let hi = (lo + MORSEL_ROOTS).min(roots.len());
                    morsels.push(Morsel { pattern, lo, hi });
                    lo = hi;
                }
            }
        }

        let slots: Vec<Mutex<Vec<Match>>> =
            (0..morsels.len()).map(|_| Mutex::new(Vec::new())).collect();
        let cursor = AtomicUsize::new(0);
        let _span = obs::span("match.par_find_all_many", "match");
        let morsel_hist = obs::histogram("match.morsel_drain_ns");
        let preps_ref = &preps;
        let morsels_ref = &morsels;
        let slots_ref = &slots;
        let cursor_ref = &cursor;
        let empty_ref = &empty;
        let morsel_hist_ref = &morsel_hist;
        let n_workers = workers.min(morsels.len().max(1));
        (0..n_workers).into_par_iter().for_each(|_| {
            // One pooled backtracking state per worker, reused across
            // morsels and re-shaped only on a pattern switch.
            let mut held: Option<(usize, SearchState)> = None;
            loop {
                // Morsel-drain early exit: a tripped budget stops this
                // worker from claiming further morsels (a full
                // checkpoint here also promotes pending cancels and
                // deadline expiry mid-sweep).
                if let Some(b) = &self.budget {
                    if b.checkpoint().is_some() {
                        break;
                    }
                }
                let m = cursor_ref.fetch_add(1, Ordering::Relaxed);
                if m >= morsels_ref.len() {
                    break;
                }
                let Morsel { pattern, lo, hi } = morsels_ref[m];
                let Prep::Scan { comp, roots } = &preps_ref[pattern] else {
                    continue;
                };
                let mut st = match held.take() {
                    Some((held_pat, mut st)) => {
                        if held_pat != pattern {
                            st.reset(comp.plan.len(), comp.edges.len());
                        }
                        st
                    }
                    None => self.acquire_state(comp.plan.len(), comp.edges.len()),
                };
                let drain_started = obs::timer();
                let mut out = Vec::new();
                self.run_roots(
                    comp,
                    &mut st,
                    &roots[lo..hi],
                    &mut |st| {
                        out.push(st.to_match());
                        true
                    },
                    empty_ref,
                );
                obs::record_since(morsel_hist_ref, drain_started);
                *slots_ref[m].lock().expect("morsel slot poisoned") = out;
                held = Some((pattern, st));
            }
            if let Some((_, st)) = held {
                self.release_state(st);
            }
        });

        // Deterministic merge: morsels were generated in (pattern,
        // root-order) order, so appending slots in index order restores
        // each pattern's sequential emission order.
        let mut results: Vec<Vec<Match>> = preps
            .into_iter()
            .map(|prep| match prep {
                Prep::Done(out) => out,
                Prep::Scan { .. } => Vec::new(),
            })
            .collect();
        let mut scan_matches = 0u64;
        for (morsel, slot) in morsels.iter().zip(slots) {
            let mut drained = slot.into_inner().expect("morsel slot poisoned");
            scan_matches += drained.len() as u64;
            results[morsel.pattern].append(&mut drained);
        }
        // Matches found on the morsel path; the serial fallback and
        // `Prep::Done` paths already count through `find_all`, so the
        // `match.matches_found` total is invariant across thread counts.
        obs::counter("match.matches_found").add(scan_matches);
        results
    }

    /// Up to `limit` matches.
    pub fn find_limited(&self, pattern: &Pattern, limit: usize) -> Vec<Match> {
        let mut out = Vec::new();
        if limit == 0 {
            return out;
        }
        self.for_each(pattern, |m| {
            out.push(m);
            out.len() < limit
        });
        out
    }

    /// Whether at least one match exists. Allocation-free: no [`Match`]
    /// is materialized for the probe.
    pub fn exists(&self, pattern: &Pattern) -> bool {
        let mut found = false;
        self.for_each_state(pattern, &mut |_| {
            found = true;
            false
        });
        found
    }

    /// Number of matches. Count-only emission path: the search never
    /// materializes a [`Match`] (no assignment/witness clones), it only
    /// bumps the counter at each complete assignment.
    pub fn count(&self, pattern: &Pattern) -> usize {
        let mut n = 0usize;
        self.for_each_state(pattern, &mut |_| {
            n += 1;
            true
        });
        n
    }

    /// Enumerate matches, stopping when `f` returns `false`.
    pub fn for_each(&self, pattern: &Pattern, mut f: impl FnMut(Match) -> bool) {
        self.for_each_state(pattern, &mut |st| f(st.to_match()));
    }

    /// Internal enumeration over borrowed search states: callers that
    /// only count or probe never pay for `Match` allocations.
    ///
    /// This is also where adaptive re-planning lives: a statistics-based
    /// plan whose observed frontier blows past its estimate (by
    /// [`MatchConfig::adaptive_factor`]) aborts *before emitting
    /// anything*, patches the planner's statistics with the graph's
    /// current cardinalities, and restarts once under a fresh plan. Every
    /// plan enumerates the identical match set, and the abort precedes
    /// the first emission, so callers observe exactly one complete,
    /// duplicate-free enumeration either way.
    fn for_each_state(&self, pattern: &Pattern, f: &mut dyn FnMut(&SearchState) -> bool) {
        debug_assert!(pattern.validate().is_ok());
        let empty = TouchSet::default();
        let Some(comp) = self.compiled(pattern, None, &empty) else {
            return;
        };
        let adapt = self.cfg.adaptive_replan && comp.adaptive_capable && self.planner.is_some();
        let Some(info) = self.run(&comp, f, &empty, adapt) else {
            return;
        };
        match self.replan(pattern, &comp, &info, &empty) {
            Some(new_comp) => {
                self.run(&new_comp, f, &empty, false);
            }
            // Statistics unavailable for a re-plan: finish under the
            // original plan, monitoring disarmed.
            None => {
                self.run(&comp, f, &empty, false);
            }
        }
    }

    /// Build the one-shot replacement plan after an adaptive abort:
    /// patch the planner's statistics to the graph's current truth (for
    /// live views — snapshots keep their stale estimates; other
    /// patterns' cached plans are deliberately left warm, see
    /// [`Planner::patch_stats`]), fold the observed frontier multiplier
    /// of the blown step in as a floor, recompile with adaptation
    /// disarmed, and install the corrected plan over the blown one in
    /// the cache. Returns `None` — finish under the original plan —
    /// when neither fresher statistics nor an observation are available,
    /// since recompiling would reproduce the same plan.
    fn replan(
        &self,
        pattern: &Pattern,
        comp: &Compiled,
        info: &ReplanInfo,
        touched: &TouchSet,
    ) -> Option<Arc<Compiled>> {
        let planner = self.planner?;
        let patched = match self.g.live_graph() {
            Some(live) => planner.patch_stats(live),
            None => false,
        };
        let mut overrides = FxHashMap::default();
        if info.depth > 0 {
            // Estimated rows entering the blown step vs. candidates it
            // actually generated ⇒ observed per-row multiplier.
            let rows_in = comp.est_rows[info.depth - 1].max(1.0);
            overrides.insert(comp.plan[info.depth], info.gen[info.depth] as f64 / rows_in);
        }
        if !patched && overrides.is_empty() {
            return None;
        }
        planner.note_replan();
        planner.note_compile();
        let stats = planner.stats()?;
        let mut c =
            self.compile_with(pattern, None, touched, Some(&stats), Some(&overrides))?;
        c.adaptive_capable = false;
        let c = Arc::new(c);
        planner.store_plan(self, pattern, None, c.clone());
        Some(c)
    }

    /// Enumerate matches whose image intersects `touched`, without
    /// duplicates across anchor choices. Sound for mutation deltas where
    /// every affected node (endpoints of added/removed/relabelled edges,
    /// relabelled nodes, attr-changed nodes, merge survivors) is in
    /// `touched`.
    ///
    /// With a [`Planner`] attached, the per-anchor compiles — one per
    /// pattern variable per call, the dominant compile cost of the
    /// incremental engine — come from the plan cache.
    pub fn find_touching(&self, pattern: &Pattern, touched: &TouchSet) -> Vec<Match> {
        debug_assert!(pattern.validate().is_ok());
        let mut out = Vec::new();
        if touched.is_empty() {
            return out;
        }
        for anchor in 0..pattern.num_vars() {
            let Some(comp) = self.compiled(pattern, Some(anchor), touched) else {
                continue;
            };
            self.run(
                &comp,
                &mut |st| {
                    out.push(st.to_match());
                    true
                },
                touched,
                false,
            );
        }
        out
    }

    /// Explain the plan this matcher would run for `pattern`: variable
    /// order, expected access path and cardinality estimate per step, and
    /// an accumulated cost estimate (expected accept-loop executions).
    ///
    /// Estimates come from the attached [`Planner`]'s statistics when
    /// present (check [`PlanExplanation::stats_version`]); without
    /// statistics they are candidate-count upper bounds.
    pub fn explain(&self, pattern: &Pattern) -> PlanExplanation {
        let stats_version = self
            .planner
            .and_then(|p| p.stats())
            .map(|s| s.version);
        let empty = TouchSet::default();
        let Some(comp) = self.compiled(pattern, None, &empty) else {
            return PlanExplanation {
                satisfiable: false,
                steps: Vec::new(),
                estimated_cost: 0.0,
                stats_version,
            };
        };
        let mut rows = 1.0f64;
        let mut total = 0.0f64;
        let steps = comp
            .steps
            .iter()
            .map(|s| {
                rows *= s.estimate.max(0.0);
                total += rows;
                ExplainStep {
                    var: pattern.var_name(Var(s.var as u8)).to_owned(),
                    label: pattern.nodes[s.var].label.clone(),
                    access: s.access,
                    estimate: s.estimate,
                }
            })
            .collect();
        PlanExplanation {
            satisfiable: true,
            steps,
            estimated_cost: total,
            stats_version,
        }
    }

    // ---- compilation -----------------------------------------------------

    pub(crate) fn compile(
        &self,
        pattern: &Pattern,
        anchor_var: Option<usize>,
        touched: &TouchSet,
    ) -> Option<Compiled> {
        let stats = self.planner.and_then(|p| p.stats());
        self.compile_with(pattern, anchor_var, touched, stats.as_deref(), None)
    }

    /// [`Matcher::compile`] with explicit statistics and observed-fanout
    /// overrides — the adaptive re-plan path, which must not read the
    /// planner's (possibly just-retired) snapshot and must fold in what
    /// the aborted run actually observed.
    fn compile_with(
        &self,
        pattern: &Pattern,
        anchor_var: Option<usize>,
        touched: &TouchSet,
        stats: Option<&CardinalityStats>,
        overrides: Option<&FxHashMap<usize, f64>>,
    ) -> Option<Compiled> {
        let g = self.g;
        let n = pattern.num_vars();
        let labels: Vec<LabelReq> = pattern
            .nodes
            .iter()
            .map(|pn| match &pn.label {
                None => LabelReq::Any,
                Some(name) => match g.try_label(name) {
                    Some(id) => LabelReq::Is(id),
                    None => LabelReq::Unsatisfiable,
                },
            })
            .collect();
        if labels.contains(&LabelReq::Unsatisfiable) {
            return None;
        }
        let resolve_edge = |e: &crate::pattern::PatternEdge| CEdge {
            src: e.src.index(),
            dst: e.dst.index(),
            label: match &e.label {
                None => LabelReq::Any,
                Some(name) => match g.try_label(name) {
                    Some(id) => LabelReq::Is(id),
                    None => LabelReq::Unsatisfiable,
                },
            },
        };
        let edges: Vec<CEdge> = pattern.edges.iter().map(resolve_edge).collect();
        // A positive edge with an unknown label can never match.
        if edges.iter().any(|e| e.label == LabelReq::Unsatisfiable) {
            return None;
        }
        // A negative edge with an unknown label is trivially satisfied.
        let neg_edges: Vec<CEdge> = pattern
            .neg_edges
            .iter()
            .map(resolve_edge)
            .filter(|e| e.label != LabelReq::Unsatisfiable)
            .collect();
        let resolve_key = |k: &str| match g.try_attr_key(k) {
            Some(id) => KeyReq::Is(id),
            None => KeyReq::Unknown,
        };
        let constraints: Vec<CC> = pattern
            .constraints
            .iter()
            .filter_map(|c| match c {
                Constraint::HasAttr(v, k) => Some(CC::HasAttr(v.index(), resolve_key(k))),
                Constraint::MissingAttr(v, k) => {
                    Some(CC::MissingAttr(v.index(), resolve_key(k)))
                }
                Constraint::Cmp { var, key, op, rhs } => Some(CC::Cmp {
                    var: var.index(),
                    key: resolve_key(key),
                    op: *op,
                    rhs: match rhs {
                        Rhs::Const(v) => CRhs::Const(v.clone()),
                        Rhs::Attr(o, k2) => CRhs::Attr(o.index(), resolve_key(k2)),
                    },
                }),
                // An unknown edge label cannot occur on any edge: the
                // no-edge condition is trivially true — drop it.
                Constraint::NoOutEdge(v, l) => match l {
                    None => Some(CC::NoOutEdge(v.index(), None)),
                    Some(name) => g.try_label(name).map(|id| CC::NoOutEdge(v.index(), Some(id))),
                },
                Constraint::NoInEdge(v, l) => match l {
                    None => Some(CC::NoInEdge(v.index(), None)),
                    Some(name) => g.try_label(name).map(|id| CC::NoInEdge(v.index(), Some(id))),
                },
            })
            .collect();

        // Degree lower bounds and required signature bits. Pattern edges
        // have "exists" semantics, so duplicates (and any-label edges
        // beside labelled ones on the same variable pair) can share one
        // witness edge — only distinct obligations count toward degree.
        let mut min_out = vec![0usize; n];
        let mut min_in = vec![0usize; n];
        {
            let mut labeled: FxHashSet<(usize, usize, u32)> = FxHashSet::default();
            let mut pair_has_labeled: FxHashSet<(usize, usize)> = FxHashSet::default();
            let mut any_pairs: FxHashSet<(usize, usize)> = FxHashSet::default();
            for e in &edges {
                match e.label {
                    LabelReq::Is(l) => {
                        if labeled.insert((e.src, e.dst, l.0)) {
                            min_out[e.src] += 1;
                            min_in[e.dst] += 1;
                        }
                        pair_has_labeled.insert((e.src, e.dst));
                    }
                    _ => {
                        any_pairs.insert((e.src, e.dst));
                    }
                }
            }
            for (s, d) in any_pairs {
                if !pair_has_labeled.contains(&(s, d)) {
                    min_out[s] += 1;
                    min_in[d] += 1;
                }
            }
        }
        let mut req_sig = vec![0u64; n];
        for e in &edges {
            if let LabelReq::Is(el) = e.label {
                if let LabelReq::Is(nl) = labels[e.dst] {
                    req_sig[e.src] |= sig_bit(Direction::Out, el, nl);
                }
                if let LabelReq::Is(nl) = labels[e.src] {
                    req_sig[e.dst] |= sig_bit(Direction::In, el, nl);
                }
            }
        }

        // Plan: join order. With planner statistics, a cost model over
        // estimated extension fan-outs; otherwise the greedy
        // candidate-count order.
        let stats_based = stats.is_some() && self.cfg.connected_order;
        let (plan, steps) = match stats {
            Some(stats) if self.cfg.connected_order => self.order_plan_cost(
                n, &labels, &edges, &constraints, anchor_var, touched, stats, overrides,
            ),
            _ => self.order_plan_greedy(n, &labels, &edges, anchor_var, touched),
        };
        let mut pos = vec![0usize; n];
        for (i, &v) in plan.iter().enumerate() {
            pos[v] = i;
        }

        // Readiness schedules.
        let mut edge_checks = vec![Vec::new(); n];
        for (i, e) in edges.iter().enumerate() {
            let step = pos[e.src].max(pos[e.dst]);
            edge_checks[step].push(i);
        }
        let mut neg_checks = vec![Vec::new(); n];
        for (i, e) in neg_edges.iter().enumerate() {
            let step = pos[e.src].max(pos[e.dst]);
            neg_checks[step].push(i);
        }
        let mut con_checks = vec![Vec::new(); n];
        for (i, c) in constraints.iter().enumerate() {
            let step = c.vars().into_iter().map(|v| pos[v]).max().unwrap_or(0);
            con_checks[step].push(i);
        }

        let mut forbid_touched = vec![false; n];
        if let Some(a) = anchor_var {
            for (v, f) in forbid_touched.iter_mut().enumerate() {
                *f = v < a;
            }
        }

        // Expected cumulative frontiers per plan position: the accepted
        // rows are the running product of step estimates (root estimate
        // is absolute, later estimates are per-row multipliers — or
        // absolute candidate counts for cartesian steps, which also
        // multiply per partial row); the generated candidates at step d
        // are the rows entering it times its raw generation estimate.
        let mut est_rows = Vec::with_capacity(n);
        let mut est_gen = Vec::with_capacity(n);
        let mut rows = 1.0f64;
        for s in &steps {
            est_gen.push(rows * s.raw_estimate.max(0.0));
            rows *= s.estimate.max(0.0);
            est_rows.push(rows);
        }

        Some(Compiled {
            labels,
            edges,
            neg_edges,
            constraints,
            plan,
            pos,
            req_sig,
            min_out,
            min_in,
            edge_checks,
            neg_checks,
            con_checks,
            anchor_var,
            forbid_touched,
            steps,
            est_rows,
            est_gen,
            adaptive_capable: stats_based && anchor_var.is_none(),
        })
    }

    /// The pre-statistics join order: anchor first, then greedily by
    /// live candidate count with a hard preference for variables adjacent
    /// to the matched prefix (declaration order when `connected_order` is
    /// off). Kept verbatim as the planner-less baseline — the F5 ablation
    /// and the `planner` bench compare against exactly this.
    fn order_plan_greedy(
        &self,
        n: usize,
        labels: &[LabelReq],
        edges: &[CEdge],
        anchor_var: Option<usize>,
        touched: &TouchSet,
    ) -> (Vec<usize>, Vec<PlanStep>) {
        let g = self.g;
        let estimate = |v: usize| -> usize {
            let base = match labels[v] {
                LabelReq::Any => g.num_nodes(),
                LabelReq::Is(l) => g.count_nodes_with_label(l),
                LabelReq::Unsatisfiable => 0,
            };
            if anchor_var == Some(v) {
                base.min(touched.len())
            } else {
                base
            }
        };
        let root_access = |v: usize| match (self.cfg.use_label_index, labels[v]) {
            (true, LabelReq::Is(_)) => PlanAccess::LabelIndex,
            _ => PlanAccess::Scan,
        };
        let mut plan: Vec<usize> = Vec::with_capacity(n);
        let mut steps: Vec<PlanStep> = Vec::with_capacity(n);
        let mut placed = vec![false; n];
        if let Some(a) = anchor_var {
            plan.push(a);
            placed[a] = true;
            steps.push(PlanStep {
                var: a,
                access: PlanAccess::Anchor,
                estimate: estimate(a) as f64,
                raw_estimate: estimate(a) as f64,
            });
        }
        let mut adj = vec![Vec::new(); n];
        for e in edges {
            adj[e.src].push(e.dst);
            adj[e.dst].push(e.src);
        }
        while plan.len() < n {
            let connected = |v: usize| adj[v].iter().any(|&u| placed[u]);
            let mut best: Option<usize> = None;
            #[allow(clippy::needless_range_loop)]
            for v in 0..n {
                if placed[v] {
                    continue;
                }
                let better = match best {
                    None => true,
                    Some(b) if !self.cfg.connected_order => {
                        // Declaration order in naive mode.
                        let _ = b;
                        false
                    }
                    Some(b) if plan.is_empty() => estimate(v) < estimate(b),
                    Some(b) => {
                        let (cv, cb) = (connected(v), connected(b));
                        cv & !cb || (cv == cb && estimate(v) < estimate(b))
                    }
                };
                if better {
                    best = Some(v);
                }
            }
            let v = best.expect("some unplaced var remains");
            let access = if plan.is_empty() {
                root_access(v)
            } else if connected(v) {
                PlanAccess::Extension
            } else {
                root_access(v)
            };
            plan.push(v);
            placed[v] = true;
            steps.push(PlanStep {
                var: v,
                access,
                estimate: estimate(v) as f64,
                raw_estimate: estimate(v) as f64,
            });
        }
        (plan, steps)
    }

    /// Statistics-driven join order. Each step binds the unplaced
    /// variable with the smallest expected *frontier multiplier*:
    ///
    /// - adjacent to the matched prefix → minimum extension fan-out over
    ///   the connecting edges, `triples(edge, src-label, dst-label) /
    ///   |bound-side label|`;
    /// - reachable through a bound equality join → expected value-index
    ///   bucket size for the candidate key;
    /// - otherwise (cartesian step) → the label's candidate count.
    ///
    /// The root additionally discounts its candidate count by its most
    /// selective one-step extension (capped at 1), so a large label whose
    /// incident edge kills the frontier beats a small label that fans
    /// out. Every step estimate is further scaled by the variable's
    /// range-constraint selectivity (`x.k < c` style predicates priced by
    /// [`CardinalityStats::range_selectivity`]'s min/max interpolation).
    /// Ties break on variable index; every input is a deterministic
    /// function of (pattern, statistics snapshot), so plans are stable
    /// and cacheable.
    ///
    /// `overrides` (adaptive re-plan only) carries per-variable observed
    /// frontier multipliers from an aborted run; a non-root step's
    /// estimate is raised to at least the observed value, so the new
    /// order routes around the step that blew up.
    #[allow(clippy::too_many_arguments)]
    fn order_plan_cost(
        &self,
        n: usize,
        labels: &[LabelReq],
        edges: &[CEdge],
        constraints: &[CC],
        anchor_var: Option<usize>,
        touched: &TouchSet,
        stats: &CardinalityStats,
        overrides: Option<&FxHashMap<usize, f64>>,
    ) -> (Vec<usize>, Vec<PlanStep>) {
        // Per-variable selectivity of its constant range constraints
        // (`<`, `<=`, `>`, `>=` against a numeric constant); 1.0 when
        // none apply or the key has no numeric statistics.
        let range_sel: Vec<f64> = (0..n)
            .map(|v| {
                let mut sel = 1.0f64;
                for c in constraints {
                    let CC::Cmp {
                        var,
                        key: KeyReq::Is(k),
                        op,
                        rhs: CRhs::Const(val),
                    } = c
                    else {
                        continue;
                    };
                    if *var != v {
                        continue;
                    }
                    let Some(bound) = val.as_number() else { continue };
                    let f = match op {
                        CmpOp::Lt | CmpOp::Le => stats.range_selectivity(*k, true, bound),
                        CmpOp::Gt | CmpOp::Ge => stats.range_selectivity(*k, false, bound),
                        _ => None,
                    };
                    if let Some(f) = f {
                        sel *= f.clamp(0.0, 1.0);
                    }
                }
                sel
            })
            .collect();
        let lbl = |v: usize| match labels[v] {
            LabelReq::Is(l) => Some(l),
            _ => None,
        };
        let label_count = |v: usize| match labels[v] {
            LabelReq::Unsatisfiable => 0.0,
            _ => stats.label_count(lbl(v)) as f64,
        };
        let root_access = |v: usize| match (self.cfg.use_label_index, labels[v]) {
            (true, LabelReq::Is(_)) => PlanAccess::LabelIndex,
            _ => PlanAccess::Scan,
        };
        // Cheapest extension fan-out for binding v given the placed set.
        let ext = |v: usize, placed: &[bool]| -> Option<f64> {
            let mut best: Option<f64> = None;
            for e in edges {
                let (bound, dir) = if e.src == v && e.dst != v && placed[e.dst] {
                    // v --e--> bound: candidates from bound's in-edges.
                    (e.dst, Direction::In)
                } else if e.dst == v && e.src != v && placed[e.src] {
                    (e.src, Direction::Out)
                } else {
                    continue;
                };
                let el = match e.label {
                    LabelReq::Is(l) => Some(l),
                    _ => None,
                };
                let f = stats.extension_fanout(el, lbl(bound), lbl(v), dir);
                best = Some(best.map_or(f, |b: f64| b.min(f)));
            }
            best
        };
        // Expected bucket size when v is reachable via a bound equality
        // join over the value index.
        let attr_join = |v: usize, placed: &[bool]| -> Option<f64> {
            if !self.cfg.use_attr_index {
                return None;
            }
            for c in constraints {
                let CC::Cmp {
                    var,
                    key,
                    op: CmpOp::Eq,
                    rhs: CRhs::Attr(other, other_key),
                } = c
                else {
                    continue;
                };
                let cand_key = if *var == v && *other != v && placed[*other] {
                    *key
                } else if *other == v && *var != v && placed[*var] {
                    *other_key
                } else {
                    continue;
                };
                return Some(match cand_key {
                    KeyReq::Is(k) => stats.avg_bucket(k),
                    KeyReq::Unknown => 0.0,
                });
            }
            None
        };

        let mut plan: Vec<usize> = Vec::with_capacity(n);
        let mut steps: Vec<PlanStep> = Vec::with_capacity(n);
        let mut placed = vec![false; n];
        if let Some(a) = anchor_var {
            plan.push(a);
            placed[a] = true;
            steps.push(PlanStep {
                var: a,
                access: PlanAccess::Anchor,
                estimate: label_count(a).min(touched.len() as f64),
                raw_estimate: label_count(a).min(touched.len() as f64),
            });
        }
        while plan.len() < n {
            // (comparison cost, displayed estimate, raw generation
            // estimate, access, var)
            let mut best: Option<(f64, f64, f64, PlanAccess, usize)> = None;
            for v in 0..n {
                if placed[v] {
                    continue;
                }
                let (mut cost, mut shown, access) = if plan.is_empty() {
                    let mut look = 1.0f64;
                    for e in edges {
                        let (other, dir) = if e.src == v && e.dst != v {
                            (e.dst, Direction::Out)
                        } else if e.dst == v && e.src != v {
                            (e.src, Direction::In)
                        } else {
                            continue;
                        };
                        let el = match e.label {
                            LabelReq::Is(l) => Some(l),
                            _ => None,
                        };
                        let f = stats.extension_fanout(el, lbl(v), lbl(other), dir);
                        look = look.min(f.min(1.0));
                    }
                    (label_count(v) * look, label_count(v), root_access(v))
                } else if let Some(f) = ext(v, &placed) {
                    (f, f, PlanAccess::Extension)
                } else if let Some(f) = attr_join(v, &placed) {
                    (f, f, PlanAccess::AttrJoin)
                } else {
                    (label_count(v), label_count(v), root_access(v))
                };
                // Generation happens before the range filter prunes, so
                // the monitor's yardstick keeps the undiscounted value.
                let mut raw = shown;
                cost *= range_sel[v];
                shown *= range_sel[v];
                if !plan.is_empty() {
                    if let Some(&obs) = overrides.and_then(|o| o.get(&v)) {
                        cost = cost.max(obs);
                        shown = shown.max(obs);
                        raw = raw.max(obs);
                    }
                }
                let better = match &best {
                    None => true,
                    Some((bc, ..)) => cost.total_cmp(bc) == std::cmp::Ordering::Less,
                };
                if better {
                    best = Some((cost, shown, raw, access, v));
                }
            }
            let (_, shown, raw, access, v) = best.expect("some unplaced var remains");
            plan.push(v);
            placed[v] = true;
            steps.push(PlanStep {
                var: v,
                access,
                estimate: shown,
                raw_estimate: raw,
            });
        }
        (plan, steps)
    }

    // ---- search ------------------------------------------------------------

    /// Execute a compiled plan. Returns `Some` when the adaptive monitor
    /// aborted the search for a re-plan (only possible with `adapt` set,
    /// and only before the first emission); `None` means the enumeration
    /// ran to completion (or an emit callback stopped it).
    fn run(
        &self,
        comp: &Compiled,
        emit: &mut dyn FnMut(&SearchState) -> bool,
        touched: &TouchSet,
        adapt: bool,
    ) -> Option<ReplanInfo> {
        let mut st = self.acquire_state(comp.plan.len(), comp.edges.len());
        st.adapt = adapt && comp.adaptive_capable;
        if comp.plan.is_empty() {
            // Zero-variable pattern: `step` emits the single empty match.
            self.step(comp, &mut st, 0, emit, touched);
        } else {
            let roots = self.candidates(comp, &st, 0, touched);
            let mut root_blowup = false;
            if st.adapt {
                // Root frontier check: a stale label count can be off by
                // orders of magnitude too.
                st.gen[0] = roots.len() as u64;
                root_blowup = st.gen[0] as f64
                    > (self.cfg.adaptive_factor * comp.est_gen[0].max(1.0))
                        .max(ADAPTIVE_MIN_FRONTIER);
                if root_blowup {
                    st.replan_at = Some(0);
                }
            }
            if !root_blowup {
                self.run_roots(comp, &mut st, &roots, emit, touched);
            }
        }
        // Per-plan-step estimated-vs-observed cardinality, as a percent
        // ratio (100 = spot-on). Only meaningful while the adaptive
        // monitor was tracking frontiers, and only sampled when tracing
        // is on — the frontier loop must stay free of registry traffic
        // in the default configuration.
        if st.adapt && obs::tracing_enabled() {
            let h = obs::histogram("plan.step_obs_vs_est_pct");
            for (depth, &generated) in st.gen.iter().enumerate() {
                if generated == 0 {
                    continue;
                }
                let est = comp.est_gen[depth].max(1.0);
                h.record((generated as f64 / est * 100.0) as u64);
            }
        }
        let info = st.replan_at.take().map(|depth| ReplanInfo {
            depth,
            gen: std::mem::take(&mut st.gen),
        });
        self.release_state(st);
        info
    }

    /// The depth-0 binding loop over an explicit root-candidate list —
    /// the one copy of the backtracking protocol shared by the
    /// sequential entry point and each parallel chunk, so the two paths
    /// cannot diverge.
    fn run_roots(
        &self,
        comp: &Compiled,
        st: &mut SearchState,
        roots: &[NodeId],
        emit: &mut dyn FnMut(&SearchState) -> bool,
        touched: &TouchSet,
    ) {
        let v0 = comp.plan[0];
        st.frontier_acc += roots.len() as u64;
        if self.poll_budget(st) {
            st.stopped = true;
            return;
        }
        for &root in roots {
            if st.stopped {
                return;
            }
            if !self.accept(comp, st, 0, v0, root, touched) {
                continue;
            }
            st.assignment[v0] = root;
            st.used.insert(root);
            self.step(comp, st, 1, emit, touched);
            st.used.remove(&root);
            st.assignment[v0] = NodeId(u32::MAX);
        }
    }

    fn step(
        &self,
        comp: &Compiled,
        st: &mut SearchState,
        depth: usize,
        emit: &mut dyn FnMut(&SearchState) -> bool,
        touched: &TouchSet,
    ) {
        if st.stopped {
            return;
        }
        if depth == comp.plan.len() {
            st.emitted = true;
            if !emit(st) {
                st.stopped = true;
            }
            return;
        }
        let v = comp.plan[depth];
        let candidates = self.candidates(comp, st, depth, touched);
        st.frontier_acc += candidates.len() as u64;
        if self.poll_budget(st) {
            st.stopped = true;
            return;
        }
        // Adaptive frontier monitor: once the candidates generated at
        // this plan position exceed the estimate by the configured
        // factor — and nothing has been emitted yet, so a restart cannot
        // duplicate output — abort for a re-plan.
        if st.adapt && !st.emitted {
            st.gen[depth] += candidates.len() as u64;
            if st.gen[depth] as f64
                > (self.cfg.adaptive_factor * comp.est_gen[depth].max(1.0))
                    .max(ADAPTIVE_MIN_FRONTIER)
            {
                st.replan_at = Some(depth);
                st.stopped = true;
                return;
            }
        }
        for cand in candidates {
            if st.stopped {
                return;
            }
            if !self.accept(comp, st, depth, v, cand, touched) {
                continue;
            }
            st.assignment[v] = cand;
            st.used.insert(cand);
            self.step(comp, st, depth + 1, emit, touched);
            st.used.remove(&cand);
            st.assignment[v] = NodeId(u32::MAX);
        }
    }

    /// Candidate nodes for the variable at plan position `depth`.
    fn candidates(
        &self,
        comp: &Compiled,
        st: &SearchState,
        depth: usize,
        touched: &TouchSet,
    ) -> Vec<NodeId> {
        let g = self.g;
        let v = comp.plan[depth];

        // Incremental anchor: candidates restricted to the touch set.
        if comp.anchor_var == Some(v) {
            let mut c: Vec<NodeId> = touched
                .iter()
                .copied()
                .filter(|&n| g.contains_node(n))
                .collect();
            c.sort_unstable();
            return c;
        }

        // Prefer extending along a positive edge from a bound neighbor:
        // candidates come from an adjacency list instead of an index scan.
        if self.cfg.connected_order {
            let mut best: Option<Vec<NodeId>> = None;
            for e in &comp.edges {
                let (anchor, dir) = if e.src == v && comp.pos[e.dst] < depth {
                    (e.dst, Direction::In) // v --e--> bound: walk bound's in-edges
                } else if e.dst == v && comp.pos[e.src] < depth {
                    (e.src, Direction::Out)
                } else {
                    continue;
                };
                let anchor_node = st.assignment[anchor];
                let want = match e.label {
                    LabelReq::Is(l) => Some(l),
                    _ => None,
                };
                let mut cands = g.neighbors(anchor_node, dir, want);
                cands.sort_unstable();
                cands.dedup();
                if best.as_ref().map(|b| cands.len() < b.len()).unwrap_or(true) {
                    best = Some(cands);
                }
            }
            if let Some(c) = best {
                return c;
            }
        }

        // Equality-join anchor: `v.key == bound.key2` (either orientation)
        // retrieves candidates from the value index.
        if self.cfg.use_attr_index {
            for c in &comp.constraints {
                let CC::Cmp {
                    var,
                    key,
                    op: CmpOp::Eq,
                    rhs: CRhs::Attr(other, other_key),
                } = c
                else {
                    continue;
                };
                let (anchor_var, anchor_key, cand_key) = if *var == v && comp.pos[*other] < depth
                {
                    (*other, *other_key, *key)
                } else if *other == v && comp.pos[*var] < depth {
                    (*var, *key, *other_key)
                } else {
                    continue;
                };
                let KeyReq::Is(ck) = cand_key else {
                    return Vec::new(); // key unknown: constraint unsatisfiable
                };
                let value = match anchor_key {
                    KeyReq::Is(ak) => g.attr(st.assignment[anchor_var], ak),
                    KeyReq::Unknown => None,
                };
                let Some(value) = value else {
                    return Vec::new(); // absent lhs/rhs: constraint false
                };
                let mut cands = g.nodes_with_attr(ck, value);
                cands.sort_unstable();
                return cands;
            }
        }

        // Fall back to label index or full scan.
        match (self.cfg.use_label_index, comp.labels[v]) {
            (true, LabelReq::Is(l)) => {
                let mut c = g.nodes_with_label(l).to_vec();
                c.sort_unstable();
                c
            }
            _ => g.node_ids(),
        }
    }

    /// Full acceptance check for binding `v → cand` at plan position `depth`.
    fn accept(
        &self,
        comp: &Compiled,
        st: &mut SearchState,
        depth: usize,
        v: usize,
        cand: NodeId,
        touched: &TouchSet,
    ) -> bool {
        let g = self.g;
        if st.used.contains(&cand) {
            return false;
        }
        if comp.anchor_var.is_some() && comp.forbid_touched[v] && touched.contains(&cand) {
            return false;
        }
        if let LabelReq::Is(l) = comp.labels[v] {
            if g.label_of(cand) != Some(l) {
                return false;
            }
        } else if !g.contains_node(cand) {
            return false;
        }
        if self.cfg.use_degree_filter
            && (g.out_degree(cand) < comp.min_out[v] || g.in_degree(cand) < comp.min_in[v])
        {
            return false;
        }
        if self.cfg.use_signature {
            let req = comp.req_sig[v];
            if g.signature(cand) & req != req {
                return false;
            }
        }
        // Positive edges whose both endpoints are now bound.
        for &ei in &comp.edge_checks[depth] {
            let e = &comp.edges[ei];
            let s = if e.src == v { cand } else { st.assignment[e.src] };
            let d = if e.dst == v { cand } else { st.assignment[e.dst] };
            let found = match e.label {
                LabelReq::Is(l) => g.find_edge(s, d, Some(l)),
                LabelReq::Any => g.find_edge(s, d, None),
                LabelReq::Unsatisfiable => None,
            };
            match found {
                Some(eid) => st.witness[ei] = eid,
                None => return false,
            }
        }
        // Negative edges ready at this step.
        for &ni in &comp.neg_checks[depth] {
            let e = &comp.neg_edges[ni];
            let s = if e.src == v { cand } else { st.assignment[e.src] };
            let d = if e.dst == v { cand } else { st.assignment[e.dst] };
            let exists = match e.label {
                LabelReq::Is(l) => g.has_edge(s, d, Some(l)),
                LabelReq::Any => g.has_edge(s, d, None),
                LabelReq::Unsatisfiable => false,
            };
            if exists {
                return false;
            }
        }
        // Constraints ready at this step.
        for &ci in &comp.con_checks[depth] {
            if !self.eval_constraint(&comp.constraints[ci], st, v, cand) {
                return false;
            }
        }
        true
    }

    fn eval_constraint(&self, c: &CC, st: &SearchState, v: usize, cand: NodeId) -> bool {
        let g = self.g;
        let node_of = |var: usize| if var == v { cand } else { st.assignment[var] };
        let attr_of = |var: usize, key: KeyReq| -> Option<&Value> {
            match key {
                KeyReq::Unknown => None,
                KeyReq::Is(k) => g.attr(node_of(var), k),
            }
        };
        match c {
            CC::HasAttr(var, key) => attr_of(*var, *key).is_some(),
            CC::MissingAttr(var, key) => attr_of(*var, *key).is_none(),
            CC::NoOutEdge(var, label) => {
                !g.has_adjacent_edge(node_of(*var), Direction::Out, *label)
            }
            CC::NoInEdge(var, label) => {
                !g.has_adjacent_edge(node_of(*var), Direction::In, *label)
            }
            CC::Cmp { var, key, op, rhs } => {
                let Some(lhs) = attr_of(*var, *key) else {
                    return false;
                };
                match rhs {
                    CRhs::Const(val) => op.eval(lhs, val),
                    CRhs::Attr(o, k2) => match attr_of(*o, *k2) {
                        Some(r) => op.eval(lhs, r),
                        None => false,
                    },
                }
            }
        }
    }
}

/// Backtracking state of one search. Pooled by the [`Planner`] so
/// repeated matching reuses the assignment/witness buffers and the
/// `used` set's table across calls.
#[derive(Default)]
pub(crate) struct SearchState {
    assignment: Vec<NodeId>,
    used: FxHashSet<NodeId>,
    witness: Vec<EdgeId>,
    stopped: bool,
    /// Adaptive monitoring armed for this run (serial, unanchored,
    /// statistics-based, not already a re-planned rerun).
    adapt: bool,
    /// Candidates generated so far per plan position, compared against
    /// `Compiled::est_rows` by the adaptive monitor.
    gen: Vec<u64>,
    /// Whether any match has been emitted — re-planning is only safe
    /// before the first emission (a restart would replay side effects).
    emitted: bool,
    /// Set when the monitor aborts the search: plan position whose
    /// observed frontier blew past its estimate.
    replan_at: Option<usize>,
    /// Candidate-batch counter for the amortized budget poll.
    budget_tick: u32,
    /// Frontier rows generated since the last full budget checkpoint —
    /// accumulated locally so the hot path stays off the shared atomics.
    frontier_acc: u64,
}

impl SearchState {
    /// Ready the buffers for a fresh search of the given shape.
    fn reset(&mut self, n_vars: usize, n_edges: usize) {
        self.assignment.clear();
        self.assignment.resize(n_vars, NodeId(u32::MAX));
        self.witness.clear();
        self.witness.resize(n_edges, EdgeId(u32::MAX));
        self.used.clear();
        self.stopped = false;
        self.adapt = false;
        self.gen.clear();
        self.gen.resize(n_vars, 0);
        self.emitted = false;
        self.replan_at = None;
        self.budget_tick = 0;
        self.frontier_acc = 0;
    }

    /// Materialize the completed assignment as an owned [`Match`].
    fn to_match(&self) -> Match {
        Match {
            nodes: self.assignment.clone(),
            edges: self.witness.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern::Pattern;

    fn kg() -> Graph {
        // Two persons in one city, one person in another; one edge-less org.
        let mut g = Graph::new();
        let p = g.label("Person");
        let c = g.label("City");
        let o = g.label("Org");
        let lives = g.label("livesIn");
        let knows = g.label("knows");
        let a = g.add_node(p);
        let b = g.add_node(p);
        let d = g.add_node(p);
        let c1 = g.add_node(c);
        let c2 = g.add_node(c);
        g.add_node(o);
        g.add_edge(a, c1, lives).unwrap();
        g.add_edge(b, c1, lives).unwrap();
        g.add_edge(d, c2, lives).unwrap();
        g.add_edge(a, b, knows).unwrap();
        g
    }

    fn lives_pattern() -> Pattern {
        let mut b = Pattern::builder();
        let x = b.node("x", Some("Person"));
        let c = b.node("c", Some("City"));
        b.edge(x, c, "livesIn");
        b.build().unwrap()
    }

    #[test]
    fn finds_all_simple_matches() {
        let g = kg();
        let m = Matcher::new(&g);
        let found = m.find_all(&lives_pattern());
        assert_eq!(found.len(), 3);
        // Witness edges recorded.
        for mt in &found {
            let er = g.edge(mt.edges[0]).unwrap();
            assert_eq!(er.src, mt.nodes[0]);
            assert_eq!(er.dst, mt.nodes[1]);
        }
    }

    #[test]
    fn unlimited_budget_changes_nothing() {
        let g = kg();
        let plain = Matcher::new(&g).find_all(&lives_pattern());
        let budget = obs::Budget::unlimited();
        let budgeted = Matcher::new(&g)
            .with_budget(&budget)
            .find_all(&lives_pattern());
        assert_eq!(plain.len(), budgeted.len());
        assert!(!budget.is_tripped());
    }

    #[test]
    fn tripped_budget_stops_enumeration_early() {
        let g = kg();
        let budget = obs::Budget::unlimited().cancel_at_check(1);
        // Drive the pre-tripped state through the first checkpoint.
        assert!(budget.checkpoint().is_some());
        let found = Matcher::new(&g)
            .with_budget(&budget)
            .find_all(&lives_pattern());
        assert!(found.is_empty(), "tripped scan must stop before emitting");
        assert!(budget.is_tripped());
    }

    #[test]
    fn match_cap_trips_on_large_scan() {
        // A scan big enough to cross the 64-batch amortized flush.
        let mut g = Graph::new();
        let p = g.label("Person");
        let c = g.label("City");
        let lives = g.label("livesIn");
        let city = g.add_node(c);
        for _ in 0..2000 {
            let n = g.add_node(p);
            g.add_edge(n, city, lives).unwrap();
        }
        let budget = obs::Budget::unlimited().with_match_cap(500);
        let found = Matcher::new(&g)
            .with_budget(&budget)
            .find_all(&lives_pattern());
        assert!(found.len() < 2000, "match cap never observed");
        assert_eq!(budget.tripped(), Some(obs::TripReason::OpBudget));
    }

    #[test]
    fn naive_and_optimized_agree() {
        let g = kg();
        let opt = Matcher::new(&g).find_all(&lives_pattern());
        let naive = Matcher::with_config(&g, MatchConfig::naive()).find_all(&lives_pattern());
        let key = |ms: &[Match]| {
            let mut v: Vec<Vec<NodeId>> = ms.iter().map(|m| m.nodes.clone()).collect();
            v.sort();
            v
        };
        assert_eq!(key(&opt), key(&naive));
    }

    #[test]
    fn injectivity_enforced() {
        let g = kg();
        let mut b = Pattern::builder();
        let x = b.node("x", Some("Person"));
        let y = b.node("y", Some("Person"));
        let c = b.node("c", Some("City"));
        b.edge(x, c, "livesIn");
        b.edge(y, c, "livesIn");
        let p = b.build().unwrap();
        let found = Matcher::new(&g).find_all(&p);
        // Only city c1 hosts two persons: (a,b) and (b,a).
        assert_eq!(found.len(), 2);
        for m in &found {
            assert_ne!(m.nodes[0], m.nodes[1]);
        }
    }

    #[test]
    fn negative_edge_filters() {
        let g = kg();
        let mut b = Pattern::builder();
        let x = b.node("x", Some("Person"));
        let y = b.node("y", Some("Person"));
        let c = b.node("c", Some("City"));
        b.edge(x, c, "livesIn");
        b.edge(y, c, "livesIn");
        b.neg_edge(x, y, "knows");
        let p = b.build().unwrap();
        let found = Matcher::new(&g).find_all(&p);
        // (a,b) killed by knows; (b,a) survives (knows is directed).
        assert_eq!(found.len(), 1);
    }

    #[test]
    fn unknown_labels_mean_no_or_trivial_matches() {
        let g = kg();
        // Unknown node label → no matches.
        let mut b = Pattern::builder();
        b.node("x", Some("Ghost"));
        assert!(Matcher::new(&g).find_all(&b.build().unwrap()).is_empty());
        // Unknown negative edge label → trivially satisfied.
        let mut b = Pattern::builder();
        let x = b.node("x", Some("Person"));
        let y = b.node("y", Some("Person"));
        b.neg_edge(x, y, "ghostRel");
        let p = b.build().unwrap();
        assert_eq!(Matcher::new(&g).find_all(&p).len(), 6); // 3P2 ordered pairs
    }

    #[test]
    fn attribute_constraints() {
        let mut g = kg();
        let age = g.attr_key("age");
        let nodes: Vec<NodeId> = g.nodes().collect();
        g.set_attr(nodes[0], age, Value::Int(30)).unwrap();
        g.set_attr(nodes[1], age, Value::Int(30)).unwrap();
        g.set_attr(nodes[2], age, Value::Int(40)).unwrap();

        // Same-age distinct persons.
        let mut b = Pattern::builder();
        let x = b.node("x", Some("Person"));
        let y = b.node("y", Some("Person"));
        b.attr_eq_var(x, "age", y, "age");
        let p = b.build().unwrap();
        assert_eq!(Matcher::new(&g).find_all(&p).len(), 2); // (a,b),(b,a)

        // Missing attribute.
        let mut b = Pattern::builder();
        let x = b.node("x", Some("Person"));
        b.missing_attr(x, "age");
        let p = b.build().unwrap();
        assert_eq!(Matcher::new(&g).find_all(&p).len(), 0);

        // Constant comparison.
        let mut b = Pattern::builder();
        let x = b.node("x", Some("Person"));
        b.attr_eq(x, "age", 40i64);
        let p = b.build().unwrap();
        assert_eq!(Matcher::new(&g).find_all(&p).len(), 1);
    }

    #[test]
    fn cmp_on_absent_attr_is_false() {
        let g = kg();
        let mut b = Pattern::builder();
        let x = b.node("x", Some("Person"));
        b.attr_eq(x, "nonexistent", 1i64);
        let p = b.build().unwrap();
        assert!(Matcher::new(&g).find_all(&p).is_empty());
    }

    #[test]
    fn self_loop_pattern() {
        let mut g = Graph::new();
        let p = g.label("P");
        let r = g.label("r");
        let a = g.add_node(p);
        let b_ = g.add_node(p);
        g.add_edge(a, a, r).unwrap();
        g.add_edge(a, b_, r).unwrap();
        let mut pb = Pattern::builder();
        let x = pb.node("x", Some("P"));
        pb.edge(x, x, "r");
        let pat = pb.build().unwrap();
        let found = Matcher::new(&g).find_all(&pat);
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].nodes[0], a);
    }

    #[test]
    fn find_limited_and_exists() {
        let g = kg();
        let p = lives_pattern();
        let m = Matcher::new(&g);
        assert_eq!(m.find_limited(&p, 2).len(), 2);
        assert_eq!(m.find_limited(&p, 0).len(), 0);
        assert!(m.exists(&p));
        assert_eq!(m.count(&p), 3);
    }

    #[test]
    fn find_touching_restricts_and_dedups() {
        let g = kg();
        let p = lives_pattern();
        let all = Matcher::new(&g).find_all(&p);
        // Touch everything → same match set, each exactly once.
        let touched: TouchSet = g.nodes().collect();
        let mut touching = Matcher::new(&g).find_touching(&p, &touched);
        let mut allv: Vec<_> = all.iter().map(|m| m.nodes.clone()).collect();
        let mut tv: Vec<_> = touching.iter().map(|m| m.nodes.clone()).collect();
        allv.sort();
        tv.sort();
        assert_eq!(allv, tv);

        // Touch only one city → only matches through it.
        let c1 = all[0].nodes[1];
        let single: TouchSet = [c1].into_iter().collect();
        touching = Matcher::new(&g).find_touching(&p, &single);
        assert!(touching.iter().all(|m| m.nodes.contains(&c1)));
        let expected = all.iter().filter(|m| m.nodes.contains(&c1)).count();
        assert_eq!(touching.len(), expected);
    }

    #[test]
    fn attr_index_join_agrees_with_scan() {
        // Pairwise dedup pattern: the value-index join must return exactly
        // the scan results.
        let mut g = Graph::new();
        let ssn = g.attr_key("ssn");
        let mut nodes = Vec::new();
        for i in 0..20 {
            let n = g.add_node_named("Person");
            g.set_attr(n, ssn, Value::Int((i % 7) as i64)).unwrap();
            nodes.push(n);
        }
        let mut b = Pattern::builder();
        let x = b.node("x", Some("Person"));
        let y = b.node("y", Some("Person"));
        b.attr_eq_var(x, "ssn", y, "ssn");
        let p = b.build().unwrap();

        let with_index = Matcher::new(&g).find_all(&p);
        let without = Matcher::with_config(
            &g,
            MatchConfig {
                use_attr_index: false,
                ..MatchConfig::default()
            },
        )
        .find_all(&p);
        let key = |ms: &[Match]| {
            let mut v: Vec<Vec<NodeId>> = ms.iter().map(|m| m.nodes.clone()).collect();
            v.sort();
            v
        };
        assert_eq!(key(&with_index), key(&without));
        assert!(!with_index.is_empty());
    }

    #[test]
    fn no_out_edge_constraint() {
        let mut g = Graph::new();
        let a = g.add_node_named("City");
        let b_ = g.add_node_named("City");
        let k = g.add_node_named("Country");
        g.add_edge_named(a, k, "inCountry").unwrap();
        let mut pb = Pattern::builder();
        let c = pb.node("c", Some("City"));
        pb.no_out_edge(c, Some("inCountry"));
        let p = pb.build().unwrap();
        let found = Matcher::new(&g).find_all(&p);
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].nodes[0], b_);

        // Unknown label in a no-edge condition is trivially satisfied.
        let mut pb = Pattern::builder();
        let c = pb.node("c", Some("City"));
        pb.no_out_edge(c, Some("ghostRel"));
        let p = pb.build().unwrap();
        assert_eq!(Matcher::new(&g).find_all(&p).len(), 2);

        // No incoming edge of any label.
        let mut pb = Pattern::builder();
        let kk = pb.node("k", Some("Country"));
        pb.no_in_edge(kk, None);
        let p = pb.build().unwrap();
        assert!(Matcher::new(&g).find_all(&p).is_empty());
    }

    #[test]
    fn adaptive_replan_triggers_on_stale_stats_and_agrees() {
        use crate::plan::Planner;
        // Ring of `cold` edges plus one `hot` edge; statistics snapshot
        // taken here, so the planner prices `hot` extensions at ~1/n.
        let mut g = Graph::new();
        let p = g.label("P");
        let cold = g.label("cold");
        let hot = g.label("hot");
        let n = 50;
        let nodes: Vec<NodeId> = (0..n).map(|_| g.add_node(p)).collect();
        for i in 0..n {
            g.add_edge(nodes[i], nodes[(i + 1) % n], cold).unwrap();
        }
        let lone_hot = g.add_edge(nodes[0], nodes[1], hot).unwrap();

        let planner = Planner::new();
        planner.refresh_stats(&g);

        // Now invalidate the estimate: drop the lone hot edge and fan
        // 60 hot edges out of every ring node into fresh sink nodes that
        // carry no cold edge — the hot frontier explodes 3000x while the
        // match set collapses to zero (no sink can complete the cold
        // step), so nothing is emitted before the monitor trips.
        g.remove_edge(lone_hot).unwrap();
        let sinks: Vec<NodeId> = (0..60).map(|_| g.add_node(p)).collect();
        for &src in &nodes {
            for &sink in &sinks {
                g.add_edge(src, sink, hot).unwrap();
            }
        }

        let mut b = Pattern::builder();
        let a = b.node("a", Some("P"));
        let bb = b.node("b", Some("P"));
        let c = b.node("c", Some("P"));
        b.edge(a, bb, "hot");
        b.edge(bb, c, "cold");
        let pat = b.build().unwrap();

        let m = Matcher::with_planner(&g, MatchConfig::default(), &planner);
        let adaptive = m.find_all(&pat);
        assert_eq!(
            planner.replan_count(),
            1,
            "the blown hot frontier must trigger exactly one re-plan"
        );
        // The re-plan refreshed the planner's statistics to the current
        // graph.
        assert_eq!(planner.stats().unwrap().version, g.version());
        let plain = Matcher::new(&g).find_all(&pat);
        let key = |ms: &[Match]| {
            let mut v: Vec<Vec<NodeId>> = ms.iter().map(|m| m.nodes.clone()).collect();
            v.sort();
            v
        };
        assert_eq!(key(&adaptive), key(&plain), "re-plan must not change results");

        // With fresh statistics the very next call plans correctly and
        // must not re-plan again.
        assert_eq!(m.count(&pat), plain.len());
        assert_eq!(planner.replan_count(), 1);
    }

    #[test]
    fn selective_range_predicates_do_not_trigger_spurious_replans() {
        use crate::plan::Planner;
        // Regression: the monitor must compare observed *generated*
        // candidates against pre-filter estimates. A 1%-selective range
        // predicate discounts the accepted-rows estimate 100x, but the
        // label index still generates every candidate — with perfectly
        // fresh statistics that must never read as a blow-up.
        let mut g = Graph::new();
        let age = g.attr_key("age");
        for i in 0..5_000 {
            let n = g.add_node_named("P");
            g.set_attr(n, age, Value::Int(i % 100)).unwrap();
        }
        let planner = Planner::new();
        planner.refresh_stats(&g);
        let mut b = Pattern::builder();
        let x = b.node("x", Some("P"));
        b.attr_cmp(x, "age", CmpOp::Lt, 1i64);
        let pat = b.build().unwrap();
        let m = Matcher::with_planner(&g, MatchConfig::default(), &planner);
        for _ in 0..3 {
            assert_eq!(m.count(&pat), 50);
        }
        assert_eq!(
            planner.replan_count(),
            0,
            "fresh statistics + selective filter must not re-plan"
        );
    }

    #[test]
    fn adaptive_replan_keeps_other_patterns_warm() {
        use crate::plan::Planner;
        // Re-planning one blown pattern must not evict the other
        // patterns' cached plans (no epoch bump on a stats patch), and
        // the corrected plan replaces the blown one in the cache.
        let mut g = Graph::new();
        let p = g.label("P");
        let cold = g.label("cold");
        let hot = g.label("hot");
        let nodes: Vec<NodeId> = (0..50).map(|_| g.add_node(p)).collect();
        for i in 0..50 {
            g.add_edge(nodes[i], nodes[(i + 1) % 50], cold).unwrap();
        }
        let lone_hot = g.add_edge(nodes[0], nodes[1], hot).unwrap();
        let planner = Planner::new();
        planner.refresh_stats(&g);

        // Warm an unrelated pattern before the blow-up.
        let mut b = Pattern::builder();
        let x = b.node("x", Some("P"));
        let y = b.node("y", Some("P"));
        b.edge(x, y, "cold");
        let other = b.build().unwrap();
        {
            let m = Matcher::with_planner(&g, MatchConfig::default(), &planner);
            assert_eq!(m.count(&other), 50);
        }

        g.remove_edge(lone_hot).unwrap();
        let sinks: Vec<NodeId> = (0..60).map(|_| g.add_node(p)).collect();
        for &src in &nodes {
            for &sink in &sinks {
                g.add_edge(src, sink, hot).unwrap();
            }
        }
        let mut b = Pattern::builder();
        let a = b.node("a", Some("P"));
        let bb = b.node("b", Some("P"));
        let c = b.node("c", Some("P"));
        b.edge(a, bb, "hot");
        b.edge(bb, c, "cold");
        let blown = b.build().unwrap();

        let m = Matcher::with_planner(&g, MatchConfig::default(), &planner);
        assert!(m.find_all(&blown).is_empty());
        assert_eq!(planner.replan_count(), 1);

        // The unrelated pattern's plan survived the patch: serving it
        // again is a pure cache hit.
        let compiles = planner.compile_count();
        assert_eq!(m.count(&other), 50);
        assert_eq!(
            planner.compile_count(),
            compiles,
            "the stats patch must not evict unrelated warm plans"
        );
        // And the corrected plan replaced the blown one: no further
        // re-plans, no recompiles.
        assert!(m.find_all(&blown).is_empty());
        assert_eq!(planner.replan_count(), 1);
        assert_eq!(planner.compile_count(), compiles);
    }

    #[test]
    fn adaptive_replan_disabled_for_anchored_and_naive_searches() {
        use crate::plan::Planner;
        let mut g = Graph::new();
        let p = g.label("P");
        let r = g.label("r");
        let a = g.add_node(p);
        let planner = Planner::new();
        planner.refresh_stats(&g);
        // Blow up the graph after the snapshot.
        let more: Vec<NodeId> = (0..200).map(|_| g.add_node(p)).collect();
        for &m in &more {
            g.add_edge(a, m, r).unwrap();
        }
        let mut b = Pattern::builder();
        let x = b.node("x", Some("P"));
        let y = b.node("y", Some("P"));
        b.edge(x, y, "r");
        let pat = b.build().unwrap();

        // Anchored search: never adapts, still exact.
        let m = Matcher::with_planner(&g, MatchConfig::default(), &planner);
        let touched: TouchSet = [a].into_iter().collect();
        assert_eq!(m.find_touching(&pat, &touched).len(), 200);
        // Adaptation switched off: the stale plan runs to completion.
        let cfg = MatchConfig {
            adaptive_replan: false,
            ..MatchConfig::default()
        };
        let m = Matcher::with_planner(&g, cfg, &planner);
        assert_eq!(m.find_all(&pat).len(), 200);
        assert_eq!(planner.replan_count(), 0);
    }

    #[test]
    fn range_constraints_steer_plan_order_with_stats() {
        use crate::plan::Planner;
        // 100 P nodes with ages 0..100, 10 Q nodes. Without range
        // selectivity P (100 candidates) loses to Q (10) as the root;
        // the `age < 5` predicate prices P down to ~5 and must win.
        let mut g = Graph::new();
        let age = g.attr_key("age");
        for i in 0..100 {
            let n = g.add_node_named("P");
            g.set_attr(n, age, Value::Int(i)).unwrap();
        }
        for _ in 0..10 {
            g.add_node_named("Q");
        }
        let planner = Planner::new();
        planner.refresh_stats(&g);

        let mut b = Pattern::builder();
        let x = b.node("x", Some("P"));
        b.node("y", Some("Q"));
        b.attr_cmp(x, "age", CmpOp::Lt, 5i64);
        let pat = b.build().unwrap();

        let m = Matcher::with_planner(&g, MatchConfig::default(), &planner);
        let ex = m.explain(&pat);
        assert_eq!(ex.steps[0].var, "x", "range-filtered P must root the plan");
        assert!(
            ex.steps[0].estimate < 10.0,
            "estimate must reflect the <5 selectivity, got {}",
            ex.steps[0].estimate
        );
        // Selectivity only steers order; results stay exact.
        assert_eq!(m.find_all(&pat).len(), 5 * 10);
    }

    #[test]
    fn disconnected_pattern_is_product() {
        let g = kg();
        let mut b = Pattern::builder();
        b.node("x", Some("City"));
        b.node("y", Some("Org"));
        let p = b.build().unwrap();
        assert_eq!(Matcher::new(&g).find_all(&p).len(), 2); // 2 cities × 1 org
    }

    #[test]
    fn edge_any_label() {
        let g = kg();
        let mut b = Pattern::builder();
        let x = b.node("x", Some("Person"));
        let y = b.node("y", None);
        b.edge_any(x, y);
        let p = b.build().unwrap();
        assert_eq!(Matcher::new(&g).find_all(&p).len(), 4); // 3 lives + 1 knows
    }
}
