//! # grepair-match
//!
//! Pattern language and subgraph-isomorphism engine for Graph Repairing
//! Rules (GRRs). A GRR's matching half is a [`Pattern`]: labelled node
//! variables, positive edges (required), negative edges (forbidden), and
//! attribute [`pattern::Constraint`]s — the vocabulary needed to describe
//! the paper's three inconsistency classes (incompleteness, conflicts,
//! redundancy).
//!
//! [`Matcher`] enumerates injective matches; its optimizations (label
//! index, connected join order, degree and neighbor-signature pruning) are
//! individually switchable through [`MatchConfig`] so the F5 ablation can
//! quantify each. [`Matcher::find_touching`] is the delta-driven entry
//! point behind the incremental repair engine. [`oracle`] holds the
//! brute-force reference implementation used by property tests.
//!
//! ```
//! use grepair_graph::Graph;
//! use grepair_match::{Matcher, Pattern};
//!
//! let mut g = Graph::new();
//! let ann = g.add_node_named("Person");
//! let oslo = g.add_node_named("City");
//! g.add_edge_named(ann, oslo, "livesIn").unwrap();
//!
//! let mut b = Pattern::builder();
//! let x = b.node("x", Some("Person"));
//! let c = b.node("c", Some("City"));
//! b.edge(x, c, "livesIn");
//! let pattern = b.build().unwrap();
//!
//! let matches = Matcher::new(&g).find_all(&pattern);
//! assert_eq!(matches.len(), 1);
//! assert_eq!(matches[0].nodes, vec![ann, oslo]);
//! ```

#![forbid(unsafe_code)]

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod matcher;
pub mod oracle;
pub mod pattern;
pub mod plan;
pub mod sat;
pub mod view;

pub use matcher::{
    ExplainStep, Match, MatchConfig, Matcher, PlanAccess, PlanExplanation, PlanStep, TouchSet,
};
pub use pattern::{CmpOp, Constraint, Pattern, PatternBuilder, PatternEdge, PatternNode, Rhs, Var};
pub use plan::{Planner, StatsSource};
pub use sat::unsatisfiable;
pub use view::GraphView;
