//! Brute-force matching oracle.
//!
//! Enumerates *every* injective assignment of pattern variables to live
//! nodes and checks all pattern requirements on complete assignments, with
//! no pruning, no indexes, and no clever ordering. Exponential and only
//! suitable for tiny graphs — its sole purpose is to serve as the ground
//! truth the optimized [`crate::Matcher`] is property-tested against.

use crate::pattern::{Constraint, Pattern, Rhs};
use grepair_graph::{EdgeId, Graph, NodeId, Value};

/// All matches of `pattern` in `g`, by exhaustive enumeration.
///
/// Matches are returned with the same witness-edge convention as the real
/// matcher (minimal edge id among parallel candidates).
pub fn brute_force_matches(g: &Graph, pattern: &Pattern) -> Vec<crate::Match> {
    let nodes: Vec<NodeId> = g.nodes().collect();
    let k = pattern.num_vars();
    let mut out = Vec::new();
    let mut assignment: Vec<NodeId> = Vec::with_capacity(k);
    enumerate(g, pattern, &nodes, &mut assignment, &mut out);
    out
}

fn enumerate(
    g: &Graph,
    pattern: &Pattern,
    nodes: &[NodeId],
    assignment: &mut Vec<NodeId>,
    out: &mut Vec<crate::Match>,
) {
    if assignment.len() == pattern.num_vars() {
        if let Some(witness) = check(g, pattern, assignment) {
            out.push(crate::Match {
                nodes: assignment.clone(),
                edges: witness,
            });
        }
        return;
    }
    for &n in nodes {
        if assignment.contains(&n) {
            continue; // injectivity
        }
        assignment.push(n);
        enumerate(g, pattern, nodes, assignment, out);
        assignment.pop();
    }
}

/// Check a complete assignment; returns witness edges if it is a match.
fn check(g: &Graph, pattern: &Pattern, m: &[NodeId]) -> Option<Vec<EdgeId>> {
    for (i, pn) in pattern.nodes.iter().enumerate() {
        if let Some(want) = &pn.label {
            let have = g.label_name(g.node_label(m[i]).ok()?);
            if have != want {
                return None;
            }
        }
    }
    let mut witness = Vec::with_capacity(pattern.edges.len());
    for e in &pattern.edges {
        let s = m[e.src.index()];
        let d = m[e.dst.index()];
        let found = match &e.label {
            Some(name) => {
                let l = g.try_label(name)?;
                g.find_edge(s, d, l)
            }
            None => g.find_edge_any(s, d),
        };
        witness.push(found?);
    }
    for e in &pattern.neg_edges {
        let s = m[e.src.index()];
        let d = m[e.dst.index()];
        let exists = match &e.label {
            Some(name) => match g.try_label(name) {
                Some(l) => g.has_edge_labeled(s, d, l),
                None => false,
            },
            None => g.edges_between(s, d).next().is_some(),
        };
        if exists {
            return None;
        }
    }
    for c in &pattern.constraints {
        if !eval_constraint(g, c, m) {
            return None;
        }
    }
    Some(witness)
}

fn eval_constraint(g: &Graph, c: &Constraint, m: &[NodeId]) -> bool {
    let attr_of = |var: crate::Var, key: &str| -> Option<Value> {
        let k = g.try_attr_key(key)?;
        g.attr(m[var.index()], k).cloned()
    };
    let has_dir_edge = |var: &crate::Var, label: &Option<String>, out: bool| -> bool {
        let n = m[var.index()];
        let lid = label.as_ref().and_then(|name| g.try_label(name));
        if label.is_some() && lid.is_none() {
            return false; // unknown label occurs on no edge
        }
        let edges: Vec<_> = if out {
            g.out_edges(n).collect()
        } else {
            g.in_edges(n).collect()
        };
        edges.into_iter().any(|e| match lid {
            None => true,
            Some(l) => g.edge(e).map(|er| er.label == l).unwrap_or(false),
        })
    };
    match c {
        Constraint::HasAttr(v, k) => attr_of(*v, k).is_some(),
        Constraint::MissingAttr(v, k) => attr_of(*v, k).is_none(),
        Constraint::NoOutEdge(v, l) => !has_dir_edge(v, l, true),
        Constraint::NoInEdge(v, l) => !has_dir_edge(v, l, false),
        Constraint::Cmp { var, key, op, rhs } => {
            let Some(lhs) = attr_of(*var, key) else {
                return false;
            };
            match rhs {
                Rhs::Const(v) => op.eval(&lhs, v),
                Rhs::Attr(o, k2) => match attr_of(*o, k2) {
                    Some(r) => op.eval(&lhs, &r),
                    None => false,
                },
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Matcher, Pattern};

    #[test]
    fn oracle_agrees_with_matcher_on_fixture() {
        let mut g = Graph::new();
        let p = g.label("P");
        let q = g.label("Q");
        let r = g.label("r");
        let a = g.add_node(p);
        let b = g.add_node(p);
        let c = g.add_node(q);
        g.add_edge(a, b, r).unwrap();
        g.add_edge(b, c, r).unwrap();
        g.add_edge(a, c, r).unwrap();

        let mut pb = Pattern::builder();
        let x = pb.node("x", Some("P"));
        let y = pb.node("y", None);
        pb.edge(x, y, "r");
        let pat = pb.build().unwrap();

        let mut oracle: Vec<_> = brute_force_matches(&g, &pat)
            .into_iter()
            .map(|m| m.nodes)
            .collect();
        let mut real: Vec<_> = Matcher::new(&g)
            .find_all(&pat)
            .into_iter()
            .map(|m| m.nodes)
            .collect();
        oracle.sort();
        real.sort();
        assert_eq!(oracle, real);
        assert_eq!(oracle.len(), 3);
    }
}
