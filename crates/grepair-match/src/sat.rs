//! Conservative constraint-satisfiability check for patterns.
//!
//! [`unsatisfiable`] proves that a pattern can *never* match any graph —
//! its positive requirements contradict its negative conditions or its
//! attribute constraints contradict each other. The check is **sound but
//! not complete**: a returned witness is a genuine contradiction, while
//! `None` only means no contradiction was found, not that the pattern is
//! satisfiable. The lint layer surfaces positives as `GR005
//! unsatisfiable-pattern`.

use crate::pattern::{CmpOp, Constraint, Pattern, Rhs};
use grepair_graph::Value;

/// Does the negative requirement `neg` (None = any label) forbid every
/// edge the positive requirement `pos` could match? Only then is the pair
/// contradictory: a wildcard positive edge can dodge a labelled negative
/// one by matching a different label.
fn forbids(neg: &Option<String>, pos: &Option<String>) -> bool {
    match (neg, pos) {
        (None, _) => true,
        (Some(n), Some(p)) => n == p,
        (Some(_), None) => false,
    }
}

/// Prove the pattern unsatisfiable, returning a human-readable witness of
/// the contradiction, or `None` if no contradiction was found.
///
/// Detected contradiction classes:
/// - a positive edge that a negative edge between the same endpoints
///   forbids (label clash included);
/// - a positive edge out of / into a variable that a
///   [`Constraint::NoOutEdge`] / [`Constraint::NoInEdge`] forbids;
/// - `missing(v.k)` combined with `has(v.k)` or any comparison on `v.k`
///   (comparisons require the attribute to be present);
/// - mutually exclusive constant comparisons on the same `v.k`: clashing
///   equalities, an equality excluded by another comparison, or an empty
///   numeric interval (max lower bound above min upper bound).
pub fn unsatisfiable(p: &Pattern) -> Option<String> {
    let name = |v: crate::pattern::Var| p.var_name(v);
    let lbl = |l: &Option<String>| l.clone().unwrap_or_else(|| "*".into());

    // Positive edge vs negative edge between the same endpoints.
    for pe in &p.edges {
        for ne in &p.neg_edges {
            if pe.src == ne.src && pe.dst == ne.dst && forbids(&ne.label, &pe.label) {
                return Some(format!(
                    "edge ({})-[{}]->({}) is required by the match clause but forbidden by 'not'",
                    name(pe.src),
                    lbl(&pe.label),
                    name(pe.dst),
                ));
            }
        }
    }

    // Positive edge vs no-out-edge / no-in-edge conditions.
    for pe in &p.edges {
        for c in &p.constraints {
            match c {
                Constraint::NoOutEdge(v, l) if *v == pe.src && forbids(l, &pe.label) => {
                    return Some(format!(
                        "({}) must have a [{}] out-edge but 'not ({})-[{}]->(*)' forbids it",
                        name(pe.src),
                        lbl(&pe.label),
                        name(*v),
                        lbl(l),
                    ));
                }
                Constraint::NoInEdge(v, l) if *v == pe.dst && forbids(l, &pe.label) => {
                    return Some(format!(
                        "({}) must have a [{}] in-edge but 'not (*)-[{}]->({})' forbids it",
                        name(pe.dst),
                        lbl(&pe.label),
                        lbl(l),
                        name(*v),
                    ));
                }
                _ => {}
            }
        }
    }

    // Attribute presence: missing(v.k) vs has(v.k) / any comparison on v.k.
    // Comparisons with an attribute RHS require the RHS attribute too.
    for c in &p.constraints {
        let Constraint::MissingAttr(mv, mk) = c else {
            continue;
        };
        for other in &p.constraints {
            match other {
                Constraint::HasAttr(v, k) if v == mv && k == mk => {
                    return Some(format!(
                        "missing({0}.{1}) contradicts has({0}.{1})",
                        name(*mv),
                        mk
                    ));
                }
                Constraint::Cmp { var, key, op, rhs } => {
                    let lhs_hit = var == mv && key == mk;
                    let rhs_hit = matches!(rhs, Rhs::Attr(o, k2) if o == mv && k2 == mk);
                    if lhs_hit || rhs_hit {
                        return Some(format!(
                            "missing({}.{}) contradicts the comparison '{}.{} {} …' \
                             (comparisons require the attribute to be present)",
                            name(*mv),
                            mk,
                            name(*var),
                            key,
                            op.symbol(),
                        ));
                    }
                }
                _ => {}
            }
        }
    }

    // Constant comparisons on the same (var, key): equality propagation
    // plus numeric interval emptiness.
    type CmpGroup<'a> = ((crate::pattern::Var, &'a str), Vec<(CmpOp, &'a Value)>);
    let mut groups: Vec<CmpGroup<'_>> = Vec::new();
    for c in &p.constraints {
        if let Constraint::Cmp {
            var,
            key,
            op,
            rhs: Rhs::Const(v),
        } = c
        {
            let k = (*var, key.as_str());
            match groups.iter_mut().find(|(g, _)| *g == k) {
                Some((_, list)) => list.push((*op, v)),
                None => groups.push((k, vec![(*op, v)])),
            }
        }
    }
    for ((var, key), cmps) in &groups {
        // Any equality pins the value: every other comparison must accept it.
        if let Some((_, eq_v)) = cmps.iter().find(|(op, _)| *op == CmpOp::Eq) {
            for (op, v) in cmps {
                if !op.eval(eq_v, v) {
                    return Some(format!(
                        "{0}.{1} == {2} contradicts {0}.{1} {3} {4}",
                        name(*var),
                        key,
                        eq_v,
                        op.symbol(),
                        v,
                    ));
                }
            }
            continue;
        }
        // No equality: check the numeric interval the bounds carve out.
        let mut lower: Option<(f64, bool)> = None; // (bound, strict)
        let mut upper: Option<(f64, bool)> = None;
        for (op, v) in cmps {
            let Some(x) = v.as_number() else { continue };
            match op {
                CmpOp::Gt | CmpOp::Ge => {
                    let strict = *op == CmpOp::Gt;
                    if lower.is_none_or(|(b, s)| x > b || (x == b && strict && !s)) {
                        lower = Some((x, strict));
                    }
                }
                CmpOp::Lt | CmpOp::Le => {
                    let strict = *op == CmpOp::Lt;
                    if upper.is_none_or(|(b, s)| x < b || (x == b && strict && !s)) {
                        upper = Some((x, strict));
                    }
                }
                CmpOp::Eq | CmpOp::Ne => {}
            }
        }
        if let (Some((lo, lo_strict)), Some((hi, hi_strict))) = (lower, upper) {
            if lo > hi || (lo == hi && (lo_strict || hi_strict)) {
                return Some(format!(
                    "the bounds on {}.{} leave no possible value \
                     (lower bound {lo} vs upper bound {hi})",
                    name(*var),
                    key,
                ));
            }
        }
    }

    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn required_and_forbidden_edge() {
        let mut b = Pattern::builder();
        let x = b.node("x", Some("P"));
        let y = b.node("y", Some("P"));
        b.edge(x, y, "r");
        b.neg_edge(x, y, "r");
        let p = b.build().unwrap();
        let w = unsatisfiable(&p).unwrap();
        assert!(w.contains("required"), "{w}");
    }

    #[test]
    fn wildcard_negative_forbids_labelled_positive() {
        let mut b = Pattern::builder();
        let x = b.node("x", Some("P"));
        let y = b.node("y", Some("P"));
        b.edge(x, y, "r");
        b.neg_edge_any(x, y);
        let p = b.build().unwrap();
        assert!(unsatisfiable(&p).is_some());
    }

    #[test]
    fn labelled_negative_does_not_forbid_wildcard_positive() {
        // (x)-[*]->(y) can match a non-r edge.
        let mut b = Pattern::builder();
        let x = b.node("x", Some("P"));
        let y = b.node("y", Some("P"));
        b.edge_any(x, y);
        b.neg_edge(x, y, "r");
        let p = b.build().unwrap();
        assert!(unsatisfiable(&p).is_none());
    }

    #[test]
    fn no_out_edge_vs_positive_edge() {
        let mut b = Pattern::builder();
        let x = b.node("x", Some("P"));
        let y = b.node("y", Some("P"));
        b.edge(x, y, "r");
        b.no_out_edge(x, Some("r"));
        let p = b.build().unwrap();
        assert!(unsatisfiable(&p).is_some());
        // A different label is fine.
        let mut b = Pattern::builder();
        let x = b.node("x", Some("P"));
        let y = b.node("y", Some("P"));
        b.edge(x, y, "r");
        b.no_out_edge(x, Some("s"));
        assert!(unsatisfiable(&b.build().unwrap()).is_none());
    }

    #[test]
    fn missing_vs_has_and_cmp() {
        let mut b = Pattern::builder();
        let x = b.node("x", Some("P"));
        b.missing_attr(x, "a");
        b.has_attr(x, "a");
        assert!(unsatisfiable(&b.build().unwrap()).is_some());

        let mut b = Pattern::builder();
        let x = b.node("x", Some("P"));
        b.missing_attr(x, "a");
        b.attr_eq(x, "a", 1i64);
        assert!(unsatisfiable(&b.build().unwrap()).is_some());

        // missing on the RHS attribute of a cross-variable comparison.
        let mut b = Pattern::builder();
        let x = b.node("x", Some("P"));
        let y = b.node("y", Some("P"));
        b.missing_attr(y, "a");
        b.attr_eq_var(x, "a", y, "a");
        assert!(unsatisfiable(&b.build().unwrap()).is_some());
    }

    #[test]
    fn clashing_equalities() {
        let mut b = Pattern::builder();
        let x = b.node("x", Some("P"));
        b.attr_eq(x, "a", 1i64);
        b.attr_eq(x, "a", 2i64);
        let w = unsatisfiable(&b.build().unwrap()).unwrap();
        assert!(w.contains("contradicts"), "{w}");
    }

    #[test]
    fn equality_excluded_by_range() {
        let mut b = Pattern::builder();
        let x = b.node("x", Some("P"));
        b.attr_eq(x, "a", 5i64);
        b.attr_cmp(x, "a", CmpOp::Gt, 10i64);
        assert!(unsatisfiable(&b.build().unwrap()).is_some());
    }

    #[test]
    fn empty_numeric_interval() {
        let mut b = Pattern::builder();
        let x = b.node("x", Some("P"));
        b.attr_cmp(x, "a", CmpOp::Gt, 10i64);
        b.attr_cmp(x, "a", CmpOp::Lt, 5i64);
        assert!(unsatisfiable(&b.build().unwrap()).is_some());
        // Touching bounds with one strict side are empty too.
        let mut b = Pattern::builder();
        let x = b.node("x", Some("P"));
        b.attr_cmp(x, "a", CmpOp::Ge, 5i64);
        b.attr_cmp(x, "a", CmpOp::Lt, 5i64);
        assert!(unsatisfiable(&b.build().unwrap()).is_some());
        // Non-strict touching bounds pin a single value: satisfiable.
        let mut b = Pattern::builder();
        let x = b.node("x", Some("P"));
        b.attr_cmp(x, "a", CmpOp::Ge, 5i64);
        b.attr_cmp(x, "a", CmpOp::Le, 5i64);
        assert!(unsatisfiable(&b.build().unwrap()).is_none());
    }

    #[test]
    fn satisfiable_patterns_pass() {
        let mut b = Pattern::builder();
        let x = b.node("x", Some("Person"));
        let c = b.node("c", Some("City"));
        b.edge(x, c, "livesIn");
        b.neg_edge(c, x, "livesIn"); // reverse direction: fine
        b.attr_cmp(x, "age", CmpOp::Ge, 0i64);
        b.attr_cmp(x, "age", CmpOp::Lt, 150i64);
        b.has_attr(c, "name");
        b.missing_attr(c, "verified");
        assert_eq!(unsatisfiable(&b.build().unwrap()), None);
    }
}
