//! Symmetric-relation mining.
//!
//! A relation `r` between nodes of labels `(L₁, L₂)` is *symmetric* when
//! almost every `x -r→ y` edge is reciprocated by `y -r→ x`. Symmetric
//! relations yield the symmetrization GRR: insert the missing back edge.

use crate::{MinedKind, MinedRule, MinerConfig};
use grepair_core::{Action, Category, Grr, Target};
use grepair_graph::{Graph, LabelId};
use grepair_match::Pattern;
use rustc_hash::FxHashMap;

#[derive(Default, Debug)]
struct SymStats {
    edges: usize,
    reciprocated: usize,
}

/// Mine symmetrization rules.
pub fn mine_symmetry_rules(g: &Graph, cfg: &MinerConfig) -> Vec<MinedRule> {
    // Grouped by (relation, src label, dst label); only label-symmetric
    // groups can host a symmetric relation, but we count per directed
    // signature and join mirrored groups at emission.
    let mut stats: FxHashMap<(LabelId, LabelId, LabelId), SymStats> = FxHashMap::default();
    for e in g.edges() {
        let er = g.edge(e).unwrap();
        if er.src == er.dst {
            continue; // self-loops say nothing about symmetry
        }
        let key = (
            er.label,
            g.node_label(er.src).unwrap(),
            g.node_label(er.dst).unwrap(),
        );
        let st = stats.entry(key).or_default();
        st.edges += 1;
        if g.has_edge_labeled(er.dst, er.src, er.label) {
            st.reciprocated += 1;
        }
    }

    let mut out = Vec::new();
    for (&(rel, l1, l2), st) in &stats {
        if l1 != l2 {
            continue; // symmetric relations live within one label here
        }
        if st.edges < cfg.min_support {
            continue;
        }
        let conf = st.reciprocated as f64 / st.edges as f64;
        if conf < cfg.min_confidence {
            continue;
        }
        let rel_name = g.label_name(rel);
        let label_name = g.label_name(l1);
        let mut b = Pattern::builder();
        let x = b.node("x", Some(label_name));
        let y = b.node("y", Some(label_name));
        b.edge(x, y, rel_name);
        b.neg_edge(y, x, rel_name);
        let pattern = b.build().expect("symmetry pattern valid");
        let rule = Grr::new(
            format!("mined_sym_{rel_name}_{label_name}"),
            Category::Incompleteness,
            pattern,
            vec![Action::InsertEdge {
                src: Target::Var(y),
                dst: Target::Var(x),
                label: rel_name.to_owned(),
            }],
        )
        .expect("symmetry rule validates");
        out.push(MinedRule {
            rule,
            support: st.reciprocated,
            confidence: conf,
            kind: MinedKind::Symmetry,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fixture(pairs: usize, broken: usize, extra_directed: usize) -> Graph {
        let mut g = Graph::new();
        for i in 0..pairs {
            let a = g.add_node_named("P");
            let b = g.add_node_named("P");
            g.add_edge_named(a, b, "marriedTo").unwrap();
            if i >= broken {
                g.add_edge_named(b, a, "marriedTo").unwrap();
            }
        }
        // A clearly directed relation: follows.
        for _ in 0..extra_directed {
            let a = g.add_node_named("P");
            let b = g.add_node_named("P");
            g.add_edge_named(a, b, "follows").unwrap();
        }
        g
    }

    #[test]
    fn symmetric_relation_mined_directed_not() {
        let g = fixture(40, 2, 40);
        let cfg = MinerConfig {
            min_support: 10,
            min_confidence: 0.9,
            ..MinerConfig::default()
        };
        let mined = mine_symmetry_rules(&g, &cfg);
        assert_eq!(mined.len(), 1, "{mined:?}");
        assert!(mined[0].rule.name.contains("marriedTo"));
        assert!(mined[0].confidence > 0.9);
    }

    #[test]
    fn broken_symmetry_below_threshold_not_mined() {
        let g = fixture(40, 20, 0);
        let cfg = MinerConfig {
            min_support: 10,
            min_confidence: 0.9,
            ..MinerConfig::default()
        };
        assert!(mine_symmetry_rules(&g, &cfg).is_empty());
    }

    #[test]
    fn self_loops_ignored() {
        let mut g = Graph::new();
        for _ in 0..30 {
            let a = g.add_node_named("P");
            g.add_edge_named(a, a, "r").unwrap();
        }
        let cfg = MinerConfig {
            min_support: 5,
            ..MinerConfig::default()
        };
        assert!(mine_symmetry_rules(&g, &cfg).is_empty());
    }
}
