//! # grepair-mine
//!
//! Mining Graph Repairing Rules from (mostly clean) graphs.
//!
//! The ICDE 2018 pipeline assumes a curated GRR set; in practice such
//! sets are *mined* from data the way CFDs and keys are mined in
//! relational cleaning. This crate discovers the three rule families the
//! gold catalog exemplifies, each with support/confidence evidence:
//!
//! - **Path-closure rules** ([`path_rules`]) — if `A -r→ B -s→ C` paths
//!   are almost always closed by `A -t→ C`, emit the incompleteness rule
//!   inserting the closing edge (e.g. `livesIn ∘ inCountry ⇒ citizenOf`).
//! - **Attribute-determination rules** (also [`path_rules`]) — if along
//!   those paths `x.key == z.key2` almost always holds, emit the conflict
//!   rule correcting the attribute and the incompleteness rule filling it
//!   (the `Person.country = Country.name` pattern).
//! - **Symmetry rules** ([`symmetry_rules`]) — relations whose edges are
//!   almost always reciprocated get a symmetrization rule.
//! - **Key rules** ([`key_rules`]) — label/attribute pairs whose values
//!   are unique become merge-based deduplication rules.
//!
//! Mining is *robust to dirt*: thresholds are confidences, so a graph
//! with a few percent noise still yields the right rules — see the
//! `mining_survives_noise` test.
//!
//! ```
//! use grepair_mine::{mine_all, MinerConfig};
//! # use grepair_graph::Graph;
//! # let mut g = Graph::new();
//! # let a = g.add_node_named("A"); let b = g.add_node_named("B");
//! # g.add_edge_named(a, b, "r").unwrap();
//! # g.add_edge_named(b, a, "r").unwrap();
//! let mined = mine_all(&g, &MinerConfig::default());
//! for m in &mined {
//!     println!("{} (support {}, confidence {:.2})", m.rule.name, m.support, m.confidence);
//! }
//! ```

#![forbid(unsafe_code)]

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod key_rules;
pub mod path_rules;
pub mod symmetry_rules;

use grepair_core::Grr;
use serde::{Deserialize, Serialize};

/// What kind of regularity a mined rule captures.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum MinedKind {
    /// `A -r→ B -s→ C` paths imply a closing `A -t→ C` edge.
    PathClosure,
    /// Along such paths, two attributes agree (`x.k == z.k2`).
    AttrDetermination,
    /// A relation is symmetric (edges are reciprocated).
    Symmetry,
    /// An attribute is a key for a label (unique values).
    Key,
}

/// A mined rule with its statistical evidence.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct MinedRule {
    /// The rule, ready for the repair engine.
    pub rule: Grr,
    /// Number of witnesses supporting the regularity.
    pub support: usize,
    /// Fraction of witnesses satisfying it (≥ the configured threshold).
    pub confidence: f64,
    /// The regularity family.
    pub kind: MinedKind,
}

/// Mining thresholds.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct MinerConfig {
    /// Minimum number of witnesses for a candidate regularity.
    pub min_support: usize,
    /// Minimum confidence (violating fraction ≤ `1 − min_confidence`).
    pub min_confidence: f64,
    /// Cap on enumerated 2-paths (mining stays near-linear).
    pub max_paths: usize,
    /// Cap on pairs expanded per mid node (tames hub blow-up).
    pub max_pairs_per_mid: usize,
}

impl Default for MinerConfig {
    fn default() -> Self {
        Self {
            min_support: 20,
            min_confidence: 0.9,
            max_paths: 200_000,
            max_pairs_per_mid: 64,
        }
    }
}

/// Run every miner and return all mined rules, deterministically ordered
/// by (kind, rule name).
pub fn mine_all(g: &grepair_graph::Graph, cfg: &MinerConfig) -> Vec<MinedRule> {
    let _span = grepair_obs::span("mine.mine_all", "mine");
    let mut out = Vec::new();
    out.extend(path_rules::mine_path_rules(g, cfg));
    out.extend(symmetry_rules::mine_symmetry_rules(g, cfg));
    out.extend(key_rules::mine_key_rules(g, cfg));
    out.sort_by(|a, b| {
        format!("{:?}", a.kind)
            .cmp(&format!("{:?}", b.kind))
            .then_with(|| a.rule.name.cmp(&b.rule.name))
    });
    grepair_obs::counter("mine.rules_mined").add(out.len() as u64);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use grepair_core::{Category, RepairEngine};
    use grepair_gen::{generate_kg, inject_kg_noise, KgConfig, NoiseConfig};

    #[test]
    fn mining_recovers_gold_regularities_from_clean_kg() {
        let (g, _) = generate_kg(&KgConfig::with_persons(600));
        let mined = mine_all(&g, &MinerConfig::default());
        let names: Vec<&str> = mined.iter().map(|m| m.rule.name.as_str()).collect();

        // Citizenship closure: livesIn ∘ inCountry ⇒ citizenOf.
        assert!(
            names
                .iter()
                .any(|n| n.contains("livesIn") && n.contains("inCountry") && n.contains("citizenOf")),
            "missing citizenship closure in {names:?}"
        );
        // Marriage symmetry.
        assert!(
            names.iter().any(|n| n.contains("marriedTo") && n.contains("sym")),
            "missing marriage symmetry in {names:?}"
        );
        // ssn key on Person.
        assert!(
            names.iter().any(|n| n.contains("Person") && n.contains("ssn")),
            "missing ssn key in {names:?}"
        );
        // country attribute determination.
        assert!(
            mined
                .iter()
                .any(|m| m.kind == MinedKind::AttrDetermination
                    && m.rule.name.contains("country")),
            "missing country determination in {names:?}"
        );
        // Everything mined is valid and confident.
        for m in &mined {
            m.rule.validate().expect("mined rules validate");
            assert!(m.confidence >= 0.9, "{}: {}", m.rule.name, m.confidence);
            assert!(m.support >= 20);
        }
    }

    #[test]
    fn mined_rules_repair_injected_noise() {
        // Mine on the clean graph, then use the mined rules to repair a
        // noisy copy — the end-to-end rule-discovery story.
        let (clean, refs) = generate_kg(&KgConfig::with_persons(500));
        let mined = mine_all(&clean, &MinerConfig::default());
        let rules: Vec<_> = mined.into_iter().map(|m| m.rule).collect();
        assert!(!rules.is_empty());

        let mut dirty = clean.clone();
        inject_kg_noise(&mut dirty, &refs, &NoiseConfig::default());
        let before = RepairEngine::default().count_violations(&dirty, &rules);
        assert!(before > 0, "mined rules must detect injected noise");
        let report = RepairEngine::default().repair(&mut dirty, &rules);
        assert!(
            report.converged,
            "mined rules must converge, residual {}",
            report.violations_remaining
        );
        dirty.check_invariants().unwrap();
    }

    #[test]
    fn mining_survives_noise() {
        // Mining on a dirty graph still finds the same regularities
        // (confidence thresholds absorb the noise).
        let (mut g, refs) = generate_kg(&KgConfig::with_persons(600));
        inject_kg_noise(
            &mut g,
            &refs,
            &NoiseConfig {
                rate: 0.05,
                ..NoiseConfig::default()
            },
        );
        let mined = mine_all(&g, &MinerConfig::default());
        let kinds: Vec<MinedKind> = mined.iter().map(|m| m.kind).collect();
        assert!(kinds.contains(&MinedKind::PathClosure));
        assert!(kinds.contains(&MinedKind::Symmetry));
        assert!(kinds.contains(&MinedKind::Key));
    }

    #[test]
    fn categories_match_kinds() {
        let (g, _) = generate_kg(&KgConfig::with_persons(400));
        for m in mine_all(&g, &MinerConfig::default()) {
            match m.kind {
                MinedKind::PathClosure => {
                    assert_eq!(m.rule.category, Category::Incompleteness)
                }
                MinedKind::Symmetry => assert_eq!(m.rule.category, Category::Incompleteness),
                MinedKind::Key => assert_eq!(m.rule.category, Category::Redundancy),
                MinedKind::AttrDetermination => {
                    assert!(matches!(
                        m.rule.category,
                        Category::Conflict | Category::Incompleteness
                    ))
                }
            }
        }
    }

    #[test]
    fn empty_graph_mines_nothing() {
        let g = grepair_graph::Graph::new();
        assert!(mine_all(&g, &MinerConfig::default()).is_empty());
    }
}
