//! Path-closure and attribute-determination mining.
//!
//! Enumerates (capped) 2-paths `a -r→ b -s→ c`, grouped by the label
//! signature `(L(a), r, L(b), s, L(c))`. Per group it counts:
//!
//! - for each relation `t`, how often the closing edge `a -t→ c` exists
//!   → **path-closure** candidates;
//! - for each attribute-key pair `(k, k2)` present on both endpoints,
//!   how often `a.k == c.k2` → **attribute-determination** candidates.
//!
//! Candidates above the support/confidence thresholds become GRRs.

use crate::{MinedKind, MinedRule, MinerConfig};
use grepair_core::{Action, Category, Grr, Target, ValueSource};
use grepair_graph::{AttrKeyId, Graph, LabelId};
use grepair_match::{CmpOp, Constraint, Pattern, Rhs};
use rustc_hash::FxHashMap;

/// Label signature of a 2-path.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
struct PathKey {
    la: LabelId,
    r: LabelId,
    lb: LabelId,
    s: LabelId,
    lc: LabelId,
}

#[derive(Default, Debug)]
struct PathStats {
    paths: usize,
    /// closing relation → count of closed paths.
    closures: FxHashMap<LabelId, usize>,
    /// (a-key, c-key) → (both-present count, equal count).
    attr_eq: FxHashMap<(AttrKeyId, AttrKeyId), (usize, usize)>,
}

/// Mine path-closure and attribute-determination rules.
pub fn mine_path_rules(g: &Graph, cfg: &MinerConfig) -> Vec<MinedRule> {
    let mut stats: FxHashMap<PathKey, PathStats> = FxHashMap::default();
    let mut budget = cfg.max_paths;

    'outer: for b in g.nodes() {
        let lb = g.node_label(b).unwrap();
        let in_edges: Vec<_> = g.in_edges(b).collect();
        let out_edges: Vec<_> = g.out_edges(b).collect();
        let mut per_mid = 0usize;
        for &ein in &in_edges {
            let ein_ref = g.edge(ein).unwrap();
            let a = ein_ref.src;
            if a == b {
                continue;
            }
            for &eout in &out_edges {
                let eout_ref = g.edge(eout).unwrap();
                let c = eout_ref.dst;
                if c == b || c == a {
                    continue;
                }
                if per_mid >= cfg.max_pairs_per_mid {
                    continue;
                }
                per_mid += 1;
                if budget == 0 {
                    break 'outer;
                }
                budget -= 1;

                let key = PathKey {
                    la: g.node_label(a).unwrap(),
                    r: ein_ref.label,
                    lb,
                    s: eout_ref.label,
                    lc: g.node_label(c).unwrap(),
                };
                let st = stats.entry(key).or_default();
                st.paths += 1;
                // Closures.
                let mut seen = rustc_hash::FxHashSet::default();
                for e in g.edges_between(a, c) {
                    let t = g.edge(e).unwrap().label;
                    if seen.insert(t) {
                        *st.closures.entry(t).or_default() += 1;
                    }
                }
                // Attribute agreement.
                for (ka, va) in g.attrs(a) {
                    for (kc, vc) in g.attrs(c) {
                        let cell = st.attr_eq.entry((*ka, *kc)).or_default();
                        cell.0 += 1;
                        if va == vc {
                            cell.1 += 1;
                        }
                    }
                }
            }
        }
    }

    let mut out = Vec::new();
    for (key, st) in &stats {
        if st.paths < cfg.min_support {
            continue;
        }
        let la = g.label_name(key.la);
        let r = g.label_name(key.r);
        let lb_name = g.label_name(key.lb);
        let s = g.label_name(key.s);
        let lc = g.label_name(key.lc);

        for (&t, &count) in &st.closures {
            let conf = count as f64 / st.paths as f64;
            if conf < cfg.min_confidence {
                continue;
            }
            let t_name = g.label_name(t);
            // Degenerate closures (closing with one of the path edges'
            // own relation between the same endpoints) are fine — the
            // data decides.
            let rule = closure_rule(la, r, lb_name, s, lc, t_name);
            out.push(MinedRule {
                rule,
                support: count,
                confidence: conf,
                kind: MinedKind::PathClosure,
            });
        }

        for (&(ka, kc), &(present, equal)) in &st.attr_eq {
            if present < cfg.min_support {
                continue;
            }
            // The pair must be typical for the path population, not a
            // fluke of a few attribute-rich nodes.
            if present * 2 < st.paths {
                continue;
            }
            let conf = equal as f64 / present as f64;
            if conf < cfg.min_confidence {
                continue;
            }
            let ka_name = g.attr_key_name(ka);
            let kc_name = g.attr_key_name(kc);
            // Trivial self-agreement (same key on identically-labelled
            // endpoints, e.g. name == name on Person→Person paths) is
            // usually spurious; require distinct labels or distinct keys.
            if ka == kc && key.la == key.lc {
                continue;
            }
            let (fix, fill) = determination_rules(la, r, lb_name, s, lc, ka_name, kc_name);
            out.push(MinedRule {
                rule: fix,
                support: equal,
                confidence: conf,
                kind: MinedKind::AttrDetermination,
            });
            out.push(MinedRule {
                rule: fill,
                support: equal,
                confidence: conf,
                kind: MinedKind::AttrDetermination,
            });
        }
    }
    out
}

fn base_pattern(la: &str, r: &str, lb: &str, s: &str, lc: &str) -> (Pattern, grepair_match::Var, grepair_match::Var) {
    let mut b = Pattern::builder();
    let x = b.node("x", Some(la));
    let y = b.node("y", Some(lb));
    let z = b.node("z", Some(lc));
    b.edge(x, y, r);
    b.edge(y, z, s);
    let p = b.build().expect("mined pattern is structurally valid");
    (p, x, z)
}

fn closure_rule(la: &str, r: &str, lb: &str, s: &str, lc: &str, t: &str) -> Grr {
    let (mut p, x, z) = base_pattern(la, r, lb, s, lc);
    p.neg_edges.push(grepair_match::PatternEdge {
        src: x,
        dst: z,
        label: Some(t.to_owned()),
    });
    Grr::new(
        format!("mined_close_{la}_{r}_{lb}_{s}_{lc}_{t}"),
        Category::Incompleteness,
        p,
        vec![Action::InsertEdge {
            src: Target::Var(x),
            dst: Target::Var(z),
            label: t.to_owned(),
        }],
    )
    .expect("mined closure rule validates")
}

fn determination_rules(
    la: &str,
    r: &str,
    lb: &str,
    s: &str,
    lc: &str,
    ka: &str,
    kc: &str,
) -> (Grr, Grr) {
    // Conflict variant: x.ka present but disagreeing → correct it.
    let (mut p_fix, x, z) = base_pattern(la, r, lb, s, lc);
    p_fix.constraints.push(Constraint::Cmp {
        var: x,
        key: ka.to_owned(),
        op: CmpOp::Ne,
        rhs: Rhs::Attr(z, kc.to_owned()),
    });
    let fix = Grr::new(
        format!("mined_fix_{la}_{ka}_from_{lc}_{kc}_via_{r}_{s}"),
        Category::Conflict,
        p_fix,
        vec![Action::UpdateNode {
            node: x,
            set_label: None,
            set_attrs: vec![(ka.to_owned(), ValueSource::CopyAttr(z, kc.to_owned()))],
            del_attrs: vec![],
        }],
    )
    .expect("mined fix rule validates");

    // Incompleteness variant: x.ka missing → fill it.
    let (mut p_fill, x, z) = base_pattern(la, r, lb, s, lc);
    p_fill
        .constraints
        .push(Constraint::MissingAttr(x, ka.to_owned()));
    p_fill
        .constraints
        .push(Constraint::HasAttr(z, kc.to_owned()));
    let fill = Grr::new(
        format!("mined_fill_{la}_{ka}_from_{lc}_{kc}_via_{r}_{s}"),
        Category::Incompleteness,
        p_fill,
        vec![Action::UpdateNode {
            node: x,
            set_label: None,
            set_attrs: vec![(ka.to_owned(), ValueSource::CopyAttr(z, kc.to_owned()))],
            del_attrs: vec![],
        }],
    )
    .expect("mined fill rule validates");
    (fix, fill)
}

#[cfg(test)]
mod tests {
    use super::*;
    use grepair_graph::Value;

    /// Hand-built graph: 30 a-r→b-s→c paths, 29 closed by t.
    fn closure_fixture(closed: usize, total: usize) -> Graph {
        let mut g = Graph::new();
        for i in 0..total {
            let a = g.add_node_named("A");
            let b = g.add_node_named("B");
            let c = g.add_node_named("C");
            g.add_edge_named(a, b, "r").unwrap();
            g.add_edge_named(b, c, "s").unwrap();
            if i < closed {
                g.add_edge_named(a, c, "t").unwrap();
            }
        }
        g
    }

    #[test]
    fn closure_mined_above_threshold() {
        let g = closure_fixture(29, 30);
        let cfg = MinerConfig {
            min_support: 10,
            min_confidence: 0.9,
            ..MinerConfig::default()
        };
        let mined = mine_path_rules(&g, &cfg);
        assert_eq!(mined.len(), 1, "{mined:?}");
        assert_eq!(mined[0].kind, MinedKind::PathClosure);
        assert_eq!(mined[0].support, 29);
        assert!((mined[0].confidence - 29.0 / 30.0).abs() < 1e-9);
        assert!(mined[0].rule.name.contains("_t"));
    }

    #[test]
    fn closure_rejected_below_confidence() {
        let g = closure_fixture(20, 30);
        let cfg = MinerConfig {
            min_support: 10,
            min_confidence: 0.9,
            ..MinerConfig::default()
        };
        assert!(mine_path_rules(&g, &cfg).is_empty());
    }

    #[test]
    fn closure_rejected_below_support() {
        let g = closure_fixture(5, 5);
        let cfg = MinerConfig {
            min_support: 10,
            min_confidence: 0.9,
            ..MinerConfig::default()
        };
        assert!(mine_path_rules(&g, &cfg).is_empty());
    }

    #[test]
    fn attr_determination_mined() {
        let mut g = Graph::new();
        let k1 = g.attr_key("country");
        let k2 = g.attr_key("name");
        for i in 0..30 {
            let a = g.add_node_named("Person");
            let b = g.add_node_named("City");
            let c = g.add_node_named("Country");
            g.add_edge_named(a, b, "livesIn").unwrap();
            g.add_edge_named(b, c, "inCountry").unwrap();
            let name = Value::Str(format!("country{}", i % 3));
            g.set_attr(a, k1, name.clone()).unwrap();
            g.set_attr(c, k2, name).unwrap();
        }
        let cfg = MinerConfig {
            min_support: 10,
            min_confidence: 0.9,
            ..MinerConfig::default()
        };
        let mined = mine_path_rules(&g, &cfg);
        let det: Vec<_> = mined
            .iter()
            .filter(|m| m.kind == MinedKind::AttrDetermination)
            .collect();
        assert_eq!(det.len(), 2, "fix + fill variants: {det:?}");
        assert!(det.iter().any(|m| m.rule.name.starts_with("mined_fix_")));
        assert!(det.iter().any(|m| m.rule.name.starts_with("mined_fill_")));
    }

    #[test]
    fn hub_capping_bounds_work() {
        // A star mid-node with many in and out edges would generate
        // quadratic pairs; the per-mid cap bounds it.
        let mut g = Graph::new();
        let mid = g.add_node_named("B");
        for _ in 0..100 {
            let a = g.add_node_named("A");
            let c = g.add_node_named("C");
            g.add_edge_named(a, mid, "r").unwrap();
            g.add_edge_named(mid, c, "s").unwrap();
        }
        let cfg = MinerConfig {
            min_support: 1,
            max_pairs_per_mid: 10,
            ..MinerConfig::default()
        };
        // Just ensure it terminates quickly and caps honoured (no rule
        // expected: no closures).
        let mined = mine_path_rules(&g, &cfg);
        assert!(mined.is_empty());
    }
}
