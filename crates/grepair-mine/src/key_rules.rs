//! Key mining: label/attribute pairs whose values uniquely identify
//! nodes become merge-based deduplication rules.
//!
//! An attribute `k` is a key for label `L` when (a) most `L`-nodes carry
//! it (coverage) and (b) its values are (near-)unique among them
//! (uniqueness). Both thresholds reuse `min_confidence`. The emitted GRR
//! is the classic entity-resolution rule: equal key ⇒ same entity ⇒
//! merge.

use crate::{MinedKind, MinedRule, MinerConfig};
use grepair_core::{Action, Category, Grr};
use grepair_graph::{AttrKeyId, Graph, LabelId, Value};
use grepair_match::Pattern;
use rustc_hash::FxHashMap;

#[derive(Default)]
struct KeyStats {
    carriers: usize,
    values: FxHashMap<Value, usize>,
}

/// Mine key-based deduplication rules.
pub fn mine_key_rules(g: &Graph, cfg: &MinerConfig) -> Vec<MinedRule> {
    let mut label_counts: FxHashMap<LabelId, usize> = FxHashMap::default();
    let mut stats: FxHashMap<(LabelId, AttrKeyId), KeyStats> = FxHashMap::default();
    for n in g.nodes() {
        let l = g.node_label(n).unwrap();
        *label_counts.entry(l).or_default() += 1;
        for (k, v) in g.attrs(n) {
            let st = stats.entry((l, *k)).or_default();
            st.carriers += 1;
            *st.values.entry(v.clone()).or_default() += 1;
        }
    }

    let mut out = Vec::new();
    for (&(l, k), st) in &stats {
        let label_total = label_counts[&l];
        if label_total < cfg.min_support || st.carriers < cfg.min_support {
            continue;
        }
        let coverage = st.carriers as f64 / label_total as f64;
        if coverage < cfg.min_confidence {
            continue;
        }
        let uniqueness = st.values.len() as f64 / st.carriers as f64;
        if uniqueness < cfg.min_confidence {
            continue;
        }
        let label_name = g.label_name(l);
        let key_name = g.attr_key_name(k);
        let mut b = Pattern::builder();
        let x = b.node("x", Some(label_name));
        let y = b.node("y", Some(label_name));
        b.attr_eq_var(x, key_name, y, key_name);
        let pattern = b.build().expect("key pattern valid");
        let rule = Grr::new(
            format!("mined_key_{label_name}_{key_name}"),
            Category::Redundancy,
            pattern,
            vec![Action::MergeNodes { keep: x, merged: y }],
        )
        .expect("key rule validates");
        out.push(MinedRule {
            rule,
            support: st.carriers,
            confidence: uniqueness,
            kind: MinedKind::Key,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn graph_with_attr(label: &str, key: &str, values: impl Iterator<Item = i64>) -> Graph {
        let mut g = Graph::new();
        let k = g.attr_key(key);
        for v in values {
            let n = g.add_node_named(label);
            g.set_attr(n, k, Value::Int(v)).unwrap();
        }
        g
    }

    #[test]
    fn unique_attr_is_a_key() {
        let g = graph_with_attr("Person", "ssn", 0..50);
        let cfg = MinerConfig {
            min_support: 10,
            min_confidence: 0.95,
            ..MinerConfig::default()
        };
        let mined = mine_key_rules(&g, &cfg);
        assert_eq!(mined.len(), 1);
        assert_eq!(mined[0].rule.name, "mined_key_Person_ssn");
        assert_eq!(mined[0].kind, MinedKind::Key);
    }

    #[test]
    fn repeated_values_are_not_a_key() {
        let g = graph_with_attr("Person", "age", (0..50).map(|i| i % 7));
        let cfg = MinerConfig {
            min_support: 10,
            min_confidence: 0.95,
            ..MinerConfig::default()
        };
        assert!(mine_key_rules(&g, &cfg).is_empty());
    }

    #[test]
    fn low_coverage_rejected() {
        // Only 10 of 100 nodes carry the attribute.
        let mut g = graph_with_attr("Person", "rare", 0..10);
        for _ in 0..90 {
            g.add_node_named("Person");
        }
        let cfg = MinerConfig {
            min_support: 5,
            min_confidence: 0.9,
            ..MinerConfig::default()
        };
        assert!(mine_key_rules(&g, &cfg).is_empty());
    }

    #[test]
    fn near_unique_key_tolerates_duplicates() {
        // 48 unique + one duplicated value (the dirt we want to find!).
        let g = graph_with_attr("Person", "ssn", (0..50).map(|i| i.min(48)));
        let cfg = MinerConfig {
            min_support: 10,
            min_confidence: 0.95,
            ..MinerConfig::default()
        };
        let mined = mine_key_rules(&g, &cfg);
        assert_eq!(mined.len(), 1);
        assert!(mined[0].confidence < 1.0);
    }
}
