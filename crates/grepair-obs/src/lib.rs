//! # grepair-obs
//!
//! The in-process observability substrate for the grepair stack: a
//! structured tracing layer, a metrics registry, and the glue that turns
//! both into stable machine-readable output. Hand-rolled and
//! dependency-free (like every shim in this tree) so any crate — down to
//! the rayon shim — can link it without cycles.
//!
//! ## Tracing
//!
//! [`span`] returns a guard that records a complete ("X") event into a
//! thread-local buffer when dropped; [`instant`] records a point event.
//! Tracing is **off by default** and gated on one global atomic: a
//! disabled span site costs a single relaxed load (no clock read, no
//! allocation), which is what keeps the matching hot path within the
//! <5% disabled-overhead budget. [`take_events`] drains every thread's
//! buffer; [`chrome_trace_json`] renders the result in Chrome trace
//! format (loadable in `chrome://tracing` / Perfetto).
//!
//! ```
//! grepair_obs::set_tracing(true);
//! {
//!     let _outer = grepair_obs::span("engine.repair", "engine");
//!     let _inner = grepair_obs::span("match.find_all", "match");
//! }
//! grepair_obs::set_tracing(false);
//! let events = grepair_obs::take_events();
//! assert_eq!(events.len(), 2);
//! grepair_obs::spans_well_formed(&events).unwrap();
//! let json = grepair_obs::chrome_trace_json(&events);
//! assert!(json.contains("\"traceEvents\""));
//! ```
//!
//! ## Metrics
//!
//! [`counter`]/[`gauge`]/[`histogram`] intern named instruments in the
//! global [`Registry`]. Counters are plain always-on atomics; a
//! [`Counter::child`] is an unregistered counter that propagates every
//! increment to its registered parent — the substrate for per-run /
//! per-planner deltas (`RepairReport` counters) over process-global
//! totals. Histograms use fixed log-linear buckets (4 linear sub-buckets
//! per power of two) and report p50/p90/p99 from bucket lower bounds.
//! [`Registry::snapshot_json`] has a stable schema:
//! `{"counters":{..},"gauges":{..},"histograms":{name:{count,sum,max,p50,p90,p99}},"events":[..]}`.
//!
//! Latency histograms on hot paths should be recorded through
//! [`timer`]/[`record_since`], which skip the clock read entirely while
//! telemetry is disabled; counters stay always-on (they are the backing
//! store for report fields that must work untelemetered).

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

pub mod budget;

pub use budget::{Budget, CancelToken, TestClock, TripReason};

// ---------------------------------------------------------------------------
// Tracing
// ---------------------------------------------------------------------------

/// Global telemetry switch (spans + latency histograms).
static ENABLED: AtomicBool = AtomicBool::new(false);
/// Timestamp origin for all trace events (first use of the subsystem).
static EPOCH: OnceLock<Instant> = OnceLock::new();
/// Trace-local thread id allocator (0 is never issued).
static NEXT_TID: AtomicU64 = AtomicU64::new(1);
/// Every thread's event buffer ever registered, for [`take_events`].
static BUFFERS: Mutex<Vec<Arc<ThreadBuf>>> = Mutex::new(Vec::new());

struct ThreadBuf {
    tid: u64,
    events: Mutex<Vec<TraceEvent>>,
}

thread_local! {
    static LOCAL_BUF: Arc<ThreadBuf> = {
        let buf = Arc::new(ThreadBuf {
            tid: NEXT_TID.fetch_add(1, Ordering::Relaxed),
            events: Mutex::new(Vec::new()),
        });
        BUFFERS.lock().unwrap().push(Arc::clone(&buf));
        buf
    };
}

/// Turn tracing (and gated latency histograms) on or off globally.
pub fn set_tracing(on: bool) {
    EPOCH.get_or_init(Instant::now);
    ENABLED.store(on, Ordering::SeqCst);
}

/// Whether telemetry is currently enabled. One relaxed load — safe to
/// call on hot paths.
#[inline]
pub fn tracing_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

#[inline]
fn now_ns() -> u64 {
    EPOCH.get_or_init(Instant::now).elapsed().as_nanos() as u64
}

/// One trace event (complete span or instant).
#[derive(Clone, Debug)]
pub struct TraceEvent {
    /// Span name, e.g. `"match.find_all"`.
    pub name: &'static str,
    /// Category (the layer: `"engine"`, `"match"`, `"store"`, …).
    pub cat: &'static str,
    /// Chrome trace phase: `'X'` (complete) or `'i'` (instant).
    pub ph: char,
    /// Start timestamp, nanoseconds since the process trace epoch.
    pub ts_ns: u64,
    /// Duration in nanoseconds (0 for instants).
    pub dur_ns: u64,
    /// Trace-local thread id (small dense integers, not OS tids).
    pub tid: u64,
}

/// RAII guard recording a complete span event on drop. A disabled guard
/// is inert (no clock read at construction or drop).
#[must_use = "a span guard records its duration when dropped"]
pub struct SpanGuard {
    name: &'static str,
    cat: &'static str,
    start_ns: u64,
    active: bool,
}

/// Open a span. Near-zero cost when tracing is disabled.
#[inline]
pub fn span(name: &'static str, cat: &'static str) -> SpanGuard {
    if !tracing_enabled() {
        return SpanGuard {
            name,
            cat,
            start_ns: 0,
            active: false,
        };
    }
    SpanGuard {
        name,
        cat,
        start_ns: now_ns(),
        active: true,
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if !self.active {
            return;
        }
        let end = now_ns();
        let ev = TraceEvent {
            name: self.name,
            cat: self.cat,
            ph: 'X',
            ts_ns: self.start_ns,
            dur_ns: end.saturating_sub(self.start_ns),
            tid: 0, // filled below from the thread-local
        };
        LOCAL_BUF.with(|b| {
            b.events.lock().unwrap().push(TraceEvent { tid: b.tid, ..ev });
        });
    }
}

/// Record an instant (point-in-time) event, e.g. a cache hit or a
/// warning. No-op while tracing is disabled.
pub fn instant(name: &'static str, cat: &'static str) {
    if !tracing_enabled() {
        return;
    }
    let ts = now_ns();
    LOCAL_BUF.with(|b| {
        b.events.lock().unwrap().push(TraceEvent {
            name,
            cat,
            ph: 'i',
            ts_ns: ts,
            dur_ns: 0,
            tid: b.tid,
        });
    });
}

/// Drain every thread's buffered events, sorted by `(tid, ts)` with
/// longer spans first at equal timestamps (so parents precede their
/// children in the output).
pub fn take_events() -> Vec<TraceEvent> {
    let buffers = BUFFERS.lock().unwrap();
    let mut out = Vec::new();
    for b in buffers.iter() {
        out.append(&mut b.events.lock().unwrap());
    }
    out.sort_by_key(|e| (e.tid, e.ts_ns, std::cmp::Reverse(e.dur_ns)));
    out
}

/// Render events as Chrome trace format JSON
/// (`{"traceEvents":[{name,cat,ph,ts,dur,pid,tid},..]}`), timestamps in
/// microseconds. Loadable in `chrome://tracing` and Perfetto.
pub fn chrome_trace_json(events: &[TraceEvent]) -> String {
    let mut out = String::from("{\"traceEvents\":[");
    for (i, e) in events.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let ts_us = e.ts_ns as f64 / 1_000.0;
        out.push_str(&format!(
            "\n{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"{}\",\"ts\":{ts_us:.3},",
            json_escape(e.name),
            json_escape(e.cat),
            e.ph
        ));
        if e.ph == 'X' {
            out.push_str(&format!("\"dur\":{:.3},", e.dur_ns as f64 / 1_000.0));
        } else {
            // Instant events carry a scope instead of a duration.
            out.push_str("\"s\":\"t\",");
        }
        out.push_str(&format!("\"pid\":1,\"tid\":{}}}", e.tid));
    }
    out.push_str("\n]}\n");
    out
}

/// Check that the complete (`'X'`) spans of every thread form a proper
/// nesting: within one tid, two spans either disjoint or one strictly
/// contains the other. Instants are ignored. Returns the first violation
/// found.
pub fn spans_well_formed(events: &[TraceEvent]) -> Result<(), String> {
    let mut spans: Vec<&TraceEvent> = events.iter().filter(|e| e.ph == 'X').collect();
    spans.sort_by_key(|e| (e.tid, e.ts_ns, std::cmp::Reverse(e.dur_ns)));
    let mut stack: Vec<(&TraceEvent, u64)> = Vec::new(); // (span, end_ns)
    let mut cur_tid = u64::MAX;
    for e in spans {
        if e.tid != cur_tid {
            stack.clear();
            cur_tid = e.tid;
        }
        let end = e.ts_ns + e.dur_ns;
        while matches!(stack.last(), Some(&(_, top_end)) if top_end <= e.ts_ns) {
            stack.pop();
        }
        if let Some(&(top, top_end)) = stack.last() {
            if end > top_end {
                return Err(format!(
                    "span {:?} [{}..{}] partially overlaps enclosing {:?} [{}..{}] on tid {}",
                    e.name, e.ts_ns, end, top.name, top.ts_ns, top_end, e.tid
                ));
            }
        }
        stack.push((e, end));
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Metrics: counters, gauges, histograms
// ---------------------------------------------------------------------------

/// Monotonic counter. Always-on (one relaxed `fetch_add`); cheap enough
/// to back report bookkeeping unconditionally.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
    parent: Option<Arc<Counter>>,
}

impl Counter {
    /// A free-standing counter (no parent).
    pub fn new() -> Self {
        Counter::default()
    }

    /// An unregistered child whose increments also propagate to `self`
    /// (and transitively to its parents). Reading the child gives a
    /// local delta; the registered ancestor keeps the process total.
    pub fn child(self: &Arc<Self>) -> Counter {
        Counter {
            value: AtomicU64::new(0),
            parent: Some(Arc::clone(self)),
        }
    }

    /// Add `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
        let mut up = &self.parent;
        while let Some(p) = up {
            p.value.fetch_add(n, Ordering::Relaxed);
            up = &p.parent;
        }
    }

    /// Add 1.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// Last-write-wins signed gauge.
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    /// Set the gauge.
    #[inline]
    pub fn set(&self, v: i64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// Number of histogram buckets: values 0..=3 map to themselves, then 4
/// linear sub-buckets per power of two up to `u64::MAX` (index 251).
const HIST_BUCKETS: usize = 256;

/// Log-linear latency/size histogram with lock-free recording.
///
/// Buckets are fixed: exact for 0..=3, then each power-of-two range
/// `[2^m, 2^{m+1})` is split into 4 equal sub-buckets — ~12% worst-case
/// relative quantile error, no allocation, no locks.
pub struct Histogram {
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: (0..HIST_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.count())
            .field("sum", &self.sum())
            .field("max", &self.max())
            .finish()
    }
}

fn bucket_index(v: u64) -> usize {
    if v < 4 {
        return v as usize;
    }
    let m = 63 - v.leading_zeros() as u64; // >= 2
    let sub = (v >> (m - 2)) & 3;
    ((m - 2) * 4 + sub + 4) as usize
}

fn bucket_lower(idx: usize) -> u64 {
    if idx < 4 {
        return idx as u64;
    }
    let b = (idx - 4) as u64;
    let m = b / 4 + 2;
    let sub = b % 4;
    (1u64 << m) + (sub << (m - 2))
}

impl Histogram {
    /// A fresh histogram.
    pub fn new() -> Self {
        Histogram::default()
    }

    /// Record one value.
    pub fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of recorded values.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Largest recorded value (0 when empty).
    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    /// Approximate `q`-quantile (lower bound of the bucket holding the
    /// rank). `q` in `[0, 1]`; returns 0 for an empty histogram.
    pub fn percentile(&self, q: f64) -> u64 {
        let count = self.count();
        if count == 0 {
            return 0;
        }
        let rank = ((q * count as f64).ceil() as u64).clamp(1, count);
        let mut cum = 0u64;
        for (idx, b) in self.buckets.iter().enumerate() {
            cum += b.load(Ordering::Relaxed);
            if cum >= rank {
                return bucket_lower(idx);
            }
        }
        self.max()
    }
}

/// Start a latency measurement if telemetry is enabled: `None` skips
/// the clock read entirely on disabled hot paths.
#[inline]
pub fn timer() -> Option<Instant> {
    if tracing_enabled() {
        Some(Instant::now())
    } else {
        None
    }
}

/// Record the elapsed nanoseconds since [`timer`] into `h` (no-op for a
/// disabled `None` timer).
#[inline]
pub fn record_since(h: &Histogram, started: Option<Instant>) {
    if let Some(t) = started {
        h.record(t.elapsed().as_nanos() as u64);
    }
}

/// [`record_since`] against a registry histogram looked up by name —
/// the lookup itself is skipped for a disabled `None` timer, so inline
/// call sites pay nothing when tracing is off.
#[inline]
pub fn record_since_named(name: &str, started: Option<Instant>) {
    if let Some(t) = started {
        histogram(name).record(t.elapsed().as_nanos() as u64);
    }
}

// ---------------------------------------------------------------------------
// Events + registry
// ---------------------------------------------------------------------------

/// Event severity.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Level {
    /// Informational.
    Info,
    /// Something a production operator should look at.
    Warn,
}

impl Level {
    /// Stable lowercase name.
    pub fn as_str(self) -> &'static str {
        match self {
            Level::Info => "info",
            Level::Warn => "warn",
        }
    }
}

/// One recorded registry event.
#[derive(Clone, Debug)]
pub struct EventRecord {
    /// Severity.
    pub level: Level,
    /// Stable event name (e.g. `"store.log_growth"`).
    pub name: String,
    /// Human-readable details.
    pub message: String,
}

/// Cap on buffered events; older process phases should not starve the
/// snapshot of recent ones, so the buffer drops *new* events past the
/// cap and counts the drops.
const MAX_EVENTS: usize = 4096;

/// The process-wide instrument registry.
///
/// Instruments are interned by name; handles are `Arc`s, so call sites
/// can cache them and record lock-free. Obtain it via [`global`] or the
/// [`counter`]/[`gauge`]/[`histogram`]/[`event`] shorthands.
#[derive(Default)]
pub struct Registry {
    counters: Mutex<BTreeMap<String, Arc<Counter>>>,
    gauges: Mutex<BTreeMap<String, Arc<Gauge>>>,
    histograms: Mutex<BTreeMap<String, Arc<Histogram>>>,
    events: Mutex<Vec<EventRecord>>,
    events_dropped: AtomicU64,
}

/// The global registry.
pub fn global() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(Registry::default)
}

/// Intern a named counter in the global registry.
pub fn counter(name: &str) -> Arc<Counter> {
    global().counter(name)
}

/// Intern a named gauge in the global registry.
pub fn gauge(name: &str) -> Arc<Gauge> {
    global().gauge(name)
}

/// Intern a named histogram in the global registry.
pub fn histogram(name: &str) -> Arc<Histogram> {
    global().histogram(name)
}

/// Record an event in the global registry (also mirrored as a trace
/// instant when tracing is on).
pub fn event(level: Level, name: &'static str, message: impl Into<String>) {
    instant(name, "event");
    global().event(level, name, message.into());
}

/// The global registry's snapshot in the stable JSON schema.
pub fn snapshot_json() -> String {
    global().snapshot_json()
}

/// The global registry's snapshot as human-readable text.
pub fn snapshot_text() -> String {
    global().snapshot_text()
}

impl Registry {
    /// Intern a named counter.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut map = self.counters.lock().unwrap();
        match map.get(name) {
            Some(c) => Arc::clone(c),
            None => {
                let c = Arc::new(Counter::new());
                map.insert(name.to_owned(), Arc::clone(&c));
                c
            }
        }
    }

    /// Intern a named gauge.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut map = self.gauges.lock().unwrap();
        match map.get(name) {
            Some(g) => Arc::clone(g),
            None => {
                let g = Arc::new(Gauge::default());
                map.insert(name.to_owned(), Arc::clone(&g));
                g
            }
        }
    }

    /// Intern a named histogram.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut map = self.histograms.lock().unwrap();
        match map.get(name) {
            Some(h) => Arc::clone(h),
            None => {
                let h = Arc::new(Histogram::new());
                map.insert(name.to_owned(), Arc::clone(&h));
                h
            }
        }
    }

    /// Record an event (bounded buffer; drops past [`MAX_EVENTS`] are
    /// counted, not silently lost).
    pub fn event(&self, level: Level, name: impl Into<String>, message: impl Into<String>) {
        let mut events = self.events.lock().unwrap();
        if events.len() >= MAX_EVENTS {
            self.events_dropped.fetch_add(1, Ordering::Relaxed);
            return;
        }
        events.push(EventRecord {
            level,
            name: name.into(),
            message: message.into(),
        });
    }

    /// Snapshot of buffered events (does not drain).
    pub fn events(&self) -> Vec<EventRecord> {
        self.events.lock().unwrap().clone()
    }

    /// Stable JSON snapshot of every instrument:
    /// `{"counters":{..},"gauges":{..},"histograms":{name:{count,sum,max,p50,p90,p99}},"events":[{level,name,message}]}`.
    pub fn snapshot_json(&self) -> String {
        let mut out = String::from("{\n  \"counters\": {");
        for (i, (name, c)) in self.counters.lock().unwrap().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\n    \"{}\": {}", json_escape(name), c.get()));
        }
        out.push_str("\n  },\n  \"gauges\": {");
        for (i, (name, g)) in self.gauges.lock().unwrap().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\n    \"{}\": {}", json_escape(name), g.get()));
        }
        out.push_str("\n  },\n  \"histograms\": {");
        for (i, (name, h)) in self.histograms.lock().unwrap().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    \"{}\": {{\"count\": {}, \"sum\": {}, \"max\": {}, \"p50\": {}, \"p90\": {}, \"p99\": {}}}",
                json_escape(name),
                h.count(),
                h.sum(),
                h.max(),
                h.percentile(0.50),
                h.percentile(0.90),
                h.percentile(0.99),
            ));
        }
        out.push_str("\n  },\n  \"events\": [");
        let events = self.events.lock().unwrap();
        for (i, e) in events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {{\"level\": \"{}\", \"name\": \"{}\", \"message\": \"{}\"}}",
                e.level.as_str(),
                json_escape(&e.name),
                json_escape(&e.message)
            ));
        }
        drop(events);
        out.push_str("\n  ]\n}\n");
        out
    }

    /// Human-readable snapshot (one instrument per line).
    pub fn snapshot_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for (name, c) in self.counters.lock().unwrap().iter() {
            writeln!(out, "counter   {name:<32} {}", c.get()).unwrap();
        }
        for (name, g) in self.gauges.lock().unwrap().iter() {
            writeln!(out, "gauge     {name:<32} {}", g.get()).unwrap();
        }
        for (name, h) in self.histograms.lock().unwrap().iter() {
            writeln!(
                out,
                "histogram {name:<32} count {} p50 {} p90 {} p99 {} max {}",
                h.count(),
                h.percentile(0.50),
                h.percentile(0.90),
                h.percentile(0.99),
                h.max()
            )
            .unwrap();
        }
        for e in self.events.lock().unwrap().iter() {
            writeln!(out, "event[{}] {}: {}", e.level.as_str(), e.name, e.message).unwrap();
        }
        out
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Tracing state is process-global; tests that toggle it serialize
    /// here so parallel test threads cannot interleave drains.
    static TRACE_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn disabled_spans_record_nothing() {
        let _guard = TRACE_LOCK.lock().unwrap();
        set_tracing(false);
        let _ = take_events();
        {
            let _s = span("noop", "test");
            instant("noop.i", "test");
        }
        assert!(take_events().is_empty());
    }

    #[test]
    fn spans_nest_and_export_chrome_format() {
        let _guard = TRACE_LOCK.lock().unwrap();
        set_tracing(true);
        let _ = take_events();
        {
            let _outer = span("outer", "test");
            {
                let _inner = span("inner", "test");
            }
            instant("mark", "test");
        }
        set_tracing(false);
        let events = take_events();
        assert_eq!(events.len(), 3);
        spans_well_formed(&events).unwrap();
        // Sorted with the enclosing span first.
        let spans: Vec<&TraceEvent> = events.iter().filter(|e| e.ph == 'X').collect();
        assert_eq!(spans[0].name, "outer");
        assert_eq!(spans[1].name, "inner");
        assert!(spans[0].ts_ns <= spans[1].ts_ns);
        assert!(spans[0].ts_ns + spans[0].dur_ns >= spans[1].ts_ns + spans[1].dur_ns);
        let json = chrome_trace_json(&events);
        assert!(json.contains("\"traceEvents\""));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"ph\":\"i\""));
        assert!(json.contains("\"name\":\"outer\""));
    }

    #[test]
    fn well_formedness_rejects_partial_overlap() {
        let mk = |name: &'static str, ts, dur| TraceEvent {
            name,
            cat: "t",
            ph: 'X',
            ts_ns: ts,
            dur_ns: dur,
            tid: 1,
        };
        // Proper nesting passes.
        spans_well_formed(&[mk("a", 0, 100), mk("b", 10, 20), mk("c", 40, 20)]).unwrap();
        // Partial overlap fails.
        let err = spans_well_formed(&[mk("a", 0, 50), mk("b", 25, 50)]).unwrap_err();
        assert!(err.contains("partially overlaps"), "{err}");
        // Different tids never interact.
        let mut cross = vec![mk("a", 0, 50), mk("b", 25, 50)];
        cross[1].tid = 2;
        spans_well_formed(&cross).unwrap();
    }

    #[test]
    fn per_thread_buffers_drain_from_all_threads() {
        let _guard = TRACE_LOCK.lock().unwrap();
        set_tracing(true);
        let _ = take_events();
        let handles: Vec<_> = (0..4)
            .map(|_| {
                std::thread::spawn(|| {
                    let _s = span("worker", "test");
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        set_tracing(false);
        let events = take_events();
        assert_eq!(events.len(), 4);
        let tids: std::collections::BTreeSet<u64> = events.iter().map(|e| e.tid).collect();
        assert_eq!(tids.len(), 4, "one tid per thread: {tids:?}");
        spans_well_formed(&events).unwrap();
    }

    #[test]
    fn counters_propagate_to_parents() {
        let parent = Arc::new(Counter::new());
        let child_a = parent.child();
        let child_b = parent.child();
        child_a.add(3);
        child_b.inc();
        assert_eq!(child_a.get(), 3);
        assert_eq!(child_b.get(), 1);
        assert_eq!(parent.get(), 4);
        // Grandchildren propagate transitively.
        let mid = Arc::new(parent.child());
        let leaf = mid.child();
        leaf.add(10);
        assert_eq!(leaf.get(), 10);
        assert_eq!(mid.get(), 10);
        assert_eq!(parent.get(), 14);
    }

    #[test]
    fn histogram_buckets_and_percentiles() {
        // Bucket index is monotone and the lower bound round-trips.
        let mut last = 0usize;
        for v in [0u64, 1, 2, 3, 4, 5, 7, 8, 15, 16, 100, 1000, 1 << 20, u64::MAX] {
            let idx = bucket_index(v);
            assert!(idx >= last, "index not monotone at {v}");
            assert!(bucket_lower(idx) <= v, "lower bound above value at {v}");
            assert!(idx < HIST_BUCKETS);
            last = idx;
        }
        // Exact small values.
        for v in 0..4u64 {
            assert_eq!(bucket_lower(bucket_index(v)), v);
        }

        let h = Histogram::new();
        assert_eq!(h.percentile(0.5), 0);
        for v in 1..=1000u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 1000);
        assert_eq!(h.sum(), 500_500);
        assert_eq!(h.max(), 1000);
        let p50 = h.percentile(0.50);
        let p99 = h.percentile(0.99);
        // Log-linear bucketing: lower bound within ~25% below the true
        // quantile, never above it.
        assert!((375..=500).contains(&p50), "p50 = {p50}");
        assert!((744..=990).contains(&p99), "p99 = {p99}");
        assert!(p50 <= h.percentile(0.90) && h.percentile(0.90) <= p99);
    }

    #[test]
    fn registry_interns_and_snapshots() {
        let reg = Registry::default();
        let c = reg.counter("test.counter");
        assert!(Arc::ptr_eq(&c, &reg.counter("test.counter")));
        c.add(7);
        reg.gauge("test.gauge").set(-3);
        reg.histogram("test.hist").record(42);
        reg.event(Level::Warn, "test.warn", "log \"growth\" high");

        let json = reg.snapshot_json();
        assert!(json.contains("\"test.counter\": 7"), "{json}");
        assert!(json.contains("\"test.gauge\": -3"), "{json}");
        assert!(json.contains("\"count\": 1"), "{json}");
        assert!(json.contains("\"level\": \"warn\""), "{json}");
        assert!(json.contains("log \\\"growth\\\" high"), "{json}");

        let text = reg.snapshot_text();
        assert!(text.contains("test.counter"), "{text}");
        assert!(text.contains("event[warn] test.warn"), "{text}");
    }

    #[test]
    fn event_buffer_is_bounded() {
        let reg = Registry::default();
        for i in 0..(MAX_EVENTS + 10) {
            reg.event(Level::Info, "spam", format!("{i}"));
        }
        assert_eq!(reg.events().len(), MAX_EVENTS);
        assert_eq!(reg.events_dropped.load(Ordering::Relaxed), 10);
    }

    #[test]
    fn timer_skips_clock_when_disabled() {
        let _guard = TRACE_LOCK.lock().unwrap();
        set_tracing(false);
        assert!(timer().is_none());
        let h = Histogram::new();
        record_since(&h, timer());
        assert_eq!(h.count(), 0);
        set_tracing(true);
        let t = timer();
        assert!(t.is_some());
        record_since(&h, t);
        assert_eq!(h.count(), 1);
        set_tracing(false);
    }
}
