//! Runtime guardrails: a shared [`Budget`] carrying a deadline, a
//! cooperative cancel token, and op/match caps.
//!
//! The budget mirrors the two-tier cost model of the tracing layer: the
//! hot-path probe ([`Budget::is_tripped`]) is a single relaxed atomic
//! load, while the full evaluation ([`Budget::checkpoint`] — cancel
//! flag, deadline clock read, cap comparisons) runs only at coarse
//! boundaries (engine round/stratum edges, every Nth matcher candidate
//! batch, WAL-replay segment edges). A trip is *sticky*: the first
//! reason wins, every later probe sees it, and the corresponding
//! `limit.*` counter is bumped exactly once.
//!
//! Cancellation is cooperative. [`Budget::cancel`] (or a
//! [`CancelToken`], which is `Send + 'static` and safe to flip from a
//! signal-watcher thread) raises a flag that the next [`checkpoint`]
//! call promotes into a [`TripReason::Cancelled`] trip — nothing is
//! interrupted mid-operation, which is what lets the engine guarantee
//! round-atomic shutdown and the store keep append→fsync windows
//! uninterruptible.
//!
//! Deterministic testing hooks, in the spirit of the store's scripted
//! `FaultyFs` schedules: [`TestClock`] replaces the wall clock with a
//! manually advanced counter, and [`Budget::cancel_at_check`] trips
//! cancellation at exactly the Nth checkpoint, so a property test can
//! drive a cancellation through *every* check boundary of a run.
//!
//! [`checkpoint`]: Budget::checkpoint
//!
//! ```
//! use grepair_obs::{Budget, TripReason};
//! let b = Budget::unlimited().with_op_cap(2);
//! assert!(!b.is_tripped());
//! b.charge_ops(2);
//! assert_eq!(b.tripped(), Some(TripReason::OpBudget));
//! ```

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::{counter, event, Level};

/// Why a [`Budget`] stopped the run. Sticky: the first trip wins.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TripReason {
    /// The wall-clock (or [`TestClock`]) deadline passed.
    Deadline,
    /// [`Budget::cancel`] / a [`CancelToken`] / the cancel-at-Nth-check
    /// test driver requested a stop.
    Cancelled,
    /// An op or match cap was exhausted.
    OpBudget,
}

impl TripReason {
    /// Stable lowercase label (exit-code tables, span attributes,
    /// JSON reports).
    pub fn as_str(self) -> &'static str {
        match self {
            TripReason::Deadline => "deadline",
            TripReason::Cancelled => "cancelled",
            TripReason::OpBudget => "op-budget",
        }
    }
}

impl std::fmt::Display for TripReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

const TRIP_NONE: u8 = 0;
const TRIP_DEADLINE: u8 = 1;
const TRIP_CANCELLED: u8 = 2;
const TRIP_OP_BUDGET: u8 = 3;

fn decode(raw: u8) -> Option<TripReason> {
    match raw {
        TRIP_DEADLINE => Some(TripReason::Deadline),
        TRIP_CANCELLED => Some(TripReason::Cancelled),
        TRIP_OP_BUDGET => Some(TripReason::OpBudget),
        _ => None,
    }
}

/// Time source for deadline evaluation: the real monotonic clock, or a
/// manually advanced [`TestClock`] for deterministic trips.
enum Clock {
    Real(Instant),
    Test(Arc<AtomicU64>),
}

impl Clock {
    fn elapsed_nanos(&self) -> u64 {
        match self {
            Clock::Real(start) => start.elapsed().as_nanos() as u64,
            Clock::Test(nanos) => nanos.load(Ordering::Relaxed),
        }
    }
}

/// A manually advanced clock for deterministic deadline tests. Cloned
/// handles share the same underlying counter; attach with
/// [`Budget::with_test_clock`].
#[derive(Clone, Default)]
pub struct TestClock {
    nanos: Arc<AtomicU64>,
}

impl TestClock {
    /// A clock frozen at t = 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// Advance the clock by `d`. Visible to every budget sharing it at
    /// their next [`Budget::checkpoint`].
    pub fn advance(&self, d: Duration) {
        self.nanos
            .fetch_add(d.as_nanos() as u64, Ordering::Relaxed);
    }
}

struct Inner {
    /// Sticky first-trip reason (`TRIP_*`); the one word hot-path
    /// probes load.
    tripped: AtomicU8,
    /// Cooperative cancel request, promoted to a trip at a checkpoint.
    cancel: AtomicBool,
    /// Deadline in clock nanos since budget construction (`u64::MAX` =
    /// none).
    deadline_nanos: u64,
    /// Applied-op cap (`u64::MAX` = none) and its counter.
    op_cap: u64,
    ops: AtomicU64,
    /// Emitted-match / frontier cap (`u64::MAX` = none) and its counter.
    match_cap: u64,
    matches: AtomicU64,
    /// Checkpoint counter, and the test driver's trip-at value.
    checks: AtomicU64,
    cancel_at_check: u64,
    clock: Clock,
}

/// A shared runtime budget: deadline + cancel token + op/match caps.
///
/// Cloning is cheap and shares the same state — hand clones to the
/// engine, matchers, and store so a single trip stops every layer.
/// Configure with the `with_*` builders *before* cloning (they require
/// exclusive ownership). See the [module docs](self) for the cost model
/// and determinism hooks.
#[derive(Clone)]
pub struct Budget {
    inner: Arc<Inner>,
}

impl Default for Budget {
    fn default() -> Self {
        Self::unlimited()
    }
}

impl std::fmt::Debug for Budget {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Budget")
            .field("tripped", &self.tripped())
            .field("checks", &self.checks())
            .field("ops", &self.inner.ops.load(Ordering::Relaxed))
            .finish()
    }
}

impl Budget {
    /// A budget that never trips on its own (it can still be
    /// [`cancel`](Budget::cancel)led). This is the always-attached
    /// default, so hot paths pay the probe cost unconditionally and the
    /// disabled-overhead bench measures the real configuration.
    pub fn unlimited() -> Self {
        Self {
            inner: Arc::new(Inner {
                tripped: AtomicU8::new(TRIP_NONE),
                cancel: AtomicBool::new(false),
                deadline_nanos: u64::MAX,
                op_cap: u64::MAX,
                ops: AtomicU64::new(0),
                match_cap: u64::MAX,
                matches: AtomicU64::new(0),
                checks: AtomicU64::new(0),
                cancel_at_check: u64::MAX,
                clock: Clock::Real(Instant::now()),
            }),
        }
    }

    fn configure(&mut self) -> &mut Inner {
        Arc::get_mut(&mut self.inner).expect("configure a Budget before cloning/sharing it")
    }

    /// Trip [`TripReason::Deadline`] once `d` has elapsed on the
    /// attached clock (measured from construction, or from [`TestClock`]
    /// zero).
    #[must_use]
    pub fn with_deadline(mut self, d: Duration) -> Self {
        self.configure().deadline_nanos = d.as_nanos().min(u64::MAX as u128) as u64;
        self
    }

    /// Trip [`TripReason::OpBudget`] once `cap` ops have been charged
    /// via [`Budget::charge_ops`]. A cap of 0 trips at the first
    /// checkpoint.
    #[must_use]
    pub fn with_op_cap(mut self, cap: u64) -> Self {
        self.configure().op_cap = cap;
        self
    }

    /// Trip [`TripReason::OpBudget`] once `cap` matches/frontier rows
    /// have been charged via [`Budget::charge_matches`] — the
    /// frontier-memory backstop.
    #[must_use]
    pub fn with_match_cap(mut self, cap: u64) -> Self {
        self.configure().match_cap = cap;
        self
    }

    /// Evaluate deadlines against `clock` instead of the monotonic
    /// wall clock.
    #[must_use]
    pub fn with_test_clock(mut self, clock: &TestClock) -> Self {
        self.configure().clock = Clock::Test(Arc::clone(&clock.nanos));
        self
    }

    /// Deterministic cancel driver: trip [`TripReason::Cancelled`] at
    /// the `n`th [`Budget::checkpoint`] call (1-based; 0 trips at the
    /// first). Checkpoint counting is deterministic for serial runs.
    #[must_use]
    pub fn cancel_at_check(mut self, n: u64) -> Self {
        self.configure().cancel_at_check = n;
        self
    }

    /// Hot-path probe: has any trip been recorded? One relaxed atomic
    /// load — safe to call per candidate batch.
    #[inline]
    pub fn is_tripped(&self) -> bool {
        self.inner.tripped.load(Ordering::Relaxed) != TRIP_NONE
    }

    /// The sticky trip reason, if any.
    pub fn tripped(&self) -> Option<TripReason> {
        decode(self.inner.tripped.load(Ordering::Relaxed))
    }

    /// Request cooperative cancellation. Observed at the next
    /// [`Budget::checkpoint`] — never mid-operation.
    pub fn cancel(&self) {
        self.inner.cancel.store(true, Ordering::Relaxed);
    }

    /// A `Send + 'static` handle that can flip this budget's cancel
    /// flag from another thread (e.g. a SIGINT watcher).
    pub fn token(&self) -> CancelToken {
        CancelToken {
            inner: Arc::clone(&self.inner),
        }
    }

    /// How many checkpoints have been evaluated so far — the domain of
    /// [`Budget::cancel_at_check`] schedules.
    pub fn checks(&self) -> u64 {
        self.inner.checks.load(Ordering::Relaxed)
    }

    /// Full guardrail evaluation: promotes a pending cancel, checks the
    /// deadline clock and caps, and returns the (possibly pre-existing)
    /// trip. Call at coarse boundaries only; hot loops should probe
    /// [`Budget::is_tripped`] and let an enclosing amortized site call
    /// this every N batches.
    pub fn checkpoint(&self) -> Option<TripReason> {
        if let Some(r) = self.tripped() {
            return Some(r);
        }
        let inner = &*self.inner;
        let check_no = inner.checks.fetch_add(1, Ordering::Relaxed) + 1;
        if check_no >= inner.cancel_at_check || inner.cancel.load(Ordering::Relaxed) {
            return Some(self.trip(TripReason::Cancelled));
        }
        if inner.deadline_nanos != u64::MAX && inner.clock.elapsed_nanos() >= inner.deadline_nanos
        {
            return Some(self.trip(TripReason::Deadline));
        }
        if inner.ops.load(Ordering::Relaxed) >= inner.op_cap
            || inner.matches.load(Ordering::Relaxed) >= inner.match_cap
        {
            return Some(self.trip(TripReason::OpBudget));
        }
        None
    }

    /// Charge `n` applied ops against the op cap; trips
    /// [`TripReason::OpBudget`] immediately when the cap is reached.
    pub fn charge_ops(&self, n: u64) {
        let total = self.inner.ops.fetch_add(n, Ordering::Relaxed) + n;
        if total >= self.inner.op_cap && !self.is_tripped() {
            self.trip(TripReason::OpBudget);
        }
    }

    /// Charge `n` emitted matches / frontier rows against the match
    /// cap; trips [`TripReason::OpBudget`] when the cap is reached.
    pub fn charge_matches(&self, n: u64) {
        let total = self.inner.matches.fetch_add(n, Ordering::Relaxed) + n;
        if total >= self.inner.match_cap && !self.is_tripped() {
            self.trip(TripReason::OpBudget);
        }
    }

    /// Record a trip. First reason wins (compare-exchange from
    /// `TRIP_NONE`); the winner bumps the matching `limit.*` counter and
    /// emits a warn event, exactly once per budget.
    fn trip(&self, reason: TripReason) -> TripReason {
        let raw = match reason {
            TripReason::Deadline => TRIP_DEADLINE,
            TripReason::Cancelled => TRIP_CANCELLED,
            TripReason::OpBudget => TRIP_OP_BUDGET,
        };
        match self.inner.tripped.compare_exchange(
            TRIP_NONE,
            raw,
            Ordering::Relaxed,
            Ordering::Relaxed,
        ) {
            Ok(_) => {
                let (name, msg) = match reason {
                    TripReason::Deadline => ("limit.deadline_trips", "deadline exceeded"),
                    TripReason::Cancelled => ("limit.cancelled", "cancellation requested"),
                    TripReason::OpBudget => ("limit.op_budget_trips", "op/match budget exhausted"),
                };
                counter(name).inc();
                event(Level::Warn, "limit.trip", msg);
                reason
            }
            // Lost the race: report the established reason.
            Err(prev) => decode(prev).unwrap_or(reason),
        }
    }
}

/// A cancellation handle detached from the [`Budget`]'s lifetime
/// bookkeeping: `Send + Sync + 'static`, cheap to clone, safe to stash
/// in a global for a signal handler's watcher thread.
#[derive(Clone)]
pub struct CancelToken {
    inner: Arc<Inner>,
}

impl CancelToken {
    /// Request cooperative cancellation of the owning budget.
    pub fn cancel(&self) {
        self.inner.cancel.store(true, Ordering::Relaxed);
    }

    /// Whether cancellation has been requested (not necessarily yet
    /// observed by a checkpoint).
    pub fn is_cancelled(&self) -> bool {
        self.inner.cancel.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_budget_never_trips() {
        let b = Budget::unlimited();
        for _ in 0..1000 {
            assert_eq!(b.checkpoint(), None);
        }
        assert!(!b.is_tripped());
        assert_eq!(b.checks(), 1000);
    }

    #[test]
    fn cancel_is_observed_at_next_checkpoint_only() {
        let b = Budget::unlimited();
        assert_eq!(b.checkpoint(), None);
        b.cancel();
        // Probe alone does not promote the request.
        assert!(!b.is_tripped());
        assert_eq!(b.checkpoint(), Some(TripReason::Cancelled));
        assert!(b.is_tripped());
        assert_eq!(b.tripped(), Some(TripReason::Cancelled));
    }

    #[test]
    fn token_cancels_across_clones() {
        let b = Budget::unlimited();
        let clone = b.clone();
        let token = b.token();
        assert!(!token.is_cancelled());
        token.cancel();
        assert!(token.is_cancelled());
        assert_eq!(clone.checkpoint(), Some(TripReason::Cancelled));
        assert!(b.is_tripped());
    }

    #[test]
    fn test_clock_deadline_trips_deterministically() {
        let clock = TestClock::new();
        let b = Budget::unlimited()
            .with_deadline(Duration::from_millis(10))
            .with_test_clock(&clock);
        assert_eq!(b.checkpoint(), None);
        clock.advance(Duration::from_millis(9));
        assert_eq!(b.checkpoint(), None);
        clock.advance(Duration::from_millis(1));
        assert_eq!(b.checkpoint(), Some(TripReason::Deadline));
    }

    #[test]
    fn op_cap_trips_on_charge_and_checkpoint() {
        let b = Budget::unlimited().with_op_cap(3);
        b.charge_ops(2);
        assert!(!b.is_tripped());
        b.charge_ops(1);
        assert_eq!(b.tripped(), Some(TripReason::OpBudget));
    }

    #[test]
    fn match_cap_trips() {
        let b = Budget::unlimited().with_match_cap(5);
        b.charge_matches(4);
        assert_eq!(b.checkpoint(), None);
        b.charge_matches(1);
        assert_eq!(b.tripped(), Some(TripReason::OpBudget));
    }

    #[test]
    fn cancel_at_nth_check_trips_exactly_there() {
        let b = Budget::unlimited().cancel_at_check(3);
        assert_eq!(b.checkpoint(), None);
        assert_eq!(b.checkpoint(), None);
        assert_eq!(b.checkpoint(), Some(TripReason::Cancelled)); // the 3rd check trips
    }

    #[test]
    fn first_trip_reason_is_sticky() {
        let b = Budget::unlimited().with_op_cap(1);
        b.charge_ops(1);
        assert_eq!(b.tripped(), Some(TripReason::OpBudget));
        b.cancel();
        assert_eq!(b.checkpoint(), Some(TripReason::OpBudget));
    }

    #[test]
    fn trip_increments_limit_counter_once() {
        let before = crate::counter("limit.op_budget_trips").get();
        let b = Budget::unlimited().with_op_cap(1);
        b.charge_ops(1);
        b.charge_ops(1);
        assert_eq!(b.checkpoint(), Some(TripReason::OpBudget));
        let after = crate::counter("limit.op_budget_trips").get();
        assert_eq!(after - before, 1);
    }
}
