//! Deterministic fault injection and crash-point exploration.
//!
//! The centerpiece walks a scripted mutation/commit/compact sequence
//! over the in-memory [`FaultyFs`] backend and simulates a crash at
//! **every** file-operation index along it: operation `k` and everything
//! after it fail, un-synced writes and un-synced directory entries are
//! dropped, the surviving (durable) image is materialized to a real
//! directory and reopened with the production [`StdFs`] backend. Every
//! such recovery must yield a graph equal to the state after some prefix
//! of the successfully applied mutations, must never lose a commit that
//! was acknowledged before the crash, and must never panic — damage
//! surfaces only as typed [`StoreError`]s.
//!
//! Around it: fsync failures must poison the store (fsyncgate),
//! ENOSPC-torn appends must poison mutators while the valid prefix stays
//! committable, transient interruptions must be retried away, the `LOCK`
//! file must keep second writers out, and [`ReadOnlyStore`] must serve a
//! prefix of a store too damaged for a writable open.

use grepair_graph::{NodeId, SlotDump, Value};
use grepair_store::{
    DurableGraph, FaultOp, FaultyFs, InjectedError, ReadOnlyStore, StoreConfig, StoreError,
};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

fn tmpdir(tag: &str) -> PathBuf {
    static UNIQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    let n = UNIQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!(
        "grepair-faults-{tag}-{}-{:?}-{n}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn small_config() -> StoreConfig {
    StoreConfig {
        segment_max_bytes: 160, // rotate every few records
        compact_log_bytes: u64::MAX,
        keep_snapshots: 2,
        sync_on_commit: true,
        log_growth_warn_bytes: u64::MAX,
    }
}

/// What the script observed: the graph after every successfully applied
/// mutation (keyed by its sequence number) and the highest sequence an
/// acknowledged `commit` covered.
#[derive(Default)]
struct Trace {
    dumps: BTreeMap<u64, SlotDump>,
    acked: u64,
}

impl Trace {
    fn record(&mut self, s: &DurableGraph<FaultyFs>) {
        self.dumps.insert(s.last_seq(), s.graph().dump_slots());
    }
}

/// The scripted sequence: enough mutations to rotate segments several
/// times, two compactions (snapshot + retirement), interleaved commits.
/// Every step tolerates failure — after the simulated crash point each
/// operation returns a typed error, and the script just carries on, the
/// way exploration requires.
fn run_script(fs: &FaultyFs, dir: &Path) -> Trace {
    let mut trace = Trace::default();
    let Ok(mut s) = DurableGraph::create_on(fs.clone(), dir, small_config()) else {
        return trace; // crash before the store durably existed
    };
    trace.record(&s);
    let mut nodes: Vec<NodeId> = Vec::new();
    for i in 0..5 {
        if let Ok(n) = s.add_node(&format!("P{i}")) {
            nodes.push(n);
            trace.record(&s);
        }
    }
    if s.commit().is_ok() {
        trace.acked = s.last_seq();
    }
    for w in nodes.windows(2) {
        if s.add_edge(w[0], w[1], "knows").is_ok() {
            trace.record(&s);
        }
    }
    if s.commit().is_ok() {
        trace.acked = s.last_seq();
    }
    let _ = s.compact();
    if let (Some(&first), Some(&last)) = (nodes.first(), nodes.last()) {
        if s.set_attr(first, "name", Value::from("zero")).is_ok() {
            trace.record(&s);
        }
        if first != last && s.remove_node(last).is_ok() {
            trace.record(&s);
        }
    }
    if s.commit().is_ok() {
        trace.acked = s.last_seq();
    }
    let _ = s.compact();
    if s.add_node("Late").is_ok() {
        trace.record(&s);
    }
    if s.commit().is_ok() {
        trace.acked = s.last_seq();
    }
    trace
}

/// Materialize the durable (crash-surviving) image and recover it with
/// the real backend, asserting the store's whole crash contract.
fn assert_recovers_a_prefix(fs: &FaultyFs, trace: &Trace, label: &str) {
    let target = tmpdir("image");
    fs.materialize_durable(&target).unwrap();
    // The crashed process is dead by construction; its LOCK (if the
    // name ever became durable) is stale. Staleness detection is pid
    // and boot-id based, which a same-process test cannot exercise, so
    // the harness removes the file the way a stale-lock steal would.
    let _ = std::fs::remove_file(target.join("LOCK"));

    match DurableGraph::open(&target, small_config()) {
        Ok(s) => {
            let seq = s.last_seq();
            assert!(
                seq >= trace.acked,
                "{label}: acknowledged commit lost — recovered seq {seq} < acked {}",
                trace.acked
            );
            let expect = trace.dumps.get(&seq).unwrap_or_else(|| {
                panic!("{label}: recovered seq {seq} matches no applied-mutation state")
            });
            assert_eq!(
                &s.graph().dump_slots(),
                expect,
                "{label}: recovered graph is not the prefix state at seq {seq}"
            );
            s.graph().check_invariants().unwrap();
        }
        Err(StoreError::NotAStore(_)) => {
            // Legal only if the crash predates the store's first durable
            // directory sync — nothing was ever acknowledged.
            assert_eq!(trace.acked, 0, "{label}: acked commits but no store on disk");
            assert!(
                trace.dumps.is_empty(),
                "{label}: store creation returned Ok but nothing is durable"
            );
        }
        Err(e) => panic!("{label}: recovery failed on a crash image: {e}"),
    }
    std::fs::remove_dir_all(&target).ok();
}

/// Crash-point exploration: simulate a clean-cut crash (no torn write)
/// at every file-operation index of the scripted run.
#[test]
fn crash_at_every_operation_recovers_a_committed_prefix() {
    let vdir = PathBuf::from("/store");
    // Clean run to count the injection points.
    let clean = FaultyFs::new();
    let clean_trace = run_script(&clean, &vdir);
    assert!(clean_trace.acked > 0, "clean run must acknowledge commits");
    assert_recovers_a_prefix(&clean, &clean_trace, "clean");
    let total_ops = clean.ops();
    assert!(total_ops > 40, "script too small to be interesting: {total_ops}");
    let counts = clean.op_counts();
    assert!(counts.syncs > 0 && counts.renames > 0 && counts.dir_syncs > 0);

    for crash_at in 0..total_ops {
        let fs = FaultyFs::new();
        fs.set_crash_point(crash_at);
        let trace = run_script(&fs, &vdir);
        assert_recovers_a_prefix(&fs, &trace, &format!("crash at op {crash_at}"));
    }
}

/// Same exploration with the crash *tearing* the in-flight write: a few
/// bytes of the buffer land before everything goes dark. Recovery must
/// treat the partial frame as a torn tail, never as data.
#[test]
fn torn_write_crash_at_every_operation_recovers_a_committed_prefix() {
    let vdir = PathBuf::from("/store");
    let clean = FaultyFs::new();
    run_script(&clean, &vdir);
    let total_ops = clean.ops();

    for keep in [1usize, 9] {
        for crash_at in 0..total_ops {
            let fs = FaultyFs::new();
            fs.set_torn_crash_point(crash_at, keep);
            let trace = run_script(&fs, &vdir);
            assert_recovers_a_prefix(
                &fs,
                &trace,
                &format!("torn({keep}) crash at op {crash_at}"),
            );
        }
    }
}

/// fsyncgate: a failed commit fsync must poison the store hard — no
/// retrying the sync, no further mutations, no further commits — while
/// reopening the directory recovers what truly landed.
#[test]
fn failed_commit_fsync_poisons_against_retry() {
    let vdir = PathBuf::from("/store");
    let fs = FaultyFs::new();
    let mut s = DurableGraph::create_on(fs.clone(), &vdir, small_config()).unwrap();
    let n = s.add_node("P").unwrap();
    s.commit().unwrap();

    s.add_node("Q").unwrap();
    fs.inject(FaultOp::Sync, 0, InjectedError::Eio);
    let err = s.commit().unwrap_err();
    assert!(matches!(err, StoreError::Io(_)), "typed io error: {err}");
    assert!(s.is_poisoned());
    // Retrying the commit must refuse — the kernel may have dropped the
    // dirty pages while clearing the error, so a second fsync could
    // "succeed" with the data gone.
    assert!(matches!(s.commit(), Err(StoreError::Poisoned)));
    assert!(matches!(s.add_node("R"), Err(StoreError::Poisoned)));
    assert!(matches!(s.set_attr(n, "k", Value::Int(1)), Err(StoreError::Poisoned)));
    assert!(matches!(s.compact(), Err(StoreError::Poisoned)));
    drop(s);

    // Reopen over the same (healthy again) backend: recovery re-reads
    // the log and serves whatever is actually there, unpoisoned.
    let s = DurableGraph::open_on(fs, &vdir, small_config()).unwrap();
    assert!(!s.is_poisoned());
    s.graph().check_invariants().unwrap();
}

/// ENOSPC tearing an append mid-frame: the mutator reports a typed
/// error and poisons further mutation, but committing the valid prefix
/// — everything before the torn frame — stays allowed, and recovery
/// discards the partial frame.
#[test]
fn enospc_torn_append_poisons_mutators_but_prefix_commits() {
    let vdir = PathBuf::from("/store");
    let fs = FaultyFs::new();
    let mut s = DurableGraph::create_on(fs.clone(), &vdir, small_config()).unwrap();
    s.add_node("P").unwrap();
    let good_seq = s.last_seq();
    let durable = s.graph().dump_slots();

    fs.inject_torn_write(0, 3, InjectedError::Enospc);
    let err = s.add_node("Q").unwrap_err();
    match &err {
        StoreError::Io(e) => assert_eq!(e.raw_os_error(), Some(28), "{e}"),
        other => panic!("expected Io(ENOSPC), got {other}"),
    }
    assert!(s.is_poisoned());
    assert!(matches!(s.add_node("R"), Err(StoreError::Poisoned)));
    // An append-poisoned store may still fsync its valid journaled
    // prefix (that is safe — the in-memory drift is never journaled).
    s.commit().unwrap();
    drop(s);

    let s = DurableGraph::open_on(fs, &vdir, small_config()).unwrap();
    assert_eq!(s.last_seq(), good_seq, "torn frame must not replay");
    assert_eq!(s.graph().dump_slots(), durable);
    assert!(
        s.last_recovery().torn_tail_bytes > 0,
        "the partial ENOSPC frame is crash residue"
    );
}

/// Transient `EINTR`-class failures on retryable operations (here: the
/// append re-open during recovery) are absorbed by bounded retry and
/// recorded on the `store.retry` counter.
#[test]
fn transient_interruption_on_open_is_retried_away() {
    let vdir = PathBuf::from("/store");
    let fs = FaultyFs::new();
    let mut s = DurableGraph::create_on(fs.clone(), &vdir, small_config()).unwrap();
    s.add_node("P").unwrap();
    s.commit().unwrap();
    drop(s);

    let before = grepair_obs::counter("store.retry").get();
    fs.inject(FaultOp::Open, 0, InjectedError::Interrupted);
    let s = DurableGraph::open_on(fs, &vdir, small_config()).unwrap();
    assert_eq!(s.graph().num_nodes(), 1);
    assert!(
        grepair_obs::counter("store.retry").get() > before,
        "the retry must be visible in telemetry"
    );
}

/// The `LOCK` file enforces single-writer: a second writable open fails
/// with a typed `Locked` error naming the live holder, while read-only
/// opens pass, and the lock dies with the holder.
#[test]
fn live_lock_refuses_second_writer_but_not_readers() {
    let dir = tmpdir("lock");
    let mut holder = DurableGraph::create(&dir, small_config()).unwrap();
    holder.add_node("P").unwrap();
    holder.commit().unwrap();

    match DurableGraph::open(&dir, small_config()) {
        Err(StoreError::Locked { pid, .. }) => assert_eq!(pid, std::process::id()),
        Err(other) => panic!("second writer must see Locked, got {other}"),
        Ok(_) => panic!("second writer must see Locked, got a store"),
    }
    // Read-only opens take no lock — they work beside the live writer.
    let ro = ReadOnlyStore::open(&dir).unwrap();
    assert_eq!(ro.graph().num_nodes(), 1);
    assert!(!ro.degraded());

    drop(holder); // releases the lock
    let s = DurableGraph::open(&dir, small_config()).unwrap();
    assert_eq!(s.graph().num_nodes(), 1);
    drop(s);
    std::fs::remove_dir_all(&dir).ok();
}

/// A store with mid-log damage refuses a writable open but serves its
/// longest consistent prefix through the degraded read-only path.
#[test]
fn read_only_open_serves_prefix_of_damaged_store() {
    let dir = tmpdir("degraded");
    let mut dumps: BTreeMap<u64, SlotDump> = BTreeMap::new();
    let mut s = DurableGraph::create(&dir, small_config()).unwrap();
    dumps.insert(0, s.graph().dump_slots());
    for i in 0..20 {
        s.add_node(&format!("P{i}")).unwrap();
        dumps.insert(s.last_seq(), s.graph().dump_slots());
    }
    s.commit().unwrap();
    let full_seq = s.last_seq();
    drop(s);

    // Bit-flip inside the second of several segments: mid-log damage.
    let segs = grepair_store::wal::list_segments(&dir).unwrap();
    assert!(segs.len() > 2, "need rotation: {}", segs.len());
    let mut bytes = std::fs::read(&segs[1].1).unwrap();
    let target = grepair_store::wal::SEGMENT_HEADER_LEN as usize + 10;
    bytes[target] ^= 0xFF;
    std::fs::write(&segs[1].1, &bytes).unwrap();

    assert!(
        matches!(
            DurableGraph::open(&dir, small_config()),
            Err(StoreError::Corrupt { .. })
        ),
        "writable open must fail closed on mid-log damage"
    );

    let ro = ReadOnlyStore::open(&dir).unwrap();
    assert!(ro.degraded());
    assert!(!ro.issues().is_empty());
    assert!(ro.last_seq() < full_seq, "the damaged suffix is not served");
    assert_eq!(
        &ro.graph().dump_slots(),
        dumps.get(&ro.last_seq()).unwrap(),
        "served graph must be the exact prefix state at seq {}",
        ro.last_seq()
    );
    ro.graph().check_invariants().unwrap();
    std::fs::remove_dir_all(&dir).ok();
}
