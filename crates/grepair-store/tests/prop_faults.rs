//! Property-based crash-point exploration.
//!
//! Where `faults.rs` explores one hand-written script exhaustively, this
//! test lets proptest pick the *script*: a random sequence of mutations,
//! commits and compactions runs over the [`FaultyFs`] backend, and a
//! crash is injected at **every** file-operation boundary of that run —
//! write, fsync, rename, remove, directory-sync alike. Each crash image
//! (durable bytes only) is materialized and reopened with the real
//! backend; the recovered graph must equal the state after some prefix
//! of the successfully applied mutations, and no commit acknowledged
//! before the crash may be lost. Typed errors only — a panic anywhere
//! fails the test.

use grepair_graph::{NodeId, SlotDump, Value};
use grepair_store::{DurableGraph, FaultyFs, StoreConfig, StoreError};
use proptest::prelude::*;
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

/// One scripted step. Selectors index the live population modulo its
/// size at application time, so any byte sequence is a valid script.
#[derive(Clone, Debug)]
enum Step {
    AddNode(u8),
    AddEdge(u8, u8),
    RemoveNode(u8),
    SetAttr(u8, i64),
    Commit,
    Compact,
}

fn step_strategy() -> impl Strategy<Value = Step> {
    let add = || any::<u8>().prop_map(Step::AddNode);
    prop_oneof![
        add(),
        add(),
        add(),
        (any::<u8>(), any::<u8>()).prop_map(|(a, b)| Step::AddEdge(a, b)),
        any::<u8>().prop_map(Step::RemoveNode),
        (any::<u8>(), any::<i64>()).prop_map(|(n, v)| Step::SetAttr(n, v)),
        Just(Step::Commit),
        Just(Step::Commit),
        Just(Step::Compact),
    ]
}

fn pick(nodes: &[NodeId], sel: u8) -> Option<NodeId> {
    (!nodes.is_empty()).then(|| nodes[sel as usize % nodes.len()])
}

#[derive(Default)]
struct Trace {
    dumps: BTreeMap<u64, SlotDump>,
    acked: u64,
}

/// Run the script, tolerating failures (after a crash point every store
/// call returns an error; the script carries on regardless, which is
/// itself part of the property: no panics, only typed errors).
fn run_script(fs: &FaultyFs, dir: &Path, steps: &[Step]) -> Trace {
    let config = StoreConfig {
        segment_max_bytes: 192,
        compact_log_bytes: u64::MAX,
        keep_snapshots: 2,
        sync_on_commit: true,
        log_growth_warn_bytes: u64::MAX,
    };
    let mut trace = Trace::default();
    let Ok(mut s) = DurableGraph::create_on(fs.clone(), dir, config) else {
        return trace;
    };
    trace.dumps.insert(0, s.graph().dump_slots());
    let mut nodes: Vec<NodeId> = Vec::new();
    for step in steps {
        let mutated = match step {
            Step::AddNode(l) => match s.add_node(&format!("L{}", l % 4)) {
                Ok(n) => {
                    nodes.push(n);
                    true
                }
                Err(_) => false,
            },
            Step::AddEdge(a, b) => match (pick(&nodes, *a), pick(&nodes, *b)) {
                (Some(x), Some(y)) => s.add_edge(x, y, "r").is_ok(),
                _ => false,
            },
            Step::RemoveNode(sel) => match pick(&nodes, *sel) {
                Some(n) => {
                    let removed = s.remove_node(n).is_ok();
                    if removed {
                        nodes.retain(|&m| m != n);
                    }
                    removed
                }
                None => false,
            },
            Step::SetAttr(sel, v) => match pick(&nodes, *sel) {
                Some(n) => s.set_attr(n, "k", Value::Int(*v)).is_ok(),
                None => false,
            },
            Step::Commit => {
                if s.commit().is_ok() {
                    trace.acked = s.last_seq();
                }
                false
            }
            Step::Compact => {
                let _ = s.compact();
                false
            }
        };
        if mutated {
            trace.dumps.insert(s.last_seq(), s.graph().dump_slots());
        }
    }
    if s.commit().is_ok() {
        trace.acked = s.last_seq();
    }
    trace
}

fn tmpdir() -> PathBuf {
    static UNIQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    let n = UNIQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    std::env::temp_dir().join(format!(
        "grepair-propfault-{}-{:?}-{n}",
        std::process::id(),
        std::thread::current().id()
    ))
}

proptest! {
    // Each case replays the whole script once per file operation it
    // performs (typically 60–200 crash points), so the case count is
    // modest; coverage comes from the inner exhaustiveness.
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn crash_at_every_boundary_recovers_a_committed_prefix(
        steps in prop::collection::vec(step_strategy(), 5..30),
        torn_keep in prop::option::of(1usize..12),
    ) {
        let vdir = PathBuf::from("/store");
        let clean = FaultyFs::new();
        run_script(&clean, &vdir, &steps);
        let total_ops = clean.ops();

        for crash_at in 0..total_ops {
            let fs = FaultyFs::new();
            match torn_keep {
                Some(keep) => fs.set_torn_crash_point(crash_at, keep),
                None => fs.set_crash_point(crash_at),
            }
            let trace = run_script(&fs, &vdir, &steps);

            let target = tmpdir();
            let _ = std::fs::remove_dir_all(&target);
            fs.materialize_durable(&target).unwrap();
            // The crashed process is dead by construction; drop its LOCK
            // the way a stale-lock steal would.
            let _ = std::fs::remove_file(target.join("LOCK"));

            match DurableGraph::open(&target, StoreConfig::default()) {
                Ok(s) => {
                    let seq = s.last_seq();
                    prop_assert!(
                        seq >= trace.acked,
                        "crash at {}: acked commit lost ({} < {})",
                        crash_at, seq, trace.acked
                    );
                    let expect = trace.dumps.get(&seq);
                    prop_assert!(
                        expect.is_some(),
                        "crash at {}: recovered seq {} matches no applied state",
                        crash_at, seq
                    );
                    prop_assert_eq!(
                        &s.graph().dump_slots(),
                        expect.unwrap(),
                        "crash at {}: wrong graph at seq {}",
                        crash_at, seq
                    );
                    s.graph().check_invariants().unwrap();
                }
                Err(StoreError::NotAStore(_)) => {
                    prop_assert_eq!(trace.acked, 0, "crash at {}: acked but no store", crash_at);
                    prop_assert!(trace.dumps.is_empty());
                }
                Err(e) => prop_assert!(false, "crash at {}: recovery failed: {}", crash_at, e),
            }
            std::fs::remove_dir_all(&target).ok();
        }
    }
}
