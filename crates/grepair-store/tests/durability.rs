//! Kill-and-reopen durability: the acceptance test for the store.
//!
//! Build a dirty graph, repair it through a [`DurableGraph`] (every
//! engine-applied repair journaled), then simulate a crash mid-write by
//! appending a torn tail to the active segment. Reopening must recover
//! exactly the last durably committed state — all applied repairs
//! intact, the torn garbage discarded.

use grepair_core::{EngineConfig, RepairEngine, RuleSet};
use grepair_gen::{generate_kg, gold_kg_rules, inject_kg_noise, KgConfig, NoiseConfig};
use grepair_store::{DurableGraph, StoreConfig};
use std::path::PathBuf;

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "grepair-durability-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn dirty_kg(persons: usize) -> grepair_graph::Graph {
    let (mut g, refs) = generate_kg(&KgConfig {
        seed: 7,
        ..KgConfig::with_persons(persons)
    });
    inject_kg_noise(
        &mut g,
        &refs,
        &NoiseConfig {
            rate: 0.1,
            seed: 7,
            ..NoiseConfig::default()
        },
    );
    g
}

#[test]
fn repair_survives_torn_tail_crash() {
    let dir = tmpdir("repair-crash");
    let rules: RuleSet = gold_kg_rules();

    // Import a dirty graph, repair it durably.
    let mut store =
        DurableGraph::create_with(&dir, StoreConfig::default(), dirty_kg(150)).unwrap();
    let engine = RepairEngine::default();
    let violations_before = engine.count_violations(store.graph(), &rules.rules);
    assert!(violations_before > 0, "fixture must be dirty");
    let report = store.repair(&engine, &rules.rules).unwrap();
    assert!(report.converged, "residual: {}", report.violations_remaining);
    assert!(report.repairs_applied > 0);
    let committed = store.graph().dump_slots();
    let committed_seq = store.last_seq();
    assert_eq!(committed_seq, report.ops.len() as u64);
    drop(store);

    // Crash simulation: a torn half-record lands on the active segment.
    let (_, seg) = grepair_store::wal::list_segments(&dir)
        .unwrap()
        .pop()
        .unwrap();
    let mut bytes = std::fs::read(&seg).unwrap();
    bytes.extend_from_slice(&[0x13, 0x37, 0x00, 0x00, 0xFF]);
    std::fs::write(&seg, &bytes).unwrap();

    // Reopen: recovered graph == last durably committed state, repairs
    // intact, zero residual violations, torn tail accounted for.
    let store = DurableGraph::open(&dir, StoreConfig::default()).unwrap();
    assert_eq!(store.graph().dump_slots(), committed);
    assert_eq!(store.last_seq(), committed_seq);
    assert_eq!(store.last_recovery().torn_tail_bytes, 5);
    assert_eq!(store.last_recovery().records_replayed, committed_seq);
    assert_eq!(
        engine.count_violations(store.graph(), &rules.rules),
        0,
        "recovered graph must keep all repairs"
    );
    store.graph().check_invariants().unwrap();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn repair_then_compact_then_crash_recovers_from_snapshot() {
    let dir = tmpdir("repair-compact-crash");
    let rules: RuleSet = gold_kg_rules();
    let mut store =
        DurableGraph::create_with(&dir, StoreConfig::default(), dirty_kg(100)).unwrap();
    let engine = RepairEngine::default();
    store.repair(&engine, &rules.rules).unwrap();
    let cstats = store.compact().unwrap();
    assert!(cstats.snapshot_seq > 0);

    // Post-compaction edits (durably committed), then a crash that tears
    // BOTH a fresh half-record and trashes nothing else.
    let newcomer = store.add_node("Person").unwrap();
    store
        .set_attr(newcomer, "name", grepair_graph::Value::from("late arrival"))
        .unwrap();
    store.commit().unwrap();
    let committed = store.graph().dump_slots();
    drop(store);
    let (_, seg) = grepair_store::wal::list_segments(&dir)
        .unwrap()
        .pop()
        .unwrap();
    let mut bytes = std::fs::read(&seg).unwrap();
    bytes.extend_from_slice(&[0xAB; 3]);
    std::fs::write(&seg, &bytes).unwrap();

    let store = DurableGraph::open(&dir, StoreConfig::default()).unwrap();
    assert_eq!(store.last_recovery().snapshot_seq, cstats.snapshot_seq);
    assert_eq!(store.last_recovery().records_replayed, 2);
    assert_eq!(store.last_recovery().torn_tail_bytes, 3);
    assert_eq!(store.graph().dump_slots(), committed);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn repeated_repair_cycles_stay_replayable_across_sessions() {
    // A persistent deployment: ingest → repair → close, several times,
    // with noise injected between sessions. Every reopen must replay to
    // the exact pre-close state.
    let dir = tmpdir("sessions");
    let rules: RuleSet = gold_kg_rules();
    let engine = RepairEngine::default();

    let mut store =
        DurableGraph::create_with(&dir, StoreConfig::default(), dirty_kg(80)).unwrap();
    let mut expected = None;
    for session in 0..3 {
        if let Some(expected) = expected.take() {
            let expected: grepair_graph::SlotDump = expected;
            assert_eq!(
                store.graph().dump_slots(),
                expected,
                "session {session}: reopen must restore pre-close state"
            );
        }
        // Some manual dirt through the durable API.
        let p = store.add_node("Person").unwrap();
        let q = store.add_node("Person").unwrap();
        store
            .set_attr(p, "ssn", grepair_graph::Value::Int(900_000 + session))
            .unwrap();
        store
            .set_attr(q, "ssn", grepair_graph::Value::Int(900_000 + session))
            .unwrap();
        let report = store.repair(&engine, &rules.rules).unwrap();
        assert!(report.converged);
        if session == 1 {
            store.compact().unwrap();
        }
        store.commit().unwrap();
        expected = Some(store.graph().dump_slots());
        drop(store);
        store = DurableGraph::open(&dir, StoreConfig::default()).unwrap();
    }
    let expected: grepair_graph::SlotDump = expected.unwrap();
    assert_eq!(store.graph().dump_slots(), expected);
    assert_eq!(engine.count_violations(store.graph(), &rules.rules), 0);
    std::fs::remove_dir_all(&dir).ok();
}

#[cfg(feature = "parallel")]
#[test]
fn parallel_engine_repairs_are_journaled_identically() {
    // The parallel scan changes discovery concurrency, not semantics;
    // the journal must replay to the same state either way.
    let dir = tmpdir("parallel");
    let rules: RuleSet = gold_kg_rules();
    let mut store =
        DurableGraph::create_with(&dir, StoreConfig::default(), dirty_kg(60)).unwrap();
    let engine = RepairEngine::new(EngineConfig {
        parallel: true,
        ..EngineConfig::default()
    });
    let report = store.repair(&engine, &rules.rules).unwrap();
    assert!(report.converged);
    let committed = store.graph().dump_slots();
    drop(store);
    let store = DurableGraph::open(&dir, StoreConfig::default()).unwrap();
    assert_eq!(store.graph().dump_slots(), committed);
    std::fs::remove_dir_all(&dir).ok();
}

#[cfg(not(feature = "parallel"))]
#[test]
fn naive_engine_repairs_are_journaled_identically() {
    let dir = tmpdir("naive");
    let rules: RuleSet = gold_kg_rules();
    let mut store =
        DurableGraph::create_with(&dir, StoreConfig::default(), dirty_kg(60)).unwrap();
    let engine = RepairEngine::new(EngineConfig::naive_with_indexes());
    let report = store.repair(&engine, &rules.rules).unwrap();
    assert!(report.converged);
    let committed = store.graph().dump_slots();
    drop(store);
    let store = DurableGraph::open(&dir, StoreConfig::default()).unwrap();
    assert_eq!(store.graph().dump_slots(), committed);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn replayed_graph_maintains_exact_statistics() {
    // WAL-replayed graphs must carry write-path–maintained statistics
    // that exactly equal a full recompute — statistics maintenance and
    // crash recovery compose.
    let dir = tmpdir("maintained-stats");
    {
        let mut store =
            DurableGraph::create_with(&dir, StoreConfig::default(), dirty_kg(60)).unwrap();
        let a = store.add_node("Person").unwrap();
        let b = store.add_node("City").unwrap();
        store.add_edge(a, b, "livesIn").unwrap();
        store
            .set_attr(a, "age", grepair_graph::Value::Int(30))
            .unwrap();
        store.remove_node(b).unwrap();
        store.commit().unwrap();
    }
    let store = DurableGraph::open(&dir, StoreConfig::default()).unwrap();
    assert!(store.last_recovery().records_replayed > 0);
    let maintained = store
        .graph()
        .maintained_stats()
        .expect("store graphs maintain statistics");
    assert_eq!(
        maintained,
        &grepair_graph::CardinalityStats::compute(store.graph()),
        "replayed statistics must equal a recompute"
    );
    store.graph().check_invariants().unwrap();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn store_planner_stays_warm_across_repairs() {
    // The store's owned planner carries compiled plans across repair
    // runs: the second run must plan entirely from cache.
    let dir = tmpdir("warm-planner");
    let rules: RuleSet = gold_kg_rules();
    let engine = RepairEngine::new(EngineConfig::default());
    let mut store =
        DurableGraph::create_with(&dir, StoreConfig::default(), dirty_kg(80)).unwrap();
    let r1 = store.repair(&engine, &rules.rules).unwrap();
    assert!(r1.converged);
    assert!(r1.repairs_applied > 0);
    assert!(r1.pattern_compiles > 0, "cold planner compiles on run 1");

    let r2 = store.repair(&engine, &rules.rules).unwrap();
    assert!(r2.converged);
    assert_eq!(r2.repairs_applied, 0, "fixpoint is stable");
    assert_eq!(
        r2.pattern_compiles, 0,
        "run 2 must be served from the warmed plan cache (hits: {})",
        r2.plan_cache_hits
    );
    assert!(r2.plan_cache_hits > 0);

    // The warm planner survives store reopen only as far as the store
    // object lives — a fresh open starts cold but must behave the same.
    drop(store);
    let mut store = DurableGraph::open(&dir, StoreConfig::default()).unwrap();
    let r3 = store.repair(&engine, &rules.rules).unwrap();
    assert!(r3.converged);
    assert_eq!(r3.repairs_applied, 0);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn cancelled_durable_repair_recovers_committed_round_prefix() {
    // Cancel a durable repair at a handful of checkpoint boundaries.
    // The journal must hold exactly the committed rounds: the in-memory
    // graph at return and the reopened graph are identical, and the log
    // length equals the reported op count.
    let rules: RuleSet = gold_kg_rules();
    for cancel_at in [1u64, 2, 3, 5, 8, 13] {
        let dir = tmpdir(&format!("cancel-prefix-{cancel_at}"));
        let mut store =
            DurableGraph::create_with(&dir, StoreConfig::default(), dirty_kg(80)).unwrap();
        let budget = grepair_obs::Budget::unlimited().cancel_at_check(cancel_at);
        let engine = RepairEngine::default().with_budget(&budget);
        let report = store.repair(&engine, &rules.rules).unwrap();
        let in_memory = store.graph().dump_slots();
        let last_seq = store.last_seq();
        assert_eq!(
            last_seq,
            report.ops.len() as u64,
            "cancel_at {cancel_at}: journal length == reported ops"
        );
        drop(store);

        let store = DurableGraph::open(&dir, StoreConfig::default()).unwrap();
        assert_eq!(
            store.graph().dump_slots(),
            in_memory,
            "cancel_at {cancel_at}: outcome {:?}: reopened state must equal \
             the committed-round prefix the engine returned",
            report.outcome
        );
        store.graph().check_invariants().unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }
}

#[test]
fn op_budget_tripped_durable_repair_journals_whole_rounds() {
    let rules: RuleSet = gold_kg_rules();
    let dir = tmpdir("op-budget-prefix");
    let mut store =
        DurableGraph::create_with(&dir, StoreConfig::default(), dirty_kg(80)).unwrap();
    let budget = grepair_obs::Budget::unlimited().with_op_cap(3);
    let engine = RepairEngine::default().with_budget(&budget);
    let report = store.repair(&engine, &rules.rules).unwrap();
    assert_eq!(report.outcome, grepair_core::RepairOutcome::OpBudget);
    assert!(!report.ops.is_empty(), "cap of 3 lands after a round");
    let in_memory = store.graph().dump_slots();
    drop(store);
    let store = DurableGraph::open(&dir, StoreConfig::default()).unwrap();
    assert_eq!(store.graph().dump_slots(), in_memory);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn interrupted_recovery_is_side_effect_free() {
    let rules: RuleSet = gold_kg_rules();
    let dir = tmpdir("interrupted-recovery");
    let mut store =
        DurableGraph::create_with(&dir, StoreConfig::default(), dirty_kg(80)).unwrap();
    store.repair(&RepairEngine::default(), &rules.rules).unwrap();
    let committed = store.graph().dump_slots();
    drop(store);

    // A pre-cancelled budget trips at the first segment boundary.
    let cancelled = grepair_obs::Budget::unlimited();
    cancelled.cancel();
    match DurableGraph::open_with_budget(&dir, StoreConfig::default(), &cancelled) {
        Err(grepair_store::StoreError::Interrupted(reason)) => {
            assert_eq!(reason, grepair_obs::TripReason::Cancelled);
        }
        Err(other) => panic!("expected Interrupted, got {other}"),
        Ok(_) => panic!("expected Interrupted, got a successful open"),
    }

    // Replay is read-only and the lock was released: a plain reopen
    // recovers everything.
    let store = DurableGraph::open(&dir, StoreConfig::default()).unwrap();
    assert_eq!(store.graph().dump_slots(), committed);
    std::fs::remove_dir_all(&dir).ok();
}
