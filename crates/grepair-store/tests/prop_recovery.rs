//! Crash-recovery property tests.
//!
//! Two properties pin the store's durability contract:
//!
//! 1. **Journal-replay exactness** — replaying the WAL of a random
//!    mutation sequence reproduces the live graph *exactly*: same live
//!    elements, same labels/attrs, same tombstones and free-list order
//!    ([`SlotDump`] equality), so ids allocate identically forever
//!    after.
//! 2. **Prefix consistency under truncation** — cutting the WAL at
//!    *every byte boundary* and recovering yields precisely the graph
//!    produced by the longest record prefix that survived the cut;
//!    recovery never crashes and never invents state.

use grepair_graph::{EdgeId, Graph, NodeId, SlotDump, Value};
use grepair_store::{DurableGraph, StoreConfig};
use proptest::prelude::*;
use std::path::PathBuf;

/// A mutation in a random op sequence; element selectors are taken
/// modulo the live population at application time.
#[derive(Clone, Debug)]
enum Op {
    AddNode(u8, bool),
    AddEdge(u8, u8, u8),
    RemoveNode(u8),
    RemoveEdge(u8),
    RelabelNode(u8, u8),
    RelabelEdge(u8, u8),
    SetAttr(u8, u8, i64),
    RemoveAttr(u8, u8),
    Merge(u8, u8),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    // Insertion arms repeated: the shim's `prop_oneof!` is uniform, and
    // insertion-heavy sequences grow enough population to delete from.
    let add_node = || (any::<u8>(), any::<bool>()).prop_map(|(l, a)| Op::AddNode(l, a));
    let add_edge =
        || (any::<u8>(), any::<u8>(), any::<u8>()).prop_map(|(a, b, l)| Op::AddEdge(a, b, l));
    prop_oneof![
        add_node(),
        add_node(),
        add_node(),
        add_edge(),
        add_edge(),
        add_edge(),
        any::<u8>().prop_map(Op::RemoveNode),
        any::<u8>().prop_map(Op::RemoveEdge),
        (any::<u8>(), any::<u8>()).prop_map(|(n, l)| Op::RelabelNode(n, l)),
        (any::<u8>(), any::<u8>()).prop_map(|(e, l)| Op::RelabelEdge(e, l)),
        (any::<u8>(), any::<u8>(), any::<i64>()).prop_map(|(n, k, v)| Op::SetAttr(n, k, v)),
        (any::<u8>(), any::<u8>(), any::<i64>()).prop_map(|(n, k, v)| Op::SetAttr(n, k, v)),
        (any::<u8>(), any::<u8>()).prop_map(|(n, k)| Op::RemoveAttr(n, k)),
        (any::<u8>(), any::<u8>()).prop_map(|(a, b)| Op::Merge(a, b)),
    ]
}

fn pick_node(g: &Graph, sel: u8) -> Option<NodeId> {
    let nodes: Vec<NodeId> = g.nodes().collect();
    (!nodes.is_empty()).then(|| nodes[sel as usize % nodes.len()])
}

fn pick_edge(g: &Graph, sel: u8) -> Option<EdgeId> {
    let edges: Vec<EdgeId> = g.edges().collect();
    (!edges.is_empty()).then(|| edges[sel as usize % edges.len()])
}

/// Apply one op through the durable store, best-effort (ops aimed at an
/// empty population are skipped). Returns whether a mutation happened.
fn apply_op(s: &mut DurableGraph, op: &Op) -> bool {
    match op {
        Op::AddNode(l, with_attr) => {
            let label = format!("L{}", l % 4);
            if *with_attr {
                s.add_node_with_attrs(&label, &[("k0".to_owned(), Value::Int(*l as i64))])
                    .unwrap();
            } else {
                s.add_node(&label).unwrap();
            }
            true
        }
        Op::AddEdge(a, b, l) => {
            let (Some(x), Some(y)) = (pick_node(s.graph(), *a), pick_node(s.graph(), *b))
            else {
                return false;
            };
            s.add_edge(x, y, &format!("r{}", l % 4)).unwrap();
            true
        }
        Op::RemoveNode(sel) => match pick_node(s.graph(), *sel) {
            Some(n) => {
                s.remove_node(n).unwrap();
                true
            }
            None => false,
        },
        Op::RemoveEdge(sel) => match pick_edge(s.graph(), *sel) {
            Some(e) => {
                s.remove_edge(e).unwrap();
                true
            }
            None => false,
        },
        Op::RelabelNode(sel, l) => match pick_node(s.graph(), *sel) {
            Some(n) => {
                s.set_node_label(n, &format!("L{}", l % 4)).unwrap();
                true
            }
            None => false,
        },
        Op::RelabelEdge(sel, l) => match pick_edge(s.graph(), *sel) {
            Some(e) => {
                s.set_edge_label(e, &format!("r{}", l % 4)).unwrap();
                true
            }
            None => false,
        },
        Op::SetAttr(sel, k, v) => match pick_node(s.graph(), *sel) {
            Some(n) => {
                s.set_attr(n, &format!("k{}", k % 3), Value::Int(*v)).unwrap();
                true
            }
            None => false,
        },
        Op::RemoveAttr(sel, k) => match pick_node(s.graph(), *sel) {
            Some(n) => {
                s.remove_attr(n, &format!("k{}", k % 3)).unwrap();
                true
            }
            None => false,
        },
        Op::Merge(a, b) => {
            let (Some(x), Some(y)) = (pick_node(s.graph(), *a), pick_node(s.graph(), *b))
            else {
                return false;
            };
            if x == y {
                return false;
            }
            s.merge_nodes(x, y, *a % 2 == 0).unwrap();
            true
        }
    }
}

fn tmpdir(tag: &str) -> PathBuf {
    static UNIQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    let n = UNIQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!(
        "grepair-prop-{tag}-{}-{:?}-{n}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Property 1: reopen-from-journal reproduces the live graph exactly,
    /// tombstones and free-list order included.
    #[test]
    fn journal_replay_reproduces_graph_exactly(ops in prop::collection::vec(op_strategy(), 1..60)) {
        let dir = tmpdir("replay");
        let mut s = DurableGraph::create(&dir, StoreConfig::default()).unwrap();
        for op in &ops {
            apply_op(&mut s, op);
        }
        s.commit().unwrap();
        let live: SlotDump = s.graph().dump_slots();
        s.graph().check_invariants().unwrap();
        drop(s);

        let recovered = DurableGraph::open(&dir, StoreConfig::default()).unwrap();
        prop_assert_eq!(recovered.graph().dump_slots(), live);
        recovered.graph().check_invariants().unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Parallel decode-ahead replay recovers byte-identical state to
    /// serial recovery across thread counts {1, 2, 8}, with a tiny
    /// segment cap so real multi-segment logs (including tombstoned
    /// slots from removals/merges) exercise the concurrent decode.
    #[cfg(feature = "parallel")]
    #[test]
    fn parallel_replay_identical_across_thread_counts(
        ops in prop::collection::vec(op_strategy(), 1..60),
    ) {
        let dir = tmpdir("par-replay");
        let config = StoreConfig {
            segment_max_bytes: 256,
            ..StoreConfig::default()
        };
        let mut s = DurableGraph::create(&dir, config.clone()).unwrap();
        for op in &ops {
            apply_op(&mut s, op);
        }
        s.commit().unwrap();
        let live: SlotDump = s.graph().dump_slots();
        drop(s);

        for threads in [1usize, 2, 8] {
            let pool = rayon::ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .unwrap();
            let recovered = pool
                .install(|| DurableGraph::open(&dir, config.clone()))
                .unwrap();
            prop_assert_eq!(
                recovered.graph().dump_slots(),
                live.clone(),
                "{} replay threads",
                threads
            );
            recovered.graph().check_invariants().unwrap();
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Property 1b: exactness also holds across a mid-sequence compaction
    /// (snapshot restore + suffix replay instead of full replay).
    #[test]
    fn snapshot_plus_suffix_replay_is_exact(
        ops in prop::collection::vec(op_strategy(), 2..50),
        split in 0usize..50,
    ) {
        let dir = tmpdir("snapsplit");
        let mut s = DurableGraph::create(&dir, StoreConfig::default()).unwrap();
        let split = split % ops.len();
        let mut journaled_before = 0u64;
        for op in &ops[..split] {
            journaled_before += apply_op(&mut s, op) as u64;
        }
        s.compact().unwrap();
        for op in &ops[split..] {
            apply_op(&mut s, op);
        }
        s.commit().unwrap();
        let live = s.graph().dump_slots();
        drop(s);

        let recovered = DurableGraph::open(&dir, StoreConfig::default()).unwrap();
        prop_assert_eq!(recovered.graph().dump_slots(), live);
        prop_assert_eq!(recovered.last_recovery().snapshot_seq, journaled_before);
        std::fs::remove_dir_all(&dir).ok();
    }
}

proptest! {
    // Each case tries every byte boundary of the WAL, so a case is
    // hundreds of recoveries; keep the case count modest.
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Property 2: truncating the WAL at EVERY byte boundary recovers the
    /// graph of the longest surviving record prefix — no crash, no
    /// invented state, no lost acknowledged-and-synced prefix.
    #[test]
    fn every_byte_truncation_recovers_a_prefix(ops in prop::collection::vec(op_strategy(), 1..25)) {
        let dir = tmpdir("cut");
        let mut s = DurableGraph::create(&dir, StoreConfig::default()).unwrap();
        // States after each journaled record, plus frame boundaries.
        let mut dumps: Vec<SlotDump> = vec![s.graph().dump_slots()];
        let seg_path = {
            let mut segs = grepair_store::wal::list_segments(&dir).unwrap();
            prop_assert_eq!(segs.len(), 1);
            segs.pop().unwrap().1
        };
        let mut frame_ends: Vec<u64> = vec![std::fs::metadata(&seg_path).unwrap().len()];
        for op in &ops {
            if apply_op(&mut s, op) {
                dumps.push(s.graph().dump_slots());
                frame_ends.push(std::fs::metadata(&seg_path).unwrap().len());
            }
        }
        s.commit().unwrap();
        drop(s);
        let full = std::fs::read(&seg_path).unwrap();
        prop_assert_eq!(*frame_ends.last().unwrap(), full.len() as u64);
        let seg_name = seg_path.file_name().unwrap().to_owned();

        let probe = tmpdir("cut-probe");
        for cut in 0..=full.len() {
            let _ = std::fs::remove_dir_all(&probe);
            std::fs::create_dir_all(&probe).unwrap();
            std::fs::write(probe.join(&seg_name), &full[..cut]).unwrap();
            let recovered = DurableGraph::open(&probe, StoreConfig::default()).unwrap();
            // Longest record prefix fully below the cut.
            let k = frame_ends.iter().filter(|&&e| e <= cut as u64).count();
            let expect = if k == 0 { &dumps[0] } else { &dumps[k - 1] };
            prop_assert_eq!(
                &recovered.graph().dump_slots(),
                expect,
                "cut at byte {} of {}",
                cut,
                full.len()
            );
            let torn = recovered.last_recovery().torn_tail_bytes;
            let valid = if k == 0 { 0 } else { frame_ends[k - 1] };
            prop_assert_eq!(torn, cut as u64 - valid);
            // The truncated store stays writable: recovery re-opened the
            // log at the last valid frame.
            let mut recovered = recovered;
            recovered.add_node("PostCrash").unwrap();
            recovered.commit().unwrap();
        }
        std::fs::remove_dir_all(&dir).ok();
        std::fs::remove_dir_all(&probe).ok();
    }
}
